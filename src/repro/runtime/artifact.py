"""Compiled-artifact serialization.

A production serving stack compiles ahead of time and ships artifacts to
hosts. An artifact bundles the encoded VLIW binary (generation-specific —
Lesson 2 applies to files too) with the JSON metadata a loader needs to
check compatibility before attempting to run: target generation, chip
name, compiler release, batch size, dtype, and weight placement summary.

Format: a JSON header line, then the raw program binary.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Union

from repro.arch.chip import ChipConfig
from repro.compiler.pipeline import CompiledModel
from repro.isa.encoding import IncompatibleBinaryError, decode_program, encode_program
from repro.isa.program import Program

_MAGIC = "repro-artifact-v1"


@dataclass(frozen=True)
class CompiledArtifact:
    """A loadable compiled model."""

    program: Program
    metadata: Dict[str, object]

    @property
    def generation(self) -> int:
        return int(self.metadata["generation"])

    @property
    def chip_name(self) -> str:
        return str(self.metadata["chip"])

    def runs_on(self, chip: ChipConfig) -> bool:
        """Generation check — the load-time compatibility gate."""
        return chip.generation == self.generation


def artifact_from_compiled(compiled: CompiledModel) -> CompiledArtifact:
    """Wrap a fresh compile result as an artifact."""
    metadata = {
        "model": compiled.source.name,
        "chip": compiled.chip.name,
        "generation": compiled.chip.generation,
        "compiler": compiled.version.name,
        "dtype": compiled.module.root.shape.dtype_name,
        "weight_bytes": compiled.weight_bytes,
        "cmem_weight_bytes": compiled.memory.cmem_weight_bytes,
        "bundles": len(compiled.program),
    }
    return CompiledArtifact(program=compiled.program, metadata=metadata)


def save_artifact(compiled_or_artifact: Union[CompiledModel, CompiledArtifact],
                  path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Serialize to ``path``; returns the path written."""
    if isinstance(compiled_or_artifact, CompiledModel):
        artifact = artifact_from_compiled(compiled_or_artifact)
    else:
        artifact = compiled_or_artifact
    header = dict(artifact.metadata)
    header["magic"] = _MAGIC
    binary = encode_program(artifact.program)
    out = pathlib.Path(path)
    with out.open("wb") as handle:
        handle.write(json.dumps(header).encode("utf-8"))
        handle.write(b"\n")
        handle.write(binary)
    return out


def load_artifact(path: Union[str, pathlib.Path]) -> CompiledArtifact:
    """Read an artifact; raises on corrupt headers or foreign binaries."""
    data = pathlib.Path(path).read_bytes()
    newline = data.find(b"\n")
    if newline < 0:
        raise ValueError(f"{path}: not an artifact (no header line)")
    try:
        header = json.loads(data[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: corrupt artifact header") from exc
    if header.get("magic") != _MAGIC:
        raise ValueError(f"{path}: not a {_MAGIC} file")
    generation = int(header["generation"])
    try:
        program = decode_program(data[newline + 1:], generation)
    except IncompatibleBinaryError as exc:
        raise ValueError(f"{path}: binary does not match its header "
                         f"(generation {generation})") from exc
    header.pop("magic")
    return CompiledArtifact(program=program, metadata=header)
