"""InferenceServer: answers and latency from one call.

Joins the two halves of the library: the functional evaluator supplies
the output tensors (with the chip's arithmetic), the timing simulator
supplies latency/energy for the compiled program. This is the shape of a
real inference host: numerics fixed at compile time, performance measured
per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.arch.chip import ChipConfig
from repro.compiler.pipeline import compile_model
from repro.compiler.versions import CompilerVersion, LATEST
from repro.graph.evaluator import Evaluator
from repro.graph.hlo import HloModule
from repro.sim.core import TensorCoreSim
from repro.sim.perf import PerfReport


@dataclass(frozen=True)
class InferenceResult:
    """One served request: the answer plus its performance."""

    output: np.ndarray
    latency_s: float
    energy_j: float
    report: PerfReport

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


class InferenceServer:
    """Serves one model on one chip.

    The model compiles once at construction; ``infer`` calls execute the
    functional evaluator per request (timing is constant per batch shape,
    so the simulator runs once and is reused).
    """

    def __init__(self, module: HloModule, chip: ChipConfig, *,
                 version: CompilerVersion = LATEST,
                 arithmetic: Optional[str] = None,
                 seed: int = 0) -> None:
        self.module = module
        self.chip = chip
        self.compiled = compile_model(module, chip, version=version)
        if arithmetic is None:
            arithmetic = "bf16" if chip.supports_dtype("bf16") else "int8"
        if not chip.supports_dtype(arithmetic):
            raise ValueError(f"{chip.name} does not support {arithmetic}")
        self.arithmetic = arithmetic
        self._evaluator = Evaluator(module, arithmetic, seed=seed)
        self._timing = TensorCoreSim(chip).run(self.compiled.program,
                                               dtype=arithmetic)

    @property
    def latency_s(self) -> float:
        """Compute latency of one batch on this chip."""
        return self._timing.seconds

    def infer(self, inputs: Optional[Mapping[str, np.ndarray]] = None,
              weights: Optional[Mapping[str, np.ndarray]] = None
              ) -> InferenceResult:
        """Run one request; returns outputs and per-batch performance."""
        output = self._evaluator.run(inputs, weights)
        return InferenceResult(
            output=output,
            latency_s=self._timing.seconds,
            energy_j=self._timing.report.energy_j,
            report=self._timing.report,
        )

    def describe(self) -> str:
        return (f"{self.module.name} on {self.chip.name} "
                f"[{self.arithmetic}, {self.compiled.version.name}]: "
                f"{self.latency_s * 1e3:.3f} ms/batch, "
                f"{self._timing.report.achieved_tops:.1f} TOPS")
