"""Host runtime: artifacts, loading, and combined execute-and-time serving.

The piece a downstream user actually touches: compile once, save the
artifact, load it on a serving host, and run requests that return both
*answers* (via the functional evaluator) and *latency* (via the timing
simulator) — the two halves of the library joined at one API.
"""

from repro.runtime.artifact import CompiledArtifact, load_artifact, save_artifact
from repro.runtime.server import InferenceServer, InferenceResult

__all__ = [
    "CompiledArtifact",
    "load_artifact",
    "save_artifact",
    "InferenceServer",
    "InferenceResult",
]
