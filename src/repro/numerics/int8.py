"""Post-training int8 quantization with calibration.

This is the TPUv1 deployment path the paper's Lesson 7 pushes back on: it
works well for many models (CNNs), but some workloads lose quality, and
every new model needs a calibration pass before it can ship — friction
bf16 avoids entirely. The quantizer here is symmetric per-tensor with a
percentile calibrator, matching common production practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Symmetric quantization parameters: ``real = scale * int8``."""

    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0 or not np.isfinite(self.scale):
            raise ValueError(f"scale must be positive and finite, got {self.scale}")


def calibrate(samples: np.ndarray, percentile: float = 99.9) -> QuantParams:
    """Choose a scale from representative activations/weights.

    Clipping at a high percentile rather than the absolute max trades a
    little saturation error for much finer resolution when the
    distribution has outliers (exactly the models that hurt at int8).
    """
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    magnitudes = np.abs(np.asarray(samples, dtype=np.float32)).ravel()
    if magnitudes.size == 0:
        raise ValueError("cannot calibrate on an empty sample")
    clip = float(np.percentile(magnitudes, percentile))
    if clip == 0.0:
        clip = 1e-8  # all-zero tensor: any scale works
    return QuantParams(scale=clip / 127.0)


def quantize(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """fp32 -> int8 with saturation."""
    arr = np.asarray(values, dtype=np.float32)
    q = np.round(arr / params.scale)
    return np.clip(q, -127, 127).astype(np.int8)


def dequantize(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """int8 -> fp32."""
    return values.astype(np.float32) * params.scale


def int8_matmul(lhs: np.ndarray, rhs: np.ndarray,
                lhs_params: QuantParams, rhs_params: QuantParams) -> np.ndarray:
    """Quantized matmul: int8 operands, int32 accumulation, fp32 result.

    This is TPUv1 MXU semantics: the array multiplies 8-bit operands into
    32-bit accumulators; the combined scale is applied on readout.
    """
    qa = quantize(lhs, lhs_params).astype(np.int32)
    qb = quantize(rhs, rhs_params).astype(np.int32)
    acc = qa @ qb
    return acc.astype(np.float32) * (lhs_params.scale * rhs_params.scale)
