"""Arithmetic-format models (Lesson 7: some inference needs floating point).

TPUv1 was int8-only; quantizing every production model turned out to cost
accuracy and — more importantly — deployment *time* (retraining/calibration
per release). TPUv2/v3 trained in bf16, and TPUv4i keeps bf16 alongside int8
so a trained model deploys with bit-compatible numerics (Lesson 10).

This package implements bit-accurate bf16 rounding, post-training int8
quantization with calibration, and the error metrics the numerics
experiment (E14) reports.
"""

from repro.numerics.bfloat16 import (
    to_bf16,
    bf16_matmul,
    BF16_EPS,
)
from repro.numerics.int8 import (
    QuantParams,
    calibrate,
    quantize,
    dequantize,
    int8_matmul,
)
from repro.numerics.error import (
    snr_db,
    max_rel_error,
    cosine_similarity,
    quality_loss_proxy,
)

__all__ = [
    "to_bf16",
    "bf16_matmul",
    "BF16_EPS",
    "QuantParams",
    "calibrate",
    "quantize",
    "dequantize",
    "int8_matmul",
    "snr_db",
    "max_rel_error",
    "cosine_similarity",
    "quality_loss_proxy",
]
