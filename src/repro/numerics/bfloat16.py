"""Bit-accurate bfloat16 rounding and MXU-style bf16 matmul.

bfloat16 is fp32 with the mantissa truncated to 7 bits: same exponent
range, ~3 decimal digits. The MXU multiplies bf16 operands and accumulates
in fp32, which is what makes training-to-inference numerics reproducible
across generations (Lesson 10): the function below is *deterministic*, so
TPUv2, v3, and v4i produce identical bits for identical inputs.
"""

from __future__ import annotations

import numpy as np

# Machine epsilon of bf16 (8-bit significand including the hidden bit).
BF16_EPS = 2.0**-8


def to_bf16(values: np.ndarray) -> np.ndarray:
    """Round an fp32 array to bfloat16, returned as fp32 with bf16 precision.

    Uses round-to-nearest-even on the upper 16 bits of the IEEE-754
    encoding — the same rounding the TPU datapath applies.
    """
    arr = np.asarray(values, dtype=np.float32)
    bits = arr.view(np.uint32)
    # Round to nearest even: add 0x7FFF plus the LSB of the kept part.
    lsb = (bits >> 16) & 1
    rounded = bits + 0x7FFF + lsb
    out = (rounded & np.uint32(0xFFFF0000)).view(np.float32)
    # NaNs must stay NaN (the rounding add can carry into the exponent).
    out = np.where(np.isnan(arr), arr, out)
    return out.astype(np.float32)


def bf16_matmul(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """``lhs @ rhs`` with bf16 operands and fp32 accumulation (MXU semantics)."""
    a = to_bf16(lhs).astype(np.float32)
    b = to_bf16(rhs).astype(np.float32)
    return a @ b


def is_bf16_exact(values: np.ndarray) -> np.ndarray:
    """Elementwise: is the fp32 value already exactly representable in bf16?"""
    arr = np.asarray(values, dtype=np.float32)
    return np.equal(arr, to_bf16(arr)) | np.isnan(arr)
