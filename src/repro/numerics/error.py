"""Error metrics for comparing numeric formats (experiment E14).

The experiment compares each production app's reference fp32 computation
against bf16 and calibrated int8, reporting SNR and a quality-loss proxy.
The proxy maps output SNR to an estimated accuracy drop: a crude but
monotone stand-in for "did the model's predictions change", sufficient to
reproduce the paper's *shape* (CNNs tolerate int8; models with outlier
activations and long reduction chains do not).
"""

from __future__ import annotations

import numpy as np


def snr_db(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Signal-to-noise ratio of ``candidate`` vs ``reference``, in dB."""
    ref = np.asarray(reference, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64)
    if ref.shape != cand.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {cand.shape}")
    signal = float(np.sum(ref**2))
    noise = float(np.sum((ref - cand) ** 2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal / noise)


def max_rel_error(reference: np.ndarray, candidate: np.ndarray,
                  floor: float = 1e-6) -> float:
    """Largest elementwise relative error, with a denominator floor."""
    ref = np.asarray(reference, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64)
    denom = np.maximum(np.abs(ref), floor)
    return float(np.max(np.abs(ref - cand) / denom))


def cosine_similarity(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Cosine similarity of the flattened tensors (1.0 = same direction)."""
    a = np.asarray(reference, dtype=np.float64).ravel()
    b = np.asarray(candidate, dtype=np.float64).ravel()
    norms = np.linalg.norm(a) * np.linalg.norm(b)
    if norms == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    return float(np.dot(a, b) / norms)


def quality_loss_proxy(output_snr_db: float) -> float:
    """Estimated accuracy loss (percentage points) from output SNR.

    Piecewise-linear heuristic: above ~40 dB the task metric is
    indistinguishable from fp32; below ~10 dB predictions degrade rapidly.
    Monotone decreasing in SNR, clipped to [0, 50].
    """
    if output_snr_db >= 40.0:
        return 0.0
    if output_snr_db <= 10.0:
        return min(50.0, 5.0 + (10.0 - output_snr_db) * 1.5)
    # 40 dB -> 0.0 loss, 10 dB -> 5.0 loss, linear in between.
    return (40.0 - output_snr_db) / 30.0 * 5.0
