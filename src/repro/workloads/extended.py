"""Extended model zoo: three more production-shaped workloads.

Beyond the paper's eight apps, these models exercise IR/compiler paths the
core zoo does not:

* ``dlrm`` — recommendation with *many* embedding tables and an explicit
  pairwise feature-interaction (batched_dot between activation tensors);
* ``gnmt`` — encoder-decoder LSTMs with per-step cross-attention, the
  2016-era translation architecture the TPUv2/v3 fleet actually served;
* ``speech`` — a conv frontend (strided time-frequency reduction) feeding
  stacked LSTMs, the acoustic-model shape.

All three register as :class:`WorkloadSpec` entries, so every serving,
TCO, and DSE instrument accepts them interchangeably with the core eight.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.hlo import GraphBuilder, HloModule
from repro.graph.shapes import Shape
from repro.workloads.layers import conv_layer, embedding, fc, lstm_layer
from repro.workloads.models import WorkloadSpec


def build_dlrm(batch: int) -> HloModule:
    """DLRM-style ranker: dense MLP + 8 embedding tables + interaction."""
    builder = GraphBuilder("dlrm")
    dim = 64

    # Bottom MLP on dense features.
    dense = builder.parameter(Shape((batch, 256)), "dense")
    x = dense
    for index, width in enumerate((512, 256, dim)):
        x = fc(builder, x, width, "relu", f"bot{index}")

    # Sparse features: eight tables of varying cardinality.
    features = [x]
    for index, rows in enumerate((1_000_000, 500_000, 250_000, 100_000,
                                  50_000, 10_000, 5_000, 1_000)):
        table = builder.constant(Shape((rows, dim)), f"emb{index}.table")
        ids = builder.parameter(Shape((batch, 1), "int32"), f"emb{index}.ids")
        gathered = builder.embedding_lookup(table, ids, f"emb{index}.look")
        features.append(builder.reshape(gathered, (batch, dim),
                                        f"emb{index}.flat"))

    # Pairwise interaction: stack features then F x F dot products.
    count = len(features)
    stacked = builder.concat(
        [builder.reshape(f, (batch, 1, dim), f"stk{i}")
         for i, f in enumerate(features)], axis=1, name="stack")
    transposed = builder.transpose(stacked, (0, 2, 1), "stack.T")
    interactions = builder.batched_dot(stacked, transposed, "interact")
    flat = builder.reshape(interactions, (batch, count * count), "inter.flat")
    joined = builder.concat([x, flat], axis=1, name="joined")

    # Top MLP.
    y = joined
    for index, width in enumerate((512, 256)):
        y = fc(builder, y, width, "relu", f"top{index}")
    logits = fc(builder, y, 1, "sigmoid", "ctr")
    module = builder.build()
    module.set_root(logits)
    return module


def build_gnmt(batch: int, *, seq: int = 24, hidden: int = 1024,
               enc_layers: int = 3, dec_layers: int = 3) -> HloModule:
    """GNMT-style translator: LSTM encoder, LSTM decoder with attention."""
    builder = GraphBuilder("gnmt")

    # Encoder over the source sequence.
    enc_steps = [builder.parameter(Shape((batch, hidden)), f"src{t}")
                 for t in range(seq)]
    for layer in range(enc_layers):
        enc_steps = lstm_layer(builder, enc_steps, hidden, f"enc{layer}")

    # Encoder memory for attention: [batch, seq, hidden] and its transpose.
    memory = builder.concat(
        [builder.reshape(h, (batch, 1, hidden), f"mem{t}")
         for t, h in enumerate(enc_steps)], axis=1, name="memory")
    memory_t = builder.transpose(memory, (0, 2, 1), "memory.T")

    # Decoder: each step attends over the encoder memory.
    dec_steps = [builder.parameter(Shape((batch, hidden)), f"tgt{t}")
                 for t in range(seq)]
    for layer in range(dec_layers):
        dec_steps = lstm_layer(builder, dec_steps, hidden, f"dec{layer}")

    attended: List = []
    for t, h in enumerate(dec_steps):
        query = builder.reshape(h, (batch, 1, hidden), f"q{t}")
        scores = builder.batched_dot(query, memory_t, f"score{t}")
        probs = builder.softmax(scores, f"attn{t}")
        context = builder.batched_dot(probs, memory, f"ctx{t}")
        attended.append(builder.reshape(context, (batch, hidden), f"c{t}"))

    merged = builder.concat([attended[-1], dec_steps[-1]], axis=1,
                            name="merge")
    logits = fc(builder, merged, 32_000, None, "vocab")
    module = builder.build()
    module.set_root(logits)
    return module


def build_speech(batch: int, *, frames: int = 96, mel: int = 64,
                 hidden: int = 1024, layers: int = 4) -> HloModule:
    """Acoustic model: strided conv frontend + stacked LSTMs + CTC head."""
    builder = GraphBuilder("speech")
    spectro = builder.parameter(Shape((batch, frames, mel, 1)), "spectrogram")
    x = conv_layer(builder, spectro, 32, 3, stride=2, name="fe0")
    x = conv_layer(builder, x, 32, 3, stride=2, name="fe1")
    _, t_steps, f_bins, channels = x.shape.dims
    seq = builder.reshape(x, (batch, t_steps, f_bins * channels), "fe.seq")

    steps = []
    for t in range(t_steps):
        frame = builder.module.add(
            "slice", Shape((batch, 1, f_bins * channels)), (seq,),
            name=f"frame{t}", offset=t, axis=1)
        flat = builder.reshape(frame, (batch, f_bins * channels), f"f{t}")
        steps.append(fc(builder, flat, hidden, "relu", f"proj{t}"))
    for layer in range(layers):
        steps = lstm_layer(builder, steps, hidden, f"l{layer}")
    logits = fc(builder, steps[-1], 4096, None, "ctc")
    module = builder.build()
    module.set_root(logits)
    return module


EXTENDED_APPS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec("dlrm", "MLP", build_dlrm, slo_ms=5.0, default_batch=64,
                 nonlinearity="relu/sigmoid",
                 description="DLRM-style ranker with pairwise interaction"),
    WorkloadSpec("gnmt", "RNN", build_gnmt, slo_ms=100.0, default_batch=8,
                 nonlinearity="sigmoid/tanh/softmax",
                 description="GNMT-style translator with attention"),
    WorkloadSpec("speech", "RNN", build_speech, slo_ms=50.0, default_batch=8,
                 nonlinearity="relu/sigmoid/tanh",
                 description="acoustic model: conv frontend + LSTM stack"),
)

_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in EXTENDED_APPS}


def extended_by_name(name: str) -> WorkloadSpec:
    """Look up an extended-zoo workload."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown extended app {name!r}; known: {known}") from None
