"""Autoregressive decoder workloads: prefill/decode phases + KV caches.

The model zoo's eight apps stop at BERT-class encoders, which run one
batch per request. Generative serving is different in kind: a request is
*prefilled* once over its whole prompt (compute-bound, like an encoder
batch) and then *decoded* one token at a time, each decode step
re-reading the request's entire KV cache from memory. Decode therefore
lands memory-bound on every TPU generation — its operational intensity
is roughly the decode batch size in ops/byte, far left of even TPUv2's
ridge — which is the regime the CIM-for-generative-inference line of
work (PAPERS.md) says dominates modern serving.

Both phases are ordinary :class:`~repro.workloads.models.WorkloadSpec`
programs, so the whole existing machinery (module cache, compiler,
EvalCache, grid kernel) prices them without modification:

* ``prefill`` builds a causal-transformer pass over a padded prompt
  bucket and emits the first generated token (the TTFT token);
* ``decode`` builds one generation step: per layer, the cached K/V
  tensors are ``parameter`` instructions — per-request inputs streaming
  from HBM, priced through the simulator's ``bytes_by_level`` ledger —
  concatenated with the new token's K/V row for the attention matmuls.

Sequence lengths are bucketed (:data:`GenerativeSpec.prompt_buckets`,
``kv_buckets``) so decode compiles once per (batch, kv-bucket) instead
of once per exact length — the same padding trade the serving batcher
already makes on the batch axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.hlo import GraphBuilder, HloModule
from repro.graph.shapes import Shape
from repro.util.rng import DeterministicRng
from repro.workloads.layers import fc, transformer_layer
from repro.workloads.models import WorkloadSpec

#: Arithmetic bytes per KV element (bf16 serving path).
_KV_DTYPE_BYTES = 2


@dataclass(frozen=True)
class PhaseSpec(WorkloadSpec):
    """A WorkloadSpec for one phase of a generative model.

    Rides the entire encoder-era machinery unchanged: ``name`` is unique
    per (model, phase, bucket) so the module cache and compile memos
    never collide, while ``phase``/``kv_bucket`` additionally enter the
    engine's content-addressed cache keys (see
    :func:`repro.engine.keys.eval_key`) so a phase result can never
    alias a legacy whole-model entry.
    """

    phase: str = "prefill"
    kv_bucket: Optional[int] = None
    model: str = ""  # owning generative model, e.g. "llm0"


@dataclass(frozen=True)
class GenerativeSpec:
    """One autoregressive decoder model and its serving contract.

    Attributes:
        name: e.g. ``"llm0"``.
        layers / hidden / heads / vocab: decoder architecture.
        prompt_buckets: padded prompt lengths prefill compiles for.
        kv_buckets: padded KV lengths decode compiles for (ascending).
        max_decode_len: generation cap the serving loop enforces.
        mean_prompt / mean_decode: lognormal means for seeded request
            sampling (:func:`sample_gen_requests`).
        slo_ttft_ms: p99 budget for time-to-first-token (the prefill).
        slo_per_token_ms: p99 budget for each decode token.
        default_slots: continuous-batching slots per core.
        description: one-line provenance note.
    """

    name: str
    layers: int
    hidden: int
    heads: int
    vocab: int
    prompt_buckets: Tuple[int, ...] = (64, 128)
    kv_buckets: Tuple[int, ...] = (128, 256, 512)
    max_decode_len: int = 64
    mean_prompt: float = 40.0
    mean_decode: float = 24.0
    slo_ttft_ms: float = 50.0
    slo_per_token_ms: float = 10.0
    default_slots: int = 8
    description: str = ""

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ValueError(
                f"hidden {self.hidden} not divisible by heads {self.heads}")
        # Named-value validation in the IciLink style: a NaN mean would
        # pass every comparison and poison the lognormal sampler; a zero
        # or negative budget would make every request an SLO violation
        # by construction. Reject all of them here, by name.
        for name in ("mean_prompt", "mean_decode", "slo_ttft_ms",
                     "slo_per_token_ms"):
            value = getattr(self, name)
            if math.isnan(value):
                raise ValueError(f"{name} must not be NaN")
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.default_slots < 1:
            raise ValueError(
                f"default_slots must be >= 1, got {self.default_slots}")
        if not self.prompt_buckets or not self.kv_buckets:
            raise ValueError("need at least one prompt and one KV bucket")
        if tuple(sorted(self.prompt_buckets)) != self.prompt_buckets:
            raise ValueError("prompt buckets must be ascending")
        if tuple(sorted(self.kv_buckets)) != self.kv_buckets:
            raise ValueError("KV buckets must be ascending")
        if self.max_decode_len < 1:
            raise ValueError("max_decode_len must be >= 1")
        if self.max_prompt + self.max_decode_len > self.kv_buckets[-1]:
            raise ValueError(
                "largest KV bucket must cover max prompt + max decode")

    @property
    def max_prompt(self) -> int:
        return self.prompt_buckets[-1]

    def prompt_bucket(self, prompt_len: int) -> int:
        """Smallest prefill bucket covering a prompt length."""
        if prompt_len < 1:
            raise ValueError("prompt length must be >= 1")
        for bucket in self.prompt_buckets:
            if bucket >= prompt_len:
                return bucket
        return self.max_prompt

    def kv_bucket(self, kv_len: int) -> int:
        """Smallest decode bucket whose cache covers ``kv_len`` positions."""
        if kv_len < 0:
            raise ValueError("KV length must be non-negative")
        for bucket in self.kv_buckets:
            if bucket >= kv_len:
                return bucket
        return self.kv_buckets[-1]

    def kv_cache_bytes(self, kv_len: int, batch: int = 1) -> int:
        """KV-cache footprint: K and V, every layer, ``kv_len`` positions.

        This is exactly the byte count the decode graph's cache
        ``parameter`` tensors put through the HBM ledger per step — the
        quantity that grows with sequence length and keeps decode left
        of every generation's ridge point.
        """
        return 2 * self.layers * batch * kv_len * self.hidden * _KV_DTYPE_BYTES

    def weight_mib(self) -> float:
        """Parameter footprint in MiB (shared by both phases)."""
        return (self.prefill(self.prompt_buckets[0]).build(1)
                .total_weight_bytes() / (1024 * 1024))

    # ------------------------------------------------------------ phase specs

    def prefill(self, prompt_bucket: Optional[int] = None) -> PhaseSpec:
        """The prefill phase compiled for one prompt bucket."""
        bucket = (self.prompt_bucket(prompt_bucket)
                  if prompt_bucket is not None else self.prompt_buckets[0])
        return _phase_spec(self, "prefill", bucket)

    def decode(self, kv_bucket: Optional[int] = None) -> PhaseSpec:
        """The decode phase compiled for one KV bucket."""
        bucket = (self.kv_bucket(kv_bucket)
                  if kv_bucket is not None else self.kv_buckets[0])
        return _phase_spec(self, "decode", bucket)


# ------------------------------------------------------------ graph builders

def build_prefill(cfg: GenerativeSpec, prompt: int, batch: int) -> HloModule:
    """Prefill: full transformer over the prompt + the first token's logits.

    Identical in structure to the encoder path (so it prices like
    today's batch workloads), plus an LM head over the final position:
    prefill both fills the KV cache and produces the request's first
    generated token, which is what TTFT measures.
    """
    builder = GraphBuilder(f"{cfg.name}.prefill@{prompt}")
    table = builder.constant(Shape((cfg.vocab, cfg.hidden)), "token.table")
    ids = builder.parameter(Shape((batch, prompt), "int32"), "token.ids")
    x = builder.embedding_lookup(table, ids, "token.embed")
    for layer in range(cfg.layers):
        x = transformer_layer(builder, x, cfg.heads, 4 * cfg.hidden,
                              f"l{layer}")
    x = builder.layernorm(x, "final.ln")
    last = builder.module.add("slice", Shape((batch, 1, cfg.hidden)), (x,),
                              name="final.last", offset=prompt - 1)
    flat = builder.reshape(last, (batch, cfg.hidden), "final.flat")
    logits = fc(builder, flat, cfg.vocab, None, "lm_head")
    module = builder.build()
    module.set_root(logits)
    return module


def build_decode(cfg: GenerativeSpec, kv: int, batch: int) -> HloModule:
    """One decode step: attend one new token against a ``kv``-deep cache.

    The cached K/V tensors are ``parameter`` instructions — per-request
    inputs, not weights — so each step's cache read is priced through
    the simulator's HBM bytes ledger and grows linearly with the KV
    bucket. FLOPs stay ~2x(weights)x(batch), which pins the phase's
    operational intensity near the decode batch size: memory-bound on
    all four generations for any realistic slot count.
    """
    h, heads = cfg.hidden, cfg.heads
    head_dim = h // heads
    builder = GraphBuilder(f"{cfg.name}.decode@{kv}")
    table = builder.constant(Shape((cfg.vocab, h)), "token.table")
    ids = builder.parameter(Shape((batch, 1), "int32"), "token.ids")
    x = builder.reshape(builder.embedding_lookup(table, ids, "token.embed"),
                        (batch, h), "token.flat")
    for layer in range(cfg.layers):
        name = f"l{layer}"
        k_cache = builder.parameter(Shape((batch, kv, h)), f"{name}.k_cache")
        v_cache = builder.parameter(Shape((batch, kv, h)), f"{name}.v_cache")
        normed = builder.layernorm(x, f"{name}.ln1")

        def project(tag: str, normed=normed, name=name):
            w = builder.constant(Shape((h, h)), f"{name}.{tag}.w")
            return builder.dot(normed, w, f"{name}.{tag}")

        q = project("q")
        k_all = builder.concat(
            [k_cache, builder.reshape(project("k"), (batch, 1, h),
                                      f"{name}.k.row")],
            axis=1, name=f"{name}.k")
        v_all = builder.concat(
            [v_cache, builder.reshape(project("v"), (batch, 1, h),
                                      f"{name}.v.row")],
            axis=1, name=f"{name}.v")
        # Head split follows the encoder attention_block idiom.
        q_h = builder.reshape(q, (batch * heads, 1, head_dim),
                              f"{name}.q.heads")
        k_h = builder.reshape(k_all, (batch * heads, kv + 1, head_dim),
                              f"{name}.k.heads")
        v_h = builder.reshape(v_all, (batch * heads, kv + 1, head_dim),
                              f"{name}.v.heads")
        k_t = builder.transpose(k_h, (0, 2, 1), f"{name}.kT")
        scores = builder.batched_dot(q_h, k_t, f"{name}.scores")
        probs = builder.softmax(scores, f"{name}.softmax")
        context = builder.batched_dot(probs, v_h, f"{name}.context")
        merged = builder.reshape(context, (batch, h), f"{name}.merge")
        w_o = builder.constant(Shape((h, h)), f"{name}.o.w")
        attn = builder.dot(merged, w_o, f"{name}.o")
        x = builder.add(x, attn, f"{name}.res1")
        normed2 = builder.layernorm(x, f"{name}.ln2")
        up = fc(builder, normed2, 4 * h, "gelu", f"{name}.ffn.up")
        down = fc(builder, up, h, None, f"{name}.ffn.down")
        x = builder.add(x, down, f"{name}.res2")
    x = builder.layernorm(x, "final.ln")
    logits = fc(builder, x, cfg.vocab, None, "lm_head")
    module = builder.build()
    module.set_root(logits)
    return module


# --------------------------------------------------------- phase-spec memo

#: PhaseSpecs are memoized so every consumer of the same (model, phase,
#: bucket) sees one object: build closures stay shared, and the engine's
#: per-name module cache is populated once.
_PHASE_SPECS: Dict[Tuple[str, str, int], PhaseSpec] = {}


def _phase_spec(cfg: GenerativeSpec, phase: str, bucket: int) -> PhaseSpec:
    key = (cfg.name, phase, bucket)
    spec = _PHASE_SPECS.get(key)
    if spec is not None:
        return spec
    if phase == "prefill":
        if bucket not in cfg.prompt_buckets:
            raise ValueError(f"{bucket} is not a prompt bucket of {cfg.name}")
        build = lambda batch, c=cfg, b=bucket: build_prefill(c, b, batch)  # noqa: E731
        slo_ms = cfg.slo_ttft_ms
        note = f"{cfg.name} prefill over a {bucket}-token prompt bucket"
    elif phase == "decode":
        if bucket not in cfg.kv_buckets:
            raise ValueError(f"{bucket} is not a KV bucket of {cfg.name}")
        build = lambda batch, c=cfg, b=bucket: build_decode(c, b, batch)  # noqa: E731
        slo_ms = cfg.slo_per_token_ms
        note = f"{cfg.name} decode step against a {bucket}-deep KV cache"
    else:
        raise ValueError(f"phase must be 'prefill' or 'decode', got {phase!r}")
    spec = PhaseSpec(
        name=f"{cfg.name}.{phase}@{bucket}",
        category="Generative",
        build=build,
        slo_ms=slo_ms,
        default_batch=1 if phase == "prefill" else cfg.default_slots,
        nonlinearity="gelu/softmax",
        description=note,
        phase=phase,
        kv_bucket=bucket,
        model=cfg.name,
    )
    return _PHASE_SPECS.setdefault(key, spec)


# ------------------------------------------------------------------ requests

@dataclass(frozen=True)
class GenRequest:
    """One generative request: a prompt and a target generation length."""

    arrival_s: float
    prompt_len: int
    decode_len: int
    tenant: str = "llm"

    def __post_init__(self) -> None:
        # Named-value errors, IciLink style. NaN needs an explicit check
        # — it slides through every < comparison — and a NaN arrival
        # would silently corrupt the event loop's clock instead of
        # failing here at construction.
        if math.isnan(self.arrival_s):
            raise ValueError("arrival_s must not be NaN")
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival_s must be non-negative, got {self.arrival_s}")
        if self.prompt_len < 1:
            raise ValueError(
                f"prompt_len must be >= 1, got {self.prompt_len}")
        if self.decode_len < 1:
            raise ValueError(
                f"decode_len must be >= 1, got {self.decode_len}")


def sample_gen_requests(spec: GenerativeSpec, seed: int, rate_qps: float,
                        duration_s: float) -> List[GenRequest]:
    """Seeded Poisson arrivals with lognormal prompt/decode lengths.

    Prompts are clipped to the model's largest prompt bucket; decode
    lengths are *not* clipped — requests may ask for more tokens than
    ``max_decode_len``, and the serving loop truncates at the cap (the
    over-long-request edge case the tests pin down). Pure function of
    its arguments: same seed, same stream.
    """
    rng = DeterministicRng(seed)
    arrivals = rng.poisson_arrivals(rate_qps, duration_s)
    lengths = rng.fork(1)
    requests: List[GenRequest] = []
    for t in arrivals:
        prompt = min(1 + int(lengths.lognormal(spec.mean_prompt, 0.5)),
                     spec.max_prompt)
        decode = 1 + int(lengths.lognormal(spec.mean_decode, 0.5))
        requests.append(GenRequest(t, prompt, decode, spec.name))
    return requests


# ------------------------------------------------------------------ registry

GENERATIVE_APPS: Tuple[GenerativeSpec, ...] = (
    GenerativeSpec(
        "llm0", layers=4, hidden=512, heads=8, vocab=8192,
        prompt_buckets=(64, 128), kv_buckets=(128, 256, 512),
        max_decode_len=64, mean_prompt=40.0, mean_decode=24.0,
        slo_ttft_ms=50.0, slo_per_token_ms=10.0, default_slots=8,
        description="small chat decoder, CMEM-resident weights"),
    GenerativeSpec(
        "llm1", layers=8, hidden=1024, heads=16, vocab=16384,
        prompt_buckets=(64, 128), kv_buckets=(128, 256, 512),
        max_decode_len=64, mean_prompt=48.0, mean_decode=32.0,
        slo_ttft_ms=120.0, slo_per_token_ms=25.0, default_slots=8,
        description="larger decoder whose weights exceed TPUv4i CMEM"),
)

_GEN_BY_NAME: Dict[str, GenerativeSpec] = {g.name: g for g in GENERATIVE_APPS}


def generative_by_name(name: str) -> GenerativeSpec:
    """Look up a generative model."""
    try:
        return _GEN_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_GEN_BY_NAME))
        raise KeyError(
            f"unknown generative model {name!r}; known: {known}") from None
