"""Workload zoo: the paper's eight production inference apps and friends.

The TPUv4i evaluation is organized around eight production workloads —
MLP0/1, CNN0/1, RNN0/1, BERT0/1 — spanning recommendation, vision,
sequence, and attention models. Exact production architectures are
proprietary; these builders produce models with matching *published*
characteristics (parameter footprints, operator mix, operational
intensity bands), which is what every experiment actually depends on.

Also here: MLPerf-inference-style models, the DNN growth model
(Lesson 5), the workload-mix evolution series (Lesson 6), and synthetic
request-arrival generators standing in for production traffic.
"""

from repro.workloads.models import (
    WorkloadSpec,
    PRODUCTION_APPS,
    app_by_name,
    build_mlp0,
    build_mlp1,
    build_cnn0,
    build_cnn1,
    build_rnn0,
    build_rnn1,
    build_bert0,
    build_bert1,
)
from repro.workloads.extended import EXTENDED_APPS, extended_by_name
from repro.workloads.mlperf import MLPERF_MODELS, mlperf_by_name
from repro.workloads.growth import GrowthModel, PUBLISHED_MODEL_SIZES
from repro.workloads.evolution import WORKLOAD_MIX_BY_YEAR, mix_for_year
from repro.workloads.generator import RequestGenerator, Request
from repro.workloads.generative import (
    GENERATIVE_APPS,
    GenRequest,
    GenerativeSpec,
    PhaseSpec,
    build_decode,
    build_prefill,
    generative_by_name,
    sample_gen_requests,
)

__all__ = [
    "WorkloadSpec",
    "PRODUCTION_APPS",
    "app_by_name",
    "build_mlp0",
    "build_mlp1",
    "build_cnn0",
    "build_cnn1",
    "build_rnn0",
    "build_rnn1",
    "build_bert0",
    "build_bert1",
    "EXTENDED_APPS",
    "extended_by_name",
    "MLPERF_MODELS",
    "mlperf_by_name",
    "GrowthModel",
    "PUBLISHED_MODEL_SIZES",
    "WORKLOAD_MIX_BY_YEAR",
    "mix_for_year",
    "RequestGenerator",
    "Request",
    "GENERATIVE_APPS",
    "GenRequest",
    "GenerativeSpec",
    "PhaseSpec",
    "build_decode",
    "build_prefill",
    "generative_by_name",
    "sample_gen_requests",
]
