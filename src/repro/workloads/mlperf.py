"""MLPerf-Inference-style benchmark models.

TPUv4i's public numbers came from MLPerf Inference submissions; the three
models here mirror that suite's datacenter closed division circa 2020:
ResNet-50 (vision), SSD-ResNet34-class detection, and BERT-large QA. They
reuse the production-app builders with MLPerf's canonical shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.graph.hlo import HloModule
from repro.workloads.models import _build_bert, _build_resnet


@dataclass(frozen=True)
class MlperfModel:
    """One MLPerf-style benchmark entry."""

    name: str
    scenario_latency_ms: float  # Server-scenario latency bound
    build: Callable[[int], HloModule]
    offline_batch: int          # batch used in the Offline scenario


def _build_resnet50(batch: int) -> HloModule:
    stages = ((3, 64, 256, 1), (4, 128, 512, 2), (6, 256, 1024, 2),
              (3, 512, 2048, 2))
    return _build_resnet("mlperf-resnet50", batch, stages)


def _build_ssd(batch: int) -> HloModule:
    # Detection backbone at 300x300 with a heavier head stage.
    stages = ((3, 64, 256, 1), (4, 128, 512, 2), (6, 256, 1024, 2),
              (4, 512, 2048, 2))
    return _build_resnet("mlperf-ssd", batch, stages, image=300)


def _build_bert_large(batch: int) -> HloModule:
    return _build_bert("mlperf-bert", batch, seq=384, hidden=1024, layers=24,
                       heads=16, vocab=30522)


MLPERF_MODELS: Tuple[MlperfModel, ...] = (
    MlperfModel("resnet50", scenario_latency_ms=15.0, build=_build_resnet50,
                offline_batch=32),
    MlperfModel("ssd", scenario_latency_ms=100.0, build=_build_ssd,
                offline_batch=16),
    MlperfModel("bert", scenario_latency_ms=130.0, build=_build_bert_large,
                offline_batch=8),
)

_BY_NAME: Dict[str, MlperfModel] = {m.name: m for m in MLPERF_MODELS}


def mlperf_by_name(name: str) -> MlperfModel:
    """Look up an MLPerf model (``"resnet50"``, ``"ssd"``, ``"bert"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown MLPerf model {name!r}; known: {known}") from None
