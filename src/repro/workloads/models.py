"""The eight production inference apps (paper Table 2 / experiment E2).

Architectures are parameterized stand-ins with footprints and operator
mixes matching the published characterization: two recommendation MLPs
with embeddings, two deep CNNs, two stacked LSTMs, and two BERT-class
transformers. ``slo_ms`` is the application's p99 latency budget — the
quantity Lesson 9 says actually limits batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.graph.hlo import GraphBuilder, HloModule
from repro.graph.shapes import Shape
from repro.workloads.layers import (
    bottleneck,
    conv_layer,
    embedding,
    fc,
    global_pool,
    lstm_layer,
    transformer_layer,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One production app.

    Attributes:
        name: e.g. ``"bert0"``.
        category: MLP / CNN / RNN / Transformer.
        build: ``build(batch) -> HloModule``.
        slo_ms: p99 latency budget the serving experiments enforce.
        default_batch: typical serving batch.
        nonlinearity: dominant activation function (a Table 2 column).
        description: one-line provenance note.
    """

    name: str
    category: str
    build: Callable[[int], HloModule]
    slo_ms: float
    default_batch: int
    nonlinearity: str
    description: str

    def weight_mib(self) -> float:
        """Parameter footprint in MiB (batch-independent)."""
        return self.build(1).total_weight_bytes() / (1024 * 1024)

    def ops_per_byte(self, batch: int = 0) -> float:
        """Operational intensity at a batch size (default: the app's own)."""
        b = batch if batch > 0 else self.default_batch
        return self.build(b).operational_intensity()


# ------------------------------------------------------------------ MLPs

def build_mlp0(batch: int) -> HloModule:
    """Recommendation ranker: big embeddings + modest dense stack."""
    builder = GraphBuilder("mlp0")
    features = embedding(builder, batch, fields=32, rows=2_000_000, dim=128)
    x = features
    for i, width in enumerate((2048, 2048, 1024, 512)):
        x = fc(builder, x, width, "relu", f"dense{i}")
    logits = fc(builder, x, 128, None, "head")
    module = builder.build()
    module.set_root(logits)
    return module


def build_mlp1(batch: int) -> HloModule:
    """Wider/deeper dense ranker whose weights exceed CMEM."""
    builder = GraphBuilder("mlp1")
    features = embedding(builder, batch, fields=48, rows=1_000_000, dim=96)
    x = features
    for i in range(8):
        x = fc(builder, x, 4096, "relu", f"dense{i}")
    logits = fc(builder, x, 256, None, "head")
    module = builder.build()
    module.set_root(logits)
    return module


# ------------------------------------------------------------------ CNNs

_RESNET_STAGES: Tuple[Tuple[int, int, int, int], ...] = (
    # (blocks, mid channels, out channels, first stride)
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
)

_DEEP_STAGES: Tuple[Tuple[int, int, int, int], ...] = (
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (14, 256, 1024, 2),
    (3, 512, 2048, 2),
)


def _build_resnet(name: str, batch: int,
                  stages: Tuple[Tuple[int, int, int, int], ...],
                  image: int = 224) -> HloModule:
    builder = GraphBuilder(name)
    x = builder.parameter(Shape((batch, image, image, 3)), "image")
    x = conv_layer(builder, x, 64, 7, stride=2, name="stem")
    x = builder.max_pool2d(x, window=3, stride=2, name="stem.pool")
    for stage_index, (blocks, mid, out, stride) in enumerate(stages):
        for block_index in range(blocks):
            x = bottleneck(builder, x, mid, out,
                           stride=stride if block_index == 0 else 1,
                           name=f"s{stage_index}.b{block_index}")
    pooled = global_pool(builder, x)
    logits = fc(builder, pooled, 1000, None, "classifier")
    module = builder.build()
    module.set_root(logits)
    return module


def build_cnn0(batch: int) -> HloModule:
    """ResNet-50-class vision classifier (~25M params)."""
    return _build_resnet("cnn0", batch, _RESNET_STAGES)


def build_cnn1(batch: int) -> HloModule:
    """Deeper vision backbone (~44M params, ResNet-101-class)."""
    return _build_resnet("cnn1", batch, _DEEP_STAGES)


# ------------------------------------------------------------------ RNNs

def _build_lstm(name: str, batch: int, seq: int, hidden: int,
                layers: int, vocab: int) -> HloModule:
    builder = GraphBuilder(name)
    steps = [builder.parameter(Shape((batch, hidden)), f"x{t}")
             for t in range(seq)]
    for layer in range(layers):
        steps = lstm_layer(builder, steps, hidden, f"l{layer}")
    logits = fc(builder, steps[-1], vocab, None, "decoder")
    module = builder.build()
    module.set_root(logits)
    return module


def build_rnn0(batch: int) -> HloModule:
    """Translation-style stacked LSTM that fits CMEM (~100 MiB)."""
    return _build_lstm("rnn0", batch, seq=25, hidden=1024, layers=4,
                       vocab=4096)


def build_rnn1(batch: int) -> HloModule:
    """Large stacked LSTM whose weights exceed CMEM (~350 MiB)."""
    return _build_lstm("rnn1", batch, seq=32, hidden=2048, layers=5,
                       vocab=8192)


# ------------------------------------------------------------ Transformers

def _build_bert(name: str, batch: int, seq: int, hidden: int, layers: int,
                heads: int, vocab: int) -> HloModule:
    builder = GraphBuilder(name)
    table = builder.constant(Shape((vocab, hidden)), "token.table")
    ids = builder.parameter(Shape((batch, seq), "int32"), "token.ids")
    x = builder.embedding_lookup(table, ids, "token.embed")
    for layer in range(layers):
        x = transformer_layer(builder, x, heads, 4 * hidden, f"l{layer}")
    x = builder.layernorm(x, "final.ln")
    flat = builder.reshape(x, (batch * seq, hidden), "final.flat")
    logits = fc(builder, flat, 2, None, "classifier")
    module = builder.build()
    module.set_root(logits)
    return module


def build_bert0(batch: int) -> HloModule:
    """BERT-base-class encoder (12 layers, hidden 768, ~110M params)."""
    return _build_bert("bert0", batch, seq=128, hidden=768, layers=12,
                       heads=12, vocab=30522)


def build_bert1(batch: int) -> HloModule:
    """BERT-large-class encoder (24 layers, hidden 1024, ~340M params)."""
    return _build_bert("bert1", batch, seq=384, hidden=1024, layers=24,
                       heads=16, vocab=30522)


# ------------------------------------------------------------------ registry

PRODUCTION_APPS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec("mlp0", "MLP", build_mlp0, slo_ms=7.0, default_batch=128,
                 nonlinearity="relu",
                 description="recommendation ranker, embedding-dominated"),
    WorkloadSpec("mlp1", "MLP", build_mlp1, slo_ms=20.0, default_batch=168,
                 nonlinearity="relu",
                 description="wide dense ranker, weights exceed CMEM"),
    WorkloadSpec("cnn0", "CNN", build_cnn0, slo_ms=10.0, default_batch=8,
                 nonlinearity="relu",
                 description="ResNet-50-class image classifier"),
    WorkloadSpec("cnn1", "CNN", build_cnn1, slo_ms=32.0, default_batch=8,
                 nonlinearity="relu",
                 description="deeper vision backbone"),
    WorkloadSpec("rnn0", "RNN", build_rnn0, slo_ms=10.0, default_batch=16,
                 nonlinearity="sigmoid/tanh",
                 description="stacked LSTM, CMEM-resident"),
    WorkloadSpec("rnn1", "RNN", build_rnn1, slo_ms=60.0, default_batch=16,
                 nonlinearity="sigmoid/tanh",
                 description="large stacked LSTM, HBM-bound"),
    WorkloadSpec("bert0", "Transformer", build_bert0, slo_ms=15.0,
                 default_batch=8, nonlinearity="gelu/softmax",
                 description="BERT-base-class encoder"),
    WorkloadSpec("bert1", "Transformer", build_bert1, slo_ms=40.0,
                 default_batch=4, nonlinearity="gelu/softmax",
                 description="BERT-large-class encoder"),
)

_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in PRODUCTION_APPS}


def app_by_name(name: str) -> WorkloadSpec:
    """Look up one of the eight production apps."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown app {name!r}; known: {known}") from None
