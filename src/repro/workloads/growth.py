"""DNN growth model (Lesson 5: models grow ~1.5x per year).

The lesson's consequence for hardware is concrete: a chip designed for
today's SOTA model must run a ~2.3x bigger one by the time it has been
deployed two years — so TPUv4i over-provisioned memory capacity/bandwidth
relative to its launch workloads. :class:`GrowthModel` projects compute
and parameter growth; the published sizes below anchor the fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

ANNUAL_GROWTH = 1.5


# Milestone language/vision models, (year, parameters in millions). Public
# checkpoints chosen to bracket 2015-2020 (the TPUv1->v4i span).
PUBLISHED_MODEL_SIZES: Tuple[Tuple[str, int, float], ...] = (
    ("ResNet-50", 2015, 25.6),
    ("GNMT", 2016, 278.0),
    ("Transformer-big", 2017, 213.0),
    ("BERT-large", 2018, 340.0),
    ("GPT-2", 2019, 1500.0),
    ("T5-3B", 2020, 3000.0),
)


@dataclass(frozen=True)
class GrowthModel:
    """Exponential growth projection ``size(year) = base * rate^(year-year0)``."""

    base_year: int
    base_size: float
    annual_rate: float = ANNUAL_GROWTH

    def __post_init__(self) -> None:
        if self.base_size <= 0:
            raise ValueError("base size must be positive")
        if self.annual_rate <= 1.0:
            raise ValueError("growth model expects a rate > 1")

    def size_at(self, year: float) -> float:
        """Projected size at ``year`` (same unit as ``base_size``)."""
        return self.base_size * self.annual_rate ** (year - self.base_year)

    def years_to_outgrow(self, capacity: float) -> float:
        """Years until the projection exceeds ``capacity``."""
        if capacity <= self.base_size:
            return 0.0
        import math

        return math.log(capacity / self.base_size) / math.log(self.annual_rate)

    def trajectory(self, start_year: int, end_year: int) -> List[Tuple[int, float]]:
        """(year, projected size) samples inclusive of both endpoints."""
        if end_year < start_year:
            raise ValueError("end_year must be >= start_year")
        return [(y, self.size_at(y)) for y in range(start_year, end_year + 1)]


def fitted_growth_rate() -> float:
    """Geometric-mean annual growth implied by the published milestones.

    The paper's 1.5x/year is a *memory/compute demand* trend; the raw
    parameter-count trend of headline models is in fact faster, which is
    the point the benchmark prints (the lesson is, if anything,
    conservative).
    """
    import math

    first_name, first_year, first_size = PUBLISHED_MODEL_SIZES[0]
    last_name, last_year, last_size = PUBLISHED_MODEL_SIZES[-1]
    span = last_year - first_year
    return (last_size / first_size) ** (1.0 / span)
