"""Workload-mix evolution (Lesson 6: DNN advances evolve the workloads).

The paper contrasts Google's 2016 inference mix (MLP-dominated, LSTMs for
sequence tasks, no attention anywhere) with 2020 (transformers rising
fast). A DSA frozen around the 2016 mix would have been mis-provisioned
within its own deployment lifetime — the argument for programmability
(VPU + compiler) over fixed-function. The table below reconstructs that
shift; fractions per year sum to 1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

CATEGORIES: Tuple[str, ...] = ("MLP", "CNN", "RNN", "Transformer")

# Fraction of datacenter inference cycles by model family. 2016 anchors to
# the TPUv1 paper's published mix (MLP 61%, LSTM 29%, CNN 5%); later years
# reconstruct the publicly described drift toward attention models.
WORKLOAD_MIX_BY_YEAR: Dict[int, Dict[str, float]] = {
    2016: {"MLP": 0.61, "CNN": 0.05, "RNN": 0.29, "Transformer": 0.05},
    2017: {"MLP": 0.56, "CNN": 0.07, "RNN": 0.29, "Transformer": 0.08},
    2018: {"MLP": 0.52, "CNN": 0.08, "RNN": 0.26, "Transformer": 0.14},
    2019: {"MLP": 0.48, "CNN": 0.09, "RNN": 0.20, "Transformer": 0.23},
    2020: {"MLP": 0.44, "CNN": 0.10, "RNN": 0.15, "Transformer": 0.31},
}


def mix_for_year(year: int) -> Dict[str, float]:
    """The workload mix of a year (2016-2020)."""
    try:
        return dict(WORKLOAD_MIX_BY_YEAR[year])
    except KeyError:
        years = ", ".join(str(y) for y in sorted(WORKLOAD_MIX_BY_YEAR))
        raise KeyError(f"no mix for year {year}; known: {years}") from None


def transformer_trend() -> List[Tuple[int, float]]:
    """(year, transformer share) — the rising curve the figure highlights."""
    return [(year, WORKLOAD_MIX_BY_YEAR[year]["Transformer"])
            for year in sorted(WORKLOAD_MIX_BY_YEAR)]


def validate_mixes() -> None:
    """Assert every year's mix covers the categories and sums to 1."""
    for year, mix in WORKLOAD_MIX_BY_YEAR.items():
        if set(mix) != set(CATEGORIES):
            raise ValueError(f"{year}: categories mismatch")
        total = sum(mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{year}: mix sums to {total}, expected 1.0")
