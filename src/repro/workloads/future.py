"""Future workloads: what the chip must run N years after tape-out.

Lesson 5 (DNNs grow ~1.5x/yr) matters because a chip designed against
today's models serves tomorrow's: TPUv4i reached production ~2 years
after its workload snapshot was frozen, i.e. against models ~2.3x bigger
than it was specced on. This module scales a BERT-class serving model
along the growth curve and reports when a deployment stops meeting its
SLO — and how much life multi-chip serving buys back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.workloads.growth import ANNUAL_GROWTH
from repro.workloads.models import _build_bert
from repro.graph.hlo import HloModule

_BASE_HIDDEN = 768
_BASE_LAYERS = 12
_BASE_SEQ = 128
_BASE_VOCAB = 30522


@dataclass(frozen=True)
class ScaledModel:
    """One point on the growth curve."""

    years_after_design: float
    hidden: int
    layers: int
    heads: int
    growth_factor: float

    def build(self, batch: int) -> HloModule:
        module = _build_bert(
            f"bert+{self.years_after_design:g}y", batch, seq=_BASE_SEQ,
            hidden=self.hidden, layers=self.layers, heads=self.heads,
            vocab=_BASE_VOCAB)
        return module


def scaled_transformer(years_after_design: float,
                       annual_rate: float = ANNUAL_GROWTH) -> ScaledModel:
    """A BERT-class model grown ``years_after_design`` along the curve.

    Dense parameter count targets ``base * rate^years``; width grows with
    the cube root of the factor (the empirical depth/width balance of the
    BERT->large->XL lineage) and depth absorbs the rest.
    """
    if years_after_design < 0:
        raise ValueError("years must be non-negative")
    if annual_rate <= 1.0:
        raise ValueError("growth rate must exceed 1")
    factor = annual_rate ** years_after_design
    base_dense = 12 * _BASE_LAYERS * _BASE_HIDDEN**2
    target_dense = base_dense * factor

    hidden = int(round(_BASE_HIDDEN * factor ** (1.0 / 3.0) / 64.0)) * 64
    hidden = max(_BASE_HIDDEN, hidden)
    layers = max(2, int(round(target_dense / (12 * hidden**2))))
    heads = hidden // 64
    return ScaledModel(
        years_after_design=years_after_design,
        hidden=hidden,
        layers=layers,
        heads=heads,
        growth_factor=factor,
    )


@dataclass(frozen=True)
class LifetimeEntry:
    """Deployment health of one grown model on one configuration."""

    years: float
    weight_mib: float
    latency_ms: float
    meets_slo: bool
    qps: float


def deployment_lifetime(point, *, slo_ms: float, batch: int,
                        max_years: int = 4,
                        deploy=None) -> list:
    """Walk the growth curve until the SLO breaks.

    ``point`` is a DesignPoint-like object exposing chip cores; ``deploy``
    optionally maps ``(module, batch) -> (latency_s, qps)`` for multi-chip
    configurations — defaults to single-chip compile+simulate.
    """
    from repro.compiler import compile_model
    from repro.sim import TensorCoreSim

    if deploy is None:
        sim = TensorCoreSim(point.chip)

        def deploy(module, b):
            compiled = compile_model(module, point.chip)
            result = sim.run(compiled.program)
            return result.seconds, point.chip.cores * b / result.seconds

    entries = []
    for years in range(max_years + 1):
        model = scaled_transformer(years)
        module = model.build(batch)
        latency_s, qps = deploy(module, batch)
        entries.append(LifetimeEntry(
            years=years,
            weight_mib=module.total_weight_bytes() / (1024 * 1024),
            latency_ms=latency_s * 1e3,
            meets_slo=latency_s * 1e3 <= slo_ms,
            qps=qps,
        ))
    return entries
