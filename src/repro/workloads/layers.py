"""Layer-level building blocks shared by the model zoo.

Each helper appends a standard DNN layer to a :class:`GraphBuilder` and
returns its output instruction. Weight tensors are ``constant``
instructions (the allocator pins those to CMEM); request tensors are
``parameter`` instructions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graph.hlo import GraphBuilder, HloInstruction
from repro.graph.shapes import Shape


def fc(builder: GraphBuilder, x: HloInstruction, out_dim: int,
       activation: Optional[str] = "relu", name: str = "fc") -> HloInstruction:
    """Fully-connected layer: ``x @ W + b`` with optional activation."""
    in_dim = x.shape.dims[-1]
    dtype = x.shape.dtype_name
    w = builder.constant(Shape((in_dim, out_dim), dtype), f"{name}.w")
    b = builder.constant(Shape((out_dim,), dtype), f"{name}.b")
    y = builder.add(builder.dot(x, w, f"{name}.dot"), b, f"{name}.bias")
    if activation is None:
        return y
    apply = getattr(builder, activation)
    return apply(y, f"{name}.{activation}")


def embedding(builder: GraphBuilder, batch: int, fields: int, rows: int,
              dim: int, dtype: str = "bf16",
              name: str = "emb") -> HloInstruction:
    """Embedding lookup of ``fields`` categorical features per example.

    Returns the concatenated feature vector ``[batch, fields*dim]``.
    """
    table = builder.constant(Shape((rows, dim), dtype), f"{name}.table")
    ids = builder.parameter(Shape((batch, fields), "int32"), f"{name}.ids")
    gathered = builder.embedding_lookup(table, ids, f"{name}.lookup")
    return builder.reshape(gathered, (batch, fields * dim), f"{name}.flat")


def lstm_layer(builder: GraphBuilder, steps: List[HloInstruction], hidden: int,
               name: str = "lstm") -> List[HloInstruction]:
    """One LSTM layer over a sequence of per-step inputs ``[batch, in_dim]``.

    Standard cell: gates = [x_t, h_{t-1}] @ W (W is [in+hidden, 4*hidden]),
    then sigmoid/tanh gating. The recurrence makes steps strictly
    sequential — the property that starves wide MXUs at small batch.
    """
    if not steps:
        raise ValueError("lstm_layer needs at least one timestep")
    batch, in_dim = steps[0].shape.dims
    dtype = steps[0].shape.dtype_name
    w = builder.constant(Shape((in_dim + hidden, 4 * hidden), dtype), f"{name}.w")
    bias = builder.constant(Shape((4 * hidden,), dtype), f"{name}.b")
    # h_0 and c_0 are zero state, carried as constants of the right shape.
    h = builder.constant(Shape((batch, hidden), dtype), f"{name}.h0")
    c = builder.constant(Shape((batch, hidden), dtype), f"{name}.c0")

    outputs: List[HloInstruction] = []
    for t, x_t in enumerate(steps):
        xh = builder.concat([x_t, h], axis=1, name=f"{name}.t{t}.xh")
        gates = builder.add(builder.dot(xh, w, f"{name}.t{t}.gates"), bias,
                            f"{name}.t{t}.bias")
        # Gate nonlinearities (i, f, o sigmoid; g tanh), applied to slices.
        gate_shape = Shape((batch, hidden), dtype)
        i_g = builder.sigmoid(
            builder.module.add("slice", gate_shape, (gates,),
                               name=f"{name}.t{t}.i", offset=0),
            f"{name}.t{t}.i.s")
        f_g = builder.sigmoid(
            builder.module.add("slice", gate_shape, (gates,),
                               name=f"{name}.t{t}.f", offset=1),
            f"{name}.t{t}.f.s")
        o_g = builder.sigmoid(
            builder.module.add("slice", gate_shape, (gates,),
                               name=f"{name}.t{t}.o", offset=2),
            f"{name}.t{t}.o.s")
        g_g = builder.tanh(
            builder.module.add("slice", gate_shape, (gates,),
                               name=f"{name}.t{t}.g", offset=3),
            f"{name}.t{t}.g.t")
        c = builder.add(builder.mul(f_g, c, f"{name}.t{t}.fc"),
                        builder.mul(i_g, g_g, f"{name}.t{t}.ig"),
                        f"{name}.t{t}.c")
        h = builder.mul(o_g, builder.tanh(c, f"{name}.t{t}.ct"),
                        f"{name}.t{t}.h")
        outputs.append(h)
    return outputs


def conv_layer(builder: GraphBuilder, x: HloInstruction, out_ch: int,
               kernel: int, stride: int = 1, activation: Optional[str] = "relu",
               name: str = "conv") -> HloInstruction:
    """Conv + bias + activation (NHWC/HWIO, 'same' padding)."""
    in_ch = x.shape.dims[-1]
    dtype = x.shape.dtype_name
    filt = builder.constant(Shape((kernel, kernel, in_ch, out_ch), dtype),
                            f"{name}.w")
    y = builder.conv2d(x, filt, stride=stride, padding="same",
                       name=f"{name}.conv")
    b = builder.constant(Shape((out_ch,), dtype), f"{name}.b")
    y = builder.add(y, b, f"{name}.bias")
    if activation is None:
        return y
    apply = getattr(builder, activation)
    return apply(y, f"{name}.{activation}")


def bottleneck(builder: GraphBuilder, x: HloInstruction, mid_ch: int,
               out_ch: int, stride: int = 1,
               name: str = "block") -> HloInstruction:
    """ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand, residual add."""
    y = conv_layer(builder, x, mid_ch, 1, 1, "relu", f"{name}.a")
    y = conv_layer(builder, y, mid_ch, 3, stride, "relu", f"{name}.b")
    y = conv_layer(builder, y, out_ch, 1, 1, None, f"{name}.c")
    if x.shape.dims == y.shape.dims:
        shortcut = x
    else:
        shortcut = conv_layer(builder, x, out_ch, 1, stride, None,
                              f"{name}.proj")
    return builder.relu(builder.add(y, shortcut, f"{name}.sum"),
                        f"{name}.relu")


def global_pool(builder: GraphBuilder, x: HloInstruction,
                name: str = "pool") -> HloInstruction:
    """Global average pool NHWC -> [N, C]."""
    n, h, w, c = x.shape.dims
    flat = builder.reshape(x, (n, h * w, c), f"{name}.flat")
    summed = builder.reduce_sum(flat, axis=1, name=f"{name}.sum")
    scale = builder.constant(Shape((c,), x.shape.dtype_name), f"{name}.scale")
    return builder.mul(summed, scale, f"{name}.mean")


def attention_block(builder: GraphBuilder, x: HloInstruction, heads: int,
                    name: str = "attn") -> HloInstruction:
    """Multi-head self-attention over ``x`` of shape [batch, seq, hidden]."""
    batch, seq, hidden = x.shape.dims
    if hidden % heads:
        raise ValueError(f"hidden {hidden} not divisible by heads {heads}")
    head_dim = hidden // heads
    dtype = x.shape.dtype_name
    flat = builder.reshape(x, (batch * seq, hidden), f"{name}.in")

    def project(tag: str) -> HloInstruction:
        w = builder.constant(Shape((hidden, hidden), dtype), f"{name}.{tag}.w")
        proj = builder.dot(flat, w, f"{name}.{tag}")
        # [batch*heads, seq, head_dim] for batched attention matmuls.
        return builder.reshape(proj, (batch * heads, seq, head_dim),
                               f"{name}.{tag}.heads")

    q = project("q")
    k = project("k")
    v = project("v")
    k_t = builder.transpose(k, (0, 2, 1), f"{name}.kT")
    scores = builder.batched_dot(q, k_t, f"{name}.scores")
    probs = builder.softmax(scores, f"{name}.softmax")
    context = builder.batched_dot(probs, v, f"{name}.context")
    merged = builder.reshape(context, (batch * seq, hidden), f"{name}.merge")
    w_o = builder.constant(Shape((hidden, hidden), dtype), f"{name}.o.w")
    out = builder.dot(merged, w_o, f"{name}.o")
    return builder.reshape(out, (batch, seq, hidden), f"{name}.out")


def transformer_layer(builder: GraphBuilder, x: HloInstruction, heads: int,
                      ffn_dim: int, name: str = "layer") -> HloInstruction:
    """Pre-LN transformer encoder layer with GELU FFN."""
    batch, seq, hidden = x.shape.dims
    attn = attention_block(builder, builder.layernorm(x, f"{name}.ln1"),
                           heads, f"{name}.attn")
    x = builder.add(x, attn, f"{name}.res1")
    normed = builder.layernorm(x, f"{name}.ln2")
    flat = builder.reshape(normed, (batch * seq, hidden), f"{name}.ffn.in")
    up = fc(builder, flat, ffn_dim, "gelu", f"{name}.ffn.up")
    down = fc(builder, up, hidden, None, f"{name}.ffn.down")
    ffn = builder.reshape(down, (batch, seq, hidden), f"{name}.ffn.out")
    return builder.add(x, ffn, f"{name}.res2")
