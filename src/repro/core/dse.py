"""Design-space exploration: re-deriving TPUv4i from the lessons (E10, E15).

Two instruments:

* :func:`cmem_sweep` — performance of a workload set as CMEM capacity grows
  from 0 to 256 MiB (the paper's CMEM-sensitivity figure: steep gains until
  the hot working set fits, then a plateau);
* :func:`enumerate_candidates` + :func:`pareto_frontier` — sweep MXU count,
  CMEM capacity and clock; estimate each candidate's TDP from the process
  node; reject designs that bust the air-cooling envelope (Lesson 8);
  report the perf / perf-per-watt Pareto set. The shipped TPUv4i
  configuration (4 MXUs, 128 MiB CMEM, ~1 GHz) sits on that frontier.

Evaluation routes through the shared engine
(:mod:`repro.engine`): results are memoized in the process-global
:class:`~repro.engine.cache.EvalCache` and sweeps can fan out over a
process pool (:func:`evaluate_candidates`, or the ``workers`` argument of
:func:`cmem_sweep`) with results bit-identical to the serial loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.chip import ChipConfig, TPUV4I
from repro.arch.cooling import AIR_COOLING, air_coolable
from repro.arch.power import PowerModel
from repro.compiler.versions import CompilerVersion, LATEST
from repro.core.design_point import shared_design_point
from repro.tech.node import node_by_name
from repro.util.units import GHZ, MIB
from repro.workloads.models import PRODUCTION_APPS, WorkloadSpec

# Subset used by default: one app per family keeps DSE wall-time modest
# while spanning the roofline (benchmarks can pass the full eight).
DEFAULT_DSE_APPS: tuple[str, ...] = ("mlp1", "cnn0", "rnn0", "bert0")


def _apps(names: Sequence[str]) -> list[WorkloadSpec]:
    by_name = {w.name: w for w in PRODUCTION_APPS}
    return [by_name[n] for n in names]


# -------------------------------------------------------------- CMEM sweep

def cmem_sweep(spec: WorkloadSpec, capacities_bytes: Sequence[int],
               chip: ChipConfig = TPUV4I,
               batch: Optional[int] = None,
               workers: Optional[int] = 1) -> list[tuple[int, float]]:
    """(capacity, latency seconds) for a workload across CMEM budgets.

    ``workers`` > 1 fans the capacities out over the engine's process
    pool; the default dispatches the whole capacity axis as one grid
    batch (in-process, still cache-backed).

    Inputs are validated once, up front, identically on every dispatch
    path — a bad capacity raises before *any* point is evaluated.
    """
    capacities = list(capacities_bytes)
    for capacity in capacities:
        if capacity < 0:
            raise ValueError("CMEM capacity must be non-negative")
    b = batch if batch is not None else spec.default_batch
    from repro.engine.sweeps import cmem_capacity_sweep
    # cmem_capacity_sweep(workers=None) means "all CPUs"; here None means
    # the serial in-process path, which the engine spells workers=1.
    return cmem_capacity_sweep(spec, capacities, chip, b,
                               workers=workers if workers is not None else 1)


# ------------------------------------------------------------- candidates

@dataclass(frozen=True)
class DesignCandidate:
    """One explored configuration and its evaluation."""

    chip: ChipConfig
    geomean_qps: float
    tdp_estimate_w: float
    air_coolable: bool
    die_mm2_estimate: float

    @property
    def qps_per_watt(self) -> float:
        return self.geomean_qps / self.tdp_estimate_w

    def describe(self) -> str:
        cooling = "air" if self.air_coolable else "LIQUID"
        return (f"{self.chip.name}: {self.chip.mxus_per_core} MXU, "
                f"{self.chip.cmem_bytes // MIB} MiB CMEM, "
                f"{self.chip.clock_hz / GHZ:.2f} GHz -> "
                f"qps={self.geomean_qps:.0f}, ~{self.tdp_estimate_w:.0f} W "
                f"({cooling}), ~{self.die_mm2_estimate:.0f} mm2")


def _die_estimate_mm2(chip: ChipConfig) -> float:
    """Bottom-up die area: MXU logic + CMEM/VMEM SRAM + 40% uncore."""
    node = node_by_name(chip.process)
    # ~30 transistors per MAC cell (multiplier + accumulator + pipe).
    mac_transistors_m = chip.macs_per_cycle * 30 / 1e6
    logic = node.logic_area_mm2(mac_transistors_m)
    sram = node.sram_area_mm2(chip.on_chip_bytes)
    return (logic + sram) * 1.4


def _variant(mxus: int, cmem_mib: int, clock_ghz: float) -> ChipConfig:
    name = f"v4-{mxus}mxu-{cmem_mib}m-{clock_ghz:.2f}g"
    return TPUV4I.variant(
        name,
        mxus_per_core=mxus,
        cmem_bytes=cmem_mib * MIB,
        cmem_bw=TPUV4I.cmem_bw if cmem_mib else 0.0,
        clock_hz=clock_ghz * GHZ,
        # Idle power scales weakly with compute/SRAM provisioning.
        idle_w=40.0 + 2.5 * mxus + 0.05 * cmem_mib,
    )


def enumerate_candidates(
        mxu_counts: Sequence[int] = (2, 4, 8),
        cmem_mib_options: Sequence[int] = (0, 64, 128),
        clocks_ghz: Sequence[float] = (1.05,),
) -> list[ChipConfig]:
    """The candidate grid around the TPUv4i design point."""
    grid: list[ChipConfig] = []
    for mxus in mxu_counts:
        for cmem in cmem_mib_options:
            for clock in clocks_ghz:
                if mxus <= 0 or cmem < 0 or clock <= 0:
                    raise ValueError("bad candidate parameters")
                grid.append(_variant(mxus, cmem, clock))
    return grid


def candidate_from_evaluations(chip: ChipConfig,
                               evaluations: Sequence) -> DesignCandidate:
    """Fold per-app :class:`Evaluation` records into a candidate.

    The arithmetic shared by the serial loop and the grid-batched path:
    geomean over the evaluations' ``chip_qps`` in the given (app) order,
    plus the chip-only TDP/area estimates.
    """
    qps = [evaluation.chip_qps for evaluation in evaluations]
    geomean = math.prod(qps) ** (1.0 / len(qps))
    tdp = PowerModel(chip).tdp_estimate_w()
    return DesignCandidate(
        chip=chip,
        geomean_qps=geomean,
        tdp_estimate_w=tdp,
        air_coolable=air_coolable(tdp),
        die_mm2_estimate=_die_estimate_mm2(chip),
    )


def evaluate_candidate(chip: ChipConfig,
                       app_names: Sequence[str] = DEFAULT_DSE_APPS,
                       version: CompilerVersion = LATEST
                       ) -> DesignCandidate:
    """Evaluate one candidate on the app set (geomean chip QPS) + TDP."""
    point = shared_design_point(chip, version)
    evaluations = [point.evaluate(spec) for spec in _apps(app_names)]
    return candidate_from_evaluations(chip, evaluations)


def evaluate_candidates_grid(chips: Sequence[ChipConfig],
                             app_names: Sequence[str] = DEFAULT_DSE_APPS,
                             version: CompilerVersion = LATEST
                             ) -> list[DesignCandidate]:
    """Evaluate a candidate grid as one batched kernel dispatch.

    Every (chip, app) pair becomes one grid job: cache hits are excluded
    up front, the misses share compilations per distinct compile content
    and one vectorized replay batch, and the per-candidate fold is
    :func:`candidate_from_evaluations` — so the result list is identical
    to ``[evaluate_candidate(c, app_names, version) for c in chips]``.
    """
    from repro.engine.grid import GridJob, evaluate_jobs
    specs = _apps(app_names)
    jobs = [GridJob(shared_design_point(chip, version), spec)
            for chip in chips for spec in specs]
    evaluations = evaluate_jobs(jobs)
    return [
        candidate_from_evaluations(
            chip, evaluations[i * len(specs):(i + 1) * len(specs)])
        for i, chip in enumerate(chips)
    ]


def evaluate_candidates(chips: Sequence[ChipConfig],
                        app_names: Sequence[str] = DEFAULT_DSE_APPS,
                        *, version: CompilerVersion = LATEST,
                        workers: Optional[int] = None
                        ) -> list[DesignCandidate]:
    """Evaluate a grid, fanning out over the engine's process pool.

    ``workers=None`` sizes the pool to the machine; ``workers=1`` runs the
    serial reference loop. Either way results are ordered like ``chips``
    and identical to ``[evaluate_candidate(c, app_names) for c in chips]``.
    """
    from repro.engine.sweeps import evaluate_candidates as _sweep
    return _sweep(chips, app_names, version=version, workers=workers)


def pareto_frontier(candidates: Sequence[DesignCandidate],
                    require_air: bool = True) -> list[DesignCandidate]:
    """Non-dominated set under (geomean_qps up, tdp down).

    With ``require_air=True`` liquid-only designs are excluded first —
    Lesson 8 applied as a hard constraint, the way the team applied it.
    """
    pool = [c for c in candidates if c.air_coolable] if require_air else list(candidates)
    frontier: list[DesignCandidate] = []
    for candidate in pool:
        dominated = any(
            other.geomean_qps >= candidate.geomean_qps
            and other.tdp_estimate_w <= candidate.tdp_estimate_w
            and (other.geomean_qps > candidate.geomean_qps
                 or other.tdp_estimate_w < candidate.tdp_estimate_w)
            for other in pool)
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda c: c.tdp_estimate_w)
