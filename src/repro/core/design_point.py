"""DesignPoint: chip + compiler, with cached workload evaluation.

Everything above the compiler (serving, TCO, DSE, benchmarks) evaluates
workloads through this class so that compile/simulate results are computed
once per (model, batch, CMEM budget) and power is accounted at *chip*
scope: multi-core chips (TPUv2/v3) serve one request stream per core, so
chip throughput is ``cores / latency`` and dynamic power scales with the
active cores.

Caching is two-tier. Each instance keeps its original per-instance memo
dicts (cheapest lookup), and behind them every instance consults the
process-global :class:`~repro.engine.cache.EvalCache`, keyed by a stable
hash of every chip field, the compiler release, the workload, batch,
CMEM budget and dtype. Two DesignPoints for the same configuration — or
two processes sharing the cache's disk tier — therefore never repeat a
simulation. A cached :class:`Evaluation` short-circuits compilation
entirely; results are identical to the uncached path by construction
(pure arithmetic on the same inputs; asserted in ``tests/test_engine.py``).

Simulations route through the lowered-IR fast path by default:
``TensorCoreSim.run`` lowers each compiled program once (cached
process-wide in :mod:`repro.engine.lowered`) and replays it with a tight
kernel that is bit-identical to the instruction interpreter. Set
``REPRO_FASTSIM=0`` to force the reference interpreter everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.chip import ChipConfig
from repro.arch.power import PowerModel
from repro.compiler.pipeline import CompiledModel, compile_model
from repro.compiler.versions import CompilerVersion, LATEST
from repro.engine.cache import EvalCache, get_cache
from repro.engine.keys import (
    chip_fingerprint,
    compiler_fingerprint,
    eval_key,
    key_meta,
)
from repro.engine.modules import built_module
from repro.obs.metrics import metrics
from repro.sim.core import SimResult, TensorCoreSim
from repro.util.units import TERA
from repro.workloads.models import WorkloadSpec

#: DesignPoint evaluates with the simulator's default arithmetic.
_EVAL_DTYPE = "bf16"


@dataclass(frozen=True)
class Evaluation:
    """Chip-level evaluation of one workload at one batch size."""

    workload: str
    chip: str
    batch: int
    latency_s: float
    chip_qps: float            # batches/s * batch, across all cores
    chip_power_w: float
    achieved_tops_chip: float
    mxu_utilization: float
    cmem_hit_fraction: float

    @property
    def samples_per_joule(self) -> float:
        return self.chip_qps / self.chip_power_w if self.chip_power_w else 0.0

    @property
    def tops_per_watt(self) -> float:
        return (self.achieved_tops_chip / self.chip_power_w
                if self.chip_power_w else 0.0)


class DesignPoint:
    """One (chip, compiler release) pair with memoized evaluation."""

    def __init__(self, chip: ChipConfig,
                 version: CompilerVersion = LATEST,
                 cache: Optional[EvalCache] = None) -> None:
        self.chip = chip
        self.version = version
        self.sim = TensorCoreSim(chip)
        self._compiled: dict[tuple[str, int, Optional[int]], CompiledModel] = {}
        self._results: dict[tuple[str, int, Optional[int]], SimResult] = {}
        self._evaluations: dict[tuple[str, int, Optional[int]], Evaluation] = {}
        self._cache = cache
        self._chip_fp = chip_fingerprint(chip)
        self._compiler_fp = compiler_fingerprint(version)

    # --------------------------------------------------------------- caching

    @property
    def chip_fp(self) -> str:
        """Fingerprint of the chip config (stable across processes)."""
        return self._chip_fp

    @property
    def compiler_fp(self) -> str:
        """Fingerprint of the compiler release (stable across processes)."""
        return self._compiler_fp

    def _engine_cache(self) -> EvalCache:
        return self._cache if self._cache is not None else get_cache()

    def _key(self, kind: str, spec: WorkloadSpec, batch: int,
             cmem_budget_bytes: Optional[int]) -> str:
        # Phase-split workloads (repro.workloads.generative.PhaseSpec)
        # carry a phase and KV bucket into the key; plain specs have
        # neither attribute and produce the exact legacy key bytes.
        return eval_key(kind, self._chip_fp, self._compiler_fp, spec.name,
                        batch, cmem_budget_bytes, _EVAL_DTYPE,
                        phase=getattr(spec, "phase", None),
                        kv_bucket=getattr(spec, "kv_bucket", None))

    def result_key(self, spec: WorkloadSpec, batch: int,
                   cmem_budget_bytes: Optional[int] = None) -> str:
        """The EvalCache key a :meth:`run` result lives under."""
        return self._key("sim", spec, batch, cmem_budget_bytes)

    def evaluation_key(self, spec: WorkloadSpec, batch: int,
                       cmem_budget_bytes: Optional[int] = None) -> str:
        """The EvalCache key an :meth:`evaluate` record lives under."""
        return self._key("eval", spec, batch, cmem_budget_bytes)

    def cached_result(self, spec: WorkloadSpec, batch: int,
                      cmem_budget_bytes: Optional[int] = None
                      ) -> Optional[SimResult]:
        """A memo/EvalCache simulation hit, or None (never computes)."""
        key = (spec.name, batch, cmem_budget_bytes)
        hit = self._results.get(key)
        if hit is not None:
            return hit
        with metrics().timer("tier.cache_lookup_s"):
            cached = self._engine_cache().get(
                self.result_key(spec, batch, cmem_budget_bytes))
        if cached is not None:
            self._results[key] = cached
        return cached

    def store_result(self, spec: WorkloadSpec, batch: int,
                     cmem_budget_bytes: Optional[int],
                     result: SimResult) -> None:
        """Publish a simulation under the same keys :meth:`run` uses."""
        self._engine_cache().put(
            self.result_key(spec, batch, cmem_budget_bytes), result,
            self._meta("sim", spec, batch, cmem_budget_bytes))
        self._results[(spec.name, batch, cmem_budget_bytes)] = result

    def cached_evaluation(self, spec: WorkloadSpec, batch: int,
                          cmem_budget_bytes: Optional[int] = None
                          ) -> Optional[Evaluation]:
        """A memo/EvalCache evaluation hit, or None (never computes)."""
        key = (spec.name, batch, cmem_budget_bytes)
        hit = self._evaluations.get(key)
        if hit is not None:
            return hit
        with metrics().timer("tier.cache_lookup_s"):
            cached = self._engine_cache().get(
                self.evaluation_key(spec, batch, cmem_budget_bytes))
        if cached is not None:
            self._evaluations[key] = cached
        return cached

    def store_evaluation(self, spec: WorkloadSpec, batch: int,
                         cmem_budget_bytes: Optional[int],
                         evaluation: Evaluation) -> None:
        """Publish an evaluation under the keys :meth:`evaluate` uses."""
        self._engine_cache().put(
            self.evaluation_key(spec, batch, cmem_budget_bytes), evaluation,
            self._meta("eval", spec, batch, cmem_budget_bytes))
        self._evaluations[(spec.name, batch, cmem_budget_bytes)] = evaluation

    def _meta(self, kind: str, spec: WorkloadSpec, batch: int,
              cmem_budget_bytes: Optional[int]) -> dict:
        return key_meta(kind, self.chip.name, self.version.name, spec.name,
                        batch, cmem_budget_bytes, _EVAL_DTYPE,
                        phase=getattr(spec, "phase", None),
                        kv_bucket=getattr(spec, "kv_bucket", None))

    # ------------------------------------------------------------- compile/run

    def compiled(self, spec: WorkloadSpec, batch: int,
                 cmem_budget_bytes: Optional[int] = None) -> CompiledModel:
        """Compile (memoized) a workload at a batch size."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        key = (spec.name, batch, cmem_budget_bytes)
        if key not in self._compiled:
            module = built_module(spec, batch)
            self._compiled[key] = compile_model(
                module, self.chip, version=self.version,
                cmem_budget_bytes=cmem_budget_bytes)
        return self._compiled[key]

    def run(self, spec: WorkloadSpec, batch: int,
            cmem_budget_bytes: Optional[int] = None) -> SimResult:
        """Simulate (memoized) one inference of a workload."""
        key = (spec.name, batch, cmem_budget_bytes)
        if key not in self._results:
            reg = metrics()
            engine = self._engine_cache()
            ekey = self._key("sim", spec, batch, cmem_budget_bytes)
            with reg.timer("tier.cache_lookup_s"):
                cached = engine.get(ekey)
            if cached is None:
                with reg.timer("tier.compile_s"):
                    compiled = self.compiled(spec, batch, cmem_budget_bytes)
                with reg.timer("tier.sim_s"):
                    cached = self.sim.run(compiled.program)
                engine.put(ekey, cached,
                           self._meta("sim", spec, batch,
                                      cmem_budget_bytes))
            self._results[key] = cached
        return self._results[key]

    def latency_s(self, spec: WorkloadSpec, batch: int,
                  cmem_budget_bytes: Optional[int] = None) -> float:
        """Latency of one batch (seconds)."""
        return self.run(spec, batch, cmem_budget_bytes).seconds

    # ------------------------------------------------------------- evaluation

    def evaluate(self, spec: WorkloadSpec, batch: Optional[int] = None,
                 cmem_budget_bytes: Optional[int] = None) -> Evaluation:
        """Chip-level throughput/power evaluation at a batch size."""
        b = batch if batch is not None else spec.default_batch
        key = (spec.name, b, cmem_budget_bytes)
        if key in self._evaluations:
            return self._evaluations[key]
        engine = self._engine_cache()
        ekey = self._key("eval", spec, b, cmem_budget_bytes)
        with metrics().timer("tier.cache_lookup_s"):
            cached = engine.get(ekey)
        if cached is None:
            cached = self._evaluate_uncached(spec, b, cmem_budget_bytes)
            engine.put(ekey, cached,
                       self._meta("eval", spec, b, cmem_budget_bytes))
        self._evaluations[key] = cached
        return cached

    def _evaluate_uncached(self, spec: WorkloadSpec, b: int,
                           cmem_budget_bytes: Optional[int]) -> Evaluation:
        result = self.run(spec, b, cmem_budget_bytes)
        compiled = self.compiled(spec, b, cmem_budget_bytes)
        return self.evaluation_from(spec, b, cmem_budget_bytes, result,
                                    compiled)

    def evaluation_from(self, spec: WorkloadSpec, b: int,
                        cmem_budget_bytes: Optional[int],
                        result: SimResult,
                        compiled: CompiledModel) -> Evaluation:
        """Derive the chip-level record from a simulation + compilation.

        Pure arithmetic — the only consumer of ``result``/``compiled``
        content — shared by the per-point path above and the batched
        grid path (:mod:`repro.engine.grid`), so both produce identical
        records by construction.
        """
        cores = self.chip.cores
        seconds = result.seconds
        counters = result.counters

        # Chip power: idle once, dynamic activity times the active cores.
        power_model = PowerModel(self.chip)
        sram = (counters.bytes_by_level.get("vmem", 0.0)
                + counters.bytes_by_level.get("cmem", 0.0))
        power = power_model.average_power(
            seconds,
            macs=counters.macs * cores,
            sram_bytes=sram * cores,
            hbm_bytes=counters.bytes_by_level.get("hbm", 0.0) * cores,
            vector_ops=counters.vector_alu_ops * cores,
        )
        # Datapath activity -> chip power: scale the dynamic component by
        # the uncore/margin factor (clocking, PHYs) the activity model
        # cannot see, then cap at TDP.
        dynamic_w = power.total_w - power.static_w
        chip_power_w = power.static_w + dynamic_w * PowerModel.UNCORE_MARGIN
        chip_ops_per_s = 2.0 * counters.macs * cores / seconds
        return Evaluation(
            workload=spec.name,
            chip=self.chip.name,
            batch=b,
            latency_s=seconds,
            chip_qps=cores * b / seconds,
            chip_power_w=min(chip_power_w, self.chip.tdp_w),
            achieved_tops_chip=chip_ops_per_s / TERA,
            mxu_utilization=result.report.mxu_utilization,
            cmem_hit_fraction=compiled.memory.cmem_hit_fraction,
        )

    def max_batch_under_slo(self, spec: WorkloadSpec, slo_s: float,
                            candidates: tuple[int, ...] = (1, 2, 4, 8, 16, 32,
                                                           64, 128, 256)) -> int:
        """Largest candidate batch whose latency meets the SLO (0 if none).

        This is Lesson 9 in executable form: the app's latency budget — not
        any architectural limit — decides the batch size.

        The candidate ladder is simulated as one grid batch (identical
        results to the per-candidate loop; see :mod:`repro.engine.grid`),
        so a cold SLO probe costs one kernel dispatch, not nine runs.
        """
        if slo_s <= 0:
            raise ValueError("SLO must be positive")
        from repro.engine.grid import GridJob, run_grid
        results = run_grid([GridJob(self, spec, batch)
                            for batch in candidates])
        best = 0
        for batch, result in zip(candidates, results):
            if result.seconds <= slo_s:
                best = max(best, batch)
        return best


# ----------------------------------------------------------- shared registry

_POINTS: dict[tuple[str, str], DesignPoint] = {}


def shared_design_point(chip: ChipConfig,
                        version: CompilerVersion = LATEST) -> DesignPoint:
    """A process-wide DesignPoint for (chip, version), created on demand.

    Sweep tasks go through here so that repeated evaluations of the same
    configuration in one process (e.g. a CMEM sweep's capacities, or a
    pool worker's chunk of candidates) share compiled models and the sim.
    """
    key = (chip_fingerprint(chip), compiler_fingerprint(version))
    point = _POINTS.get(key)
    if point is None:
        point = DesignPoint(chip, version)
        _POINTS[key] = point
    return point


def clear_shared_design_points() -> None:
    """Drop the shared registry (tests / cold benchmark runs)."""
    _POINTS.clear()
