"""DesignPoint: chip + compiler, with cached workload evaluation.

Everything above the compiler (serving, TCO, DSE, benchmarks) evaluates
workloads through this class so that compile/simulate results are computed
once per (model, batch, CMEM budget) and power is accounted at *chip*
scope: multi-core chips (TPUv2/v3) serve one request stream per core, so
chip throughput is ``cores / latency`` and dynamic power scales with the
active cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.chip import ChipConfig
from repro.arch.power import PowerModel
from repro.compiler.pipeline import CompiledModel, compile_model
from repro.compiler.versions import CompilerVersion, LATEST
from repro.sim.core import SimResult, TensorCoreSim
from repro.util.units import TERA
from repro.workloads.models import WorkloadSpec


@dataclass(frozen=True)
class Evaluation:
    """Chip-level evaluation of one workload at one batch size."""

    workload: str
    chip: str
    batch: int
    latency_s: float
    chip_qps: float            # batches/s * batch, across all cores
    chip_power_w: float
    achieved_tops_chip: float
    mxu_utilization: float
    cmem_hit_fraction: float

    @property
    def samples_per_joule(self) -> float:
        return self.chip_qps / self.chip_power_w if self.chip_power_w else 0.0

    @property
    def tops_per_watt(self) -> float:
        return (self.achieved_tops_chip / self.chip_power_w
                if self.chip_power_w else 0.0)


class DesignPoint:
    """One (chip, compiler release) pair with memoized evaluation."""

    def __init__(self, chip: ChipConfig,
                 version: CompilerVersion = LATEST) -> None:
        self.chip = chip
        self.version = version
        self.sim = TensorCoreSim(chip)
        self._compiled: Dict[Tuple[str, int, Optional[int]], CompiledModel] = {}
        self._results: Dict[Tuple[str, int, Optional[int]], SimResult] = {}

    # ------------------------------------------------------------- compile/run

    def compiled(self, spec: WorkloadSpec, batch: int,
                 cmem_budget_bytes: Optional[int] = None) -> CompiledModel:
        """Compile (memoized) a workload at a batch size."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        key = (spec.name, batch, cmem_budget_bytes)
        if key not in self._compiled:
            module = spec.build(batch)
            self._compiled[key] = compile_model(
                module, self.chip, version=self.version,
                cmem_budget_bytes=cmem_budget_bytes)
        return self._compiled[key]

    def run(self, spec: WorkloadSpec, batch: int,
            cmem_budget_bytes: Optional[int] = None) -> SimResult:
        """Simulate (memoized) one inference of a workload."""
        key = (spec.name, batch, cmem_budget_bytes)
        if key not in self._results:
            compiled = self.compiled(spec, batch, cmem_budget_bytes)
            self._results[key] = self.sim.run(compiled.program)
        return self._results[key]

    def latency_s(self, spec: WorkloadSpec, batch: int,
                  cmem_budget_bytes: Optional[int] = None) -> float:
        """Latency of one batch (seconds)."""
        return self.run(spec, batch, cmem_budget_bytes).seconds

    # ------------------------------------------------------------- evaluation

    def evaluate(self, spec: WorkloadSpec, batch: Optional[int] = None,
                 cmem_budget_bytes: Optional[int] = None) -> Evaluation:
        """Chip-level throughput/power evaluation at a batch size."""
        b = batch if batch is not None else spec.default_batch
        result = self.run(spec, b, cmem_budget_bytes)
        compiled = self.compiled(spec, b, cmem_budget_bytes)
        cores = self.chip.cores
        seconds = result.seconds
        counters = result.counters

        # Chip power: idle once, dynamic activity times the active cores.
        power_model = PowerModel(self.chip)
        sram = (counters.bytes_by_level.get("vmem", 0.0)
                + counters.bytes_by_level.get("cmem", 0.0))
        power = power_model.average_power(
            seconds,
            macs=counters.macs * cores,
            sram_bytes=sram * cores,
            hbm_bytes=counters.bytes_by_level.get("hbm", 0.0) * cores,
            vector_ops=counters.vector_alu_ops * cores,
        )
        # Datapath activity -> chip power: scale the dynamic component by
        # the uncore/margin factor (clocking, PHYs) the activity model
        # cannot see, then cap at TDP.
        dynamic_w = power.total_w - power.static_w
        chip_power_w = power.static_w + dynamic_w * PowerModel.UNCORE_MARGIN
        chip_ops_per_s = 2.0 * counters.macs * cores / seconds
        return Evaluation(
            workload=spec.name,
            chip=self.chip.name,
            batch=b,
            latency_s=seconds,
            chip_qps=cores * b / seconds,
            chip_power_w=min(chip_power_w, self.chip.tdp_w),
            achieved_tops_chip=chip_ops_per_s / TERA,
            mxu_utilization=result.report.mxu_utilization,
            cmem_hit_fraction=compiled.memory.cmem_hit_fraction,
        )

    def max_batch_under_slo(self, spec: WorkloadSpec, slo_s: float,
                            candidates: Tuple[int, ...] = (1, 2, 4, 8, 16, 32,
                                                           64, 128, 256)) -> int:
        """Largest candidate batch whose latency meets the SLO (0 if none).

        This is Lesson 9 in executable form: the app's latency budget — not
        any architectural limit — decides the batch size.
        """
        if slo_s <= 0:
            raise ValueError("SLO must be positive")
        best = 0
        for batch in candidates:
            if self.latency_s(spec, batch) <= slo_s:
                best = max(best, batch)
        return best
