"""Multi-chip inference: pipeline a model across a TPUv4i ICI ring.

TPUv4i boards carry four chips linked by ICI precisely because single-chip
serving stops working when a model's weights or SLO outgrow one chip (the
1.5x/yr growth lesson guarantees this happens *during* the chip's
deployment life). This module implements pipeline parallelism:

* :func:`partition_module` splits an HLO module into load-balanced stages
  (by FLOPs) along topological order; tensors crossing a stage boundary
  become stage parameters, weights are duplicated into every consuming
  stage;
* :class:`PipelineDeployment` compiles and simulates each stage on its own
  chip, prices inter-stage activation transfers on the ICI links, and
  reports single-request latency, steady-state throughput, and per-chip
  weight/CMEM residency.

The headline effect reproduced here: sharding a CMEM-overflowing model
(bert1, rnn1) across chips is *superlinear* for throughput, because each
chip's slice of the weights newly fits in its CMEM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.arch.chip import ChipConfig, TPUV4I
from repro.arch.ici import IciNetwork
from repro.compiler.pipeline import compile_model
from repro.compiler.versions import CompilerVersion, LATEST
from repro.graph.hlo import HloInstruction, HloModule
from repro.sim.core import TensorCoreSim


def _assign_stages(module: HloModule, num_stages: int) -> Dict[int, int]:
    """Map each non-data instruction uid to a stage, balanced by FLOPs."""
    compute = [inst for inst in module.instructions
               if inst.kind not in ("data",)]
    total = sum(module.instruction_flops(inst) for inst in compute) or 1.0
    per_stage = total / num_stages
    assignment: Dict[int, int] = {}
    stage = 0
    accumulated = 0.0
    for inst in compute:
        assignment[inst.uid] = stage
        accumulated += module.instruction_flops(inst)
        # Close the stage once it has its share (never close the last one).
        if accumulated >= per_stage * (stage + 1) and stage < num_stages - 1:
            stage += 1
    return assignment


def partition_module(module: HloModule,
                     num_stages: int) -> Tuple[List[HloModule], List[int]]:
    """Split a module into pipeline stages.

    Returns ``(stages, boundary_bytes)`` where ``boundary_bytes[i]`` is the
    activation traffic entering stage ``i`` from earlier stages (0 for the
    first stage). Data instructions (weights, request inputs) replicate
    into every stage that consumes them; activations crossing a boundary
    become parameters of the consuming stage.
    """
    if num_stages < 1:
        raise ValueError("need at least one stage")
    module.validate()
    if num_stages == 1:
        return [module], [0]

    assignment = _assign_stages(module, num_stages)
    stages: List[HloModule] = []
    boundary_bytes: List[int] = []

    for stage_index in range(num_stages):
        stage = HloModule(f"{module.name}.stage{stage_index}")
        mapping: Dict[int, HloInstruction] = {}
        crossing = 0

        def materialize(operand: HloInstruction) -> HloInstruction:
            nonlocal crossing
            if operand.uid in mapping:
                return mapping[operand.uid]
            if operand.kind == "data":
                # Replicate weights/inputs into this stage.
                clone = stage.add(operand.opcode, operand.shape,
                                  name=operand.name)
            elif assignment.get(operand.uid, -1) == stage_index:
                raise AssertionError("topological order violated")
            else:
                # Activation from an earlier stage: becomes a stage input.
                crossing += operand.shape.byte_size
                clone = stage.add("parameter", operand.shape,
                                  name=f"xfer.{operand.uid}")
            mapping[operand.uid] = clone
            return clone

        last_compute = None
        for inst in module.instructions:
            if inst.kind == "data":
                continue
            if assignment[inst.uid] != stage_index:
                continue
            operands = tuple(materialize(op) for op in inst.operands)
            attrs = {k: v for k, v in inst.attrs}
            clone = stage.add(inst.opcode, inst.shape, operands,
                              name=inst.name, **attrs)
            mapping[inst.uid] = clone
            last_compute = clone
        if last_compute is None:
            raise ValueError(
                f"stage {stage_index} is empty; module {module.name!r} is too "
                f"small for {num_stages} stages")
        stage.set_root(last_compute)
        stage.validate()
        stages.append(stage)
        boundary_bytes.append(crossing)

    boundary_bytes[0] = 0  # first stage reads request inputs, not ICI
    return stages, boundary_bytes


@dataclass(frozen=True)
class StageReport:
    """One pipeline stage on one chip."""

    stage: int
    latency_s: float
    inbound_transfer_s: float
    weight_bytes: int
    cmem_hit_fraction: float

    @property
    def period_s(self) -> float:
        """Steady-state occupancy: compute plus inbound transfer."""
        return self.latency_s + self.inbound_transfer_s


@dataclass(frozen=True)
class MultiChipReport:
    """A pipelined deployment across an ICI ring."""

    model: str
    chip: str
    num_chips: int
    batch: int
    stages: Tuple[StageReport, ...]

    @property
    def request_latency_s(self) -> float:
        """One request through the whole pipeline."""
        return sum(s.period_s for s in self.stages)

    @property
    def throughput_qps(self) -> float:
        """Steady state: bounded by the slowest stage."""
        bottleneck = max(s.period_s for s in self.stages)
        return self.batch / bottleneck

    @property
    def total_weight_bytes(self) -> int:
        return sum(s.weight_bytes for s in self.stages)

    @property
    def min_cmem_hit(self) -> float:
        return min(s.cmem_hit_fraction for s in self.stages)

    def describe(self) -> str:
        return (f"{self.model} on {self.num_chips}x {self.chip}: "
                f"{self.request_latency_s * 1e3:.2f} ms/request, "
                f"{self.throughput_qps:.0f} qps, worst CMEM residency "
                f"{self.min_cmem_hit:.0%}")


class PipelineDeployment:
    """Compile/simulate a model pipelined over ``num_chips`` chips."""

    def __init__(self, chip: ChipConfig = TPUV4I, *,
                 version: CompilerVersion = LATEST) -> None:
        self.chip = chip
        self.version = version
        self.sim = TensorCoreSim(chip)

    def deploy(self, module: HloModule, num_chips: int,
               batch: int) -> MultiChipReport:
        """Partition, compile, and time the model across the ring."""
        if num_chips > 1 and self.chip.ici_links == 0:
            raise ValueError(f"{self.chip.name} has no ICI links")
        network = IciNetwork(self.chip, num_chips)
        stages, boundaries = partition_module(module, num_chips)

        reports: List[StageReport] = []
        for index, (stage, inbound) in enumerate(zip(stages, boundaries)):
            compiled = compile_model(stage, self.chip, version=self.version)
            result = self.sim.run(compiled.program)
            transfer = network.point_to_point_seconds(inbound) if inbound else 0.0
            reports.append(StageReport(
                stage=index,
                latency_s=result.seconds,
                inbound_transfer_s=transfer,
                weight_bytes=stage.total_weight_bytes(),
                cmem_hit_fraction=compiled.memory.cmem_hit_fraction,
            ))
        return MultiChipReport(
            model=module.name,
            chip=self.chip.name,
            num_chips=num_chips,
            batch=batch,
            stages=tuple(reports),
        )

    def scaling_study(self, build, batch: int,
                      chip_counts: Sequence[int] = (1, 2, 4)) -> List[MultiChipReport]:
        """Deploy ``build(batch)`` at several ring sizes."""
        return [self.deploy(build(batch), count, batch)
                for count in chip_counts]
