"""The TPUv4i design point and the exploration that produced it.

``DesignPoint`` is the library's top-level convenience API: one object
tying a chip config and a compiler release together, with cached
compile+simulate evaluation of workloads. ``dse`` re-derives the TPUv4i
configuration from the ten lessons: sweep MXU count, CMEM capacity, and
clock under the air-cooling TDP ceiling, and watch the paper's choice
(one big core, 4 MXUs, 128 MiB CMEM) sit on the Pareto frontier.
"""

from repro.core.design_point import (
    DesignPoint,
    Evaluation,
    shared_design_point,
)
from repro.core.dse import (
    DesignCandidate,
    cmem_sweep,
    enumerate_candidates,
    evaluate_candidate,
    evaluate_candidates,
    pareto_frontier,
)
from repro.core.multichip import (
    MultiChipReport,
    PipelineDeployment,
    StageReport,
    partition_module,
)

__all__ = [
    "DesignPoint",
    "Evaluation",
    "DesignCandidate",
    "cmem_sweep",
    "enumerate_candidates",
    "evaluate_candidate",
    "evaluate_candidates",
    "pareto_frontier",
    "shared_design_point",
    "MultiChipReport",
    "PipelineDeployment",
    "StageReport",
    "partition_module",
]
