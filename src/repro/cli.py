"""Command-line interface: quick looks at chips, apps, and evaluations.

Examples::

    python -m repro chips
    python -m repro apps
    python -m repro evaluate --app bert0 --chip TPUv4i --batch 8
    python -m repro compare --app cnn0
    python -m repro migrate --app cnn0 --source TPUv3 --target TPUv4i
    python -m repro engine stats
    python -m repro engine bench --workers 2 --output BENCH_engine.json
    python -m repro faults --seed 3 --core-mtbf 0.5 --repair 0.1
    python -m repro cluster --seed 3 --replicas 3 --duration 0.5
    python -m repro llm --seed 3 --duration 0.5
    python -m repro trace resnet50 tpuv4i --out trace.json
    python -m repro metrics --app cnn0 --chip TPUv4i

The CLI is a thin veneer over the public API; anything it prints can be
reproduced programmatically with a few lines of `repro` calls.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.arch import GENERATIONS, chip_by_name
from repro.arch.config_io import load_chip
from repro.compiler import migrate_model
from repro.core import DesignPoint
from repro.tco import chip_tco, perf_per_tco
from repro.util.tables import Table
from repro.util.units import GHZ, GIB, GIGA, MIB
from repro.workloads import PRODUCTION_APPS, app_by_name


def _cmd_chips(_: argparse.Namespace) -> int:
    table = Table(["chip", "year", "process", "peak TOPS", "on-chip MiB",
                   "HBM GiB", "HBM GB/s", "TDP W", "cooling"])
    for chip in GENERATIONS:
        table.add_row([
            chip.name, chip.year_deployed, chip.process, chip.peak_tops,
            chip.on_chip_bytes / MIB, chip.hbm_bytes / GIB,
            chip.hbm_bw / GIGA, chip.tdp_w, chip.cooling,
        ])
    print(table.render())
    return 0


def _cmd_apps(_: argparse.Namespace) -> int:
    table = Table(["app", "family", "weights MiB", "ops:byte", "batch",
                   "SLO ms", "description"])
    for spec in PRODUCTION_APPS:
        table.add_row([
            spec.name, spec.category, spec.weight_mib(),
            spec.ops_per_byte(), spec.default_batch, spec.slo_ms,
            spec.description,
        ])
    print(table.render())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    spec = app_by_name(args.app)
    if args.chip_file:
        chip = load_chip(args.chip_file)
    else:
        chip = chip_by_name(args.chip)
    point = DesignPoint(chip)
    evaluation = point.evaluate(spec, batch=args.batch)
    tco = chip_tco(chip, evaluation.chip_power_w)
    print(f"{spec.name} on {chip.name} (batch {evaluation.batch}):")
    print(f"  latency:   {evaluation.latency_s * 1e3:.3f} ms")
    print(f"  chip qps:  {evaluation.chip_qps:.0f}")
    print(f"  power:     {evaluation.chip_power_w:.1f} W")
    print(f"  TOPS:      {evaluation.achieved_tops_chip:.1f} "
          f"({evaluation.achieved_tops_chip / chip.peak_tops:.0%} of peak)")
    print(f"  perf/W:    {evaluation.samples_per_joule:.1f} qps/W")
    print(f"  3-yr TCO:  ${tco.total_usd:,.0f} "
          f"({perf_per_tco(evaluation.chip_qps, tco):.2f} qps per TCO $)")
    print(f"  CMEM hit:  {evaluation.cmem_hit_fraction:.0%} of weight bytes")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = app_by_name(args.app)
    table = Table(["chip", "latency ms", "chip qps", "power W", "qps/W",
                   "qps/TCO$"],
                  title=f"{spec.name} across generations (batch "
                        f"{args.batch or spec.default_batch})")
    for chip in GENERATIONS:
        if not chip.supports_dtype("bf16"):
            continue
        evaluation = DesignPoint(chip).evaluate(spec, batch=args.batch)
        tco = chip_tco(chip, evaluation.chip_power_w)
        table.add_row([
            chip.name, evaluation.latency_s * 1e3, evaluation.chip_qps,
            evaluation.chip_power_w, evaluation.samples_per_joule,
            perf_per_tco(evaluation.chip_qps, tco),
        ])
    print(table.render())
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    spec = app_by_name(args.app)
    module = spec.build(1)
    report = migrate_model(module, chip_by_name(args.source),
                           chip_by_name(args.target))
    print(f"{spec.name}: {report.source_chip} -> {report.target_chip}")
    print(f"  binary portable: {report.binary_portable}")
    print(f"  recompiled:      {report.recompiled}")
    print(f"  dtype retarget:  {report.retargeted_dtype or 'none'}")
    print(f"  {report.notes}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.compiler import profile_module
    from repro.sim import TensorCoreSim
    from repro.compiler import compile_model

    spec = app_by_name(args.app)
    chip = chip_by_name(args.chip)
    module = spec.build(args.batch or spec.default_batch)
    profile = profile_module(module, chip)
    print(profile.render(args.top))
    simulated = TensorCoreSim(chip).run(compile_model(module, chip).program)
    overlap = simulated.cycles / max(1, profile.total_cycles)
    print(f"  simulated latency {simulated.seconds * 1e3:.3f} ms "
          f"({simulated.cycles:,} cyc); overlap hides "
          f"{1 - overlap:.0%} of unoverlapped cost")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    spec = app_by_name(args.app)
    module = spec.build(args.batch or spec.default_batch)
    if args.format == "hlo":
        from repro.graph import module_to_text

        print(module_to_text(module), end="")
        return 0
    # VLIW assembly of the compiled program.
    from repro.compiler import compile_model
    from repro.isa import disassemble

    chip = chip_by_name(args.chip)
    compiled = compile_model(module, chip)
    print(disassemble(compiled.program), end="")
    return 0


def _engine_cache(args: argparse.Namespace):
    from repro.engine import configure_cache, get_cache

    if args.dir:
        return configure_cache(disk_dir=args.dir)
    return get_cache()


def _cmd_engine(args: argparse.Namespace) -> int:
    cache = _engine_cache(args)
    if args.action == "stats":
        from repro.engine.grid import grid_stats
        from repro.serving.fastserve import fastserve_stats
        print(cache.describe())
        print(grid_stats().describe())
        print(fastserve_stats().describe())
        if cache.disk_dir is None:
            print("hint: set REPRO_CACHE_DIR=.repro_cache (or pass --dir) "
                  "to persist results across runs")
        return 0
    if args.action == "clear":
        entries = cache.entry_count() + cache.disk_entry_count()
        cache.clear(disk=True)
        print(f"cleared {entries} cache entries")
        return 0
    # bench: serial vs parallel vs warm sweep, recorded for PR tracking.
    from repro.engine.bench import (
        render_benchmark,
        run_engine_benchmark,
        write_benchmark,
    )

    record = run_engine_benchmark(workers=args.workers)
    print(render_benchmark(record))
    path = write_benchmark(record, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import math

    from repro.faults import FaultModel, fault_sweep

    model = FaultModel(
        seed=args.seed,
        core_mtbf_s=args.core_mtbf if args.core_mtbf else math.inf,
        core_repair_s=args.repair,
        chip_mtbf_s=args.chip_mtbf if args.chip_mtbf else math.inf,
        slowdown_mtbf_s=(args.slowdown_mtbf if args.slowdown_mtbf
                         else math.inf),
        retry_budget=args.retry_budget,
    )
    apps = args.apps.split(",") if args.apps else None
    rows = fault_sweep(model, apps=apps, duration_s=args.duration,
                       utilization=args.utilization)
    print(model.describe())
    table = Table(
        ["chip", "app", "offered qps", "avail %", "retries", "dropped",
         "lost batches", "capacity down %", "p99 ms", "p99 faulted ms",
         "SLO viol %"],
        title=f"Seeded fault sweep ({args.duration:.3g} s of traffic at "
              f"{args.utilization:.0%} of SLO capacity)")
    for row in rows:
        table.add_row([
            row.chip, row.app, row.offered_qps,
            100.0 * row.faulted.availability,
            row.faulted.retried_requests, row.faulted.dropped_requests,
            row.faulted.lost_batches,
            100.0 * row.faulted.lost_capacity_fraction,
            row.baseline.p99_s * 1e3, row.faulted.p99_s * 1e3,
            100.0 * row.faulted.slo_violation_fraction,
        ])
    print(table.render())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import chaos_sweep

    apps = tuple(args.apps.split(",")) if args.apps else ("cnn0",)
    rows = chaos_sweep(seed=args.seed, apps=apps, replicas=args.replicas,
                       duration_s=args.duration,
                       utilization=args.utilization,
                       max_batch=args.max_batch)
    table = Table(
        ["chip", "app", "scenario", "policy", "offered qps", "avail %",
         "shed %", "p99 ms", "SLO viol %", "hedged", "ejected", "failover",
         "degraded s"],
        title=f"Chaos sweep ({args.replicas} replicas, "
              f"{args.duration:.3g} s of traffic sized for "
              f"{args.replicas - 1} replicas at "
              f"{args.utilization:.0%} utilization)")
    for row in rows:
        stats = row.stats
        table.add_row([
            row.chip, row.app, row.scenario, row.policy, row.offered_qps,
            100.0 * stats.availability, 100.0 * stats.shed_fraction,
            stats.p99_s * 1e3, 100.0 * stats.slo_violation_fraction,
            stats.hedged_requests, stats.ejections,
            stats.failed_over_requests, stats.degraded_s,
        ])
    print(table.render())
    return 0


def _cmd_pod(args: argparse.Namespace) -> int:
    from repro.pod import pod_chaos_sweep

    apps = tuple(args.apps.split(",")) if args.apps else ("cnn0",)
    rows = pod_chaos_sweep(seed=args.seed, apps=apps, slices=args.slices,
                           slice_chips=args.slice_chips,
                           duration_s=args.duration,
                           utilization=args.utilization,
                           max_batch=args.max_batch,
                           parallelism=args.parallelism)
    table = Table(
        ["chip", "app", "topology", "scenario", "policy", "offered qps",
         "avail %", "shed %", "p99 ms", "SLO viol %", "ejected", "failover",
         "degraded s"],
        title=f"Pod chaos sweep ({args.slices} slices x "
              f"{args.slice_chips} chips, {args.parallelism}-parallel, "
              f"{args.duration:.3g} s of traffic sized for "
              f"{args.slices - 1} slices at "
              f"{args.utilization:.0%} utilization)")
    for row in rows:
        stats = row.stats
        table.add_row([
            row.chip, row.app, row.topology, row.scenario, row.policy,
            row.offered_qps, 100.0 * stats.availability,
            100.0 * stats.shed_fraction, stats.p99_s * 1e3,
            100.0 * stats.slo_violation_fraction, stats.ejections,
            stats.failed_over_requests, stats.degraded_s,
        ])
    print(table.render())
    return 0


def _cmd_llm(args: argparse.Namespace) -> int:
    from repro.serving import llm_sweep

    models = tuple(args.models.split(",")) if args.models else ("llm0", "llm1")
    if args.faults:
        return _cmd_llm_faults(args, models)
    rows = llm_sweep(seed=args.seed, models=models, duration_s=args.duration,
                     slots=args.slots, utilization=args.utilization)
    table = Table(
        ["chip", "model", "slots", "offered qps", "reqs", "tokens", "tok/s",
         "mean batch", "TTFT p99 ms", "tok p99 ms", "TTFT viol %",
         "tok viol %", "decode ops:byte", "mem-bound"],
        title=f"Generative serving sweep (continuous batching, "
              f"{args.duration:.3g} s of traffic at "
              f"{args.utilization:.0%} of decode capacity)")
    for row in rows:
        stats = row.stats
        table.add_row([
            row.chip, row.model, row.slots, row.offered_qps, stats.requests,
            stats.tokens_generated, stats.tokens_per_s,
            stats.mean_decode_batch, stats.ttft_p99_s * 1e3,
            stats.per_token_p99_s * 1e3,
            100.0 * stats.ttft_violation_fraction,
            100.0 * stats.per_token_violation_fraction,
            row.decode_ops_per_byte,
            "yes" if row.decode_memory_bound else "NO",
        ])
    print(table.render())
    return 0


def _cmd_llm_faults(args: argparse.Namespace, models: tuple) -> int:
    from repro.serving import llm_chaos_sweep

    rows = llm_chaos_sweep(
        seed=args.seed, models=models, duration_s=args.duration,
        slots=args.slots, utilization=args.utilization,
        checkpoint_every=args.checkpoint_every)
    table = Table(
        ["chip", "model", "scenario", "policy", "reqs", "served",
         "avail %", "goodput %", "wasted tok", "recovered", "recomputed",
         "migrated", "snapshots", "TTFT p99 ms", "tok/s"],
        title=f"Generative recovery chaos sweep (checkpoint every "
              f"{args.checkpoint_every} tokens, {args.duration:.3g} s of "
              f"traffic at {args.utilization:.0%} of decode capacity)")
    for row in rows:
        stats = row.stats
        table.add_row([
            row.chip, row.model, row.scenario, row.policy, stats.requests,
            stats.served_requests, 100.0 * stats.availability,
            100.0 * stats.goodput_fraction, stats.wasted_tokens,
            stats.recovered_tokens, stats.recomputed_tokens,
            stats.migrated_requests, stats.snapshots,
            stats.ttft_p99_s * 1e3, stats.tokens_per_s,
        ])
    print(table.render())
    return 0


#: Friendly aliases for the observability commands, which are typed by
#: hand far more often than scripted: the paper's model names map onto
#: the zoo's internal ones.
_APP_ALIASES = {
    "resnet50": "cnn0",
    "resnet": "cnn0",
    "bert": "bert0",
    "lstm": "rnn0",
}


def _resolve_app(name: str):
    """App lookup, case-insensitive and alias-aware (trace/metrics only)."""
    lowered = name.lower()
    try:
        return app_by_name(_APP_ALIASES.get(lowered, lowered))
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; try one of "
            f"{[s.name for s in PRODUCTION_APPS]} or an alias like "
            f"{sorted(_APP_ALIASES)}") from None


def _resolve_chip(name: str):
    """Chip lookup, case-insensitive (trace/metrics only)."""
    for chip in GENERATIONS:
        if chip.name.lower() == name.lower():
            return chip
    return chip_by_name(name)  # preserves the canonical error message


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import build_trace, profile_result

    spec = _resolve_app(args.app)
    chip = _resolve_chip(args.chip)
    traced = build_trace(spec, chip, batch=args.batch, dtype=args.dtype,
                         serve=not args.no_serve, seed=args.seed)
    payload = traced.tracer.export_json()
    with open(args.out, "w") as fh:
        fh.write(payload)
    summary = traced.summary_dict()
    print(f"wrote {args.out}: {summary['spans']} spans "
          f"({len(payload):,} bytes) for {summary['app']} on "
          f"{summary['chip']} (batch {summary['batch']}, "
          f"{summary['dtype']})")
    if traced.tracer.truncated:
        print("warning: span capacity reached; trace is truncated")
    print(profile_result(traced.result).render())
    if traced.serving is not None:
        print(f"  serve phase: {summary['served_requests']} requests "
              "replayed on the simulated clock")
    print("open chrome://tracing or https://ui.perfetto.dev and load "
          f"{args.out} to inspect the timeline")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import (
        collecting_metrics,
        profile_result,
        render_snapshot,
        tier_report,
    )
    from repro.engine.cache import EvalCache
    from repro.serving import BatchPolicy, ServingSimulator, Slo
    from repro.workloads import RequestGenerator

    spec = _resolve_app(args.app)
    chip = _resolve_chip(args.chip)
    with collecting_metrics() as registry:
        point = DesignPoint(chip, cache=EvalCache(enabled=args.cache))
        batch = args.batch or spec.default_batch
        result = point.run(spec, batch)
        evaluation = point.evaluate(spec, batch)
        slo = Slo(spec.slo_ms / 1e3)
        server = ServingSimulator(
            point, spec,
            BatchPolicy(max_batch=max(batch, 1),
                        max_wait_s=slo.limit_s / 4.0),
            slo)
        rate = args.utilization * chip.cores * batch / result.seconds
        requests = RequestGenerator(args.seed).poisson(
            spec.name, rate, args.duration)
        server.simulate(requests)
        snapshot = registry.snapshot()
    print(f"{spec.name} on {chip.name} (batch {batch}): "
          f"{evaluation.chip_qps:.0f} qps, "
          f"{evaluation.chip_power_w:.1f} W")
    print(profile_result(result).render())
    print()
    print(tier_report(snapshot))
    print()
    print(render_snapshot(snapshot))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TPUv4i reproduction: chips, apps, and evaluations.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("chips", help="list the four TPU generations"
                   ).set_defaults(func=_cmd_chips)
    sub.add_parser("apps", help="list the eight production apps"
                   ).set_defaults(func=_cmd_apps)

    evaluate = sub.add_parser("evaluate", help="compile+simulate one app")
    evaluate.add_argument("--app", required=True)
    evaluate.add_argument("--chip", default="TPUv4i")
    evaluate.add_argument("--chip-file", default=None,
                          help="JSON chip config (overrides --chip)")
    evaluate.add_argument("--batch", type=int, default=None)
    evaluate.set_defaults(func=_cmd_evaluate)

    compare = sub.add_parser("compare", help="one app across generations")
    compare.add_argument("--app", required=True)
    compare.add_argument("--batch", type=int, default=None)
    compare.set_defaults(func=_cmd_compare)

    profile = sub.add_parser("profile", help="per-operator cost attribution")
    profile.add_argument("--app", required=True)
    profile.add_argument("--chip", default="TPUv4i")
    profile.add_argument("--batch", type=int, default=None)
    profile.add_argument("--top", type=int, default=10)
    profile.set_defaults(func=_cmd_profile)

    dump = sub.add_parser("dump", help="print a model as HLO text or VLIW asm")
    dump.add_argument("--app", required=True)
    dump.add_argument("--format", choices=("hlo", "asm"), default="hlo")
    dump.add_argument("--chip", default="TPUv4i")
    dump.add_argument("--batch", type=int, default=None)
    dump.set_defaults(func=_cmd_dump)

    migrate = sub.add_parser("migrate", help="move a model between chips")
    migrate.add_argument("--app", required=True)
    migrate.add_argument("--source", default="TPUv3")
    migrate.add_argument("--target", default="TPUv4i")
    migrate.set_defaults(func=_cmd_migrate)

    engine = sub.add_parser(
        "engine", help="evaluation-engine cache stats and benchmark")
    engine.add_argument("action", choices=("stats", "clear", "bench"),
                        nargs="?", default="stats")
    engine.add_argument("--dir", default=None,
                        help="disk cache directory (default: memory only, "
                             "or $REPRO_CACHE_DIR)")
    engine.add_argument("--workers", type=int, default=None,
                        help="process-pool size for 'bench' "
                             "(default: CPU affinity)")
    engine.add_argument("--output", default="BENCH_engine.json",
                        help="where 'bench' writes its JSON record")
    engine.set_defaults(func=_cmd_engine)

    faults = sub.add_parser(
        "faults", help="seeded fault-injection sweep: availability and "
                       "p99-under-faults per chip generation")
    faults.add_argument("--seed", type=int, default=0,
                        help="fault + traffic seed (default 0)")
    faults.add_argument("--core-mtbf", type=float, default=0.5,
                        help="mean simulated seconds between core failures "
                             "(0 disables; default 0.5)")
    faults.add_argument("--chip-mtbf", type=float, default=0.0,
                        help="mean simulated seconds between chip-wide "
                             "outages (0 disables; default off)")
    faults.add_argument("--slowdown-mtbf", type=float, default=0.0,
                        help="mean simulated seconds between transient "
                             "slowdowns (0 disables; default off)")
    faults.add_argument("--repair", type=float, default=0.1,
                        help="mean core repair time in simulated seconds")
    faults.add_argument("--retry-budget", type=int, default=2,
                        help="re-enqueues allowed per request before drop")
    faults.add_argument("--duration", type=float, default=2.0,
                        help="simulated traffic seconds per (chip, app)")
    faults.add_argument("--utilization", type=float, default=0.5,
                        help="offered load as a fraction of SLO capacity")
    faults.add_argument("--apps", default=None,
                        help="comma-separated app names "
                             "(default: the DSE subset)")
    faults.set_defaults(func=_cmd_faults)

    cluster = sub.add_parser(
        "cluster", help="chaos sweep: protected vs unprotected N-replica "
                        "clusters across chaos scenarios and generations")
    cluster.add_argument("--seed", type=int, default=0,
                         help="chaos + traffic seed (default 0)")
    cluster.add_argument("--apps", default=None,
                         help="comma-separated app names (default cnn0)")
    cluster.add_argument("--replicas", type=int, default=3,
                         help="replicas per cluster (default 3, i.e. N+1 "
                              "over the 2 the traffic is sized for)")
    cluster.add_argument("--duration", type=float, default=1.0,
                         help="simulated traffic seconds per scenario")
    cluster.add_argument("--utilization", type=float, default=0.6,
                         help="offered load vs (replicas-1) SLO capacity")
    cluster.add_argument("--max-batch", type=int, default=8,
                         help="per-replica batching cap (default 8)")
    cluster.set_defaults(func=_cmd_cluster)

    pod = sub.add_parser(
        "pod", help="pod chaos sweep: clusters of multi-chip sharded "
                    "slices under link/slice fault scenarios, on both "
                    "the torus and OCS fabrics")
    pod.add_argument("--seed", type=int, default=0,
                     help="chaos + traffic seed (default 0)")
    pod.add_argument("--apps", default=None,
                     help="comma-separated app names (default cnn0)")
    pod.add_argument("--slices", type=int, default=3,
                     help="slices per cluster (default 3, i.e. N+1 over "
                          "the 2 the traffic is sized for)")
    pod.add_argument("--slice-chips", type=int, default=4,
                     help="chips per slice (default 4)")
    pod.add_argument("--duration", type=float, default=1.0,
                     help="simulated traffic seconds per scenario")
    pod.add_argument("--utilization", type=float, default=0.6,
                     help="offered load vs (slices-1) SLO capacity")
    pod.add_argument("--max-batch", type=int, default=8,
                     help="per-slice batching cap (default 8)")
    pod.add_argument("--parallelism", default="pipeline",
                     choices=("pipeline", "tensor"),
                     help="how each slice shards the model")
    pod.set_defaults(func=_cmd_pod)

    llm = sub.add_parser(
        "llm", help="generative serving sweep: continuous batching of "
                    "autoregressive decode across chip generations")
    llm.add_argument("--seed", type=int, default=0,
                     help="traffic seed (default 0)")
    llm.add_argument("--models", default=None,
                     help="comma-separated generative models "
                          "(default llm0,llm1)")
    llm.add_argument("--slots", type=int, default=None,
                     help="continuous-batching slots per core "
                          "(default: each model's own)")
    llm.add_argument("--duration", type=float, default=1.0,
                     help="simulated traffic seconds per (chip, model)")
    llm.add_argument("--utilization", type=float, default=0.6,
                     help="offered load vs steady decode capacity")
    llm.add_argument("--faults", action="store_true",
                     help="chaos sweep: compare scratch re-prefill vs "
                          "checkpointed recovery under kills and a "
                          "permanent core outage")
    llm.add_argument("--checkpoint-every", type=int, default=8,
                     help="snapshot cadence in generated tokens for the "
                          "recovery policy (with --faults; default 8)")
    llm.set_defaults(func=_cmd_llm)

    trace = sub.add_parser(
        "trace", help="deterministic Chrome trace of one app on one chip "
                      "(compile -> lower -> replay -> serve)")
    trace.add_argument("app", help="app name or alias (e.g. resnet50)")
    trace.add_argument("chip", help="chip name, case-insensitive")
    trace.add_argument("--batch", type=int, default=None)
    trace.add_argument("--dtype", default=None,
                       help="simulation dtype (default: bf16 where "
                            "supported, else the chip's int8 retarget)")
    trace.add_argument("--out", default="trace.json",
                       help="output path (Chrome trace-event JSON)")
    trace.add_argument("--seed", type=int, default=0,
                       help="serve-phase traffic seed")
    trace.add_argument("--no-serve", action="store_true",
                       help="skip the serving phase (compile/replay only)")
    trace.set_defaults(func=_cmd_trace)

    metrics_p = sub.add_parser(
        "metrics", help="run one evaluate+serve workload with the metrics "
                        "registry on and print the attribution report")
    metrics_p.add_argument("--app", default="cnn0",
                           help="app name or alias (default cnn0)")
    metrics_p.add_argument("--chip", default="TPUv4i")
    metrics_p.add_argument("--batch", type=int, default=None)
    metrics_p.add_argument("--duration", type=float, default=0.25,
                           help="simulated traffic seconds (default 0.25)")
    metrics_p.add_argument("--utilization", type=float, default=0.5,
                           help="offered load vs batch capacity")
    metrics_p.add_argument("--seed", type=int, default=0)
    metrics_p.add_argument("--cache", action="store_true",
                           help="use an enabled engine cache (shows hits)")
    metrics_p.set_defaults(func=_cmd_metrics)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
