"""Deterministic random number generation for simulations.

Every stochastic component in the library (request generators, yield models,
serving simulators) draws from a :class:`DeterministicRng` seeded explicitly,
so simulation results are reproducible run to run and in tests.
"""

from __future__ import annotations

import math
from typing import List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the distributions the simulators need.

    Thin wrapper over :class:`numpy.random.Generator` that (a) forces an
    explicit seed and (b) exposes only the handful of named distributions
    used across the library, making stochastic call sites self-describing.
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._gen = np.random.default_rng(seed)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent stream; used to give subsystems their own RNG."""
        return DeterministicRng((self.seed * 1_000_003 + salt) % (2**63))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One sample from U[low, high)."""
        return float(self._gen.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """One sample from Exp with the given mean (inter-arrival times)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self._gen.exponential(mean))

    def poisson_arrivals(self, rate_per_s: float, duration_s: float) -> List[float]:
        """Arrival timestamps of a Poisson process over [0, duration_s).

        Draws gaps in vectorized chunks but stays bit-identical to the
        obvious scalar loop (``now += exp(); stop when now >= duration``):
        numpy fills an array from the same stream element by element, a
        running ``cumsum`` seeded with ``now`` performs the same float
        additions in the same order, and when the terminating draw lands
        mid-chunk the generator state is rewound and exactly the draws
        the scalar loop would have consumed are re-drawn — so a later
        caller of this generator sees an unchanged stream.
        """
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        mean = 1.0 / rate_per_s
        gen = self._gen
        bit_gen = gen.bit_generator
        arrivals: List[float] = []
        now = 0.0
        chunk = 4096
        while True:
            state = bit_gen.state
            gaps = gen.exponential(mean, chunk)
            cum = np.cumsum(np.concatenate(((now,), gaps)))[1:]
            stop = int(np.searchsorted(cum, duration_s, side="left"))
            if stop < chunk:
                # The terminating draw is inside this chunk: rewind and
                # consume exactly stop+1 draws, as the scalar loop would.
                bit_gen.state = state
                tail = gen.exponential(mean, stop + 1)
                if stop:
                    cum = np.cumsum(np.concatenate(((now,), tail)))[1:]
                    arrivals.extend(cum[:stop].tolist())
                return arrivals
            arrivals.extend(cum.tolist())
            now = float(cum[-1])

    def event_times(self, mean_interval_s: float,
                    horizon_s: float) -> List[float]:
        """Timestamps of a Poisson event process over ``[0, horizon_s)``.

        Like :meth:`poisson_arrivals` but parameterized by the mean gap
        (an MTBF, say) instead of a rate, and tolerant of *no* events: an
        infinite mean interval — "this never fails" — returns an empty
        list without consuming any randomness.
        """
        if mean_interval_s <= 0:
            raise ValueError(
                f"mean interval must be positive, got {mean_interval_s}")
        if math.isinf(mean_interval_s) or horizon_s <= 0:
            return []
        times: List[float] = []
        now = 0.0
        while True:
            now += float(self._gen.exponential(mean_interval_s))
            if now >= horizon_s:
                return times
            times.append(now)

    def lognormal(self, mean: float, sigma: float = 0.25) -> float:
        """A positive sample with the given *linear-space* mean.

        Used for service-time jitter: the returned values average ``mean``.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        mu = np.log(mean) - 0.5 * sigma**2
        return float(self._gen.lognormal(mu, sigma))

    def choice(self, items: Sequence[T], weights: Sequence[float] = ()) -> T:
        """Pick one item, optionally with relative weights."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        if weights:
            if len(weights) != len(items):
                raise ValueError("weights must match items in length")
            total = float(sum(weights))
            probs = [w / total for w in weights]
            index = int(self._gen.choice(len(items), p=probs))
        else:
            index = int(self._gen.integers(0, len(items)))
        return items[index]

    def integers(self, low: int, high: int) -> int:
        """One integer in [low, high)."""
        return int(self._gen.integers(low, high))

    def normal_array(self, shape: Sequence[int], scale: float = 1.0) -> np.ndarray:
        """A float32 array of N(0, scale) samples (synthetic weights/inputs)."""
        return (self._gen.standard_normal(tuple(shape)) * scale).astype(np.float32)
