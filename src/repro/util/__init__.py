"""Shared utilities: units, deterministic RNG, and ASCII table rendering.

These helpers are deliberately dependency-light; everything above them in the
stack (``repro.arch``, ``repro.sim``, the benchmarks) uses them to keep
unit handling and report formatting consistent.
"""

from repro.util.units import (
    GHZ,
    GIB,
    KIB,
    MHZ,
    MIB,
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    TERA,
    Frequency,
    bytes_str,
    count_str,
    seconds_str,
)
from repro.util.rng import DeterministicRng
from repro.util.tables import Table

__all__ = [
    "GHZ",
    "GIB",
    "KIB",
    "MHZ",
    "MIB",
    "GIGA",
    "KILO",
    "MEGA",
    "MICRO",
    "MILLI",
    "NANO",
    "TERA",
    "Frequency",
    "DeterministicRng",
    "Table",
    "bytes_str",
    "count_str",
    "seconds_str",
]
