"""Unit constants and human-readable formatting.

The simulator keeps everything in SI base units internally (bytes, seconds,
hertz, operations) and converts only at the reporting edge. These constants
make call sites read like the paper's tables: ``128 * MIB``, ``1.05 * GHZ``,
``614 * GIGA`` bytes/s.
"""

from __future__ import annotations

from dataclasses import dataclass

# Decimal (SI) multipliers -- used for rates: FLOP/s, bytes/s, Hz.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

# Sub-unit multipliers.
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

# Binary multipliers -- used for capacities: SRAM, HBM sizes.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Frequency aliases.
MHZ = MEGA
GHZ = GIGA


@dataclass(frozen=True)
class Frequency:
    """A clock frequency with cycle/time conversions.

    >>> clk = Frequency(1.05 * GHZ)
    >>> round(clk.cycles_to_seconds(1050), 9)
    1e-06
    """

    hertz: float

    def __post_init__(self) -> None:
        if self.hertz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hertz}")

    @property
    def period_s(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.hertz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.hertz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to (fractional) cycles at this clock."""
        return seconds * self.hertz

    def __str__(self) -> str:
        if self.hertz >= GHZ:
            return f"{self.hertz / GHZ:.3g} GHz"
        return f"{self.hertz / MHZ:.3g} MHz"


def bytes_str(num_bytes: float) -> str:
    """Render a byte count with a binary suffix (KiB/MiB/GiB).

    >>> bytes_str(128 * MIB)
    '128 MiB'
    """
    magnitude = abs(num_bytes)
    for threshold, suffix in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if magnitude >= threshold:
            return f"{num_bytes / threshold:.4g} {suffix}"
    return f"{num_bytes:.4g} B"


def count_str(count: float) -> str:
    """Render a large count with a decimal suffix (K/M/G/T).

    >>> count_str(138 * TERA)
    '138 T'
    """
    magnitude = abs(count)
    for threshold, suffix in ((PETA, "P"), (TERA, "T"), (GIGA, "G"), (MEGA, "M"), (KILO, "K")):
        if magnitude >= threshold:
            return f"{count / threshold:.4g} {suffix}"
    return f"{count:.4g}"


def seconds_str(seconds: float) -> str:
    """Render a duration with ms/us/ns suffixes.

    >>> seconds_str(0.0025)
    '2.5 ms'
    """
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.4g} s"
    for threshold, suffix in ((MILLI, "ms"), (MICRO, "us"), (NANO, "ns")):
        if magnitude >= threshold:
            return f"{seconds / threshold:.4g} {suffix}"
    return f"{seconds / PICO:.4g} ps"
