"""ASCII table rendering for benchmark reports.

Every benchmark regenerates a paper table or figure as rows of text; this
module gives them one consistent renderer so EXPERIMENTS.md artifacts and
bench stdout line up column for column.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Table:
    """A simple left/right-aligned ASCII table.

    >>> t = Table(["chip", "TDP (W)"])
    >>> t.add_row(["TPUv4i", 175])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    chip   | TDP (W)
    -------+--------
    TPUv4i |     175
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        row = [_format_cell(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_rows(self, rows: Iterable[Iterable[Cell]]) -> None:
        for row in rows:
            self.add_row(row)

    def _column_widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table; first column left-aligned, the rest right-aligned."""
        widths = self._column_widths()

        def fmt_row(cells: Sequence[str]) -> str:
            parts = [cells[0].ljust(widths[0])]
            parts.extend(cell.rjust(w) for cell, w in zip(cells[1:], widths[1:]))
            return " | ".join(parts)

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def bar_chart(labels: Sequence[str], values: Sequence[float], width: int = 40,
              title: str = "", unit: str = "") -> str:
    """Render a horizontal ASCII bar chart (used by figure benchmarks).

    The longest bar spans ``width`` characters; values must be non-negative.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if any(v < 0 for v in values):
        raise ValueError("bar_chart requires non-negative values")
    peak = max(values) if values else 0.0
    label_w = max((len(l) for l in labels), default=0)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / peak)) if peak > 0 else 0
        suffix = f" {value:.4g}{(' ' + unit) if unit else ''}"
        lines.append(f"{label.ljust(label_w)} | {'#' * bar_len}{suffix}")
    return "\n".join(lines)
