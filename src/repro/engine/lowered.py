"""Process-wide cache of lowered programs, next to the module cache.

Lowering a :class:`~repro.isa.program.Program` (see
:mod:`repro.sim.lowered`) is a one-shot pass, but several flows replay
one program more than once — an int8 table after a bf16 run, a serving
simulator re-driving its batch-step programs, property tests re-running
fixed programs. This registry is content-addressed: the key is the chip
configuration (frozen dataclass, hashable) plus :meth:`Program.
signature`, so two structurally identical programs — or one program
mutated by ``append`` between runs — never share a stale lowering.

Like :mod:`repro.engine.modules`, entries live for the process and are
inherited for free by forked :class:`~repro.engine.parallel.
ParallelSweeper` workers. Lowered programs are deliberately *not* put in
the :class:`~repro.engine.cache.EvalCache` disk tier: simulation results
themselves are cached there, so a disk round-trip would only ever be
paid instead of the (cheaper) lowering pass.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.sim.lowered import LoweredProgram, lower_program

if TYPE_CHECKING:  # pragma: no cover
    from repro.arch.chip import ChipConfig
    from repro.isa.program import Program

_LOWERED: dict[tuple, LoweredProgram] = {}
_LOCK = threading.Lock()
_ENABLED = True


@dataclass
class LoweredCacheStats:
    """Lookup counters for the process-wide lowered-program cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


_STATS = LoweredCacheStats()


def lowered_program(program: "Program",
                    chip: "ChipConfig") -> LoweredProgram:
    """:func:`lower_program`, memoized per (chip, program content)."""
    if not _ENABLED:
        return lower_program(program, chip)
    key = (chip, program.signature())
    with _LOCK:
        lowered = _LOWERED.get(key)
    if lowered is None:
        _STATS.misses += 1
        lowered = lower_program(program, chip)
        with _LOCK:
            _LOWERED.setdefault(key, lowered)
    else:
        _STATS.hits += 1
    return lowered


def lowered_cache_size() -> int:
    with _LOCK:
        return len(_LOWERED)


def lowered_cache_stats() -> LoweredCacheStats:
    return _STATS


def clear_lowered() -> None:
    """Drop cached lowerings (tests / cold benchmark runs)."""
    global _STATS
    with _LOCK:
        _LOWERED.clear()
    _STATS = LoweredCacheStats()


@contextmanager
def lowered_cache_disabled() -> Iterator[None]:
    """Force fresh lowering passes (cold-path timing)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
