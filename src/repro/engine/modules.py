"""Process-wide cache of built (unCompiled) workload modules.

Building an :class:`~repro.graph.hlo.HloModule` is chip-independent —
``spec.build(batch)`` produces the same graph no matter which design
point will compile it — yet the pre-engine code rebuilt it for every
candidate in a sweep (a 3x3 DSE grid built ``rnn0`` nine times).
This module builds each (workload, batch) once per process and shares
the result; ``compile_model`` never mutates its input (it expands into a
fresh module), so sharing is safe.

Workers forked by the :class:`~repro.engine.parallel.ParallelSweeper`
inherit the parent's populated cache for free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.hlo import HloModule
    from repro.workloads.models import WorkloadSpec

_MODULES: dict[tuple[str, int], "HloModule"] = {}
_LOCK = threading.Lock()
_ENABLED = True


def built_module(spec: "WorkloadSpec", batch: int) -> "HloModule":
    """``spec.build(batch)``, memoized per process by (name, batch)."""
    if not _ENABLED:
        return spec.build(batch)
    key = (spec.name, batch)
    with _LOCK:
        module = _MODULES.get(key)
    if module is None:
        module = spec.build(batch)
        with _LOCK:
            _MODULES.setdefault(key, module)
    return module


def module_cache_size() -> int:
    with _LOCK:
        return len(_MODULES)


def clear_modules() -> None:
    with _LOCK:
        _MODULES.clear()


@contextmanager
def module_cache_disabled() -> Iterator[None]:
    """Force fresh builds (used to time the legacy, cache-free path)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
