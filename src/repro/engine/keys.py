"""Stable, content-addressed cache keys for compile/simulate results.

A cache entry must outlive the Python process that wrote it, so keys
cannot use ``hash()`` (salted per process) or ``id()``-based identity.
Instead every key is the SHA-256 of a canonical JSON rendering of the
inputs that determine an evaluation:

* every field of the :class:`~repro.arch.chip.ChipConfig` dataclass
  (clock, MXU organization, memory hierarchy, ... — change any field and
  the key changes);
* the compiler release (name and feature set);
* the workload name and batch size;
* the CMEM budget override, if any;
* the arithmetic dtype;
* for generative workloads only: the phase (prefill/decode) and the
  decode KV-length bucket — omitted entirely for classic workloads, so
  pre-generative keys (and on-disk entries) are byte-for-byte unchanged.

Two processes — or two runs a week apart — that evaluate the same
(chip, compiler, workload, batch, budget, dtype) tuple therefore compute
the same key and share the on-disk tier.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

#: Bump when the *meaning* of cached payloads changes (e.g. a simulator
#: fidelity fix): old entries are then unreachable rather than wrong.
SCHEMA_VERSION = 1


def canonicalize(value: Any) -> Any:
    """Reduce a value to JSON-stable primitives (deterministic ordering)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, (frozenset, set)):
        return sorted(canonicalize(v) for v in value)
    if isinstance(value, (tuple, list)):
        return [canonicalize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for a cache key")


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of a value's canonical JSON form."""
    payload = json.dumps(canonicalize(value), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chip_fingerprint(chip: Any) -> str:
    """Digest over *every* ChipConfig field — any change invalidates."""
    return fingerprint(chip)


def compiler_fingerprint(version: Any) -> str:
    """Digest over a CompilerVersion (name, age, feature set)."""
    return fingerprint(version)


def eval_key(kind: str, chip_fp: str, compiler_fp: str, workload: str,
             batch: int, cmem_budget_bytes: int | None = None,
             dtype: str = "bf16", *, phase: str | None = None,
             kv_bucket: int | None = None) -> str:
    """The cache key for one evaluation record.

    ``kind`` separates payload types sharing the same inputs
    (``"sim"`` for :class:`SimResult`, ``"eval"`` for
    :class:`Evaluation`); ``chip_fp``/``compiler_fp`` are precomputed
    :func:`chip_fingerprint`/:func:`compiler_fingerprint` digests so hot
    paths hash the (small) outer payload only.

    ``phase``/``kv_bucket`` identify one phase of a generative workload
    (prefill vs decode, and the decode step's KV-length bucket). They
    enter the payload *only when set*: a ``None`` phase produces exactly
    the pre-generative key bytes, so every legacy entry — including
    on-disk tiers written before phases existed — stays reachable.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "chip": chip_fp,
        "compiler": compiler_fp,
        "workload": workload,
        "batch": batch,
        "cmem_budget_bytes": cmem_budget_bytes,
        "dtype": dtype,
    }
    if phase is not None:
        payload["phase"] = phase
    if kv_bucket is not None:
        payload["kv_bucket"] = kv_bucket
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def key_meta(kind: str, chip_name: str, compiler_name: str, workload: str,
             batch: int, cmem_budget_bytes: int | None,
             dtype: str, *, phase: str | None = None,
             kv_bucket: int | None = None) -> dict[str, Any]:
    """Human-readable sidecar metadata stored next to disk entries."""
    meta = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "chip": chip_name,
        "compiler": compiler_name,
        "workload": workload,
        "batch": batch,
        "cmem_budget_bytes": cmem_budget_bytes,
        "dtype": dtype,
    }
    if phase is not None:
        meta["phase"] = phase
    if kv_bucket is not None:
        meta["kv_bucket"] = kv_bucket
    return meta
