"""ParallelSweeper: deterministic process-parallel fan-out.

Evaluating one design candidate is pure CPU work with no shared state,
so sweeps fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
Three properties the engine guarantees:

* **order-preserving merge** — results come back in input order
  (``executor.map``), so downstream consumers (Pareto sets, tables) see
  exactly the sequence the serial loop would produce;
* **bit-identical results** — every task runs the same pure Python
  arithmetic on the same inputs, so parallel output equals serial output
  bit for bit (asserted in ``tests/test_engine.py``);
* **cache merging** — each worker reports the evaluation records it
  computed; the parent absorbs them into the process-global
  :class:`~repro.engine.cache.EvalCache`, so a parallel cold sweep warms
  the parent exactly like a serial one.

A fourth property is *crash tolerance*: a worker process dying (OOM
kill, segfault, ``os._exit``) surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool` and poisons the
whole pool. The sweeper keeps the already-yielded (ordered) prefix of
results, retries the remainder on a fresh pool, and — if pools keep
breaking — finishes the remainder serially in-process. Tasks are pure,
so recomputation changes nothing: results and cache contents match the
serial run exactly either way. Ordinary task exceptions (a ValueError
from bad input) are *not* retried; they propagate unchanged, as in the
serial loop.

On Linux the pool forks, so workers inherit the parent's warm module and
result caches at no cost; tasks already cached in the parent return
without recomputation.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional, Sequence

from repro.engine.cache import get_cache
from repro.obs.metrics import metrics


def available_workers() -> int:
    """CPUs this process may use (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _cached_call(payload: tuple[Callable[[Any], Any], Any]
                 ) -> tuple[Any, dict[str, Any]]:
    """Worker-side wrapper: run the task, return (result, new cache entries).

    With a forked worker the inherited cache already holds the parent's
    entries, so ``export_since`` ships only what this task added.
    """
    task, item = payload
    cache = get_cache()
    before = cache.keys()
    result = task(item)
    return result, cache.export_since(before)


class ParallelSweeper:
    """Fans a task over items with chunking and order-preserving merge.

    ``workers=None`` sizes the pool to the available CPUs; ``workers=1``
    (or a single item) degrades to a plain in-process loop, which is the
    reference the parallel path must match bit for bit.

    The sweeper also detects when fan-out is a *loss* and falls back to
    the serial loop itself: a requested pool wider than the CPUs this
    process may actually use (``os.sched_getaffinity``) only adds fork
    and IPC overhead on top of time-sliced execution — on a 1-CPU box the
    engine benchmark measured the 2-worker sweep ~18% *slower* than
    serial. Effective width is ``min(workers, CPUs, items)``; at 1, the
    pool is skipped entirely. Results are bit-identical either way, so
    the fallback is observable only as speed. ``force_parallel=True``
    opts out (tests of the pool plumbing itself).

    ``pool_retries`` bounds how many *fresh* pools are tried after a
    :class:`BrokenProcessPool` before the remaining items run serially;
    only items whose results were not yet yielded are re-executed.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None,
                 force_parallel: bool = False,
                 pool_retries: int = 1) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if pool_retries < 0:
            raise ValueError("pool_retries must be non-negative")
        self.workers = workers if workers is not None else available_workers()
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.force_parallel = force_parallel
        self.pool_retries = pool_retries

    def effective_workers(self, item_count: int) -> int:
        """Pool width that actually pays: capped by CPU affinity and grid."""
        width = min(self.workers, item_count)
        if not self.force_parallel:
            width = min(width, available_workers())
        return max(1, width)

    # ----------------------------------------------------------------- plumbing

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        # Prefer fork: cheap start-up and free cache inheritance.
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _chunksize(self, count: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances load without per-item IPC.
        return max(1, -(-count // (self.workers * 4)))

    def _resilient_map(self, task: Callable[[Any], Any], items: list[Any],
                       pool_size: int) -> list[Any]:
        """Pool map that survives worker crashes.

        ``executor.map`` yields results in input order, so on a
        :class:`BrokenProcessPool` the consumed prefix is exact — those
        items are done and correct. The remainder is retried on a fresh
        pool up to ``pool_retries`` times, then finished serially. Tasks
        are pure, so the merged result equals the all-serial run.
        """
        reg = metrics()
        results: list[Any] = []
        for _attempt in range(1 + self.pool_retries):
            pending = items[len(results):]
            if not pending:
                return results
            try:
                with ProcessPoolExecutor(
                        max_workers=min(pool_size, len(pending)),
                        mp_context=self._context()) as pool:
                    for result in pool.map(
                            task, pending,
                            chunksize=self._chunksize(len(pending))):
                        results.append(result)
                return results
            except BrokenProcessPool:
                reg.count("engine.pool.broken_pools")
                if _attempt < self.pool_retries:
                    reg.count("engine.pool.retries")
                continue  # crashed worker: fresh pool for the remainder
        # Pools keep dying (or none survive a single attempt): the serial
        # loop cannot crash the parent, so it is the terminal fallback.
        remainder = items[len(results):]
        reg.count("engine.pool.serial_fallbacks")
        reg.count("engine.pool.crash_recovered_items", len(remainder))
        results.extend(task(item) for item in remainder)
        return results

    # --------------------------------------------------------------------- map

    def map(self, task: Callable[[Any], Any],
            items: Sequence[Any]) -> list[Any]:
        """``[task(i) for i in items]``, possibly across processes.

        ``task`` must be a module-level callable (picklable). Results are
        returned in input order regardless of completion order, and
        worker crashes degrade to retry/serial instead of aborting.
        """
        items = list(items)
        pool_size = self.effective_workers(len(items))
        reg = metrics()
        if reg.enabled:
            reg.counter("engine.pool.maps").inc()
            reg.counter("engine.pool.items").inc(len(items))
            reg.gauge("engine.pool.workers").set(pool_size)
            if pool_size > 1 and len(items) > 1:
                reg.histogram("engine.pool.items_per_worker").observe(
                    len(items) / pool_size)
        if pool_size <= 1 or len(items) <= 1:
            reg.count("engine.pool.serial_maps")
            return [task(item) for item in items]
        return self._resilient_map(task, items, pool_size)

    def map_cached(self, task: Callable[[Any], Any],
                   items: Sequence[Any]) -> list[Any]:
        """:meth:`map`, plus merging worker cache entries into the parent.

        Serial execution updates the global cache directly; parallel
        execution ships each worker's new entries back and absorbs them,
        so a subsequent warm sweep hits in-process either way. A crashed
        worker loses nothing: its chunk is recomputed (fresh pool, then
        serial), and only complete (result, entries) pairs are merged,
        so the cache never holds a partial record.
        """
        items = list(items)
        if self.effective_workers(len(items)) <= 1 or len(items) <= 1:
            return [task(item) for item in items]
        pairs = self.map(_cached_call, [(task, item) for item in items])
        cache = get_cache()
        results: list[Any] = []
        for result, entries in pairs:
            cache.absorb(entries)
            results.append(result)
        return results
