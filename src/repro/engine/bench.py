"""The engine's own benchmark: serial vs parallel vs warm vs fast-sim.

Runs the default DSE grid (``enumerate_candidates`` x ``DEFAULT_DSE_APPS``)
four ways and reports wall times plus cache counters:

* ``serial_cold_s`` — the pre-engine path: plain serial loop with the
  result *and* module caches disabled and the interpreter simulator
  (every candidate rebuilds, recompiles and interprets everything,
  exactly like the code before this engine);
* ``engine_serial_cold_s`` — serial loop through the engine with a cold
  result cache (shared module builds, lowered-IR fast sim — the default
  cold path);
* ``parallel_cold_s`` — cold result cache, ``workers`` processes (the
  sweeper falls back to serial itself when affinity makes fan-out a
  loss, so this never regresses below the engine serial path);
* ``warm_s`` — the same sweep again with the warm result cache.

A fifth phase times the *simulation path alone* on the grid's compiled
programs — the thing the lowered-IR/replay kernel optimizes:

* ``interp_cold_s`` — one interpreter run per (chip, app) program;
* ``fast_cold_s`` — one cold lowering + replay per program;
* ``speedup_fast_vs_interp`` — their ratio (the PR-tracked headline).

A sixth phase exercises the fault-injection subsystem:

* ``faulted_sweep_s`` — one seeded faultless-vs-faulted serving sweep
  (:func:`repro.faults.sweep.fault_sweep`) on TPUv4i;
* ``fault_determinism`` — the same sweep again must match record for
  record (ServingStats are exact dataclasses, so this is bit-level);
* ``zero_fault_identical`` — a zero-fault :class:`~repro.faults.model.
  FaultModel` must reproduce the faultless baseline bit for bit.

A seventh phase prices the observability layer:

* ``obs_off_s`` / ``obs_on_s`` — one instrumented serving sweep with the
  metrics registry disabled vs enabled;
* ``obs_identical`` — the two runs' results must match bit for bit
  (instrumentation may never perturb outputs);
* ``obs_disabled_overhead_pct`` — an *analytic* bound on what the
  disabled guards cost: (recording ops observed while enabled) x
  (measured per-op cost of a disabled guard) over the disabled wall
  time. Analytic because a direct off-vs-baseline timing diff of a few
  hundred boolean checks drowns in scheduler noise;
* ``trace_deterministic`` — two ``build_trace`` exports of the same app
  must serialize to byte-identical Chrome JSON.

An eighth phase exercises the cluster-resilience layer:

* ``cluster_sweep_s`` — one seeded chaos sweep (:func:`repro.cluster.
  sweep.chaos_sweep`) on TPUv4i;
* ``cluster_determinism`` — the same sweep again must match row for row;
* ``cluster_zero_fault_identical`` — a one-replica passthrough cluster
  with no faults must reproduce the plain serving stats bit for bit;
* ``cluster_kill1_availability`` — availability of the resilient policy
  with one of three replicas killed outright.

A ninth phase times the vectorized grid kernel
(:mod:`repro.sim.gridkernel`) on a clock x MXU x CMEM candidate grid:

* ``grid_fast_cold_s`` / ``grid_cold_s`` — 200+ (chip, app) points
  replayed per point vs evaluated as one batched kernel pass, both cold;
* ``grid_identical`` — the batched results must match the per-point
  replay bit for bit;
* ``grid_sweep_serial_s`` / ``grid_sweep_s`` — the same candidate sweep
  end to end (compile + simulate + evaluate), per-point engine serial
  (``gridsim_disabled``) vs grid-routed, fresh caches both ways;
* ``speedup_grid_vs_fast`` / ``speedup_grid_vs_engine_serial`` — the
  PR-tracked headlines.

A tenth phase times the vectorized serving-replay kernel
(:mod:`repro.serving.fastserve`) on the chaos sweep at 10x the cluster
phase's traffic volume (5 s of Poisson arrivals per scenario):

* ``serve_fast_s`` / ``serve_cold_s`` — the same seeded chaos sweep
  through the replay kernels vs the reference event loops
  (``fastserve_disabled``);
* ``fastserve_identical`` — every row must match bit for bit;
* ``speedup_fastserve_vs_event`` — the PR-tracked headline;
* ``serve_requests`` — total requests replayed across the sweep's rows.

An eleventh phase exercises the pod-scale sharding layer:

* ``pod_sweep_s`` — one seeded pod chaos sweep (:func:`repro.pod.sweep.
  pod_chaos_sweep`): clusters of 4-chip sharded slices on both the
  torus and OCS fabrics, across the link/slice fault scenarios;
* ``pod_determinism`` — the same sweep again must match row for row;
* ``pod_identity`` — a 1-chip slice with zero link faults must
  reproduce the plain ``ServingSimulator`` stats bit for bit (the
  identity contract the slice simulator is built on);
* ``pod_kill1_link_availability`` — availability of the resilient
  policy with one ICI link of one slice killed outright.

A twelfth phase exercises generative serving
(:mod:`repro.serving.continuous`):

* ``llm_sweep_s`` — one seeded continuous-batching sweep
  (:func:`repro.serving.continuous.llm_sweep`) of both decoder models
  on TPUv4i;
* ``llm_determinism`` — the same sweep again must match row for row;
* ``llm_decode_memory_bound`` — every row's decode phase must sit left
  of its chip's ridge point (``ops_per_byte`` below the roofline knee);
* ``llm_phase_split`` — prefill and decode must price separately: at
  the same batch, their simulated latencies differ;
* ``llm_tokens`` — total tokens generated across the sweep's rows.

All sweep modes produce identical candidate lists and the fast sim is
bit-identical to the interpreter (checked here and asserted in tests).
The dict is written to ``BENCH_engine.json`` so speedups are tracked
across PRs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.engine.cache import EvalCache, get_cache, set_cache
from repro.engine.lowered import clear_lowered, lowered_cache_disabled
from repro.engine.modules import clear_modules, module_cache_disabled
from repro.engine.parallel import available_workers
from repro.sim.gridkernel import clear_grid_kernel, gridsim_disabled
from repro.sim.lowered import fastsim_disabled

#: Default output location: the repository/working-directory root.
DEFAULT_OUTPUT = "BENCH_engine.json"


def _sweep_serial_legacy(grid, apps) -> list:
    """The pre-engine behavior: no shared caches, interpreter simulator."""
    from repro.core.design_point import clear_shared_design_points
    from repro.core.dse import evaluate_candidate
    clear_shared_design_points()
    cache = get_cache()
    was_enabled = cache.enabled
    cache.disable()
    try:
        with module_cache_disabled(), fastsim_disabled():
            return [evaluate_candidate(chip, apps) for chip in grid]
    finally:
        if was_enabled:
            cache.enable()
        clear_shared_design_points()


def _bench_sim_path(grid, apps) -> dict:
    """Time the simulation path alone: interpreter vs cold lower+replay.

    Compiles each (chip, app) program once (at the app's default batch),
    then measures one interpreter pass and one cold lowering + replay
    pass per program, asserting the results stay bit-identical.
    """
    from repro.core.design_point import DesignPoint
    from repro.workloads.models import app_by_name

    jobs = []
    for chip in grid:
        point = DesignPoint(chip, cache=EvalCache(enabled=False))
        for app in apps:
            spec = app_by_name(app)
            program = point.compiled(spec, spec.default_batch).program
            jobs.append((point.sim, program))

    t0 = time.perf_counter()
    interp = [sim.run_interpreted(program) for sim, program in jobs]
    interp_cold_s = time.perf_counter() - t0

    clear_lowered()
    with lowered_cache_disabled():
        t0 = time.perf_counter()
        fast = [sim.run(program) for sim, program in jobs]
        fast_cold_s = time.perf_counter() - t0

    identical = all(
        a.cycles == b.cycles and a.counters == b.counters
        and a.report == b.report
        for a, b in zip(interp, fast))
    return {
        "sim_programs": len(jobs),
        "interp_cold_s": round(interp_cold_s, 4),
        "fast_cold_s": round(fast_cold_s, 4),
        "speedup_fast_vs_interp": round(interp_cold_s / fast_cold_s, 2),
        "fast_sim_identical": identical,
    }


def _bench_faults(apps: Sequence[str]) -> dict:
    """Time a seeded fault sweep; assert determinism + zero-fault identity.

    Kept intentionally small (one chip, the first two apps, 1 s of
    traffic): the phase tracks the fault path's cost and its two
    bit-identity contracts, not fleet-scale numbers.
    """
    from repro.arch.chip import TPUV4I
    from repro.faults.model import FaultModel
    from repro.faults.sweep import fault_sweep

    bench_apps = tuple(apps)[:2]
    model = FaultModel(seed=7, core_mtbf_s=0.25, core_repair_s=0.05,
                       slowdown_mtbf_s=0.5)
    t0 = time.perf_counter()
    first = fault_sweep(model, apps=bench_apps, chips=(TPUV4I,),
                        duration_s=1.0)
    faulted_sweep_s = time.perf_counter() - t0

    repeat = fault_sweep(model, apps=bench_apps, chips=(TPUV4I,),
                         duration_s=1.0)
    zero = fault_sweep(FaultModel(seed=7), apps=bench_apps, chips=(TPUV4I,),
                       duration_s=1.0)
    return {
        "faulted_sweep_s": round(faulted_sweep_s, 4),
        "fault_rows": len(first),
        "fault_determinism": first == repeat,
        "zero_fault_identical": all(
            row.faulted == row.baseline for row in zero),
        "min_availability": min(
            (row.faulted.availability for row in first), default=1.0),
    }


def _bench_cluster(apps: Sequence[str]) -> dict:
    """Time a chaos sweep; assert determinism + the passthrough identity.

    The identity check is the cluster layer's core contract: a
    one-replica cluster under the default (passthrough) policy with no
    faults must reproduce the plain ``ServingSimulator`` stats on the
    same trace, every field bit for bit.
    """
    from repro.arch.chip import TPUV4I
    from repro.cluster.cluster import ClusterSimulator
    from repro.cluster.sweep import chaos_sweep
    from repro.core.design_point import shared_design_point
    from repro.serving.batching import BatchPolicy
    from repro.serving.server import ServingSimulator
    from repro.serving.slo import Slo
    from repro.workloads.generator import RequestGenerator
    from repro.workloads.models import app_by_name

    bench_apps = tuple(apps)[:1]
    t0 = time.perf_counter()
    first = chaos_sweep(seed=5, apps=bench_apps, chips=(TPUV4I,),
                        duration_s=0.5)
    cluster_sweep_s = time.perf_counter() - t0
    repeat = chaos_sweep(seed=5, apps=bench_apps, chips=(TPUV4I,),
                         duration_s=0.5)

    spec = app_by_name(bench_apps[0])
    slo = Slo(spec.slo_ms / 1e3)
    point = shared_design_point(TPUV4I)
    simulator = ServingSimulator(
        point, spec, BatchPolicy(max_batch=8, max_wait_s=slo.limit_s / 4.0),
        slo)
    requests = RequestGenerator(13).poisson(spec.name, 400.0, 0.5)
    plain = simulator.simulate(requests)
    clustered = ClusterSimulator([simulator]).simulate(requests)
    resilient = [row.stats.availability for row in first
                 if row.policy == "resilient" and row.scenario == "kill-1"]
    return {
        "cluster_sweep_s": round(cluster_sweep_s, 4),
        "cluster_rows": len(first),
        "cluster_determinism": first == repeat,
        "cluster_zero_fault_identical": clustered.replica_stats[0] == plain,
        "cluster_kill1_availability": min(resilient, default=1.0),
    }


def _bench_fastserve(apps: Sequence[str]) -> dict:
    """Chaos sweep at 10x the cluster phase's volume, kernel vs events.

    Same seed/chip/app as the cluster phase but 5 s of traffic per
    scenario instead of 0.5 s — the scale the replay kernels were built
    for. The identity check is row-for-row bit equality against the
    reference event loops; the speedup is the PR-tracked headline.
    """
    from repro.arch.chip import TPUV4I
    from repro.cluster.sweep import chaos_sweep
    from repro.serving.fastserve import fastserve_disabled

    bench_apps = tuple(apps)[:1]
    t0 = time.perf_counter()
    fast = chaos_sweep(seed=5, apps=bench_apps, chips=(TPUV4I,),
                       duration_s=5.0)
    serve_fast_s = time.perf_counter() - t0

    with fastserve_disabled():
        t0 = time.perf_counter()
        cold = chaos_sweep(seed=5, apps=bench_apps, chips=(TPUV4I,),
                           duration_s=5.0)
        serve_cold_s = time.perf_counter() - t0

    return {
        "serve_chaos_rows": len(fast),
        "serve_requests": sum(row.stats.requests for row in fast),
        "serve_fast_s": round(serve_fast_s, 4),
        "serve_cold_s": round(serve_cold_s, 4),
        "speedup_fastserve_vs_event": round(serve_cold_s / serve_fast_s, 2),
        "fastserve_identical": fast == cold,
    }


def _bench_pod(apps: Sequence[str]) -> dict:
    """Time a pod chaos sweep; assert determinism + the 1-chip identity.

    The identity check is the slice simulator's core contract: a 1-chip
    slice with zero link faults never builds a shard graph and must
    reproduce the plain ``ServingSimulator`` stats on the same trace,
    every field bit for bit.
    """
    from repro.arch.chip import TPUV4I
    from repro.core.design_point import shared_design_point
    from repro.pod.slicesim import SliceSimulator
    from repro.pod.sweep import pod_chaos_sweep
    from repro.pod.topology import slice_topology
    from repro.serving.batching import BatchPolicy
    from repro.serving.server import ServingSimulator
    from repro.serving.slo import Slo
    from repro.workloads.generator import RequestGenerator
    from repro.workloads.models import app_by_name

    bench_apps = tuple(apps)[:1]
    t0 = time.perf_counter()
    first = pod_chaos_sweep(seed=5, apps=bench_apps, chips=(TPUV4I,),
                            duration_s=0.5)
    pod_sweep_s = time.perf_counter() - t0
    repeat = pod_chaos_sweep(seed=5, apps=bench_apps, chips=(TPUV4I,),
                             duration_s=0.5)

    spec = app_by_name(bench_apps[0])
    slo = Slo(spec.slo_ms / 1e3)
    point = shared_design_point(TPUV4I)
    policy = BatchPolicy(max_batch=8, max_wait_s=slo.limit_s / 4.0)
    requests = RequestGenerator(13).poisson(spec.name, 400.0, 0.5)
    plain = ServingSimulator(point, spec, policy, slo).simulate(requests)
    sliced = SliceSimulator(
        point, spec, policy, slo,
        topology=slice_topology(TPUV4I, 1)).simulate(requests)
    kill1 = [row.stats.availability for row in first
             if row.policy == "resilient" and row.scenario == "kill-1-link"]
    return {
        "pod_sweep_s": round(pod_sweep_s, 4),
        "pod_rows": len(first),
        "pod_determinism": first == repeat,
        "pod_identity": sliced == plain,
        "pod_kill1_link_availability": min(kill1, default=1.0),
    }


def _bench_observability(apps: Sequence[str]) -> dict:
    """Price the metrics/tracing layer; assert it never perturbs results.

    The same seeded faulted serving sweep runs with the registry
    disabled and enabled; results must be bit-identical. The disabled
    guards are too cheap to time directly (hundreds of boolean checks
    inside a multi-second run), so the reported overhead is an analytic
    bound: every recording op observed in the enabled run corresponds to
    one guard check in the disabled run, and one guard check costs at
    most one disabled ``count()`` call (measured with a tight loop).
    """
    from repro.arch.chip import TPUV4I
    from repro.core.design_point import clear_shared_design_points
    from repro.faults.model import FaultModel
    from repro.faults.sweep import fault_sweep
    from repro.obs.metrics import MetricsRegistry, collecting_metrics
    from repro.obs.tracer import build_trace
    from repro.workloads.models import app_by_name

    bench_apps = tuple(apps)[:2]
    model = FaultModel(seed=11, core_mtbf_s=0.25, core_repair_s=0.05)

    def sweep_once():
        clear_shared_design_points()
        set_cache(EvalCache())
        return fault_sweep(model, apps=bench_apps, chips=(TPUV4I,),
                           duration_s=1.0)

    t0 = time.perf_counter()
    off = sweep_once()
    obs_off_s = time.perf_counter() - t0

    with collecting_metrics() as registry:
        t0 = time.perf_counter()
        on = sweep_once()
        obs_on_s = time.perf_counter() - t0
        ops = registry.op_count

    # Per-op cost of the disabled path, measured on a disabled registry.
    probe = MetricsRegistry(enabled=False)
    loops = 200_000
    t0 = time.perf_counter()
    for _ in range(loops):
        probe.count("probe")
    per_op_s = (time.perf_counter() - t0) / loops

    overhead_pct = (100.0 * ops * per_op_s / obs_off_s
                    if obs_off_s > 0 else 0.0)

    spec = app_by_name(bench_apps[0])
    clear_shared_design_points()
    first = build_trace(spec, TPUV4I).tracer.export_json()
    clear_shared_design_points()
    second = build_trace(spec, TPUV4I).tracer.export_json()

    return {
        "obs_off_s": round(obs_off_s, 4),
        "obs_on_s": round(obs_on_s, 4),
        "obs_ops_recorded": ops,
        "obs_disabled_overhead_pct": round(overhead_pct, 4),
        "obs_identical": off == on,
        "trace_deterministic": first == second,
        "trace_bytes": len(first),
    }


#: Clock axis for the grid-kernel phase: wide enough that the candidate
#: grid tops 200 (chip, app) points while compiling only once per
#: distinct CMEM provisioning (clock and MXU count never change compiled
#: content). The kernel-vs-replay comparison doubles the axis again —
#: more points per program amortize the one-time structure build.
_GRID_CLOCKS_GHZ = (0.85, 0.95, 1.05, 1.15, 1.25, 1.35)
_GRID_KERNEL_CLOCKS_GHZ = tuple(
    clock + offset for clock in _GRID_CLOCKS_GHZ for offset in (0.0, 0.05))


def _bench_grid(apps: Sequence[str]) -> dict:
    """Time the batched grid kernel against its per-point references.

    Two comparisons on one clock x MXU x CMEM candidate grid:

    * kernel vs per-point replay on the compiled programs (both cold,
      both starting from the same shared compilations) — the
      ``speedup_grid_vs_fast`` headline, with bit-identity asserted over
      every point;
    * the whole candidate sweep end to end, grid-routed vs the per-point
      engine serial loop (``gridsim_disabled``), fresh caches both ways
      — ``speedup_grid_vs_engine_serial``.
    """
    from repro.core.design_point import (
        DesignPoint,
        clear_shared_design_points,
    )
    from repro.core.dse import enumerate_candidates
    from repro.engine.grid import compile_chip_fingerprint
    from repro.engine.sweeps import evaluate_candidates
    from repro.sim.gridkernel import GridPoint, evaluate_grid
    from repro.workloads.models import app_by_name

    chips = enumerate_candidates(clocks_ghz=_GRID_CLOCKS_GHZ)

    # (a) Simulation path alone: one GridPoint per (chip, app), programs
    # compiled once per distinct compile content (the CMEM axis; clock
    # and MXU count don't change compiled programs).
    programs: dict = {}
    points = []
    for chip in enumerate_candidates(clocks_ghz=_GRID_KERNEL_CLOCKS_GHZ):
        dp = DesignPoint(chip, cache=EvalCache(enabled=False))
        for app in apps:
            spec = app_by_name(app)
            key = (compile_chip_fingerprint(chip), app)
            program = programs.get(key)
            if program is None:
                program = dp.compiled(spec, spec.default_batch).program
                programs[key] = program
            points.append(GridPoint(program, chip))

    clear_lowered()
    t0 = time.perf_counter()
    with gridsim_disabled():
        reference = evaluate_grid(points)  # the per-point replay loop
    grid_fast_cold_s = time.perf_counter() - t0

    clear_grid_kernel()
    t0 = time.perf_counter()
    batched = evaluate_grid(points)
    grid_cold_s = time.perf_counter() - t0

    grid_identical = all(
        a.cycles == b.cycles and a.counters == b.counters
        and a.report == b.report
        for a, b in zip(reference, batched))

    # (b) The sweep end to end, fresh caches each way.
    def cold_sweep() -> tuple:
        set_cache(EvalCache())
        clear_modules()
        clear_lowered()
        clear_shared_design_points()
        clear_grid_kernel()
        t0 = time.perf_counter()
        out = evaluate_candidates(chips, apps, workers=1)
        return out, time.perf_counter() - t0

    with gridsim_disabled():
        serial, grid_sweep_serial_s = cold_sweep()
    routed, grid_sweep_s = cold_sweep()

    return {
        "grid_points": len(points),
        "grid_fast_cold_s": round(grid_fast_cold_s, 4),
        "grid_cold_s": round(grid_cold_s, 4),
        "speedup_grid_vs_fast": round(grid_fast_cold_s / grid_cold_s, 2),
        "grid_identical": grid_identical,
        "grid_sweep_points": len(chips) * len(apps),
        "grid_sweep_serial_s": round(grid_sweep_serial_s, 4),
        "grid_sweep_s": round(grid_sweep_s, 4),
        "speedup_grid_vs_engine_serial": round(
            grid_sweep_serial_s / grid_sweep_s, 2),
        "grid_sweep_identical": serial == routed,
    }


def _bench_llm() -> dict:
    """Time the generative serving sweep; assert its contracts.

    Determinism (same seed, same rows, bit for bit), the roofline claim
    (decode lands left of the ridge on every swept generation), the
    phase split (prefill and decode price differently at equal batch —
    the cache keys carry the phase, so they cannot alias), and the
    recovery contracts: a zero-checkpoint zero-fault policy is
    bit-identical to running with no policy, snapshot bytes land in the
    HBM/host traffic ledger at exactly the KV-cache footprint, the
    chaos sweep is deterministic, and under mid-step-kill chaos with a
    permanent core death the checkpointed policy strictly beats the
    scratch-re-prefill baseline on both goodput and served requests.
    """
    from repro.arch.chip import TPUV3, TPUV4I
    from repro.core.design_point import shared_design_point
    from repro.serving.continuous import (ContinuousBatchingSimulator,
                                          llm_chaos_sweep, llm_sweep,
                                          phase_latency_table)
    from repro.serving.recovery import RecoveryPolicy, snapshot_replay
    from repro.workloads.generative import generative_by_name, \
        sample_gen_requests

    t0 = time.perf_counter()
    first = llm_sweep(seed=5, chips=(TPUV4I,), duration_s=0.5)
    llm_sweep_s = time.perf_counter() - t0
    repeat = llm_sweep(seed=5, chips=(TPUV4I,), duration_s=0.5)

    spec = generative_by_name("llm0")
    point = shared_design_point(TPUV4I)
    prefill_s = point.latency_s(spec.prefill(spec.prompt_buckets[0]), 1)
    decode_s = point.latency_s(spec.decode(spec.kv_buckets[0]), 1)

    # Zero-checkpoint, zero-fault identity: the PR 10 contract that a
    # do-nothing RecoveryPolicy cannot perturb a single float.
    table = phase_latency_table(point, spec, spec.default_slots)
    requests = sample_gen_requests(spec, 11, 200.0, 0.3)
    plain_sim = ContinuousBatchingSimulator(point, spec)
    plain_sim.seed_latencies(table)
    zero_sim = ContinuousBatchingSimulator(
        point, spec, recovery=RecoveryPolicy(checkpoint_every=0))
    zero_sim.seed_latencies(table)
    zero_ckpt_identical = (plain_sim.simulate(requests)
                           == zero_sim.simulate(requests))

    # Snapshot pricing flows through the replay's traffic ledger.
    replayed = snapshot_replay(point, spec, spec.kv_buckets[0], 1)
    ledger = dict(replayed.counters.bytes_by_level)
    kv_bytes = spec.kv_cache_bytes(spec.kv_buckets[0], 1)
    snapshot_ledger = (ledger.get("hbm") == kv_bytes
                       and ledger.get("host") == kv_bytes
                       and replayed.seconds > 0)

    # Chaos: mid-step kills plus a permanent core death on a 2-core
    # chip. Checkpoint + migrate must strictly beat scratch re-prefill
    # on goodput AND served-request availability.
    t0 = time.perf_counter()
    chaos = llm_chaos_sweep(seed=5, models=("llm0",), chips=(TPUV3,),
                            duration_s=0.5, checkpoint_every=8)
    llm_chaos_s = time.perf_counter() - t0
    chaos_repeat = llm_chaos_sweep(seed=5, models=("llm0",), chips=(TPUV3,),
                                   duration_s=0.5, checkpoint_every=8)
    by_key = {(r.scenario, r.policy.startswith("ckpt")): r.stats
              for r in chaos}
    kill_scratch = by_key[("kill", False)]
    kill_ckpt = by_key[("kill", True)]
    outage_scratch = by_key[("outage", False)]
    outage_ckpt = by_key[("outage", True)]
    goodput_gain = (kill_ckpt.goodput_fraction
                    > kill_scratch.goodput_fraction)
    served_gain = (outage_ckpt.served_requests
                   > outage_scratch.served_requests)

    return {
        "llm_sweep_s": round(llm_sweep_s, 4),
        "llm_rows": len(first),
        "llm_determinism": first == repeat,
        "llm_decode_memory_bound": all(
            row.decode_memory_bound for row in first),
        "llm_phase_split": prefill_s != decode_s,
        "llm_tokens": sum(row.stats.tokens_generated for row in first),
        "llm_zero_ckpt_identical": zero_ckpt_identical,
        "llm_snapshot_ledger": snapshot_ledger,
        "llm_chaos_s": round(llm_chaos_s, 4),
        "llm_chaos_rows": len(chaos),
        "llm_chaos_determinism": chaos == chaos_repeat,
        "llm_recovery_goodput_gain": goodput_gain,
        "llm_recovery_served_gain": served_gain,
        "llm_kill_goodput_scratch": round(kill_scratch.goodput_fraction, 4),
        "llm_kill_goodput_ckpt": round(kill_ckpt.goodput_fraction, 4),
        "llm_outage_served_scratch": outage_scratch.served_requests,
        "llm_outage_served_ckpt": outage_ckpt.served_requests,
        "llm_migrated": outage_ckpt.migrated_requests,
    }


def run_engine_benchmark(workers: Optional[int] = None,
                         app_names: Optional[Sequence[str]] = None,
                         ) -> dict:
    """Time the default DSE sweep serial/parallel/warm/fast; return the record.

    ``workers=None`` sizes the parallel phase from CPU affinity
    (:func:`available_workers`) instead of a hardcoded count, so the
    recorded numbers reflect what the machine can actually deliver.
    """
    from repro.core.design_point import clear_shared_design_points
    from repro.core.dse import DEFAULT_DSE_APPS, enumerate_candidates
    from repro.engine.sweeps import evaluate_candidates

    if workers is None:
        workers = available_workers()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    apps = tuple(app_names) if app_names is not None else DEFAULT_DSE_APPS
    grid = enumerate_candidates()

    # Benchmark against a private, memory-only cache so ambient state
    # (a user's REPRO_CACHE_DIR) cannot contaminate the cold timings.
    previous = set_cache(EvalCache())
    try:
        clear_lowered()
        t0 = time.perf_counter()
        serial_legacy = _sweep_serial_legacy(grid, apps)
        serial_cold_s = time.perf_counter() - t0

        # Engine, serial, cold result + lowered caches. The grid kernel
        # is opted out so this stays the per-point reference the grid
        # phase below is measured against.
        set_cache(EvalCache())
        clear_modules()
        clear_lowered()
        clear_shared_design_points()
        t0 = time.perf_counter()
        with gridsim_disabled():
            engine_serial = evaluate_candidates(grid, apps, workers=1)
        engine_serial_cold_s = time.perf_counter() - t0

        # Engine, parallel, cold result cache. The sweeper itself decides
        # whether fan-out pays (affinity-capped), so on a 1-CPU box this
        # degrades to the serial path instead of regressing below it.
        set_cache(EvalCache())
        clear_modules()
        clear_lowered()
        clear_shared_design_points()
        t0 = time.perf_counter()
        parallel = evaluate_candidates(grid, apps, workers=workers)
        parallel_cold_s = time.perf_counter() - t0

        # Warm: same sweep against the now-populated cache, serially (the
        # point is cache speed, not pool speed). Fresh design points force
        # every lookup through the engine cache.
        clear_shared_design_points()
        cache = get_cache()
        t0 = time.perf_counter()
        warm = evaluate_candidates(grid, apps, workers=1)
        warm_s = time.perf_counter() - t0

        # Simulation path alone: interpreter vs cold lowering + replay.
        clear_shared_design_points()
        sim_record = _bench_sim_path(grid, apps)

        # Fault injection: seeded sweep cost + bit-identity contracts.
        clear_shared_design_points()
        fault_record = _bench_faults(apps)

        # Observability: metrics on/off identity + disabled-guard cost.
        obs_record = _bench_observability(apps)

        # Cluster resilience: chaos sweep cost + passthrough identity.
        clear_shared_design_points()
        cluster_record = _bench_cluster(apps)

        # Pod sharding: chaos sweep cost + 1-chip slice identity.
        clear_shared_design_points()
        pod_record = _bench_pod(apps)

        # Grid kernel: batched-vs-per-point replay + end-to-end sweep.
        clear_shared_design_points()
        grid_record = _bench_grid(apps)

        # Serving-replay kernel: chaos sweep at 10x volume vs events.
        clear_shared_design_points()
        fastserve_record = _bench_fastserve(apps)

        # Generative serving: continuous-batching sweep + roofline claim.
        clear_shared_design_points()
        llm_record = _bench_llm()

        deterministic = (serial_legacy == engine_serial == parallel == warm)
        stats = cache.stats
        record = {
            "benchmark": "engine_dse_sweep",
            "grid_size": len(grid),
            "apps": list(apps),
            "workers": workers,
            "available_cpus": available_workers(),
            "platform": platform.platform(),
            "serial_cold_s": round(serial_cold_s, 4),
            "engine_serial_cold_s": round(engine_serial_cold_s, 4),
            "parallel_cold_s": round(parallel_cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup_parallel_vs_serial": round(
                serial_cold_s / parallel_cold_s, 2),
            "speedup_parallel_vs_engine_serial": round(
                engine_serial_cold_s / parallel_cold_s, 2),
            "speedup_warm_vs_cold": round(serial_cold_s / warm_s, 2),
            "deterministic": deterministic,
            **sim_record,
            **fault_record,
            **obs_record,
            **cluster_record,
            **pod_record,
            **grid_record,
            **fastserve_record,
            **llm_record,
            "cache": {
                "entries": cache.entry_count(),
                "bytes": cache.size_bytes(),
                **stats.as_dict(),
            },
        }
        return record
    finally:
        set_cache(previous)
        clear_modules()
        clear_lowered()
        clear_grid_kernel()
        clear_shared_design_points()


def write_benchmark(record: dict,
                    path: str = DEFAULT_OUTPUT) -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return out


def render_benchmark(record: dict) -> str:
    """A human-readable summary of a benchmark record."""
    lines = [
        f"engine benchmark: {record['grid_size']}-candidate DSE grid x "
        f"{len(record['apps'])} apps "
        f"({record['workers']} workers, {record['available_cpus']} CPUs)",
        f"  serial cold (pre-engine): {record['serial_cold_s']:.3f} s",
        f"  engine serial cold:       {record['engine_serial_cold_s']:.3f} s",
        f"  parallel cold:            {record['parallel_cold_s']:.3f} s "
        f"({record['speedup_parallel_vs_serial']:.2f}x vs pre-engine, "
        f"{record['speedup_parallel_vs_engine_serial']:.2f}x vs engine "
        "serial)",
        f"  warm cache:               {record['warm_s']:.3f} s "
        f"({record['speedup_warm_vs_cold']:.0f}x vs serial cold)",
        f"  sim path ({record['sim_programs']} programs): interpreter "
        f"{record['interp_cold_s']:.3f} s, lower+replay "
        f"{record['fast_cold_s']:.3f} s "
        f"({record['speedup_fast_vs_interp']:.2f}x, identical: "
        f"{record['fast_sim_identical']})",
        f"  faulted sweep ({record['fault_rows']} rows): "
        f"{record['faulted_sweep_s']:.3f} s, deterministic: "
        f"{record['fault_determinism']}, zero-fault identical: "
        f"{record['zero_fault_identical']}, min availability "
        f"{record['min_availability']:.1%}",
        f"  observability: off {record['obs_off_s']:.3f} s, on "
        f"{record['obs_on_s']:.3f} s, {record['obs_ops_recorded']} ops "
        f"recorded; disabled-guard bound "
        f"{record['obs_disabled_overhead_pct']:.3f}% of wall time; "
        f"identical: {record['obs_identical']}, trace deterministic: "
        f"{record['trace_deterministic']}",
        f"  cluster chaos sweep ({record['cluster_rows']} rows): "
        f"{record['cluster_sweep_s']:.3f} s, deterministic: "
        f"{record['cluster_determinism']}, passthrough identical: "
        f"{record['cluster_zero_fault_identical']}, kill-1 availability "
        f"{record['cluster_kill1_availability']:.1%}",
        f"  pod chaos sweep ({record['pod_rows']} rows): "
        f"{record['pod_sweep_s']:.3f} s, deterministic: "
        f"{record['pod_determinism']}, 1-chip slice identical: "
        f"{record['pod_identity']}, kill-1-link availability "
        f"{record['pod_kill1_link_availability']:.1%}",
        f"  grid kernel ({record['grid_points']} points): per-point "
        f"{record['grid_fast_cold_s']:.3f} s, batched "
        f"{record['grid_cold_s']:.3f} s "
        f"({record['speedup_grid_vs_fast']:.2f}x, identical: "
        f"{record['grid_identical']})",
        f"  grid sweep ({record['grid_sweep_points']} points): engine "
        f"serial {record['grid_sweep_serial_s']:.3f} s, grid-routed "
        f"{record['grid_sweep_s']:.3f} s "
        f"({record['speedup_grid_vs_engine_serial']:.2f}x, identical: "
        f"{record['grid_sweep_identical']})",
        f"  serving replay ({record['serve_chaos_rows']} chaos rows, "
        f"{record['serve_requests']:,} requests): events "
        f"{record['serve_cold_s']:.3f} s, kernel "
        f"{record['serve_fast_s']:.3f} s "
        f"({record['speedup_fastserve_vs_event']:.2f}x, identical: "
        f"{record['fastserve_identical']})",
        f"  generative serving ({record['llm_rows']} rows, "
        f"{record['llm_tokens']:,} tokens): {record['llm_sweep_s']:.3f} s, "
        f"deterministic: {record['llm_determinism']}, decode memory-bound: "
        f"{record['llm_decode_memory_bound']}, phases priced separately: "
        f"{record['llm_phase_split']}",
        f"  generative recovery ({record['llm_chaos_rows']} chaos rows): "
        f"{record['llm_chaos_s']:.3f} s, deterministic: "
        f"{record['llm_chaos_determinism']}, zero-ckpt identical: "
        f"{record['llm_zero_ckpt_identical']}, snapshot ledger: "
        f"{record['llm_snapshot_ledger']}, kill goodput "
        f"{record['llm_kill_goodput_scratch']:.1%} -> "
        f"{record['llm_kill_goodput_ckpt']:.1%}, outage served "
        f"{record['llm_outage_served_scratch']} -> "
        f"{record['llm_outage_served_ckpt']} "
        f"({record['llm_migrated']} migrated)",
        f"  deterministic across modes: {record['deterministic']}",
        f"  cache: {record['cache']['entries']} entries, "
        f"{record['cache']['bytes']:,} B, "
        f"{record['cache']['hit_rate']:.0%} hit rate",
    ]
    return "\n".join(lines)
