"""Batched grid evaluation: EvalCache-aware routing into the grid kernel.

:mod:`repro.sim.gridkernel` evaluates many (program, chip, dtype) points
in one batched pass; this module is the engine-side wrapper the sweeps
and planners call. It adds what the kernel deliberately does not know
about:

* **cache exclusion** — points already in a DesignPoint memo or the
  :class:`~repro.engine.cache.EvalCache` never enter the batch; computed
  results are stored back through the same keys, so a grid-warmed cache
  is indistinguishable from a per-point-warmed one and results merge
  deterministically in job order;
* **compile-content dedupe** — compiled programs depend on a strict
  subset of chip fields (memory sizes, MXU tile dim, dtypes, ISA
  generation — *not* clock, MXU count, or power/cooling limits), so a
  sweep axis over clock or MXU count compiles once per distinct content
  (:func:`compile_chip_fingerprint`; invariance asserted in
  ``tests/test_gridsim.py``) instead of once per chip;
* **fallback parity** — with the kernel opted out (``REPRO_GRIDSIM=0``)
  or the fast path off (``REPRO_FASTSIM=0``), every job runs the
  per-point :meth:`DesignPoint.run` / :meth:`DesignPoint.evaluate` path,
  so the documented gating contracts keep holding.

Counters flow through :func:`repro.obs.metrics.metrics` (the
``engine.grid.*`` family) and the always-on module stats
(:func:`grid_stats`) reported by ``repro engine stats``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.engine.keys import fingerprint
from repro.obs.metrics import metrics
from repro.sim.gridkernel import GridPoint, evaluate_grid, gridsim_enabled
from repro.sim.lowered import fastsim_enabled

if TYPE_CHECKING:  # pragma: no cover
    from repro.compiler.pipeline import CompiledModel
    from repro.core.design_point import DesignPoint, Evaluation
    from repro.sim.core import SimResult
    from repro.workloads.models import WorkloadSpec

#: Chip fields a compiled program's *content* cannot depend on: the
#: compiler reads memory sizes/dtypes/tile geometry and the ISA
#: generation, never the clock, the MXU replication count (sharding is
#: an execution-time split), or power/cooling provisioning.
_COMPILE_IRRELEVANT = frozenset(
    {"name", "clock_hz", "mxus_per_core", "tdp_w", "idle_w", "cooling"})


def compile_chip_fingerprint(chip) -> str:
    """Digest over the chip fields that determine compiled content.

    Two chips with equal fingerprints compile any workload to programs
    with identical ``Program.signature()`` and identical memory planning
    (``cmem_hit_fraction``); ``tests/test_gridsim.py`` asserts this for
    every excluded field.
    """
    fields = {f.name: getattr(chip, f.name)
              for f in dataclasses.fields(chip)
              if f.name not in _COMPILE_IRRELEVANT}
    return fingerprint(fields)


# ------------------------------------------------------------------- jobs

@dataclass(frozen=True)
class GridJob:
    """One (design point, workload, batch, CMEM budget) evaluation."""

    point: "DesignPoint"
    spec: "WorkloadSpec"
    batch: Optional[int] = None
    cmem_budget_bytes: Optional[int] = None

    @property
    def resolved_batch(self) -> int:
        return self.batch if self.batch is not None \
            else self.spec.default_batch


# ------------------------------------------------------------------ stats

@dataclass
class GridStats:
    """Engine-side accounting for ``repro engine stats``."""

    batches: int = 0           # batched kernel dispatches
    points: int = 0            # jobs routed through run_grid/evaluate_jobs
    batched_points: int = 0    # unique points the kernel actually evaluated
    cache_hits: int = 0        # jobs excluded from the batch by a cache
    fallback_points: int = 0   # jobs run per-point (kernel opted out)
    shared_compiles: int = 0   # compiles avoided by content dedupe

    def describe(self) -> str:
        return (f"grid: {self.batches} batches, {self.points} jobs "
                f"({self.batched_points} batched, {self.cache_hits} cache "
                f"hits, {self.fallback_points} per-point), "
                f"{self.shared_compiles} compiles shared")


_STATS = GridStats()


def grid_stats() -> GridStats:
    return _STATS


def clear_grid_stats() -> None:
    global _STATS
    _STATS = GridStats()


# ---------------------------------------------------------------- helpers

def _eval_dtype() -> str:
    from repro.core.design_point import _EVAL_DTYPE
    return _EVAL_DTYPE


def _shared_compiled(job: GridJob, batch: int,
                     compiled_by_key: Dict[tuple, "CompiledModel"]
                     ) -> "CompiledModel":
    """Compile once per distinct compile content across the whole batch."""
    key = (compile_chip_fingerprint(job.point.chip),
           job.point.compiler_fp, job.spec.name, batch,
           job.cmem_budget_bytes)
    compiled = compiled_by_key.get(key)
    if compiled is None:
        with metrics().timer("tier.compile_s"):
            compiled = job.point.compiled(job.spec, batch,
                                          job.cmem_budget_bytes)
        compiled_by_key[key] = compiled
    else:
        _STATS.shared_compiles += 1
        metrics().count("engine.grid.shared_compiles")
    return compiled


def _batched(n_jobs: int) -> bool:
    """Whether jobs should enter the batched kernel path at all."""
    return bool(n_jobs) and gridsim_enabled() and fastsim_enabled()


# --------------------------------------------------------------- run_grid

def run_grid(jobs: Sequence[GridJob],
             compiled_by_key: Optional[Dict[tuple, "CompiledModel"]] = None
             ) -> list:
    """Simulate every job; ``SimResult`` objects in job order.

    Identical to ``[job.point.run(job.spec, job.resolved_batch,
    job.cmem_budget_bytes) for job in jobs]`` — cached jobs are served
    from the same memo/EvalCache tiers, missing jobs are evaluated in
    one kernel batch (compiling once per distinct compile content) and
    stored back under the same keys. With the kernel opted out
    (``REPRO_GRIDSIM=0``) or the fast path off (``REPRO_FASTSIM=0``),
    that per-point loop is exactly what runs.
    """
    jobs = list(jobs)
    reg = metrics()
    _STATS.points += len(jobs)
    reg.count("engine.grid.points", len(jobs))
    if not _batched(len(jobs)):
        _STATS.fallback_points += len(jobs)
        reg.count("engine.grid.fallback_points", len(jobs))
        return [job.point.run(job.spec, job.resolved_batch,
                              job.cmem_budget_bytes) for job in jobs]

    results: list = [None] * len(jobs)
    misses: list[int] = []
    for i, job in enumerate(jobs):
        cached = job.point.cached_result(job.spec, job.resolved_batch,
                                         job.cmem_budget_bytes)
        if cached is not None:
            results[i] = cached
        else:
            misses.append(i)
    hits = len(jobs) - len(misses)
    _STATS.cache_hits += hits
    reg.count("engine.grid.cache_hits", hits)
    if not misses:
        return results

    _STATS.batches += 1
    reg.count("engine.grid.batches")
    if compiled_by_key is None:
        compiled_by_key = {}
    slot_by_key: Dict[str, int] = {}
    batch_points: list[GridPoint] = []
    miss_keys: list[str] = []
    for i in misses:
        job = jobs[i]
        batch = job.resolved_batch
        ekey = job.point.result_key(job.spec, batch, job.cmem_budget_bytes)
        if ekey not in slot_by_key:
            compiled = _shared_compiled(job, batch, compiled_by_key)
            slot_by_key[ekey] = len(batch_points)
            batch_points.append(GridPoint(compiled.program, job.point.chip,
                                          _eval_dtype()))
        miss_keys.append(ekey)
    with reg.timer("tier.sim_s"):
        sims = evaluate_grid(batch_points)
    _STATS.batched_points += len(batch_points)
    reg.count("engine.grid.batched_points", len(batch_points))
    for i, ekey in zip(misses, miss_keys):
        job = jobs[i]
        result = sims[slot_by_key[ekey]]
        job.point.store_result(job.spec, job.resolved_batch,
                               job.cmem_budget_bytes, result)
        results[i] = result
    return results


# ----------------------------------------------------------- evaluate_jobs

def evaluate_jobs(jobs: Sequence[GridJob]) -> list:
    """Evaluate every job; ``Evaluation`` objects in job order.

    The batched counterpart of ``[job.point.evaluate(...) for job in
    jobs]``: evaluation-cache hits are excluded, missing jobs share one
    simulation batch *and* one compile per distinct compile content, and
    the derived chip-level arithmetic
    (:meth:`DesignPoint.evaluation_from`) is the per-point code, so the
    records are identical either way.
    """
    jobs = list(jobs)
    _STATS.points += len(jobs)
    metrics().count("engine.grid.points", len(jobs))
    if not _batched(len(jobs)):
        _STATS.fallback_points += len(jobs)
        metrics().count("engine.grid.fallback_points", len(jobs))
        return [job.point.evaluate(job.spec, job.batch,
                                   job.cmem_budget_bytes) for job in jobs]

    results: list = [None] * len(jobs)
    misses: list[int] = []
    for i, job in enumerate(jobs):
        cached = job.point.cached_evaluation(job.spec, job.resolved_batch,
                                             job.cmem_budget_bytes)
        if cached is not None:
            results[i] = cached
            _STATS.cache_hits += 1
            metrics().count("engine.grid.cache_hits")
        else:
            misses.append(i)
    if not misses:
        return results

    compiled_by_key: Dict[tuple, "CompiledModel"] = {}
    sims = run_grid([jobs[i] for i in misses],
                    compiled_by_key=compiled_by_key)
    seen: Dict[str, "Evaluation"] = {}
    for idx, i in enumerate(misses):
        job = jobs[i]
        batch = job.resolved_batch
        ekey = job.point.evaluation_key(job.spec, batch,
                                        job.cmem_budget_bytes)
        evaluation = seen.get(ekey)
        if evaluation is None:
            compiled = _shared_compiled(job, batch, compiled_by_key)
            evaluation = job.point.evaluation_from(
                job.spec, batch, job.cmem_budget_bytes, sims[idx], compiled)
            seen[ekey] = evaluation
        job.point.store_evaluation(job.spec, batch, job.cmem_budget_bytes,
                                   evaluation)
        results[i] = evaluation
    return results
