"""Engine-backed sweeps: the parallel counterparts of the DSE loops.

Task functions are module-level (picklable for the process pool) and
import ``repro.core`` lazily, keeping the dependency direction
core -> engine at import time while letting workers execute core code.

Every sweep returns results in input order, so feeding them to
``pareto_frontier`` / tables gives output identical to the serial loops.

When a sweep would run serially (one effective worker), it is dispatched
as **one batched grid evaluation** through :mod:`repro.engine.grid`
instead of a per-point loop: same results, same cache contents, one
vectorized kernel pass. ``REPRO_GRIDSIM=0`` restores the literal loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.parallel import ParallelSweeper
from repro.obs.metrics import metrics
from repro.sim.gridkernel import gridsim_enabled

if TYPE_CHECKING:  # pragma: no cover
    from repro.arch.chip import ChipConfig
    from repro.core.dse import DesignCandidate
    from repro.workloads.models import WorkloadSpec


# ----------------------------------------------------------- candidate sweep

def _candidate_task(args: tuple["ChipConfig", tuple[str, ...], str]
                    ) -> "DesignCandidate":
    chip, app_names, version_name = args
    from repro.compiler.versions import release_by_name
    from repro.core.dse import evaluate_candidate
    return evaluate_candidate(chip, app_names,
                              version=release_by_name(version_name))


def evaluate_candidates(chips: Sequence["ChipConfig"],
                        app_names: Optional[Sequence[str]] = None,
                        *, version=None,
                        workers: Optional[int] = None,
                        chunk_size: Optional[int] = None
                        ) -> list["DesignCandidate"]:
    """Evaluate a candidate grid, fanning out over processes.

    ``workers=None`` uses the available CPUs; ``workers=1`` is the serial
    reference path. Results are ordered like ``chips`` and bit-identical
    across worker counts.
    """
    from repro.compiler.versions import LATEST
    from repro.core.dse import DEFAULT_DSE_APPS
    names = tuple(app_names) if app_names is not None else DEFAULT_DSE_APPS
    release = version if version is not None else LATEST
    sweeper = ParallelSweeper(workers=workers, chunk_size=chunk_size)
    tasks = [(chip, names, release.name) for chip in chips]
    metrics().count("engine.sweeps.candidates", len(tasks))
    if sweeper.effective_workers(len(tasks)) <= 1 and gridsim_enabled():
        from repro.core.dse import evaluate_candidates_grid
        return evaluate_candidates_grid(list(chips), names, release)
    return sweeper.map_cached(_candidate_task, tasks)


# ---------------------------------------------------------------- CMEM sweep

def _cmem_task(args: tuple["ChipConfig", str, int, int]) -> tuple[int, float]:
    chip, workload, batch, capacity = args
    from repro.core.design_point import shared_design_point
    from repro.workloads.models import app_by_name
    point = shared_design_point(chip)
    spec = app_by_name(workload)
    return capacity, point.latency_s(spec, batch, cmem_budget_bytes=capacity)


def cmem_capacity_sweep(spec: "WorkloadSpec", capacities_bytes: Sequence[int],
                        chip: "ChipConfig", batch: int,
                        *, workers: Optional[int] = None
                        ) -> list[tuple[int, float]]:
    """(capacity, latency) per CMEM budget, optionally process-parallel."""
    for capacity in capacities_bytes:
        if capacity < 0:
            raise ValueError("CMEM capacity must be non-negative")
    sweeper = ParallelSweeper(workers=workers)
    tasks = [(chip, spec.name, batch, capacity)
             for capacity in capacities_bytes]
    metrics().count("engine.sweeps.cmem_points", len(tasks))
    if sweeper.effective_workers(len(tasks)) <= 1 and gridsim_enabled():
        from repro.core.design_point import shared_design_point
        from repro.engine.grid import GridJob, run_grid
        point = shared_design_point(chip)
        results = run_grid([GridJob(point, spec, batch, capacity)
                            for capacity in capacities_bytes])
        return [(capacity, result.seconds)
                for capacity, result in zip(capacities_bytes, results)]
    return sweeper.map_cached(_cmem_task, tasks)


# -------------------------------------------------------- batch-latency grid

def _latency_task(args: tuple["ChipConfig", str, str, int]) -> tuple[int, float]:
    chip, version_name, workload, batch = args
    from repro.compiler.versions import release_by_name
    from repro.core.design_point import shared_design_point
    from repro.workloads.models import app_by_name
    point = shared_design_point(chip, release_by_name(version_name))
    return batch, point.latency_s(app_by_name(workload), batch)


def batch_latency_grid(chip: "ChipConfig", workload: str,
                       batches: Sequence[int], *, version=None,
                       workers: Optional[int] = None
                       ) -> dict[int, float]:
    """Batch -> latency for a workload (the serving simulator's table)."""
    from repro.compiler.versions import LATEST
    release = version if version is not None else LATEST
    for batch in batches:
        if batch <= 0:
            raise ValueError("batch must be positive")
    sweeper = ParallelSweeper(workers=workers)
    tasks = [(chip, release.name, workload, batch) for batch in batches]
    metrics().count("engine.sweeps.batch_points", len(tasks))
    if sweeper.effective_workers(len(tasks)) <= 1 and gridsim_enabled():
        from repro.core.design_point import shared_design_point
        from repro.engine.grid import GridJob, run_grid
        from repro.workloads.models import app_by_name
        point = shared_design_point(chip, release)
        spec = app_by_name(workload)
        results = run_grid([GridJob(point, spec, batch)
                            for batch in batches])
        return {batch: result.seconds
                for batch, result in zip(batches, results)}
    return dict(sweeper.map_cached(_latency_task, tasks))
