"""EvalCache: the engine's content-addressed result store.

Two tiers:

* an **in-process** dict (always on unless disabled) shared by every
  :class:`~repro.core.design_point.DesignPoint` in the process, so two
  sweeps over overlapping grids — or a fleet plan after a DSE run —
  never recompute a (chip, compiler, workload, batch, budget) tuple;
* an optional **on-disk** tier under a cache directory (default
  ``.repro_cache/``): one pickle per entry named by its key, plus a JSON
  sidecar describing what the entry is. Disk entries survive process
  restarts, so benchmark suites warm across invocations.

Values are opaque to the cache (SimResult, Evaluation, ...); keys come
from :mod:`repro.engine.keys`, which folds in every chip/compiler field —
invalidation is by construction, never by mtime.

The disk tier is crash-safe end to end. Every write goes to a temp file
first and lands via atomic ``os.replace``, so a killed process can never
leave a truncated entry under a live name. Every entry carries a
leading SHA-256 checksum over its payload, verified on read; an entry
that fails the checksum — or fails to unpickle (including legacy
pre-checksum entries) — is *quarantined*: moved to a ``quarantine/``
subdirectory, logged, counted in :attr:`CacheStats.corrupt`, and
treated as a miss so the value is recomputed. Corruption is therefore
never fatal and never silently served.
"""

from __future__ import annotations

import hashlib
import logging
import os
import json
import pickle
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.obs.metrics import metrics

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment switches: ``REPRO_CACHE=0`` disables caching entirely,
#: ``REPRO_CACHE_DIR=<path>`` enables the disk tier at <path>.
ENV_DISABLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"

#: On-disk entry format: magic + 32-byte SHA-256 of the payload + payload.
#: Files without the magic are legacy plain pickles (still readable).
_MAGIC = b"RPC1"
_DIGEST_BYTES = 32

#: Corrupt entries are moved here (relative to the cache dir), not deleted,
#: so a surprising corruption can still be inspected post-mortem.
QUARANTINE_DIR = "quarantine"

_LOG = logging.getLogger(__name__)


@dataclass
class CacheStats:
    """Lookup counters for one :class:`EvalCache` instance."""

    hits: int = 0          # served from the in-process dict
    disk_hits: int = 0     # served from the disk tier (then promoted)
    misses: int = 0
    puts: int = 0
    corrupt: int = 0       # disk entries quarantined (checksum/unpickle)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return (self.hits + self.disk_hits) / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: Any
    size_bytes: int
    meta: Optional[dict] = field(default=None)


class EvalCache:
    """Content-addressed store for evaluation records."""

    def __init__(self, disk_dir: Optional[os.PathLike] = None,
                 enabled: bool = True) -> None:
        self._mem: dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._enabled = enabled
        self._disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()

    # --------------------------------------------------------------- config

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def disk_dir(self) -> Optional[Path]:
        return self._disk_dir

    # --------------------------------------------------------------- lookup

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None. Disk hits are promoted to memory."""
        if not self._enabled:
            return None
        with self._lock:
            entry = self._mem.get(key)
            if entry is not None:
                self.stats.hits += 1
                metrics().count("engine.cache.hits")
                return entry.value
        value = self._disk_read(key)
        if value is not None:
            size = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            with self._lock:
                self.stats.disk_hits += 1
                self._mem[key] = _Entry(value, size)
            metrics().count("engine.cache.disk_hits")
            return value
        self.stats.misses += 1
        metrics().count("engine.cache.misses")
        return None

    def put(self, key: str, value: Any,
            meta: Optional[dict] = None) -> None:
        """Store a value in memory and (if configured) on disk."""
        if not self._enabled:
            return
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._mem[key] = _Entry(value, len(blob), meta)
            self.stats.puts += 1
        metrics().count("engine.cache.puts")
        if self._disk_dir is not None:
            self._disk_write(key, blob, meta)

    # ------------------------------------------------- cross-process merging

    def keys(self) -> frozenset[str]:
        """Snapshot of the in-memory key set."""
        with self._lock:
            return frozenset(self._mem)

    def export_since(self, before: frozenset[str]) -> dict[str, Any]:
        """Entries added after a :meth:`keys` snapshot (for worker return)."""
        with self._lock:
            return {k: e.value for k, e in self._mem.items() if k not in before}

    def absorb(self, entries: dict[str, Any]) -> None:
        """Merge entries computed elsewhere (e.g. by a pool worker)."""
        for key, value in entries.items():
            if not self._enabled:
                return
            with self._lock:
                known = key in self._mem
            if not known:
                self.put(key, value)

    # ------------------------------------------------------------ accounting

    def entry_count(self) -> int:
        with self._lock:
            return len(self._mem)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint (pickled sizes)."""
        with self._lock:
            return sum(e.size_bytes for e in self._mem.values())

    def disk_entry_count(self) -> int:
        if self._disk_dir is None or not self._disk_dir.is_dir():
            return 0
        return sum(1 for _ in self._disk_dir.glob("*.pkl"))

    def disk_size_bytes(self) -> int:
        if self._disk_dir is None or not self._disk_dir.is_dir():
            return 0
        return sum(p.stat().st_size for p in self._disk_dir.glob("*.pkl"))

    def clear(self, disk: bool = False) -> None:
        """Drop in-memory entries (and the disk tier when ``disk=True``)."""
        with self._lock:
            self._mem.clear()
        if disk and self._disk_dir is not None and self._disk_dir.is_dir():
            for path in list(self._disk_dir.glob("*.pkl")):
                path.unlink(missing_ok=True)
            for path in list(self._disk_dir.glob("*.json")):
                path.unlink(missing_ok=True)
            quarantine = self._disk_dir / QUARANTINE_DIR
            if quarantine.is_dir():
                for path in list(quarantine.iterdir()):
                    path.unlink(missing_ok=True)

    def describe(self) -> str:
        disk = (f", disk {self.disk_entry_count()} entries / "
                f"{self.disk_size_bytes():,} B at {self._disk_dir}"
                if self._disk_dir is not None else ", disk tier off")
        state = "enabled" if self._enabled else "DISABLED"
        s = self.stats
        corrupt = f", {s.corrupt} quarantined" if s.corrupt else ""
        return (f"EvalCache ({state}): {self.entry_count()} entries / "
                f"{self.size_bytes():,} B in memory{disk}; "
                f"{s.hits} hits, {s.disk_hits} disk hits, {s.misses} misses "
                f"({s.hit_rate:.0%} hit rate){corrupt}")

    # ------------------------------------------------------------- disk tier

    def _path(self, key: str) -> Path:
        return self._disk_dir / f"{key}.pkl"

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (never served, never fatal)."""
        with self._lock:
            self.stats.corrupt += 1
        metrics().count("engine.cache.corrupt")
        target_dir = self._disk_dir / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)
        sidecar = path.with_suffix(".json")
        if sidecar.exists():
            try:
                os.replace(sidecar, target_dir / sidecar.name)
            except OSError:
                sidecar.unlink(missing_ok=True)
        _LOG.warning("quarantined corrupt cache entry %s (%s); "
                     "the value will be recomputed", key, reason)

    def _disk_read(self, key: str) -> Optional[Any]:
        if self._disk_dir is None:
            return None
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        if raw.startswith(_MAGIC):
            header = len(_MAGIC) + _DIGEST_BYTES
            digest, payload = raw[len(_MAGIC):header], raw[header:]
            if hashlib.sha256(payload).digest() != digest:
                self._quarantine(key, path, "checksum mismatch")
                return None
        else:
            payload = raw  # legacy pre-checksum entry: plain pickle
        try:
            return pickle.loads(payload)
        except Exception:
            self._quarantine(key, path, "unreadable pickle")
            return None

    def _disk_write(self, key: str, blob: bytes,
                    meta: Optional[dict]) -> None:
        self._disk_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self._disk_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(hashlib.sha256(blob).digest())
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        if meta is not None:
            try:
                path.with_suffix(".json").write_text(
                    json.dumps(meta, sort_keys=True, indent=1))
            except OSError:
                pass


# ------------------------------------------------------------- global cache

_GLOBAL: Optional[EvalCache] = None
_GLOBAL_LOCK = threading.Lock()


def get_cache() -> EvalCache:
    """The process-wide cache, created on first use from the environment."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            disabled = os.environ.get(ENV_DISABLE, "").lower() in ("0", "off")
            disk = os.environ.get(ENV_DIR)
            _GLOBAL = EvalCache(disk_dir=Path(disk) if disk else None,
                                enabled=not disabled)
        return _GLOBAL


def configure_cache(disk_dir: Optional[os.PathLike] = None,
                    enabled: bool = True) -> EvalCache:
    """Replace the global cache (e.g. to turn the disk tier on)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = EvalCache(disk_dir=disk_dir, enabled=enabled)
        return _GLOBAL


def set_cache(cache: Optional[EvalCache]) -> Optional[EvalCache]:
    """Swap the global cache instance in; returns the previous one."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        previous, _GLOBAL = _GLOBAL, cache
        return previous


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Temporarily disable the global result cache (cold-path timing)."""
    cache = get_cache()
    was_enabled = cache.enabled
    cache.disable()
    try:
        yield
    finally:
        if was_enabled:
            cache.enable()
