"""The shared evaluation engine: result caching + process-parallel sweeps.

Every layer above the compiler (DSE, serving, fleet sizing, benchmarks)
funnels workload evaluation through :class:`~repro.core.design_point.
DesignPoint`, and DesignPoint funnels it through this package:

* :mod:`repro.engine.keys` — content-addressed keys covering every chip
  field, the compiler release, workload, batch, CMEM budget and dtype;
* :mod:`repro.engine.cache` — the two-tier :class:`EvalCache`
  (in-process dict + optional ``.repro_cache/`` disk tier; enable with
  ``REPRO_CACHE_DIR=.repro_cache`` or :func:`configure_cache`);
* :mod:`repro.engine.modules` — chip-independent built-module sharing;
* :mod:`repro.engine.parallel` — :class:`ParallelSweeper`, the
  deterministic process-pool fan-out with order-preserving merge;
* :mod:`repro.engine.sweeps` — parallel candidate/CMEM/batch-latency
  sweeps used by ``repro.core.dse`` and the serving simulator;
* :mod:`repro.engine.bench` — the serial-vs-parallel-vs-warm benchmark
  behind ``repro engine bench`` and ``BENCH_engine.json``.

Determinism guarantee: cached, uncached, serial and parallel evaluation
of the same inputs produce identical records (pure arithmetic, order-
preserving merge); ``tests/test_engine.py`` asserts this.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.engine.cache import (
    CacheStats,
    EvalCache,
    cache_disabled,
    configure_cache,
    get_cache,
    set_cache,
)
from repro.engine.grid import (
    GridJob,
    GridStats,
    clear_grid_stats,
    compile_chip_fingerprint,
    evaluate_jobs,
    grid_stats,
    run_grid,
)
from repro.engine.keys import (
    chip_fingerprint,
    compiler_fingerprint,
    eval_key,
    fingerprint,
)
from repro.engine.lowered import (
    clear_lowered,
    lowered_cache_disabled,
    lowered_cache_size,
    lowered_cache_stats,
    lowered_program,
)
from repro.engine.modules import (
    built_module,
    clear_modules,
    module_cache_disabled,
)
from repro.engine.parallel import ParallelSweeper, available_workers
from repro.engine.sweeps import (
    batch_latency_grid,
    cmem_capacity_sweep,
    evaluate_candidates,
)


@contextmanager
def engine_disabled() -> Iterator[None]:
    """Run with all engine caching off (the pre-engine code path)."""
    with cache_disabled():
        with module_cache_disabled():
            yield


__all__ = [
    "CacheStats",
    "EvalCache",
    "GridJob",
    "GridStats",
    "ParallelSweeper",
    "available_workers",
    "batch_latency_grid",
    "built_module",
    "cache_disabled",
    "chip_fingerprint",
    "clear_grid_stats",
    "clear_lowered",
    "clear_modules",
    "cmem_capacity_sweep",
    "compile_chip_fingerprint",
    "compiler_fingerprint",
    "configure_cache",
    "engine_disabled",
    "eval_key",
    "evaluate_candidates",
    "evaluate_jobs",
    "fingerprint",
    "get_cache",
    "grid_stats",
    "lowered_cache_disabled",
    "lowered_cache_size",
    "lowered_cache_stats",
    "lowered_program",
    "module_cache_disabled",
    "run_grid",
    "set_cache",
]
