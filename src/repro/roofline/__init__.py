"""Roofline model (experiment E7)."""

from repro.roofline.model import (
    Roofline,
    RooflinePoint,
    chip_roofline,
    place_module,
)

__all__ = ["Roofline", "RooflinePoint", "chip_roofline", "place_module"]
