"""Classic roofline: attainable performance vs operational intensity.

The TPUv4i paper uses rooflines to show why CMEM matters: several
production apps sit left of the HBM ridge point, and moving their weight
traffic on chip (CMEM bandwidth is ~4.5x HBM) slides the bandwidth roof
up, converting memory-bound apps to compute-bound. ``chip_roofline``
builds both roofs; ``place_module`` positions a workload on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arch.chip import ChipConfig
from repro.graph.hlo import HloModule
from repro.util.units import TERA


@dataclass(frozen=True)
class Roofline:
    """One roof: a peak-compute ceiling and a bandwidth slope.

    ``attainable(oi)`` = min(peak_ops, oi * bandwidth).
    """

    name: str
    peak_ops: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_ops <= 0 or self.bandwidth <= 0:
            raise ValueError("peak and bandwidth must be positive")

    @property
    def ridge_ops_per_byte(self) -> float:
        """Intensity where the bandwidth slope meets the compute ceiling."""
        return self.peak_ops / self.bandwidth

    def attainable_ops(self, ops_per_byte: float) -> float:
        if ops_per_byte < 0:
            raise ValueError("operational intensity must be non-negative")
        return min(self.peak_ops, ops_per_byte * self.bandwidth)

    def attainable_tops(self, ops_per_byte: float) -> float:
        return self.attainable_ops(ops_per_byte) / TERA

    def is_memory_bound(self, ops_per_byte: float) -> bool:
        return ops_per_byte < self.ridge_ops_per_byte


@dataclass(frozen=True)
class RooflinePoint:
    """A workload placed on a chip's roofline(s)."""

    workload: str
    ops_per_byte: float
    attainable_tops_hbm: float
    attainable_tops_cmem: Optional[float]
    memory_bound_hbm: bool

    @property
    def cmem_speedup_bound(self) -> float:
        """Upper-bound speedup from serving weights out of CMEM."""
        if self.attainable_tops_cmem is None or self.attainable_tops_hbm == 0:
            return 1.0
        return self.attainable_tops_cmem / self.attainable_tops_hbm


def chip_roofline(chip: ChipConfig, level: str = "hbm") -> Roofline:
    """The roofline of a chip against one memory level's bandwidth."""
    if level == "hbm":
        bandwidth = chip.hbm_bw
    elif level == "cmem":
        if not chip.has_cmem:
            raise ValueError(f"{chip.name} has no CMEM")
        bandwidth = chip.cmem_bw
    else:
        raise ValueError(f"roofline level must be 'hbm' or 'cmem', got {level!r}")
    return Roofline(f"{chip.name}/{level}", chip.peak_ops, bandwidth)


def place_module(module: HloModule, chip: ChipConfig,
                 cmem_hit_fraction: float = 1.0) -> RooflinePoint:
    """Place one workload on a chip's rooflines.

    ``cmem_hit_fraction`` is the share of weight traffic served by CMEM
    (from the allocator); the CMEM roof applies an effective bandwidth
    blending the two levels.
    """
    if not 0.0 <= cmem_hit_fraction <= 1.0:
        raise ValueError("cmem_hit_fraction must be in [0, 1]")
    oi = module.operational_intensity()
    hbm_roof = chip_roofline(chip, "hbm")
    cmem_tops: Optional[float] = None
    if chip.has_cmem:
        # Effective bandwidth: hit fraction at CMEM speed, rest at HBM.
        seconds_per_byte = (cmem_hit_fraction / chip.cmem_bw
                            + (1.0 - cmem_hit_fraction) / chip.hbm_bw)
        blended = Roofline(f"{chip.name}/blend", chip.peak_ops,
                           1.0 / seconds_per_byte)
        cmem_tops = blended.attainable_tops(oi)
    return RooflinePoint(
        workload=module.name,
        ops_per_byte=oi,
        attainable_tops_hbm=hbm_roof.attainable_tops(oi),
        attainable_tops_cmem=cmem_tops,
        memory_bound_hbm=hbm_roof.is_memory_bound(oi),
    )


def roofline_curve(roof: Roofline, intensities: List[float]) -> List[Tuple[float, float]]:
    """(oi, attainable TOPS) samples for plotting/printing the roof."""
    return [(oi, roof.attainable_tops(oi)) for oi in intensities]
