"""repro: a reproduction of "Ten Lessons From Three Generations Shaped
Google's TPUv4i" (Jouppi et al., ISCA 2021).

The library models the TPUv1/v2/v3/v4i family as a cycle-approximate
simulator stack — chips, VLIW ISA, XLA-like compiler, serving and TCO
models — and regenerates the paper's evaluation around its ten lessons.

Quick start::

    from repro import DesignPoint, TPUV4I, app_by_name

    point = DesignPoint(TPUV4I)
    bert = app_by_name("bert0")
    evaluation = point.evaluate(bert)
    print(evaluation.latency_s, evaluation.chip_qps, evaluation.tops_per_watt)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.arch import (
    ChipConfig,
    GENERATIONS,
    TPUV1,
    TPUV2,
    TPUV3,
    TPUV4I,
    chip_by_name,
)
from repro.compiler import (
    CompiledModel,
    CompilerVersion,
    LATEST,
    RELEASES,
    compile_model,
    migrate_model,
)
from repro.core import DesignPoint, Evaluation
from repro.graph import GraphBuilder, HloModule, Shape
from repro.roofline import chip_roofline, place_module
from repro.serving import BatchPolicy, ServingSimulator, Slo
from repro.sim import TensorCoreSim
from repro.tco import chip_tco, perf_per_tco
from repro.workloads import PRODUCTION_APPS, app_by_name

__version__ = "1.0.0"

__all__ = [
    "ChipConfig",
    "GENERATIONS",
    "TPUV1",
    "TPUV2",
    "TPUV3",
    "TPUV4I",
    "chip_by_name",
    "CompiledModel",
    "CompilerVersion",
    "LATEST",
    "RELEASES",
    "compile_model",
    "migrate_model",
    "DesignPoint",
    "Evaluation",
    "GraphBuilder",
    "HloModule",
    "Shape",
    "chip_roofline",
    "place_module",
    "BatchPolicy",
    "ServingSimulator",
    "Slo",
    "TensorCoreSim",
    "chip_tco",
    "perf_per_tco",
    "PRODUCTION_APPS",
    "app_by_name",
    "__version__",
]
