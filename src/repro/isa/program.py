"""Executable program container: an ordered sequence of VLIW bundles.

A :class:`Program` is what the compiler emits and the simulator runs. It
carries the generation it was compiled for (the binary-compatibility axis of
Lesson 2) and summary statistics the tests and benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.isa.instructions import Bundle, Instruction, Opcode, SlotClass


@dataclass
class Program:
    """A compiled TensorCore program.

    Attributes:
        name: human-readable label (usually the workload name).
        generation: the chip generation the program was scheduled/encoded for.
        bundles: the VLIW bundles in issue order.
        metadata: free-form compile artifacts (weight placement, compiler
            version) that tools attach; never consumed by the simulator.
    """

    name: str
    generation: int
    bundles: List[Bundle] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def append(self, bundle: Bundle) -> None:
        bundle.validate_for(self.generation)
        self.bundles.append(bundle)

    def extend(self, bundles: Iterable[Bundle]) -> None:
        for bundle in bundles:
            self.append(bundle)

    def __len__(self) -> int:
        return len(self.bundles)

    def __iter__(self) -> Iterator[Bundle]:
        return iter(self.bundles)

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in issue order, flattened across bundles."""
        for bundle in self.bundles:
            yield from bundle.instructions

    def signature(self) -> Tuple:
        """A hashable content key: name, generation, and every bundle.

        Two programs with equal signatures execute identically, so the
        engine's lowered-program cache (:mod:`repro.engine.lowered`) uses
        this — not object identity — as its key; a program mutated by
        :meth:`append` between runs gets a fresh signature for free.
        """
        return (
            self.name,
            self.generation,
            tuple(tuple((inst.opcode, inst.args)
                        for inst in bundle.instructions)
                  for bundle in self.bundles),
        )

    def count_opcodes(self) -> Dict[Opcode, int]:
        """Instruction histogram, used by compile-quality tests."""
        counts: Dict[Opcode, int] = {}
        for inst in self.instructions():
            counts[inst.opcode] = counts.get(inst.opcode, 0) + 1
        return counts

    def slot_occupancy(self) -> Dict[SlotClass, int]:
        """Instructions issued per slot class across the whole program."""
        occupancy: Dict[SlotClass, int] = {}
        for inst in self.instructions():
            occupancy[inst.slot] = occupancy.get(inst.slot, 0) + 1
        return occupancy

    def total_macs(self) -> int:
        """MACs implied by all MXM instructions."""
        total = 0
        for inst in self.instructions():
            if inst.opcode is Opcode.MXM:
                m, k, n = inst.args
                total += m * k * n
        return total

    def dma_bytes(self) -> Tuple[int, int]:
        """(bytes in, bytes out) across all DMA instructions."""
        bytes_in = sum(i.args[1] for i in self.instructions()
                       if i.opcode is Opcode.DMA_IN)
        bytes_out = sum(i.args[1] for i in self.instructions()
                        if i.opcode is Opcode.DMA_OUT)
        return bytes_in, bytes_out

    def validate(self) -> None:
        """Re-check every bundle against the program's generation."""
        for index, bundle in enumerate(self.bundles):
            try:
                bundle.validate_for(self.generation)
            except ValueError as exc:
                raise ValueError(f"bundle {index}: {exc}") from exc
