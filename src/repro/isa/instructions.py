"""Instruction and bundle definitions for the TensorCore VLIW ISA.

Operands are plain integers whose meaning is opcode-specific (element
counts, byte counts, matmul dimensions, sync-flag ids, memory-level ids).
That keeps instructions trivially encodable while carrying everything the
timing simulator needs.

Memory-level ids used by DMA opcodes: 0 = HBM, 1 = CMEM, 2 = VMEM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


class SlotClass(enum.Enum):
    """VLIW issue-slot classes; a bundle holds limited instructions per class."""

    SCALAR = "scalar"
    VECTOR = "vector"
    MATRIX = "matrix"
    DMA = "dma"
    SYNC = "sync"


class Opcode(enum.Enum):
    """All TensorCore opcodes, tagged with their slot class and arity."""

    # Scalar slot.
    NOP = ("nop", SlotClass.SCALAR, 0)
    HALT = ("halt", SlotClass.SCALAR, 0)
    SADD = ("sadd", SlotClass.SCALAR, 3)     # dst, a, b
    SMUL = ("smul", SlotClass.SCALAR, 3)     # dst, a, b
    SBRANCH = ("sbranch", SlotClass.SCALAR, 2)  # target bundle, condition reg
    SLOOP = ("sloop", SlotClass.SCALAR, 2)   # trip count, body start

    # Vector slot (operand 0 is always the element count).
    VADD = ("vadd", SlotClass.VECTOR, 1)
    VSUB = ("vsub", SlotClass.VECTOR, 1)
    VMUL = ("vmul", SlotClass.VECTOR, 1)
    VMAX = ("vmax", SlotClass.VECTOR, 1)
    VMIN = ("vmin", SlotClass.VECTOR, 1)
    VSELECT = ("vselect", SlotClass.VECTOR, 1)
    VRELU = ("vrelu", SlotClass.VECTOR, 1)
    VDIV = ("vdiv", SlotClass.VECTOR, 1)
    VRSQRT = ("vrsqrt", SlotClass.VECTOR, 1)
    VEXP = ("vexp", SlotClass.VECTOR, 1)
    VTANH = ("vtanh", SlotClass.VECTOR, 1)
    VSIGMOID = ("vsigmoid", SlotClass.VECTOR, 1)
    VGELU = ("vgelu", SlotClass.VECTOR, 1)
    VERF = ("verf", SlotClass.VECTOR, 1)
    VCOPY = ("vcopy", SlotClass.VECTOR, 1)
    VREDUCE = ("vreduce", SlotClass.VECTOR, 2)  # elements, axis length

    # Matrix slot.
    MXM = ("mxm", SlotClass.MATRIX, 3)       # m, k, n
    MXM_LOADW = ("mxm.loadw", SlotClass.MATRIX, 2)  # k, n (weight tile preload)
    MXM_TRANSPOSE = ("mxm.transpose", SlotClass.MATRIX, 2)  # rows, cols

    # DMA slot.
    DMA_IN = ("dma.in", SlotClass.DMA, 3)    # source level, bytes, flag id
    DMA_OUT = ("dma.out", SlotClass.DMA, 3)  # dest level, bytes, flag id

    # Sync slot.
    SYNC_WAIT = ("sync.wait", SlotClass.SYNC, 1)  # flag id
    SYNC_SET = ("sync.set", SlotClass.SYNC, 1)    # flag id

    def __init__(self, mnemonic: str, slot: SlotClass, arity: int) -> None:
        self.mnemonic = mnemonic
        self.slot = slot
        self.arity = arity

    @classmethod
    def by_mnemonic(cls, mnemonic: str) -> "Opcode":
        for op in cls:
            if op.mnemonic == mnemonic:
                return op
        raise KeyError(f"unknown mnemonic {mnemonic!r}")


# Vector opcode -> VpuModel op-class name (consumed by the simulator).
VECTOR_OP_CLASS: Mapping[Opcode, str] = {
    Opcode.VADD: "add",
    Opcode.VSUB: "sub",
    Opcode.VMUL: "mul",
    Opcode.VMAX: "max",
    Opcode.VMIN: "min",
    Opcode.VSELECT: "select",
    Opcode.VRELU: "relu",
    Opcode.VDIV: "div",
    Opcode.VRSQRT: "rsqrt",
    Opcode.VEXP: "exp",
    Opcode.VTANH: "tanh",
    Opcode.VSIGMOID: "sigmoid",
    Opcode.VGELU: "gelu",
    Opcode.VERF: "erf",
    Opcode.VCOPY: "copy",
    Opcode.VREDUCE: "reduce",
}

# Memory-level ids for DMA operands.
LEVEL_IDS: Mapping[str, int] = {"hbm": 0, "cmem": 1, "vmem": 2}
LEVEL_NAMES: Mapping[int, str] = {v: k for k, v in LEVEL_IDS.items()}


@dataclass(frozen=True)
class Instruction:
    """One operation occupying one slot of a bundle."""

    opcode: Opcode
    args: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) != self.opcode.arity:
            raise ValueError(
                f"{self.opcode.mnemonic} takes {self.opcode.arity} operands, "
                f"got {len(self.args)}"
            )
        if any(a < 0 for a in self.args):
            raise ValueError(f"{self.opcode.mnemonic}: operands must be non-negative")

    @property
    def slot(self) -> SlotClass:
        return self.opcode.slot

    def __str__(self) -> str:
        if not self.args:
            return self.opcode.mnemonic
        return f"{self.opcode.mnemonic} " + ", ".join(str(a) for a in self.args)


# Issue-slot counts per bundle, per chip generation. The layout changing
# every generation is precisely why binary compatibility was untenable
# (Lesson 2): a TPUv2 bundle simply has no encoding on TPUv4i.
SLOT_LAYOUTS: Dict[int, Dict[SlotClass, int]] = {
    1: {SlotClass.SCALAR: 1, SlotClass.VECTOR: 1, SlotClass.MATRIX: 1,
        SlotClass.DMA: 1, SlotClass.SYNC: 1},
    2: {SlotClass.SCALAR: 1, SlotClass.VECTOR: 2, SlotClass.MATRIX: 1,
        SlotClass.DMA: 2, SlotClass.SYNC: 1},
    3: {SlotClass.SCALAR: 1, SlotClass.VECTOR: 2, SlotClass.MATRIX: 2,
        SlotClass.DMA: 2, SlotClass.SYNC: 1},
    4: {SlotClass.SCALAR: 2, SlotClass.VECTOR: 2, SlotClass.MATRIX: 2,
        SlotClass.DMA: 4, SlotClass.SYNC: 2},
}


def slot_layout_for_generation(generation: int) -> Dict[SlotClass, int]:
    """Slot counts for a chip generation (1-4)."""
    try:
        return dict(SLOT_LAYOUTS[generation])
    except KeyError:
        raise KeyError(f"no slot layout for generation {generation}") from None


@dataclass
class Bundle:
    """One VLIW issue bundle: the instructions dispatched together.

    ``validate_for`` checks slot-class occupancy against a generation's
    layout; the scheduler constructs only valid bundles, but hand-written
    or decoded programs are validated explicitly.
    """

    instructions: Tuple[Instruction, ...] = ()

    def slot_usage(self) -> Dict[SlotClass, int]:
        usage: Dict[SlotClass, int] = {}
        for inst in self.instructions:
            usage[inst.slot] = usage.get(inst.slot, 0) + 1
        return usage

    def validate_for(self, generation: int) -> None:
        """Raise ValueError if this bundle over-subscribes any slot class."""
        layout = slot_layout_for_generation(generation)
        for slot, used in self.slot_usage().items():
            if used > layout.get(slot, 0):
                raise ValueError(
                    f"bundle uses {used} {slot.value} slots but generation "
                    f"{generation} provides {layout.get(slot, 0)}"
                )

    def is_empty(self) -> bool:
        return not self.instructions

    def __str__(self) -> str:
        return " ; ".join(str(i) for i in self.instructions) if self.instructions else "nop"
