"""VLIW ISA for the TPU TensorCore family (Lesson 2 substrate).

The TensorCore is a VLIW machine: each cycle issues one *bundle* with slots
for scalar, vector, matrix, DMA, and sync operations. Crucially for Lesson 2,
the *binary* bundle format changed every generation (slot counts, field
widths, opcode numbering), so shipped binaries never survive a generation —
only programs recompiled from the graph IR do. This package defines the
instructions, bundles, per-generation binary encodings, and a textual
assembler used by tests and examples.
"""

from repro.isa.instructions import (
    Instruction,
    Bundle,
    Opcode,
    SlotClass,
    SLOT_LAYOUTS,
    slot_layout_for_generation,
)
from repro.isa.program import Program
from repro.isa.encoding import (
    BinaryFormat,
    IncompatibleBinaryError,
    encode_program,
    decode_program,
    format_for_generation,
)
from repro.isa.assembler import assemble, disassemble

__all__ = [
    "Instruction",
    "Bundle",
    "Opcode",
    "SlotClass",
    "SLOT_LAYOUTS",
    "slot_layout_for_generation",
    "Program",
    "BinaryFormat",
    "IncompatibleBinaryError",
    "encode_program",
    "decode_program",
    "format_for_generation",
    "assemble",
    "disassemble",
]
