"""Per-generation binary encodings (the sharp edge of Lesson 2).

Each generation encodes bundles differently: a different magic word,
different opcode numbering, different operand field widths, and different
slot layouts. None of it is gratuitous in the real machines — fields grow
when memories grow, opcodes renumber when units are added — but the effect
is that a binary compiled for generation N is *undecodable* on generation
N+1. The paper's response is to guarantee compatibility one level up, at
the graph/compiler interface (see ``repro.compiler.compat``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.instructions import Bundle, Instruction, Opcode
from repro.isa.program import Program


class IncompatibleBinaryError(Exception):
    """A binary cannot be decoded by this generation's format."""


@dataclass(frozen=True)
class BinaryFormat:
    """The binary bundle format of one chip generation.

    Attributes:
        generation: 1-4.
        magic: 4-byte magic word at the head of every binary.
        operand_bytes: width of each operand field (grew with memory sizes).
        opcode_salt: per-generation opcode renumbering offset.
    """

    generation: int
    magic: bytes
    operand_bytes: int
    opcode_salt: int

    def __post_init__(self) -> None:
        if len(self.magic) != 4:
            raise ValueError("magic must be exactly 4 bytes")
        if self.operand_bytes not in (3, 4, 5, 6, 8):
            raise ValueError(f"unsupported operand width {self.operand_bytes}")

    # Opcode numbering: stable order of the Opcode enum, rotated by the salt.
    def _opcode_table(self) -> Dict[Opcode, int]:
        ops = list(Opcode)
        return {op: (idx + self.opcode_salt) % 251 for idx, op in enumerate(ops)}

    def _reverse_table(self) -> Dict[int, Opcode]:
        return {code: op for op, code in self._opcode_table().items()}

    def _pack_operand(self, value: int) -> bytes:
        limit = 1 << (8 * self.operand_bytes)
        if not 0 <= value < limit:
            raise ValueError(
                f"operand {value} does not fit in {self.operand_bytes} bytes "
                f"(generation {self.generation})"
            )
        return value.to_bytes(self.operand_bytes, "little")

    def encode(self, program: Program) -> bytes:
        """Serialize a program scheduled for this generation."""
        if program.generation != self.generation:
            raise IncompatibleBinaryError(
                f"program was scheduled for generation {program.generation}, "
                f"this format is generation {self.generation}"
            )
        program.validate()
        table = self._opcode_table()
        out = bytearray()
        out += self.magic
        out += struct.pack("<BI", self.generation, len(program.bundles))
        name_bytes = program.name.encode("utf-8")[:255]
        out += struct.pack("<B", len(name_bytes))
        out += name_bytes
        for bundle in program.bundles:
            out += struct.pack("<B", len(bundle.instructions))
            for inst in bundle.instructions:
                out += struct.pack("<B", table[inst.opcode])
                for operand in inst.args:
                    out += self._pack_operand(operand)
        return bytes(out)

    def decode(self, data: bytes) -> Program:
        """Deserialize; raises :class:`IncompatibleBinaryError` for foreign binaries."""
        if len(data) < 10:
            raise IncompatibleBinaryError("binary too short to contain a header")
        if data[:4] != self.magic:
            raise IncompatibleBinaryError(
                f"magic mismatch: this is not a generation-{self.generation} binary"
            )
        generation, bundle_count = struct.unpack_from("<BI", data, 4)
        if generation != self.generation:
            raise IncompatibleBinaryError(
                f"binary declares generation {generation}, decoder is "
                f"generation {self.generation}"
            )
        offset = 9
        (name_len,) = struct.unpack_from("<B", data, offset)
        offset += 1
        name = data[offset:offset + name_len].decode("utf-8")
        offset += name_len
        reverse = self._reverse_table()
        program = Program(name=name, generation=self.generation)
        for _ in range(bundle_count):
            if offset >= len(data):
                raise IncompatibleBinaryError("truncated binary: missing bundles")
            (inst_count,) = struct.unpack_from("<B", data, offset)
            offset += 1
            instructions: List[Instruction] = []
            for _ in range(inst_count):
                (code,) = struct.unpack_from("<B", data, offset)
                offset += 1
                opcode = reverse.get(code)
                if opcode is None:
                    raise IncompatibleBinaryError(f"unknown opcode byte {code}")
                args: List[int] = []
                for _ in range(opcode.arity):
                    chunk = data[offset:offset + self.operand_bytes]
                    if len(chunk) != self.operand_bytes:
                        raise IncompatibleBinaryError("truncated operand field")
                    args.append(int.from_bytes(chunk, "little"))
                    offset += self.operand_bytes
                instructions.append(Instruction(opcode, tuple(args)))
            program.append(Bundle(tuple(instructions)))
        if offset != len(data):
            raise IncompatibleBinaryError("trailing bytes after last bundle")
        return program


_FORMATS: Dict[int, BinaryFormat] = {
    1: BinaryFormat(1, b"TPU1", 3, 17),
    2: BinaryFormat(2, b"TPU2", 4, 59),
    3: BinaryFormat(3, b"TPU3", 4, 113),
    4: BinaryFormat(4, b"TP4I", 5, 211),
}


def format_for_generation(generation: int) -> BinaryFormat:
    """The binary format of a chip generation."""
    try:
        return _FORMATS[generation]
    except KeyError:
        raise KeyError(f"no binary format for generation {generation}") from None


def encode_program(program: Program) -> bytes:
    """Encode with the format matching the program's generation."""
    return format_for_generation(program.generation).encode(program)


def decode_program(data: bytes, generation: int) -> Program:
    """Decode ``data`` as a generation-``generation`` binary."""
    return format_for_generation(generation).decode(data)
