"""Textual assembler/disassembler for TensorCore programs.

The format is one bundle per line; instructions within a bundle are
separated by `` ; ``. Operands are comma-separated non-negative integers.
Lines starting with ``#`` are comments, and a leading directive names the
program and generation:

    .program my_kernel gen 4
    dma.in 1, 65536, 0 ; mxm.loadw 128, 128
    sync.wait 0
    mxm 256, 128, 128 ; vrelu 32768
    halt

The assembler exists for tests and for poking at scheduling by hand; the
compiler builds :class:`~repro.isa.program.Program` objects directly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instructions import Bundle, Instruction, Opcode
from repro.isa.program import Program


class AssemblyError(Exception):
    """Malformed assembly text."""


def _parse_instruction(text: str, line_no: int) -> Instruction:
    text = text.strip()
    if not text:
        raise AssemblyError(f"line {line_no}: empty instruction")
    parts = text.split(None, 1)
    mnemonic = parts[0]
    try:
        opcode = Opcode.by_mnemonic(mnemonic)
    except KeyError as exc:
        raise AssemblyError(f"line {line_no}: {exc}") from exc
    args: List[int] = []
    if len(parts) > 1:
        for token in parts[1].split(","):
            token = token.strip()
            if not token:
                raise AssemblyError(f"line {line_no}: empty operand")
            try:
                args.append(int(token, 0))
            except ValueError as exc:
                raise AssemblyError(
                    f"line {line_no}: operand {token!r} is not an integer") from exc
    try:
        return Instruction(opcode, tuple(args))
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: {exc}") from exc


def assemble(text: str) -> Program:
    """Parse assembly text into a validated :class:`Program`."""
    program: Optional[Program] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".program"):
            if program is not None:
                raise AssemblyError(f"line {line_no}: duplicate .program directive")
            tokens = line.split()
            if len(tokens) != 4 or tokens[2] != "gen":
                raise AssemblyError(
                    f"line {line_no}: expected '.program NAME gen N'")
            try:
                generation = int(tokens[3])
            except ValueError as exc:
                raise AssemblyError(f"line {line_no}: bad generation") from exc
            program = Program(name=tokens[1], generation=generation)
            continue
        if program is None:
            raise AssemblyError(
                f"line {line_no}: instructions before .program directive")
        instructions = tuple(
            _parse_instruction(chunk, line_no) for chunk in line.split(";"))
        try:
            program.append(Bundle(instructions))
        except ValueError as exc:
            raise AssemblyError(f"line {line_no}: {exc}") from exc
    if program is None:
        raise AssemblyError("no .program directive found")
    return program


def disassemble(program: Program) -> str:
    """Render a program back to assembly text (round-trips with assemble)."""
    lines = [f".program {program.name} gen {program.generation}"]
    lines.extend(str(bundle) for bundle in program.bundles)
    return "\n".join(lines) + "\n"
