"""Policy-aware N+k sizing: pick spares by simulated availability.

``plan_fleet(spare_chips=k)`` prices an N+k fleet but takes ``k`` on
faith. :func:`plan_resilient_fleet` closes the loop: it simulates the
actual cluster — router policy, health checks, failover and all — under
a fault model for k = 0, 1, ... and returns the *cheapest* plan whose
simulated availability clears the target. The k it lands on is the
paper's availability engineering done quantitatively instead of by the
rule of thumb "add one spare".

Large fleets are simulated as a proportional slice (default at most
``max_simulated_replicas`` serving replicas with traffic scaled to
match) so the decision stays cheap while preserving the N:k ratio that
drives availability.

With ``slice_chips > 1`` a "replica" is a multi-chip sharded slice
(:class:`~repro.pod.slicesim.SliceSimulator`): k walks over *slices*,
every spare costs ``slice_chips`` chips, and the availability each k is
judged on includes link-failure-induced slice loss — a partitioned
slice fails its health probes and drops out exactly like a dead chip,
so the planner prices ICI fragility instead of assuming the fabric is
perfect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.cluster import ClusterSimulator
from repro.cluster.policy import ClusterPolicy
from repro.core.design_point import DesignPoint
from repro.faults.model import FaultModel
from repro.serving.batching import BatchPolicy
from repro.serving.fleet import FleetPlan, plan_fleet
from repro.serving.server import ServingSimulator
from repro.serving.slo import Slo
from repro.workloads.generator import RequestGenerator
from repro.workloads.models import WorkloadSpec

#: Default fault pressure for sizing: a couple of chip-scale outages
#: per simulated second of traffic — harsh enough that k=0 usually
#: fails the target and the spare count actually matters.
DEFAULT_SIZING_FAULTS = FaultModel(seed=0, chip_mtbf_s=0.5,
                                   chip_repair_s=0.25)


def default_sizing_pod_faults() -> "object":
    """Link-fault pressure matching :data:`DEFAULT_SIZING_FAULTS`:
    a couple of link outages per simulated second, so slice loss from
    the fabric is visible in the k walk (imported lazily to keep the
    planner import-light for slice_chips == 1 callers)."""
    from repro.pod.faults import PodFaultModel
    return PodFaultModel(seed=0, link_mtbf_s=0.5, link_repair_s=0.25)


@dataclass(frozen=True)
class ResilientPlanTrail:
    """The k -> availability curve the planner walked (for reporting)."""

    workload: str
    chip: str
    availability_target: float
    points: tuple  # ((k, simulated availability), ...)
    slice_chips: int = 1  # >1: each replica is a sharded slice


def plan_resilient_fleet(point: DesignPoint, spec: WorkloadSpec,
                         target_qps: float, *,
                         slo: Optional[Slo] = None,
                         availability_target: float = 0.99,
                         max_spares: int = 3,
                         faults: Optional[FaultModel] = None,
                         policy: Optional[ClusterPolicy] = None,
                         duration_s: float = 1.0,
                         seed: int = 0,
                         peak_headroom: float = 1.4,
                         max_simulated_replicas: int = 4,
                         slice_chips: int = 1,
                         pod_faults=None,
                         ) -> tuple[FleetPlan, ResilientPlanTrail]:
    """Size N+k by simulating the cluster until availability clears.

    Returns the plan for the smallest k in ``0..max_spares`` whose
    cluster-simulated availability under ``faults`` reaches
    ``availability_target`` — or the ``max_spares`` plan (with its
    measured availability attached) when none does, so the caller can
    see exactly how far short the fleet falls. Deterministic: the same
    arguments always walk the same trail.

    ``slice_chips > 1`` makes every replica a sharded
    :class:`~repro.pod.slicesim.SliceSimulator` slice: k counts spare
    *slices* (``k * slice_chips`` spare chips in the returned plan) and
    each slice additionally suffers ``pod_faults`` link failures
    (default :func:`default_sizing_pod_faults`), forked per slice —
    so a link-partitioned slice costs availability exactly like a dead
    replica and the walk prices the fabric, not just the chips.
    """
    if not 0.0 < availability_target <= 1.0:
        raise ValueError("availability_target must be in (0, 1]")
    if max_spares < 0:
        raise ValueError("max_spares must be non-negative")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if slice_chips < 1:
        raise ValueError("slice_chips must be >= 1")
    limit = slo if slo is not None else Slo(spec.slo_ms / 1e3)
    model = faults if faults is not None else DEFAULT_SIZING_FAULTS

    # One batched grid evaluation warms every (batch -> latency, qps,
    # power) record the sizing below consults: plan_fleet's SLO ladder
    # walk and its chosen-batch evaluation, plus every plan_fleet call
    # in the k loop, all become cache hits.
    from repro.engine.grid import GridJob, evaluate_jobs
    evaluate_jobs([GridJob(point, spec, batch)
                   for batch in (1, 2, 4, 8, 16, 32, 64, 128, 256)])

    base = plan_fleet(point, spec, target_qps, slo=limit,
                      peak_headroom=peak_headroom)
    serving = base.serving_chips
    # Simulate a proportional slice of big fleets: same N:k pressure,
    # bounded cost. Traffic scales with the slice.
    sim_serving = min(serving, max_simulated_replicas)
    sim_qps = target_qps * sim_serving / serving
    batch_policy = BatchPolicy(max_batch=base.slo_batch,
                               max_wait_s=limit.limit_s / 4.0)
    traffic = RequestGenerator(seed * 104_729 + 1)
    requests = traffic.poisson(spec.name, max(sim_qps, 1.0), duration_s)

    sliced = slice_chips > 1
    if sliced:
        from repro.pod.faults import PodFaultModel
        from repro.pod.slicesim import SliceSimulator
        from repro.pod.topology import slice_topology
        from repro.util.rng import DeterministicRng
        topo = slice_topology(point.chip, slice_chips)
        pod_model: PodFaultModel = (
            pod_faults if pod_faults is not None
            else default_sizing_pod_faults())
        horizon = requests[-1].arrival_s + model.horizon_pad_s
        chip_root = DeterministicRng(model.seed)

        def sliced_cluster(n: int, cluster_policy):
            """n slice replicas sharing memos + per-slice schedules.

            Chip faults fork per replica with the cluster's own salt
            (the timelines replica i would have drawn anyway) and each
            slice's link faults fork independently; both compile into
            one core schedule per slice.
            """
            from repro.cluster.cluster import _REPLICA_SALT
            sims = [SliceSimulator(point, spec, batch_policy, limit,
                                   topology=topo) for _ in range(n)]
            for sim in sims[1:]:
                sim._latency_cache = sims[0]._latency_cache
                sim._shards = sims[0]._shards
                sim._state_latency = sims[0]._state_latency
            schedules = []
            for i, sim in enumerate(sims):
                chip_schedule = None
                if not model.zero_fault:
                    forked = replace(
                        model, seed=chip_root.fork(_REPLICA_SALT + i).seed)
                    chip_schedule = forked.schedule(
                        point.chip.cores, horizon)
                    if chip_schedule.is_empty:
                        chip_schedule = None
                link_schedule = pod_model.fork_for_slice(i).link_schedule(
                    topo.num_links, horizon)
                schedules.append(sim.induced_schedule(
                    link_schedule, horizon, chip_schedule))
            return ClusterSimulator(sims, cluster_policy), schedules

    trail: list[tuple[int, float]] = []
    chosen: Optional[FleetPlan] = None
    for k in range(max_spares + 1):
        n = sim_serving + k
        cluster_policy = (policy if policy is not None
                          else ClusterPolicy.resilient(
                              slo_limit_s=limit.limit_s,
                              offered_qps=max(sim_qps, 1.0),
                              max_batch=base.slo_batch,
                              replicas=n,
                              int8_tier=point.chip.supports_dtype("int8")))
        if sliced:
            cluster, schedules = sliced_cluster(n, cluster_policy)
            stats = cluster.simulate(requests, faults=model,
                                     schedules=schedules)
        else:
            cluster = ClusterSimulator.homogeneous(
                point, spec, batch_policy, limit, n,
                cluster_policy=cluster_policy)
            stats = cluster.simulate(requests, faults=model)
        trail.append((k, stats.availability))
        if stats.availability >= availability_target:
            chosen = replace(
                plan_fleet(point, spec, target_qps, slo=limit,
                           peak_headroom=peak_headroom,
                           spare_chips=k * slice_chips),
                simulated_availability=stats.availability)
            break
    if chosen is None:
        chosen = replace(
            plan_fleet(point, spec, target_qps, slo=limit,
                       peak_headroom=peak_headroom,
                       spare_chips=max_spares * slice_chips),
            simulated_availability=trail[-1][1])
    return chosen, ResilientPlanTrail(
        workload=spec.name, chip=point.chip.name,
        availability_target=availability_target, points=tuple(trail),
        slice_chips=slice_chips)
