"""Policy-aware N+k sizing: pick spares by simulated availability.

``plan_fleet(spare_chips=k)`` prices an N+k fleet but takes ``k`` on
faith. :func:`plan_resilient_fleet` closes the loop: it simulates the
actual cluster — router policy, health checks, failover and all — under
a fault model for k = 0, 1, ... and returns the *cheapest* plan whose
simulated availability clears the target. The k it lands on is the
paper's availability engineering done quantitatively instead of by the
rule of thumb "add one spare".

Large fleets are simulated as a proportional slice (default at most
``max_simulated_replicas`` serving replicas with traffic scaled to
match) so the decision stays cheap while preserving the N:k ratio that
drives availability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.cluster import ClusterSimulator
from repro.cluster.policy import ClusterPolicy
from repro.core.design_point import DesignPoint
from repro.faults.model import FaultModel
from repro.serving.batching import BatchPolicy
from repro.serving.fleet import FleetPlan, plan_fleet
from repro.serving.server import ServingSimulator
from repro.serving.slo import Slo
from repro.workloads.generator import RequestGenerator
from repro.workloads.models import WorkloadSpec

#: Default fault pressure for sizing: a couple of chip-scale outages
#: per simulated second of traffic — harsh enough that k=0 usually
#: fails the target and the spare count actually matters.
DEFAULT_SIZING_FAULTS = FaultModel(seed=0, chip_mtbf_s=0.5,
                                   chip_repair_s=0.25)


@dataclass(frozen=True)
class ResilientPlanTrail:
    """The k -> availability curve the planner walked (for reporting)."""

    workload: str
    chip: str
    availability_target: float
    points: tuple  # ((k, simulated availability), ...)


def plan_resilient_fleet(point: DesignPoint, spec: WorkloadSpec,
                         target_qps: float, *,
                         slo: Optional[Slo] = None,
                         availability_target: float = 0.99,
                         max_spares: int = 3,
                         faults: Optional[FaultModel] = None,
                         policy: Optional[ClusterPolicy] = None,
                         duration_s: float = 1.0,
                         seed: int = 0,
                         peak_headroom: float = 1.4,
                         max_simulated_replicas: int = 4,
                         ) -> tuple[FleetPlan, ResilientPlanTrail]:
    """Size N+k by simulating the cluster until availability clears.

    Returns the plan for the smallest k in ``0..max_spares`` whose
    cluster-simulated availability under ``faults`` reaches
    ``availability_target`` — or the ``max_spares`` plan (with its
    measured availability attached) when none does, so the caller can
    see exactly how far short the fleet falls. Deterministic: the same
    arguments always walk the same trail.
    """
    if not 0.0 < availability_target <= 1.0:
        raise ValueError("availability_target must be in (0, 1]")
    if max_spares < 0:
        raise ValueError("max_spares must be non-negative")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    limit = slo if slo is not None else Slo(spec.slo_ms / 1e3)
    model = faults if faults is not None else DEFAULT_SIZING_FAULTS

    # One batched grid evaluation warms every (batch -> latency, qps,
    # power) record the sizing below consults: plan_fleet's SLO ladder
    # walk and its chosen-batch evaluation, plus every plan_fleet call
    # in the k loop, all become cache hits.
    from repro.engine.grid import GridJob, evaluate_jobs
    evaluate_jobs([GridJob(point, spec, batch)
                   for batch in (1, 2, 4, 8, 16, 32, 64, 128, 256)])

    base = plan_fleet(point, spec, target_qps, slo=limit,
                      peak_headroom=peak_headroom)
    serving = base.serving_chips
    # Simulate a proportional slice of big fleets: same N:k pressure,
    # bounded cost. Traffic scales with the slice.
    sim_serving = min(serving, max_simulated_replicas)
    sim_qps = target_qps * sim_serving / serving
    batch_policy = BatchPolicy(max_batch=base.slo_batch,
                               max_wait_s=limit.limit_s / 4.0)
    traffic = RequestGenerator(seed * 104_729 + 1)
    requests = traffic.poisson(spec.name, max(sim_qps, 1.0), duration_s)

    trail: list[tuple[int, float]] = []
    chosen: Optional[FleetPlan] = None
    for k in range(max_spares + 1):
        n = sim_serving + k
        cluster_policy = (policy if policy is not None
                          else ClusterPolicy.resilient(
                              slo_limit_s=limit.limit_s,
                              offered_qps=max(sim_qps, 1.0),
                              max_batch=base.slo_batch,
                              replicas=n,
                              int8_tier=point.chip.supports_dtype("int8")))
        cluster = ClusterSimulator.homogeneous(
            point, spec, batch_policy, limit, n,
            cluster_policy=cluster_policy)
        stats = cluster.simulate(requests, faults=model)
        trail.append((k, stats.availability))
        if stats.availability >= availability_target:
            chosen = replace(
                plan_fleet(point, spec, target_qps, slo=limit,
                           peak_headroom=peak_headroom, spare_chips=k),
                simulated_availability=stats.availability)
            break
    if chosen is None:
        chosen = replace(
            plan_fleet(point, spec, target_qps, slo=limit,
                       peak_headroom=peak_headroom, spare_chips=max_spares),
            simulated_availability=trail[-1][1])
    return chosen, ResilientPlanTrail(
        workload=spec.name, chip=point.chip.name,
        availability_target=availability_target, points=tuple(trail))
