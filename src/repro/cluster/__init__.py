"""Cluster-level resilience: replicated serving behind a smart router.

The paper's availability story (Lessons 3 and 9) is about fleets, not
single chips: production inference rides N+k replicated servers behind
a router that probes health, sheds overload, hedges stragglers and
degrades gracefully instead of falling over. This package builds that
layer on top of the single-chip serving simulator, deterministically:

* :mod:`repro.cluster.policy` — :class:`ClusterPolicy` (health checks,
  token-bucket admission, hedging, a :class:`DegradationTier` ladder);
  every knob defaults to off, so the default policy is a passthrough;
* :mod:`repro.cluster.cluster` — :class:`ClusterSimulator`, the shared-
  clock discrete-event loop over N replica simulators, and
  :class:`ClusterStats`, its unique-request accounting;
* :mod:`repro.cluster.sweep` — :func:`chaos_sweep`, protected vs
  unprotected clusters across generations and chaos scenarios (the
  ``repro cluster`` CLI and the engine benchmark's cluster phase);
* :mod:`repro.cluster.planner` — :func:`plan_resilient_fleet`, N+k
  sizing by simulated availability instead of rule of thumb.

Identity contract: one replica + passthrough policy + no faults is
bit-identical to a plain ``ServingSimulator.simulate`` run, field for
field. The router costs nothing until you turn something on.
"""

from repro.cluster.cluster import ClusterSimulator, ClusterStats
from repro.cluster.planner import (DEFAULT_SIZING_FAULTS, ResilientPlanTrail,
                                   plan_resilient_fleet)
from repro.cluster.policy import ClusterPolicy, DegradationTier
from repro.cluster.sweep import (DEFAULT_SCENARIOS, ChaosRow, ChaosScenario,
                                 chaos_sweep)

__all__ = [
    "ChaosRow",
    "ChaosScenario",
    "ClusterPolicy",
    "ClusterSimulator",
    "ClusterStats",
    "DEFAULT_SCENARIOS",
    "DEFAULT_SIZING_FAULTS",
    "DegradationTier",
    "ResilientPlanTrail",
    "chaos_sweep",
    "plan_resilient_fleet",
]
