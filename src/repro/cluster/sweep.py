"""Chaos sweep: protected vs unprotected clusters across generations.

One row per (chip generation, app, chaos scenario, router policy):
deterministic Poisson traffic sized so that N-1 replicas can carry it
(the N+1 provisioning rule from the fleet planner), driven through a
3-replica cluster under a chaos scenario — nothing, a replica killed
outright, chip-level outages, transient slowdowns, or a 2.5x overload —
once with the unprotected ``static`` router and once with the full
``resilient`` policy. The emitted table is what the ``repro cluster``
CLI prints and what the engine benchmark's cluster phase times and
checks for determinism: same arguments, byte-identical rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch import GENERATIONS
from repro.arch.chip import ChipConfig
from repro.cluster.cluster import ClusterSimulator, ClusterStats
from repro.cluster.policy import ClusterPolicy
from repro.core.design_point import shared_design_point
from repro.faults.model import FaultModel, FaultSchedule
from repro.faults.sweep import latency_table
from repro.serving.batching import BatchPolicy
from repro.serving.server import ServingSimulator
from repro.serving.slo import Slo
from repro.workloads.generator import RequestGenerator
from repro.workloads.models import app_by_name

DEFAULT_REPLICAS = 3
DEFAULT_UTILIZATION = 0.6
DEFAULT_DURATION_S = 1.0
DEFAULT_MAX_BATCH = 8


@dataclass(frozen=True)
class ChaosScenario:
    """One way to hurt a cluster (all rates in simulated seconds).

    ``kill_replicas`` takes that many replicas down for the whole run
    (hand-built schedules, not MTBF draws); the MTBF fields feed a
    seeded :class:`FaultModel` forked per replica; ``load_factor``
    scales offered traffic beyond what the cluster was sized for.
    """

    name: str
    core_mtbf_s: float = math.inf
    chip_mtbf_s: float = math.inf
    chip_repair_s: float = 0.2
    slowdown_mtbf_s: float = math.inf
    kill_replicas: int = 0
    load_factor: float = 1.0

    def model(self, seed: int) -> Optional[FaultModel]:
        if (math.isinf(self.core_mtbf_s) and math.isinf(self.chip_mtbf_s)
                and math.isinf(self.slowdown_mtbf_s)):
            return None
        return FaultModel(seed=seed, core_mtbf_s=self.core_mtbf_s,
                          chip_mtbf_s=self.chip_mtbf_s,
                          chip_repair_s=self.chip_repair_s,
                          slowdown_mtbf_s=self.slowdown_mtbf_s)


#: The default chaos menu: a clean control, a dead replica, MTBF-driven
#: chip outages, transient slowdowns, and a 2.5x overload.
DEFAULT_SCENARIOS: tuple[ChaosScenario, ...] = (
    ChaosScenario("faultless"),
    ChaosScenario("kill-1", kill_replicas=1),
    ChaosScenario("chip-outages", chip_mtbf_s=0.5, chip_repair_s=0.2),
    ChaosScenario("slowdowns", slowdown_mtbf_s=0.3),
    ChaosScenario("overload", load_factor=2.5),
)


@dataclass(frozen=True)
class ChaosRow:
    """One (chip, app, scenario, policy) cell of the chaos sweep."""

    chip: str
    app: str
    scenario: str
    policy: str
    offered_qps: float
    stats: ClusterStats


def chaos_sweep(seed: int = 0, *,
                apps: Sequence[str] = ("cnn0",),
                chips: Optional[Sequence[ChipConfig]] = None,
                replicas: int = DEFAULT_REPLICAS,
                duration_s: float = DEFAULT_DURATION_S,
                utilization: float = DEFAULT_UTILIZATION,
                max_batch: int = DEFAULT_MAX_BATCH,
                scenarios: Sequence[ChaosScenario] = DEFAULT_SCENARIOS,
                ) -> list[ChaosRow]:
    """Run every (chip, app, scenario) under both router policies.

    Traffic per (chip, app) is Poisson at ``utilization`` of the SLO
    capacity of ``replicas - 1`` replicas — the fleet is provisioned
    N+1, so one dead replica should be survivable by construction — and
    seeded from ``seed``: the sweep is a pure function of its
    arguments (asserted by the engine benchmark).
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    if replicas < 2:
        raise ValueError("a chaos sweep needs at least 2 replicas")
    chip_list = tuple(chips) if chips is not None else GENERATIONS
    for scenario in scenarios:
        if scenario.kill_replicas >= replicas:
            raise ValueError(
                f"scenario {scenario.name!r} kills every replica")

    rows: list[ChaosRow] = []
    for pair_index, (chip, app) in enumerate(
            (c, a) for c in chip_list for a in apps):
        spec = app_by_name(app)
        slo = Slo(spec.slo_ms / 1e3)
        point = shared_design_point(chip)
        steps = BatchPolicy.batch_steps(max_batch)
        table = latency_table(point, spec, steps)
        slo_batch = max((s for s in steps if table[s] <= slo.limit_s),
                        default=1)
        per_replica_qps = chip.cores * slo_batch / table[slo_batch]
        base_qps = utilization * per_replica_qps * (replicas - 1)

        batch_policy = BatchPolicy(max_batch=max_batch,
                                   max_wait_s=slo.limit_s / 4.0)
        policies = (
            ("static", ClusterPolicy.static()),
            ("resilient", ClusterPolicy.resilient(
                slo_limit_s=slo.limit_s, offered_qps=base_qps,
                max_batch=max_batch, replicas=replicas,
                int8_tier=chip.supports_dtype("int8"))),
        )
        traffic = RequestGenerator(seed * 7919 + pair_index)
        for scenario in scenarios:
            # Bare arrival timestamps (same draws as .poisson, which
            # delegates here): at sweep scale the router only reads
            # arrival times, so Request objects would be pure overhead.
            requests = traffic.rng.poisson_arrivals(
                base_qps * scenario.load_factor, duration_s)
            if not requests:
                continue  # degenerate rate/duration; nothing to serve
            model = scenario.model(seed)
            schedules = None
            if scenario.kill_replicas:
                horizon = requests[-1] + 1.0
                schedules = [
                    FaultSchedule(chip.cores, horizon,
                                  down=[(c, 0.0, math.inf)
                                        for c in range(chip.cores)])
                    if i < scenario.kill_replicas else None
                    for i in range(replicas)]
            for policy_name, policy in policies:
                sims = [ServingSimulator(point, spec, batch_policy, slo)
                        for _ in range(replicas)]
                for sim in sims:
                    sim.seed_latencies(table)
                cluster = ClusterSimulator(sims, policy)
                stats = cluster.simulate(requests, faults=model,
                                         schedules=schedules)
                rows.append(ChaosRow(chip=chip.name, app=spec.name,
                                     scenario=scenario.name,
                                     policy=policy_name,
                                     offered_qps=base_qps
                                     * scenario.load_factor,
                                     stats=stats))
    return rows
