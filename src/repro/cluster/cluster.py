"""Deterministic cluster-serving simulator: N replicas behind a router.

Composes N replica :class:`~repro.serving.server.ServingSimulator`\\ s on
one shared simulated clock behind a router that implements the
protections a :class:`~repro.cluster.policy.ClusterPolicy` declares:
health-checked routing with ejection and half-open re-admission,
token-bucket admission control with queue-depth backpressure, request
hedging with first-response-wins accounting, and a graceful-degradation
tier ladder (smaller batches, then an int8-retargeted compile).

The whole thing is a discrete-event simulation. Events — request
arrivals, batch completions, health probes, hedge timers and batch
launches — are processed in simulated-time order with a fixed priority
at equal timestamps (completions, then probes, then arrivals, then
hedge timers, then launches; replica index breaks remaining ties), so a
run is a pure function of its inputs: byte-identical stats on every
repeat.

**Identity contract** (asserted in ``tests/test_cluster.py`` and the
engine benchmark's cluster phase): a one-replica cluster under a
passthrough policy — and with no faults — produces a per-replica
:class:`~repro.serving.server.ServingStats` that equals the plain
``ServingSimulator.simulate`` result on the same trace, field for
field, bit for bit. The router adds *nothing* to the fault-free path;
every protection is pay-for-what-you-use.

Replica fault streams are forked deterministically: replica ``i``
realizes ``FaultModel`` with seed ``DeterministicRng(model.seed)
.fork(_REPLICA_SALT + i).seed``, so adding a replica never perturbs the
failures another replica sees.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cluster.policy import ClusterPolicy
from repro.obs.metrics import metrics
from repro.serving.batching import BatchPolicy
from repro.serving.fastserve import fastserve_enabled, replay_cluster
from repro.serving.server import (DEFAULT_RETRY_BUDGET,
                                  DEFAULT_RETRY_TIMEOUT_S, ServingSimulator,
                                  ServingStats)
from repro.serving.slo import Slo, percentile_sorted
from repro.workloads.generator import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.model import FaultModel, FaultSchedule
    from repro.obs.tracer import SpanTracer

#: Per-replica fault-stream salt: far above the model's internal salts
#: so replica streams never collide with core/chip/slowdown streams.
_REPLICA_SALT = 9_000_000

#: Event priorities at equal simulated timestamps. Completions free
#: capacity before anything else looks at it; probes update health
#: before routing decisions; arrivals join queues before the batch that
#: could absorb them launches (this reproduces the single-simulator
#: absorb rule ``arrival <= max(server_free, deadline)`` exactly).
_P_COMPLETION = 0
_P_PROBE = 1
_P_ARRIVAL = 2
_P_HEDGE = 3
_P_LAUNCH = 4

_HEALTHY = 0
_EJECTED = 1


@dataclass(frozen=True)
class ClusterStats:
    """Cluster-level summary plus the per-replica breakdown.

    Unique-request accounting: ``requests`` counts offered requests,
    each counted once no matter how many hedged or failed-over copies
    existed; conservation (``requests == served + dropped + shed``) is
    a constructor invariant, same as :class:`ServingStats`. The
    per-replica stats count *copies*, so with hedging on their sums can
    exceed the cluster totals — that surplus is exactly the hedging
    overhead (``wasted_hedges`` batches of it actually burned compute).
    """

    workload: str
    chip: str
    replicas: int
    requests: int
    duration_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_batch: float
    throughput_qps: float
    slo_violation_fraction: float
    availability: float
    served_requests: int
    dropped_requests: int
    shed_requests: int
    retried_requests: int = 0
    lost_batches: int = 0
    hedged_requests: int = 0       # hedge copies issued
    cancelled_hedges: int = 0      # loser copies cancelled while queued
    wasted_hedges: int = 0         # loser copies that burned compute
    failed_over_requests: int = 0  # queued copies moved off an ejected replica
    probes: int = 0
    probe_failures: int = 0
    ejections: int = 0
    readmissions: int = 0
    time_in_tier_s: tuple = ()     # ((tier name, simulated seconds), ...)
    replica_stats: tuple = ()      # per-replica ServingStats

    def __post_init__(self) -> None:
        accounted = (self.served_requests + self.dropped_requests
                     + self.shed_requests)
        if accounted != self.requests:
            raise ValueError(
                f"request conservation violated: {self.requests} arrived != "
                f"{self.served_requests} served + {self.dropped_requests} "
                f"dropped + {self.shed_requests} shed")

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered requests rejected by admission control."""
        return self.shed_requests / self.requests if self.requests else 0.0

    @property
    def degraded_s(self) -> float:
        """Simulated seconds spent below the full-service tier."""
        return sum(seconds for name, seconds in self.time_in_tier_s[1:])

    def describe(self) -> str:
        base = (f"{self.workload} x{self.replicas} on {self.chip}: "
                f"{self.requests} reqs, {self.availability:.2%} available, "
                f"p99 {self.p99_s * 1e3:.2f} ms, "
                f"{self.shed_fraction:.1%} shed")
        extras = []
        if self.hedged_requests:
            extras.append(f"{self.hedged_requests} hedged "
                          f"({self.cancelled_hedges} cancelled, "
                          f"{self.wasted_hedges} wasted)")
        if self.ejections:
            extras.append(f"{self.ejections} ejections "
                          f"({self.readmissions} readmitted, "
                          f"{self.failed_over_requests} failed over)")
        if self.degraded_s:
            extras.append(f"{self.degraded_s:.3g} s degraded")
        if extras:
            base += " [" + "; ".join(extras) + "]"
        return base


class _Replica:
    """Mutable per-replica state of one cluster simulation run."""

    __slots__ = ("index", "sim", "schedule", "servers", "queue", "health",
                 "consecutive_failures", "ejected_until", "dead",
                 "latencies", "batch_sizes", "retried", "dropped",
                 "lost_batches", "last_completion", "first_arrival",
                 "last_arrival")

    def __init__(self, index: int, sim: ServingSimulator,
                 schedule: Optional["FaultSchedule"]) -> None:
        self.index = index
        self.sim = sim
        self.schedule = schedule
        self.servers = [(0.0, core) for core in range(sim.point.chip.cores)]
        heapq.heapify(self.servers)
        # Queue entries are (arrival_s, retries, request id); hedge and
        # failed-over copies keep the original arrival time, exactly as
        # retried requests do inside ServingSimulator.
        self.queue: list[tuple[float, int, int]] = []
        self.health = _HEALTHY
        self.consecutive_failures = 0
        self.ejected_until = 0.0
        self.dead = False  # every core is down for good
        self.latencies: list[float] = []
        self.batch_sizes: list[int] = []
        self.retried = 0
        self.dropped = 0
        self.lost_batches = 0
        self.last_completion = 0.0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None

    def note_assignment(self, arrival: float) -> None:
        if self.first_arrival is None or arrival < self.first_arrival:
            self.first_arrival = arrival
        if self.last_arrival is None or arrival > self.last_arrival:
            self.last_arrival = arrival

    def next_launch(self, cap: int) -> Optional[float]:
        """When the head batch would launch, or None (idle / dead)."""
        if not self.queue:
            return None
        free = self.servers[0][0]
        if math.isinf(free):
            self.dead = True
            return None
        if len(self.queue) >= cap:
            ready = self.queue[cap - 1][0]
        else:
            ready = self.queue[0][0] + self.sim.policy.max_wait_s
        return max(free, ready)

    def stats(self) -> ServingStats:
        served = len(self.latencies)
        total = served + self.dropped
        if self.first_arrival is None:
            duration = 0.0
        else:
            duration = (max(self.last_completion, self.last_arrival)
                        - self.first_arrival)
        lost_capacity = 0.0
        if self.schedule is not None and duration > 0:
            lost_capacity = (
                self.schedule.downtime_core_s(
                    self.first_arrival, self.first_arrival + duration)
                / (self.sim.point.chip.cores * duration))
        ordered = sorted(self.latencies)
        return ServingStats(
            workload=self.sim.spec.name,
            chip=self.sim.point.chip.name,
            requests=total,
            duration_s=duration,
            p50_s=percentile_sorted(ordered, 50) if ordered else 0.0,
            p95_s=percentile_sorted(ordered, 95) if ordered else 0.0,
            p99_s=percentile_sorted(ordered, 99) if ordered else 0.0,
            mean_batch=(sum(self.batch_sizes) / len(self.batch_sizes)
                        if self.batch_sizes else 0.0),
            throughput_qps=served / duration if duration > 0 else 0.0,
            slo_violation_fraction=self.sim.slo.violation_fraction_sorted(
                ordered),
            availability=served / total if total else 1.0,
            retried_requests=self.retried,
            dropped_requests=self.dropped,
            lost_batches=self.lost_batches,
            lost_capacity_fraction=lost_capacity,
            served_requests=served,
        )


class ClusterSimulator:
    """N replica serving simulators behind one policy-driven router."""

    def __init__(self, replicas: Sequence[ServingSimulator],
                 policy: Optional[ClusterPolicy] = None) -> None:
        if not replicas:
            raise ValueError("a cluster needs at least one replica")
        names = {sim.spec.name for sim in replicas}
        if len(names) != 1:
            raise ValueError(
                f"replicas must serve one workload, got {sorted(names)}")
        self.replica_sims = tuple(replicas)
        self.policy = policy if policy is not None else ClusterPolicy()
        if self.policy.degrades and not self.policy.probes:
            raise ValueError(
                "degradation tiers need health probing: the tier controller "
                "runs on the probe clock (set probe_interval_s)")
        # Degradation-tier latency tables, memoized per unique
        # (chip, compiler, workload, steps, dtype): identical replicas
        # share one table instead of recompiling per replica.
        self._tier_table_memo: dict[tuple, dict[int, float]] = {}

    @classmethod
    def homogeneous(cls, point, spec, policy: BatchPolicy, slo: Slo,
                    replicas: int,
                    cluster_policy: Optional[ClusterPolicy] = None,
                    ) -> "ClusterSimulator":
        """Build N identical replicas of one (design point, workload).

        Identical replicas serve identical latencies, so they share one
        batch-latency memo: the cluster compiles/simulates each padded
        batch size once, not once per replica.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        sims = [ServingSimulator(point, spec, policy, slo)
                for _ in range(replicas)]
        for sim in sims[1:]:
            sim._latency_cache = sims[0]._latency_cache
        return cls(sims, cluster_policy)

    # ------------------------------------------------------------- internals

    def _fork_schedules(self, faults: Optional["FaultModel"],
                        horizon_s: float,
                        ) -> list[Optional["FaultSchedule"]]:
        """One independently-seeded schedule per replica (None = clean)."""
        if faults is None or faults.zero_fault:
            return [None] * len(self.replica_sims)
        from repro.util.rng import DeterministicRng
        root = DeterministicRng(faults.seed)
        schedules: list[Optional["FaultSchedule"]] = []
        for i, sim in enumerate(self.replica_sims):
            forked = replace(faults, seed=root.fork(_REPLICA_SALT + i).seed)
            schedule = forked.schedule(sim.point.chip.cores, horizon_s)
            schedules.append(None if schedule.is_empty else schedule)
        return schedules

    def _tier_tables(self) -> list[dict[str, dict[int, float]]]:
        """Per-replica dtype -> (padded batch -> latency) for dtype tiers.

        Reuses the PR 3 retarget path via :func:`~repro.faults.sweep.
        latency_table`; lookups go by the replica's own padded size so a
        tier cap that is not a compiled step still maps onto an existing
        program (fewer requests padded into it), never a phantom one.
        """
        dtypes = sorted({t.dtype for t in self.policy.tiers if t.dtype})
        if not dtypes:
            return [{} for _ in self.replica_sims]
        from repro.faults.sweep import latency_table
        tables: list[dict[str, dict[int, float]]] = []
        for sim in self.replica_sims:
            steps = BatchPolicy.batch_steps(sim.policy.max_batch)
            per_dtype: dict[str, dict[int, float]] = {}
            for dtype in dtypes:
                key = (sim.point.chip_fp, sim.point.compiler_fp,
                       sim.spec.name, steps, dtype)
                table = self._tier_table_memo.get(key)
                if table is None:
                    table = latency_table(sim.point, sim.spec, steps,
                                          dtype=dtype)
                    self._tier_table_memo[key] = table
                per_dtype[dtype] = table
            tables.append(per_dtype)
        return tables

    # -------------------------------------------------------------- simulate

    def simulate(self, requests: Sequence[Request],
                 faults: Optional["FaultModel"] = None,
                 schedules: Optional[Sequence[
                     Optional["FaultSchedule"]]] = None,
                 tracer: Optional["SpanTracer"] = None) -> ClusterStats:
        """Run the cluster event loop over a time-sorted request stream.

        ``faults`` forks one independently-seeded schedule per replica;
        ``schedules`` supplies them directly (one entry per replica,
        ``None`` for a clean replica) and wins when both are given.
        ``tracer`` records batch spans per replica core plus router
        instants (ejections, re-admissions, tier changes) — a pure side
        channel, bit-identical stats either way.

        ``requests`` may be :class:`Request` objects or bare arrival
        timestamps (floats) — the router only ever reads arrival times,
        and sweeps over hundreds of thousands of requests skip a lot of
        object construction by passing timestamps directly.
        """
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        if isinstance(requests[0], Request):
            arrivals = [r.arrival_s for r in requests]
        else:
            arrivals = list(requests)
        if arrivals != sorted(arrivals):  # C-speed on near-sorted input
            raise ValueError("requests must be sorted by arrival time")

        policy = self.policy
        n = len(self.replica_sims)
        if faults is not None:
            retry_budget = faults.retry_budget
            retry_timeout = faults.retry_timeout_s
        else:
            retry_budget = DEFAULT_RETRY_BUDGET
            retry_timeout = DEFAULT_RETRY_TIMEOUT_S
        if schedules is not None:
            if len(schedules) != n:
                raise ValueError(
                    f"{len(schedules)} schedules for {n} replicas")
            fixed: list[Optional["FaultSchedule"]] = []
            for sim, schedule in zip(self.replica_sims, schedules):
                if schedule is not None:
                    if schedule.cores != sim.point.chip.cores:
                        raise ValueError(
                            f"schedule built for {schedule.cores} cores, "
                            f"replica has {sim.point.chip.cores}")
                    if schedule.is_empty:
                        schedule = None
                fixed.append(schedule)
            plan = fixed
        else:
            horizon = (arrivals[-1] + faults.horizon_pad_s
                       if faults is not None else 0.0)
            plan = self._fork_schedules(faults, horizon)

        reps = [_Replica(i, sim, plan[i])
                for i, sim in enumerate(self.replica_sims)]
        tier_tables = self._tier_tables()

        if fastserve_enabled():
            return replay_cluster(self, arrivals, reps, tier_tables,
                                  retry_budget, retry_timeout, tracer)
        return self._replay_events(arrivals, reps, tier_tables,
                                   retry_budget, retry_timeout, tracer)

    def _replay_events(self, arrivals: list[float], reps: list[_Replica],
                       tier_tables: list, retry_budget: int,
                       retry_timeout: float,
                       tracer: Optional["SpanTracer"]) -> ClusterStats:
        """Reference event loop (``REPRO_FASTSERVE=0`` path)."""
        policy = self.policy
        n = len(reps)
        reg = metrics()
        rec = reg.enabled

        # ----- per-request state (unique-request accounting) -----
        total = len(arrivals)
        completed_at: list[Optional[float]] = [None] * total
        outstanding = [0] * total
        holding: list[list[int]] = [[] for _ in range(total)]
        hedged_flag = [False] * total

        cluster_latencies: list[float] = []
        shed = dropped_unique = 0
        hedged = cancelled_hedges = wasted_hedges = failed_over = 0
        probes = probe_failures = ejections = readmissions = 0

        # ----- router clocks -----
        tokens = policy.admission_burst
        tokens_at = arrivals[0]
        next_probe = (arrivals[0] + policy.probe_interval_s
                      if policy.probes else math.inf)
        hedge_heap: list[tuple[float, int]] = []   # (fire time, request id)
        completion_heap: list = []  # (time, replica, seq, batch entries)
        completion_seq = 0

        # ----- degradation ladder -----
        tier = 0
        tier_names = ("full",) + tuple(t.name for t in policy.tiers)
        tier_time = [0.0] * len(tier_names)
        tier_since = arrivals[0]
        bad_windows = good_windows = 0

        def tier_cap(rep: _Replica) -> int:
            base = rep.sim.policy.max_batch
            if tier == 0:
                return base
            override = policy.tiers[tier - 1].max_batch
            return base if override is None else min(base, override)

        def tier_latency(rep: _Replica, size: int) -> float:
            if tier == 0 or policy.tiers[tier - 1].dtype is None:
                return rep.sim.batch_latency_s(size)
            dtype = policy.tiers[tier - 1].dtype
            padded = rep.sim.policy.padded_size(size)
            return tier_tables[rep.index][dtype][padded]

        # ----- helpers -----
        def route(exclude: frozenset = frozenset(),
                  last_resort: bool = False) -> Optional[_Replica]:
            """Join-shortest-queue among healthy live replicas.

            Falls back to any live replica when none is healthy; with
            ``last_resort`` it will even pick a dead one (the caller
            then drops the request — mirroring what a lone simulator
            does when its last core dies).
            """
            pools = [
                (r for r in reps if r.health == _HEALTHY and not r.dead
                 and r.index not in exclude),
                (r for r in reps if not r.dead and r.index not in exclude),
            ]
            if last_resort:
                pools.append(r for r in reps if r.index not in exclude)
            for pool in pools:
                best = min(pool, key=lambda r: (len(r.queue), r.index),
                           default=None)
                if best is not None:
                    return best
            return None

        def copy_dropped(rid: int, rep: _Replica) -> None:
            nonlocal dropped_unique
            outstanding[rid] -= 1
            if rep.index in holding[rid]:
                holding[rid].remove(rep.index)
            if outstanding[rid] == 0 and completed_at[rid] is None:
                dropped_unique += 1

        def assign(rep: _Replica, entry: tuple[float, int, int]) -> None:
            rid = entry[2]
            rep.note_assignment(entry[0])
            if rep.dead:
                # Routing of last resort: the whole cluster is down.
                rep.dropped += 1
                outstanding[rid] += 1
                holding[rid].append(rep.index)
                copy_dropped(rid, rep)
                return
            rep.queue.append(entry)
            outstanding[rid] += 1
            holding[rid].append(rep.index)

        def fail_over(rep: _Replica, entries: list) -> None:
            nonlocal failed_over
            for entry in entries:
                rid = entry[2]
                outstanding[rid] -= 1
                if rep.index in holding[rid]:
                    holding[rid].remove(rep.index)
                target = route(exclude=frozenset((rep.index,)))
                if target is None or target.dead or target.health != _HEALTHY:
                    # No healthy peer can take it: account the drop to
                    # the replica that lost it.
                    rep.dropped += 1
                    outstanding[rid] += 1
                    holding[rid].append(rep.index)
                    copy_dropped(rid, rep)
                else:
                    failed_over += 1
                    assign(target, entry)

        def eject(rep: _Replica, now: float) -> None:
            nonlocal ejections
            rep.health = _EJECTED
            rep.ejected_until = now + policy.ejection_s
            rep.consecutive_failures = 0
            ejections += 1
            if tracer is not None:
                tracer.record("eject", "router", "cluster", "router",
                              now * 1e6, 0.0,
                              (("replica", rep.index),))
            moved, rep.queue = rep.queue, []
            fail_over(rep, moved)

        def probe_fails(rep: _Replica, now: float) -> bool:
            if rep.schedule is None:
                return False
            return all(rep.schedule.outage_end(core, now) is not None
                       for core in range(rep.sim.point.chip.cores))

        def set_tier(new_tier: int, now: float) -> None:
            nonlocal tier, tier_since
            tier_time[tier] += now - tier_since
            tier = new_tier
            tier_since = now
            if rec:
                reg.counter("cluster.tier_changes").inc()
            if tracer is not None:
                tracer.record("tier", "router", "cluster", "router",
                              now * 1e6, 0.0,
                              (("tier", tier_names[new_tier]),))

        # ----- the event loop -----
        index = 0
        while True:
            t_completion = (completion_heap[0][0] if completion_heap
                            else math.inf)
            t_arrival = arrivals[index] if index < total else math.inf
            t_hedge = hedge_heap[0][0] if hedge_heap else math.inf
            pending = (index < total or completion_heap or hedge_heap
                       or any(r.queue for r in reps))
            t_probe = next_probe if (policy.probes and pending) else math.inf

            best_time = math.inf
            best_kind = None
            best_rep: Optional[_Replica] = None
            for kind, when in ((_P_COMPLETION, t_completion),
                               (_P_PROBE, t_probe),
                               (_P_ARRIVAL, t_arrival),
                               (_P_HEDGE, t_hedge)):
                if when < best_time or (when == best_time
                                        and best_kind is not None
                                        and kind < best_kind):
                    best_time, best_kind = when, kind
            for rep in reps:
                when = rep.next_launch(tier_cap(rep))
                if when is None:
                    if rep.dead and rep.queue and not policy.probes:
                        # Without probing nobody ever ejects a dead
                        # replica; mirror the lone simulator and drop
                        # its stranded queue on detection.
                        stranded, rep.queue = rep.queue, []
                        for entry in stranded:
                            rep.dropped += 1
                            copy_dropped(entry[2], rep)
                    continue
                if when < best_time:
                    best_time, best_kind, best_rep = when, _P_LAUNCH, rep
            if best_kind is None:
                if any(r.queue for r in reps) and policy.probes:
                    best_time, best_kind = next_probe, _P_PROBE
                else:
                    break

            if best_kind == _P_COMPLETION:
                when, _, _, rep_index, batch = heapq.heappop(completion_heap)
                rep = reps[rep_index]
                for arrival, _, rid in batch:
                    outstanding[rid] -= 1
                    if rep_index in holding[rid]:
                        holding[rid].remove(rep_index)
                    if completed_at[rid] is None:
                        completed_at[rid] = when
                        cluster_latencies.append(when - arrival)
                        if outstanding[rid] > 0:
                            # A losing hedge twin is still out there:
                            # cancel it if it has not launched yet.
                            for peer_index in list(holding[rid]):
                                peer = reps[peer_index]
                                for pos, entry in enumerate(peer.queue):
                                    if entry[2] == rid:
                                        del peer.queue[pos]
                                        outstanding[rid] -= 1
                                        holding[rid].remove(peer_index)
                                        cancelled_hedges += 1
                                        break
                    else:
                        wasted_hedges += 1
                continue

            if best_kind == _P_PROBE:
                now = next_probe
                for rep in reps:
                    if rep.health == _HEALTHY:
                        probes += 1
                        if probe_fails(rep, now):
                            probe_failures += 1
                            rep.consecutive_failures += 1
                            if (rep.consecutive_failures
                                    >= policy.unhealthy_after):
                                eject(rep, now)
                        else:
                            rep.consecutive_failures = 0
                    elif now >= rep.ejected_until:
                        # Half-open: one probe decides re-admission.
                        probes += 1
                        if probe_fails(rep, now):
                            probe_failures += 1
                            rep.ejected_until = now + policy.ejection_s
                        else:
                            rep.health = _HEALTHY
                            readmissions += 1
                            if tracer is not None:
                                tracer.record(
                                    "readmit", "router", "cluster", "router",
                                    now * 1e6, 0.0,
                                    (("replica", rep.index),))
                healthy = sum(1 for r in reps
                              if r.health == _HEALTHY and not r.dead)
                if rec:
                    reg.gauge("cluster.healthy_replicas").set(healthy)
                if policy.degrades:
                    queued = sum(len(r.queue) for r in reps)
                    bad = (healthy / n < policy.degrade_below_healthy
                           or (policy.degrade_above_queue is not None
                               and queued > policy.degrade_above_queue))
                    if bad:
                        bad_windows += 1
                        good_windows = 0
                        if (bad_windows >= policy.degrade_after
                                and tier < len(policy.tiers)):
                            set_tier(tier + 1, now)
                            bad_windows = 0
                    else:
                        good_windows += 1
                        bad_windows = 0
                        if good_windows >= policy.recover_after and tier > 0:
                            set_tier(tier - 1, now)
                            good_windows = 0
                next_probe = now + policy.probe_interval_s
                continue

            if best_kind == _P_ARRIVAL:
                arrival = arrivals[index]
                rid = index
                index += 1
                if policy.admission_rate_qps is not None:
                    tokens = min(
                        policy.admission_burst,
                        tokens + (arrival - tokens_at)
                        * policy.admission_rate_qps)
                    tokens_at = arrival
                    if tokens < 1.0:
                        shed += 1
                        if rec:
                            reg.counter("cluster.shed_requests").inc()
                        continue
                    tokens -= 1.0
                target = route(last_resort=True)
                if (policy.max_queue_depth is not None
                        and len(target.queue) >= policy.max_queue_depth):
                    shed += 1
                    if rec:
                        reg.counter("cluster.shed_requests").inc()
                    continue
                assign(target, (arrival, 0, rid))
                if policy.hedges and not target.dead:
                    heapq.heappush(
                        hedge_heap, (arrival + policy.hedge_delay_s, rid))
                continue

            if best_kind == _P_HEDGE:
                _, rid = heapq.heappop(hedge_heap)
                if (completed_at[rid] is not None or hedged_flag[rid]
                        or outstanding[rid] == 0):
                    continue
                target = route(exclude=frozenset(holding[rid]))
                if (target is None or target.dead
                        or target.health != _HEALTHY):
                    continue  # no second healthy replica: no hedge
                hedged_flag[rid] = True
                hedged += 1
                if rec:
                    reg.counter("cluster.hedged_requests").inc()
                assign(target, (arrivals[rid], 0, rid))
                continue

            # ----- launch on best_rep at best_time -----
            rep = best_rep
            launch = best_time
            cap = tier_cap(rep)
            free, core = rep.servers[0]

            if rep.retried and not math.isinf(retry_timeout):
                alive = [e for e in rep.queue
                         if not (e[1] > 0 and launch - e[0] > retry_timeout)]
                if len(alive) != len(rep.queue):
                    for entry in rep.queue:
                        if entry[1] > 0 and launch - entry[0] > retry_timeout:
                            rep.dropped += 1
                            copy_dropped(entry[2], rep)
                    rep.queue = alive
                    continue

            if rep.schedule is not None:
                down_until = rep.schedule.outage_end(core, launch)
                if down_until is not None:
                    if rec:
                        reg.counter("serving.outage_wait_s").inc(
                            max(0.0, down_until - launch))
                    heapq.heapreplace(rep.servers, (down_until, core))
                    continue

            size = min(len(rep.queue), cap)
            latency = tier_latency(rep, size)
            if rep.schedule is not None:
                factor = rep.schedule.slowdown_factor(core, launch)
                if factor != 1.0:
                    latency *= factor
            completion = launch + latency

            if rep.schedule is not None:
                failure = rep.schedule.first_failure_between(
                    core, launch, completion)
                if failure is not None:
                    fail_start, fail_end = failure
                    rep.lost_batches += 1
                    if tracer is not None:
                        tracer.record(
                            "batch.lost", "serve", "cluster",
                            f"replica{rep.index}/core{core}",
                            launch * 1e6, (fail_start - launch) * 1e6,
                            (("size", size),))
                    batch, rep.queue = rep.queue[:size], rep.queue[size:]
                    survivors: list[tuple[float, int, int]] = []
                    for arrival, retries, rid in batch:
                        if (retries + 1 > retry_budget
                                or fail_start - arrival > retry_timeout):
                            rep.dropped += 1
                            copy_dropped(rid, rep)
                        else:
                            rep.retried += 1
                            survivors.append((arrival, retries + 1, rid))
                    if rep.health == _HEALTHY:
                        rep.queue = survivors + rep.queue
                    else:
                        # The router already ejected this replica while
                        # the batch was in flight: survivors go to a
                        # healthy peer instead of its drained queue.
                        # (In-flight entries are still tracked in
                        # outstanding/holding, so fail_over's hand-off
                        # bookkeeping applies to them unchanged.)
                        fail_over(rep, survivors)
                    heapq.heapreplace(rep.servers, (fail_end, core))
                    continue

            batch, rep.queue = rep.queue[:size], rep.queue[size:]
            heapq.heapreplace(rep.servers, (completion, core))
            if tracer is not None:
                tracer.record("batch", "serve", "cluster",
                              f"replica{rep.index}/core{core}",
                              launch * 1e6, latency * 1e6,
                              (("size", size),))
            rep.latencies.extend(completion - a for a, _, _ in batch)
            rep.batch_sizes.append(size)
            rep.last_completion = max(rep.last_completion, completion)
            completion_seq += 1
            heapq.heappush(
                completion_heap,
                (completion, _P_COMPLETION, completion_seq, rep.index,
                 tuple(batch)))

        return self._finalize(
            arrivals, reps, cluster_latencies, shed, dropped_unique, hedged,
            cancelled_hedges, wasted_hedges, failed_over, probes,
            probe_failures, ejections, readmissions, tier_names, tier_time,
            tier, tier_since)

    def _finalize(self, arrivals: list[float], reps: list[_Replica],
                  cluster_latencies: list[float], shed: int,
                  dropped_unique: int, hedged: int, cancelled_hedges: int,
                  wasted_hedges: int, failed_over: int, probes: int,
                  probe_failures: int, ejections: int, readmissions: int,
                  tier_names: tuple, tier_time: list[float], tier: int,
                  tier_since: float) -> ClusterStats:
        """Fold replay outputs into :class:`ClusterStats` (shared by the
        event loop and the fastserve kernel; cluster percentiles come
        from one sorted copy of the latency list)."""
        total = len(arrivals)
        n = len(reps)
        reg = metrics()
        rec = reg.enabled
        last_completion = max((r.last_completion for r in reps), default=0.0)
        end_time = max(last_completion, arrivals[-1])
        # Probes can outlive the traffic window while draining a dead
        # replica, so the final tier stint is clamped at zero.
        tier_time[tier] += max(0.0, end_time - tier_since)
        duration = end_time - arrivals[0]
        served = len(cluster_latencies)
        replica_stats = tuple(rep.stats() for rep in reps)
        retried = sum(r.retried for r in reps)
        lost_batches = sum(r.lost_batches for r in reps)
        mean_batch_num = sum(sum(r.batch_sizes) for r in reps)
        mean_batch_den = sum(len(r.batch_sizes) for r in reps)

        if rec:
            reg.counter("cluster.requests_offered").inc(total)
            reg.counter("cluster.requests_served").inc(served)
            reg.counter("cluster.requests_dropped").inc(dropped_unique)
            reg.counter("cluster.cancelled_hedges").inc(cancelled_hedges)
            reg.counter("cluster.wasted_hedges").inc(wasted_hedges)
            reg.counter("cluster.failed_over").inc(failed_over)
            reg.counter("cluster.probes").inc(probes)
            reg.counter("cluster.probe_failures").inc(probe_failures)
            reg.counter("cluster.ejections").inc(ejections)
            reg.counter("cluster.readmissions").inc(readmissions)

        ordered = sorted(cluster_latencies)
        return ClusterStats(
            workload=self.replica_sims[0].spec.name,
            chip=self.replica_sims[0].point.chip.name,
            replicas=n,
            requests=total,
            duration_s=duration,
            p50_s=percentile_sorted(ordered, 50) if ordered else 0.0,
            p95_s=percentile_sorted(ordered, 95) if ordered else 0.0,
            p99_s=percentile_sorted(ordered, 99) if ordered else 0.0,
            mean_batch=(mean_batch_num / mean_batch_den
                        if mean_batch_den else 0.0),
            throughput_qps=served / duration if duration > 0 else 0.0,
            slo_violation_fraction=self.replica_sims[0].slo
            .violation_fraction_sorted(ordered),
            availability=served / total,
            served_requests=served,
            dropped_requests=dropped_unique,
            shed_requests=shed,
            retried_requests=retried,
            lost_batches=lost_batches,
            hedged_requests=hedged,
            cancelled_hedges=cancelled_hedges,
            wasted_hedges=wasted_hedges,
            failed_over_requests=failed_over,
            probes=probes,
            probe_failures=probe_failures,
            ejections=ejections,
            readmissions=readmissions,
            time_in_tier_s=tuple(zip(tier_names, tier_time)),
            replica_stats=replica_stats,
        )
