"""Cluster protection policies: health checks, admission, hedging, tiers.

A :class:`ClusterPolicy` declares what the router is allowed to do when
replicas misbehave. Every knob defaults to *off*, so a default policy is
a pure passthrough: a one-replica cluster under it is bit-identical to a
plain :class:`~repro.serving.server.ServingSimulator` run (the identity
contract asserted in ``tests/test_cluster.py`` and the engine bench).

Four independent protections:

* **health checks** — replicas are probed every ``probe_interval_s`` of
  simulated time; ``unhealthy_after`` consecutive failed probes eject a
  replica (its queued requests fail over to healthy peers), and after
  ``ejection_s`` it re-enters through a half-open probe: one success
  re-admits it, one failure re-ejects it.
* **admission control** — a token bucket (``admission_rate_qps`` refill,
  ``admission_burst`` capacity) plus per-replica queue-depth
  backpressure (``max_queue_depth``) shed requests *at arrival*, before
  they can blow the SLO for everyone else.
* **hedging** — a request whose projected completion exceeds
  ``hedge_delay_s`` past its arrival is re-issued once on a second
  healthy replica; the first response wins and the loser is accounted
  (cancelled if still queued, wasted if already in flight).
* **graceful degradation** — under sustained overload or a shrunken
  fleet, the cluster steps down a declared ladder of
  :class:`DegradationTier`\\ s (smaller max batch, then an
  int8-retargeted compile) and steps back up when pressure clears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DegradationTier:
    """One rung of the degradation ladder.

    ``max_batch`` overrides the batching policy's cap (``None`` keeps
    it); ``dtype`` selects the latency model (``None`` keeps the
    replica's default path, ``"int8"`` swaps in the retargeted compile
    from the PR 3 migration path — smaller, faster batches at reduced
    precision).
    """

    name: str
    max_batch: Optional[int] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a degradation tier needs a name")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError("tier max_batch must be >= 1")
        if self.dtype is not None and self.dtype not in ("bf16", "int8"):
            raise ValueError(f"unsupported tier dtype {self.dtype!r}")


@dataclass(frozen=True)
class ClusterPolicy:
    """Router configuration. Defaults are a pure passthrough.

    ``probe_interval_s=None`` disables health checking entirely (the
    "static" router of the chaos sweep); with probing on but no faults,
    probes always succeed and never perturb serving — the identity
    contract holds either way.
    """

    #: Health checking (None disables probing).
    probe_interval_s: Optional[float] = None
    unhealthy_after: int = 2
    ejection_s: float = 0.2

    #: Admission control (None disables the token bucket / depth check).
    admission_rate_qps: Optional[float] = None
    admission_burst: float = 32.0
    max_queue_depth: Optional[int] = None

    #: Hedging (None disables).
    hedge_delay_s: Optional[float] = None

    #: Degradation ladder beyond the implicit tier 0 (= no override).
    tiers: tuple = ()
    degrade_below_healthy: float = 0.0   # healthy fraction threshold
    degrade_above_queue: Optional[int] = None  # total queued threshold
    degrade_after: int = 2    # consecutive bad probe windows to step down
    recover_after: int = 4    # consecutive good windows to step up

    def __post_init__(self) -> None:
        if self.probe_interval_s is not None and self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if self.unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        if self.ejection_s < 0:
            raise ValueError("ejection_s must be non-negative")
        if (self.admission_rate_qps is not None
                and self.admission_rate_qps <= 0):
            raise ValueError("admission_rate_qps must be positive")
        if self.admission_burst < 1:
            raise ValueError("admission_burst must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.hedge_delay_s is not None and self.hedge_delay_s < 0:
            raise ValueError("hedge_delay_s must be non-negative")
        for tier in self.tiers:
            if not isinstance(tier, DegradationTier):
                raise ValueError("tiers must be DegradationTier instances")
        if not 0.0 <= self.degrade_below_healthy <= 1.0:
            raise ValueError("degrade_below_healthy must be in [0, 1]")
        if (self.degrade_above_queue is not None
                and self.degrade_above_queue < 1):
            raise ValueError("degrade_above_queue must be >= 1")
        if self.degrade_after < 1 or self.recover_after < 1:
            raise ValueError("degrade_after/recover_after must be >= 1")

    @property
    def sheds(self) -> bool:
        """True when admission control can reject a request."""
        return (self.admission_rate_qps is not None
                or self.max_queue_depth is not None)

    @property
    def probes(self) -> bool:
        """True when health checking is active."""
        return self.probe_interval_s is not None

    @property
    def hedges(self) -> bool:
        """True when request hedging is active."""
        return self.hedge_delay_s is not None

    @property
    def degrades(self) -> bool:
        """True when a degradation ladder is declared."""
        return bool(self.tiers)

    @classmethod
    def static(cls) -> "ClusterPolicy":
        """The unprotected router: route by queue length, nothing else.

        The chaos sweep's control arm — what an N+k fleet looks like
        when nobody built the resilience layer.
        """
        return cls()

    @classmethod
    def resilient(cls, *, slo_limit_s: float, offered_qps: float,
                  max_batch: int, replicas: int,
                  probe_interval_s: Optional[float] = None,
                  int8_tier: bool = True) -> "ClusterPolicy":
        """A full-protection policy scaled to one traffic scenario.

        Probes at a quarter of the SLO budget, ejects after two failed
        probes, admits up to 1.5x the offered rate (so normal traffic is
        never shed), backpressures at 8 full batches per replica, hedges
        requests projected to miss the SLO, and declares a two-rung
        degradation ladder (half batch, then int8 at half batch).
        """
        if slo_limit_s <= 0:
            raise ValueError("slo_limit_s must be positive")
        if offered_qps <= 0:
            raise ValueError("offered_qps must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        half = max(1, max_batch // 2)
        tiers = [DegradationTier("half-batch", max_batch=half)]
        if int8_tier:
            tiers.append(
                DegradationTier("int8-half-batch", max_batch=half,
                                dtype="int8"))
        interval = (probe_interval_s if probe_interval_s is not None
                    else max(slo_limit_s / 4.0, 1e-4))
        return cls(
            probe_interval_s=interval,
            unhealthy_after=2,
            ejection_s=4.0 * interval,
            admission_rate_qps=1.5 * offered_qps,
            admission_burst=max(2.0 * max_batch * replicas, 8.0),
            max_queue_depth=8 * max_batch,
            hedge_delay_s=slo_limit_s,
            tiers=tuple(tiers),
            degrade_below_healthy=0.5 + 1e-9,
            degrade_above_queue=max(4 * max_batch * replicas, 8),
        )

    def describe(self) -> str:
        parts = []
        if self.probes:
            parts.append(f"probe every {self.probe_interval_s:.3g} s "
                         f"(eject after {self.unhealthy_after}, "
                         f"window {self.ejection_s:.3g} s)")
        if self.admission_rate_qps is not None:
            parts.append(f"admit {self.admission_rate_qps:.3g} qps "
                         f"(burst {self.admission_burst:.3g})")
        if self.max_queue_depth is not None:
            parts.append(f"queue cap {self.max_queue_depth}")
        if self.hedges:
            parts.append(f"hedge past {self.hedge_delay_s * 1e3:.3g} ms")
        if self.degrades:
            parts.append("tiers " + " > ".join(t.name for t in self.tiers))
        return "ClusterPolicy(" + ("; ".join(parts) or "passthrough") + ")"
