"""Pod topologies: wrap-around tori and an OCS-reconfigurable variant.

TPUv2/v3 pods wire chips into 2D tori over ICI; TPU v4 inserts optical
circuit switches (OCS) between blocks so the fabric can be patched
around failed links at the cost of a reconfiguration delay (the OCS
paper in PAPERS.md). This module models both as one class:

* :class:`PodTopology` — a 1/2/3-dimensional wrap torus over
  :class:`~repro.arch.ici.IciLink` links, with deterministic
  dimension-order routing, reroute-around-dead-link on the torus, and
  dead-link-transparent routing (plus a reconfiguration latency) on the
  ``"ocs"`` variant.
* Collective cost models — ring all-reduce/all-gather over an arbitrary
  member subset, priced per hop from link bandwidth and latency so
  per-link slowdowns and reroutes change the numbers deterministically.

Links are bidirectional fibers identified by ``node * ndims + axis``:
link ``L`` is the fiber between ``node`` and its ``+1`` neighbor along
``axis``, owned by the minus-side endpoint, and a hop in either
direction traverses the same fiber. Killing one link id therefore cuts
both directions between its two endpoints — matching how the fault
model indexes links.

Everything here is pure arithmetic over the arguments: no RNG, no
global state, byte-identical results run to run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.arch.chip import ChipConfig
from repro.arch.ici import IciLink

#: Default OCS reconfiguration latency (simulated seconds): the switch
#: needs milliseconds to retrain a patched lightpath, during which the
#: slice cannot make collective progress.
DEFAULT_OCS_RECONFIG_S = 25e-3

_KINDS = ("torus", "ocs")


@dataclass(frozen=True)
class PodTopology:
    """A wrap torus (or OCS-patched torus) of identical chips.

    ``dims`` gives the torus extents, e.g. ``(4,)`` for a 4-chip ring or
    ``(4, 4)`` for a 16-chip 2D torus. Every extent must be at least 2 —
    an extent-1 axis has no links — except the degenerate single-chip
    topology ``(1,)``, which exists so a 1-chip slice can carry the same
    metadata as a real slice (it has zero links and routes nothing).

    ``kind="torus"`` routes around dead links where the ring allows and
    reports a partition (``route`` returns ``None``) where it does not.
    ``kind="ocs"`` assumes the optical switch patches a spare lightpath
    around any dead link: routing ignores dead links entirely, but each
    failure costs :attr:`ocs_reconfig_s` of slice-wide outage (applied
    by the slice simulator, not here). Slow links degrade both kinds —
    the OCS only replaces dead fibers, it cannot speed up a slow one.
    """

    dims: tuple
    link: IciLink
    kind: str = "torus"
    ocs_reconfig_s: float = DEFAULT_OCS_RECONFIG_S

    def __post_init__(self) -> None:
        dims = tuple(int(d) for d in self.dims)
        object.__setattr__(self, "dims", dims)
        if not 1 <= len(dims) <= 3:
            raise ValueError(
                f"dims must have 1-3 axes, got {len(dims)}")
        if dims != (1,):
            for extent in dims:
                if extent < 2:
                    raise ValueError(
                        f"torus extents must be >= 2 (got {extent}); use "
                        "dims=(1,) for a single-chip slice")
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {_KINDS}, got {self.kind!r}")
        if math.isnan(self.ocs_reconfig_s):
            raise ValueError("ocs_reconfig_s must not be NaN")
        if self.ocs_reconfig_s < 0:
            raise ValueError(
                f"ocs_reconfig_s must be non-negative, "
                f"got {self.ocs_reconfig_s}")

    # ------------------------------------------------------------- structure

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def num_chips(self) -> int:
        n = 1
        for extent in self.dims:
            n *= extent
        return n

    @property
    def num_links(self) -> int:
        """One +1 link per (node, axis); zero on the single-chip slice."""
        if self.dims == (1,):
            return 0
        return self.num_chips * self.ndims

    @property
    def ports_per_chip(self) -> int:
        """ICI ports each chip needs: one +1 and one -1 lane per axis."""
        if self.dims == (1,):
            return 0
        return 2 * self.ndims

    def validate_chip(self, chip: ChipConfig) -> None:
        """Raise unless ``chip`` has enough ICI ports for this topology."""
        if chip.ici_links < self.ports_per_chip:
            raise ValueError(
                f"{chip.name} has {chip.ici_links} ICI links; a "
                f"{'x'.join(str(d) for d in self.dims)} {self.kind} needs "
                f"{self.ports_per_chip} per chip")

    def coords(self, node: int) -> tuple:
        """Mixed-radix coordinates of ``node`` (row-major, last axis fastest)."""
        if not 0 <= node < self.num_chips:
            raise ValueError(f"node {node} outside 0..{self.num_chips - 1}")
        out = []
        rest = node
        for extent in reversed(self.dims):
            out.append(rest % extent)
            rest //= extent
        return tuple(reversed(out))

    def node_at(self, coords: Sequence[int]) -> int:
        if len(coords) != self.ndims:
            raise ValueError(f"expected {self.ndims} coordinates")
        node = 0
        for coord, extent in zip(coords, self.dims):
            if not 0 <= coord < extent:
                raise ValueError(f"coordinate {coord} outside 0..{extent - 1}")
            node = node * extent + coord
        return node

    def link_id(self, node: int, axis: int) -> int:
        """The link carrying ``node`` -> its +1 neighbor along ``axis``."""
        if not 0 <= axis < self.ndims:
            raise ValueError(f"axis {axis} outside 0..{self.ndims - 1}")
        if not 0 <= node < self.num_chips:
            raise ValueError(f"node {node} outside 0..{self.num_chips - 1}")
        return node * self.ndims + axis

    def _step(self, node: int, axis: int, direction: int) -> tuple:
        """(next node, traversed link id) one hop along ``axis``."""
        coords = list(self.coords(node))
        extent = self.dims[axis]
        if direction > 0:
            link = self.link_id(node, axis)
            coords[axis] = (coords[axis] + 1) % extent
            return self.node_at(coords), link
        coords[axis] = (coords[axis] - 1) % extent
        prev = self.node_at(coords)
        return prev, self.link_id(prev, axis)

    # --------------------------------------------------------------- routing

    def _ring_path(self, node: int, axis: int, distance: int, direction: int,
                   dead: frozenset) -> Optional[list]:
        """Link ids walking ``distance`` hops in ``direction``, or None."""
        links: list[int] = []
        current = node
        for _ in range(distance):
            current, link = self._step(current, axis, direction)
            if link in dead:
                return None
            links.append(link)
        return links

    def route(self, src: int, dst: int,
              dead: frozenset = frozenset()) -> Optional[tuple]:
        """Deterministic dimension-order route ``src`` -> ``dst``.

        Returns the traversed link ids in order, or ``None`` when the
        route is cut (torus only). Per axis the shorter ring direction
        is preferred (ties break toward +1); if a dead link blocks it,
        the other direction is tried — dimension-order routing never
        detours through another axis, so both directions blocked means
        this topology reports a partition even if a fancier router
        could still connect the pair. The OCS variant ignores ``dead``:
        the switch has already patched a spare lightpath.
        """
        if self.kind == "ocs":
            dead = frozenset()
        src_c = self.coords(src)
        dst_c = self.coords(dst)
        links: list[int] = []
        current = src
        for axis in range(self.ndims):
            extent = self.dims[axis]
            forward = (dst_c[axis] - src_c[axis]) % extent
            backward = (src_c[axis] - dst_c[axis]) % extent
            if forward == 0:
                continue
            if forward <= backward:
                tries = ((forward, 1), (backward, -1))
            else:
                tries = ((backward, -1), (forward, 1))
            segment = None
            for distance, direction in tries:
                segment = self._ring_path(current, axis, distance,
                                          direction, dead)
                if segment is not None:
                    break
            if segment is None:
                return None
            links.extend(segment)
            coords = list(self.coords(current))
            coords[axis] = dst_c[axis]
            current = self.node_at(coords)
        return tuple(links)

    # ------------------------------------------------------------ cost model

    def hop_seconds(self, link_id: int, num_bytes: float,
                    slow: Optional[Mapping[int, float]] = None) -> float:
        """One store-and-forward hop over one link, slowdown-aware."""
        factor = 1.0 if slow is None else float(slow.get(link_id, 1.0))
        if math.isnan(factor) or factor < 1.0:
            raise ValueError(
                f"link slowdown factor must be >= 1, got {factor}")
        return self.link.transfer_seconds(num_bytes * factor)

    def path_seconds(self, links: Sequence[int], num_bytes: float,
                     slow: Optional[Mapping[int, float]] = None) -> float:
        """Store-and-forward time along a route (sum of hop times)."""
        return sum(self.hop_seconds(link, num_bytes, slow) for link in links)

    def point_to_point_seconds(self, src: int, dst: int, num_bytes: float,
                               dead: frozenset = frozenset(),
                               slow: Optional[Mapping[int, float]] = None,
                               ) -> Optional[float]:
        """Transfer time along the deterministic route, or None if cut."""
        if src == dst:
            return 0.0
        links = self.route(src, dst, dead)
        if links is None:
            return None
        return self.path_seconds(links, num_bytes, slow)

    def _ring_pairs(self, members: Sequence[int]) -> list:
        ordered = sorted(members)
        if len(set(ordered)) != len(ordered):
            raise ValueError("collective members must be distinct")
        for member in ordered:
            if not 0 <= member < self.num_chips:
                raise ValueError(
                    f"member {member} outside 0..{self.num_chips - 1}")
        return [(ordered[i], ordered[(i + 1) % len(ordered)])
                for i in range(len(ordered))]

    def _step_bottleneck(self, members: Sequence[int], chunk_bytes: float,
                         dead: frozenset,
                         slow: Optional[Mapping[int, float]],
                         ) -> Optional[float]:
        """Slowest neighbor transfer in one synchronous ring step."""
        worst = 0.0
        for src, dst in self._ring_pairs(members):
            cost = self.point_to_point_seconds(src, dst, chunk_bytes,
                                               dead, slow)
            if cost is None:
                return None
            worst = max(worst, cost)
        return worst

    def all_reduce_seconds(self, num_bytes: float,
                           members: Optional[Sequence[int]] = None,
                           dead: frozenset = frozenset(),
                           slow: Optional[Mapping[int, float]] = None,
                           ) -> Optional[float]:
        """Synchronous ring all-reduce over ``members`` (default: all).

        ``2 * (p - 1)`` steps of ``num_bytes / p`` chunks; each step
        costs its slowest neighbor route (the ring is synchronous, so
        one rerouted-and-longer hop stalls every step). ``None`` means
        the member set is partitioned under ``dead``.
        """
        group = tuple(members) if members is not None \
            else tuple(range(self.num_chips))
        p = len(group)
        if p == 1:
            return 0.0
        step = self._step_bottleneck(group, num_bytes / p, dead, slow)
        if step is None:
            return None
        return 2 * (p - 1) * step

    def all_gather_seconds(self, num_bytes_per_chip: float,
                           members: Optional[Sequence[int]] = None,
                           dead: frozenset = frozenset(),
                           slow: Optional[Mapping[int, float]] = None,
                           ) -> Optional[float]:
        """Synchronous ring all-gather of per-member shards."""
        group = tuple(members) if members is not None \
            else tuple(range(self.num_chips))
        p = len(group)
        if p == 1:
            return 0.0
        step = self._step_bottleneck(group, num_bytes_per_chip, dead, slow)
        if step is None:
            return None
        return (p - 1) * step

    def describe(self) -> str:
        shape = "x".join(str(d) for d in self.dims)
        return (f"{shape} {self.kind} ({self.num_chips} chips, "
                f"{self.num_links} links @ {self.link.bandwidth / 1e9:.3g} "
                f"GB/s)")


def slice_topology(chip: ChipConfig, num_chips: int,
                   kind: str = "torus",
                   ocs_reconfig_s: float = DEFAULT_OCS_RECONFIG_S,
                   ) -> PodTopology:
    """The natural slice shape for a chip: 2D torus if its ICI port
    count allows (4+ links), else a 1D ring (TPUv4i's 2 links).
    """
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    if num_chips == 1:
        dims: tuple = (1,)
    elif chip.ici_links >= 4:
        side = int(math.isqrt(num_chips))
        if side >= 2 and side * side == num_chips:
            dims = (side, side)
        else:
            dims = (num_chips,)
    else:
        dims = (num_chips,)
    topo = PodTopology(dims=dims, link=IciLink(chip.ici_link_bw),
                       kind=kind, ocs_reconfig_s=ocs_reconfig_s)
    topo.validate_chip(chip)
    return topo
