"""Serve requests through a sharded slice on the shared simulated clock.

:class:`SliceSimulator` is a :class:`~repro.serving.server.
ServingSimulator` whose "chip" is a multi-chip slice: batch latencies
come from replaying the :class:`~repro.pod.sharding.ShardedProgram`
stage graph (compute plus ICI rows) instead of the single-chip program.
Everything else — the event loop, the fastserve replay kernels, the
cluster router — is inherited unchanged, which is what makes the
identity contract cheap to state and strong to hold:

**Identity contract.** A 1-chip slice never builds a shard graph and
never overrides a latency: with zero link faults it runs the exact
code path of the plain simulator and produces bit-identical
:class:`~repro.serving.server.ServingStats` (asserted in
``tests/test_pod.py`` and the engine benchmark's pod phase, under both
the replay kernels and ``REPRO_FASTSERVE=0``).

**Link-fault state machine.** Link timelines (a
:class:`~repro.faults.model.FaultSchedule` with link indices in the
core slot) are *compiled into* an ordinary core-level schedule the
event loop already understands, via a deterministic sweep over the
link-state boundaries:

* torus, dead link, reroute exists -> the degraded shard latency is
  re-priced under the new routes and the window becomes a slowdown on
  every serving lane (factor = degraded / healthy latency);
* torus, slice partitioned -> the window becomes an outage on every
  lane: the slice serves nothing, fails its health probes, and a
  cluster router ejects it;
* OCS -> a dead link costs one slice-wide outage of
  ``topology.ocs_reconfig_s`` while the switch patches a spare
  lightpath (overlapping failures extend the outage: the reconfig
  race), after which routing is whole again; slow links degrade the
  same way as on the torus — the OCS replaces fibers, not bandwidth.

Because the translation happens *before* the event loop runs, the
fastserve kernels, the cluster router's probe/ejection logic, and every
determinism guarantee apply to slices with zero new event-loop code.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from repro.core.design_point import DesignPoint
from repro.faults.model import FaultModel, FaultSchedule
from repro.pod.faults import PodFaultModel
from repro.pod.sharding import ShardedProgram
from repro.pod.topology import PodTopology
from repro.serving.batching import BatchPolicy
from repro.serving.server import ServingSimulator, ServingStats
from repro.serving.slo import Slo
from repro.workloads.generator import Request
from repro.workloads.models import WorkloadSpec


class SliceSimulator(ServingSimulator):
    """One multi-chip slice serving one workload behind one batcher.

    The slice keeps the chip's ``cores`` independent serving lanes —
    each lane runs whole batches through the shard graph, which is the
    conservative reading of a pipeline slice (lanes overlap across
    batches, stages do not overlap within one batch).
    """

    def __init__(self, point: DesignPoint, spec: WorkloadSpec,
                 policy: BatchPolicy, slo: Slo, *,
                 topology: PodTopology,
                 members: Optional[Sequence[int]] = None,
                 parallelism: str = "pipeline",
                 pod_faults: Optional[PodFaultModel] = None) -> None:
        super().__init__(point, spec, policy, slo)
        topology.validate_chip(point.chip)
        self.topology = topology
        self.members = tuple(sorted(members)) if members is not None \
            else tuple(range(topology.num_chips))
        if not self.members:
            raise ValueError("a slice needs at least one member")
        self.parallelism = parallelism
        self.pod_faults = pod_faults
        self._shards: dict[int, ShardedProgram] = {}
        self._state_latency: dict[tuple, Optional[float]] = {}

    # -------------------------------------------------------------- latencies

    @property
    def is_single_chip(self) -> bool:
        return len(self.members) == 1

    def shard(self, padded_batch: int) -> ShardedProgram:
        """The (memoized) shard graph for one padded batch size."""
        shard = self._shards.get(padded_batch)
        if shard is None:
            shard = ShardedProgram.build(
                self.point, self.spec, padded_batch, self.topology,
                members=self.members, parallelism=self.parallelism)
            self._shards[padded_batch] = shard
        return shard

    def shard_latency_s(self, batch: int, dead: frozenset = frozenset(),
                        slow: Optional[Mapping[int, float]] = None,
                        ) -> Optional[float]:
        """Slice batch latency under a link state (memoized; None =
        partitioned). The healthy state is the serving latency table."""
        padded = self.policy.padded_size(batch)
        slow_key = tuple(sorted((slow or {}).items()))
        key = (padded, dead, slow_key)
        if key not in self._state_latency:
            self._state_latency[key] = self.shard(padded).latency_s(
                self.point.chip, dead, slow)
        return self._state_latency[key]

    def batch_latency_s(self, batch: int) -> float:
        """Healthy-links slice latency (single-chip: the plain path).

        Single-chip slices defer to :class:`ServingSimulator` unchanged
        — same memo, same design-point lookups, bit for bit — which is
        the identity contract's foundation. Multi-chip slices replay
        the shard graph once per padded size and share the same memo,
        so ``seed_latencies`` and the fastserve kernels work unchanged.
        """
        if self.is_single_chip:
            return super().batch_latency_s(batch)
        padded = self.policy.padded_size(batch)
        if padded not in self._latency_cache:
            latency = self.shard_latency_s(padded)
            assert latency is not None  # healthy links cannot partition
            self._latency_cache[padded] = latency
        return self._latency_cache[padded]

    def _reference_batch(self) -> int:
        """The padded batch whose latency ratio prices degraded windows."""
        return self.policy.padded_size(self.policy.max_batch)

    # -------------------------------------------------- link-fault translation

    def induced_schedule(self, link_schedule: Optional[FaultSchedule],
                         horizon_s: float,
                         chip_schedule: Optional[FaultSchedule] = None,
                         ) -> Optional[FaultSchedule]:
        """Compile a link timeline into a core-level fault schedule.

        Sweeps the link-state boundary instants (every outage/slowdown
        start and finite end — between boundaries the link state is
        constant, because link intervals are half-open), prices the
        slice latency in each window, and emits slice-wide slowdown or
        outage windows per the state machine in the module docstring.
        ``chip_schedule`` (core/chip faults from a plain
        :class:`FaultModel`) is merged in unchanged. Deterministic: a
        pure function of (link timeline, topology, shard graph).
        """
        if link_schedule is None or link_schedule.is_empty:
            return chip_schedule
        chip_cores = self.point.chip.cores
        num_links = self.topology.num_links
        if link_schedule.cores != num_links:
            raise ValueError(
                f"link schedule built for {link_schedule.cores} links, "
                f"topology has {num_links}")

        down: list = []
        slowdowns: list = []
        ref = self._reference_batch()
        healthy = self.batch_latency_s(ref)
        ocs = self.topology.kind == "ocs"

        if ocs:
            # Dead fiber -> one reconfiguration outage per failure while
            # the switch patches a spare lightpath; overlapping windows
            # (two failures racing one reconfig) extend the outage via
            # outage_end's latest-covering-end rule.
            reconfig = self.topology.ocs_reconfig_s
            if reconfig > 0:
                for _link, start, _end in link_schedule.down:
                    for core in range(chip_cores):
                        down.append((core, start, start + reconfig))
            events = link_schedule.slowdowns
            boundary_set = set()
            for _link, start, end, _factor in events:
                boundary_set.add(start)
                if not math.isinf(end):
                    boundary_set.add(end)
        else:
            boundary_set = set()
            for _link, start, end in link_schedule.down:
                boundary_set.add(start)
                if not math.isinf(end):
                    boundary_set.add(end)
            for _link, start, end, _factor in link_schedule.slowdowns:
                boundary_set.add(start)
                if not math.isinf(end):
                    boundary_set.add(end)

        boundaries = sorted(boundary_set)
        for index, t0 in enumerate(boundaries):
            t1 = boundaries[index + 1] if index + 1 < len(boundaries) \
                else math.inf
            if t1 <= t0:
                continue
            if ocs:
                dead: frozenset = frozenset()
            else:
                dead = frozenset(
                    link for link in range(num_links)
                    if link_schedule.outage_end(link, t0) is not None)
            slow = {}
            for link in range(num_links):
                factor = link_schedule.slowdown_factor(link, t0)
                if factor != 1.0:
                    slow[link] = factor
            if not dead and not slow:
                continue
            latency = self.shard_latency_s(ref, dead, slow)
            if latency is None:
                # Partitioned: the slice serves nothing in this window
                # and fails every health probe inside it.
                for core in range(chip_cores):
                    down.append((core, t0, t1))
            else:
                factor = latency / healthy
                if factor > 1.0:
                    for core in range(chip_cores):
                        slowdowns.append((core, t0, t1, factor))

        if not down and not slowdowns:
            return chip_schedule
        if chip_schedule is not None:
            if chip_schedule.cores != chip_cores:
                raise ValueError(
                    f"chip schedule built for {chip_schedule.cores} cores, "
                    f"chip has {chip_cores}")
            down.extend(chip_schedule.down)
            slowdowns.extend(chip_schedule.slowdowns)
            horizon_s = max(horizon_s, chip_schedule.horizon_s)
        return FaultSchedule(chip_cores, horizon_s, down, slowdowns)

    def realize_schedule(self, horizon_s: float,
                         chip_schedule: Optional[FaultSchedule] = None,
                         ) -> Optional[FaultSchedule]:
        """Realize this slice's pod fault model into a core schedule.

        The cluster sweep calls this per slice (after
        :meth:`~repro.pod.faults.PodFaultModel.fork_for_slice`) and
        passes the results to ``ClusterSimulator.simulate(schedules=)``
        — the router then sees a degraded slice as a slow replica and a
        partitioned slice as a probe-failing one, with no router
        changes at all.
        """
        if self.pod_faults is None:
            return chip_schedule
        link_schedule = self.pod_faults.link_schedule(
            self.topology.num_links, horizon_s)
        return self.induced_schedule(link_schedule, horizon_s, chip_schedule)

    # --------------------------------------------------------------- simulate

    def simulate(self, requests: Sequence[Request],
                 faults: Optional[FaultModel] = None,
                 schedule: Optional[FaultSchedule] = None,
                 tracer=None) -> ServingStats:
        """Serve a request stream through the slice.

        With no pod fault model this *is* ``ServingSimulator.simulate``
        (same call, same bits). With one, the link timeline is realized
        and compiled into the core schedule first; ``faults`` (or the
        model nested in ``pod_faults``) still governs chip-level faults
        and the retry budget, and an explicitly passed ``schedule``
        is merged rather than replaced.
        """
        pod = self.pod_faults
        if pod is None:
            return super().simulate(requests, faults, schedule, tracer)
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        last = requests[-1].arrival_s \
            if isinstance(requests[-1], Request) else requests[-1]
        horizon = last + pod.horizon_pad_s
        chip_model = faults if faults is not None else pod.chip_faults
        chip_schedule = schedule
        if (chip_schedule is None and chip_model is not None
                and not chip_model.zero_fault):
            chip_schedule = chip_model.schedule(
                self.point.chip.cores, horizon)
        merged = self.realize_schedule(horizon, chip_schedule)
        return super().simulate(requests, faults=chip_model,
                                schedule=merged, tracer=tracer)
