"""Link- and slice-level fault sources for pod-scale serving.

Extends the PR 3 fault subsystem one level up the hierarchy: where
:class:`~repro.faults.model.FaultModel` kills cores and chips, this
module kills and throttles *ICI links* — the axis the TPU v4 OCS paper
and the interconnect-resilience line of work make first-class.

The realized timeline reuses :class:`~repro.faults.model.FaultSchedule`
verbatim, with **link indices in the core slot**: a link outage is a
``(link, start, end)`` down interval, a congested/retraining link is a
slowdown window, and every boundary query (``outage_end``,
``slowdown_factor``, ``first_failure_between``) keeps the documented
half-open ``[start, end)`` contract. That reuse is deliberate — the
boundary semantics were pinned with regression tests before this module
was written, so link faults inherit an already-locked contract instead
of inventing a parallel one.

Streams fork exactly like the core/chip sources: link ``i`` draws from
``DeterministicRng(seed).fork(_LINK_SALT + i)``, slowdowns from
``_LINK_SLOWDOWN_SALT + i``, and slice ``j`` of a cluster reseeds the
whole model through ``_SLICE_SALT + j`` — so adding a link, a slice, or
a whole fault source never perturbs any other stream's draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.faults.model import FaultModel, FaultSchedule
from repro.serving.server import (DEFAULT_RETRY_BUDGET,
                                  DEFAULT_RETRY_TIMEOUT_S)
from repro.util.rng import DeterministicRng

#: Stream salts, far above the FaultModel-internal salts (1 / 1_000 /
#: 1_000_000) and the cluster's replica salt (9_000_000) so no fork of
#: any seed can collide with another subsystem's stream.
_LINK_SALT = 17_000_000
_LINK_SLOWDOWN_SALT = 18_000_000
_SLICE_SALT = 19_000_000


@dataclass(frozen=True)
class PodFaultModel:
    """Seeded link/slice fault configuration (simulated seconds).

    The defaults are all-infinite MTBFs: a bare :class:`PodFaultModel`
    is zero-fault and realizes an empty link schedule, so simulating
    with it is bit-identical to simulating without it (the same
    identity contract every fault source in this repo honors).

    ``chip_faults`` optionally nests a plain :class:`FaultModel` whose
    core/chip/slowdown sources apply *within* each slice member; its
    retry budget and timeout also govern pod-level retries. Slowdown
    windows model links that are congested or retraining: traffic still
    flows, ``link_slowdown_factor`` times slower.
    """

    seed: int = 0
    link_mtbf_s: float = math.inf
    link_repair_s: float = 0.2
    link_slowdown_mtbf_s: float = math.inf
    link_slowdown_s: float = 0.25
    link_slowdown_factor: float = 4.0
    chip_faults: Optional[FaultModel] = None

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        # Same convention as FaultModel: validate at construction and
        # name the offending field, so a NaN or negative rate can never
        # reach schedule generation.
        for name in ("link_mtbf_s", "link_slowdown_mtbf_s",
                     "link_repair_s", "link_slowdown_s",
                     "link_slowdown_factor"):
            if math.isnan(getattr(self, name)):
                raise ValueError(f"{name} must not be NaN")
        for name in ("link_mtbf_s", "link_slowdown_mtbf_s"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}")
        for name in ("link_repair_s", "link_slowdown_s"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)}")
        if self.link_slowdown_factor < 1.0:
            raise ValueError(
                f"link_slowdown_factor must be >= 1, "
                f"got {self.link_slowdown_factor}")

    @property
    def zero_fault(self) -> bool:
        """True when no link or nested chip fault source is active."""
        return (math.isinf(self.link_mtbf_s)
                and math.isinf(self.link_slowdown_mtbf_s)
                and (self.chip_faults is None or self.chip_faults.zero_fault))

    @property
    def retry_budget(self) -> int:
        return (self.chip_faults.retry_budget if self.chip_faults is not None
                else DEFAULT_RETRY_BUDGET)

    @property
    def retry_timeout_s(self) -> float:
        return (self.chip_faults.retry_timeout_s
                if self.chip_faults is not None else DEFAULT_RETRY_TIMEOUT_S)

    @property
    def horizon_pad_s(self) -> float:
        return (self.chip_faults.horizon_pad_s
                if self.chip_faults is not None else 1.0)

    def _repair(self, stream: DeterministicRng, mean_s: float) -> float:
        if math.isinf(mean_s):
            return math.inf
        if mean_s == 0.0:
            return 0.0
        return stream.exponential(mean_s)

    def link_schedule(self, num_links: int,
                      horizon_s: float) -> Optional[FaultSchedule]:
        """Realize link outages/slowdowns over a horizon.

        Returns a :class:`FaultSchedule` whose "cores" are link indices,
        or ``None`` for a linkless (single-chip) slice. Deterministic:
        the same (model, num_links, horizon) always yields the same
        timeline, and each link's streams are independent forks.
        """
        if num_links < 0:
            raise ValueError("num_links must be non-negative")
        if num_links == 0:
            return None
        root = DeterministicRng(self.seed)
        down: list = []
        for link in range(num_links):
            stream = root.fork(_LINK_SALT + link)
            for start in stream.event_times(self.link_mtbf_s, horizon_s):
                down.append(
                    (link, start,
                     start + self._repair(stream, self.link_repair_s)))
        slowdowns: list = []
        for link in range(num_links):
            stream = root.fork(_LINK_SLOWDOWN_SALT + link)
            for start in stream.event_times(self.link_slowdown_mtbf_s,
                                            horizon_s):
                slowdowns.append((link, start, start + self.link_slowdown_s,
                                  self.link_slowdown_factor))
        return FaultSchedule(num_links, horizon_s, down, slowdowns)

    def fork_for_slice(self, index: int) -> "PodFaultModel":
        """An independently-seeded copy for slice ``index`` of a cluster.

        Both the link seed and the nested chip-fault seed are forked, so
        every slice sees its own failures and adding a slice never moves
        another slice's draws (the cluster-replica forking rule, one
        level up).
        """
        if index < 0:
            raise ValueError("slice index must be non-negative")
        seed = DeterministicRng(self.seed).fork(_SLICE_SALT + index).seed
        chip = None
        if self.chip_faults is not None:
            chip = replace(
                self.chip_faults,
                seed=DeterministicRng(self.chip_faults.seed)
                .fork(_SLICE_SALT + index).seed)
        return replace(self, seed=seed, chip_faults=chip)

    def describe(self) -> str:
        def mtbf(value: float) -> str:
            return "never" if math.isinf(value) else f"{value:.3g} s"

        base = (f"PodFaultModel(seed={self.seed}): link MTBF "
                f"{mtbf(self.link_mtbf_s)}, link slowdown MTBF "
                f"{mtbf(self.link_slowdown_mtbf_s)}")
        if self.chip_faults is not None:
            base += f"; nested {self.chip_faults.describe()}"
        return base
