"""Pod chaos sweep: sharded slices under link/slice fault scenarios.

One row per (chip, app, topology kind, scenario, router policy): a
cluster of multi-chip slices — each slice a
:class:`~repro.pod.slicesim.SliceSimulator` serving the model
pipeline-parallel — driven by deterministic Poisson traffic sized so
that N-1 slices can carry it, under a link/slice chaos scenario, once
with the unprotected ``static`` router and once with the full
``resilient`` policy. The scenario grid crosses the torus and OCS
topology variants, so the same dead link shows up as a reroute-and-slow
slice on the torus and a reconfigure-then-heal slice on the OCS fabric.

The emitted table is what the ``repro pod`` CLI prints and what the
engine benchmark's pod phase times and checks: same arguments,
byte-identical rows (two runs are diffed in CI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.chip import ChipConfig, TPUV4I
from repro.cluster.cluster import ClusterSimulator, ClusterStats
from repro.cluster.policy import ClusterPolicy
from repro.core.design_point import shared_design_point
from repro.faults.model import FaultSchedule
from repro.pod.faults import PodFaultModel
from repro.pod.slicesim import SliceSimulator
from repro.pod.topology import PodTopology, slice_topology
from repro.serving.batching import BatchPolicy
from repro.serving.slo import Slo
from repro.workloads.generator import RequestGenerator
from repro.workloads.models import app_by_name

DEFAULT_SLICES = 3
DEFAULT_SLICE_CHIPS = 4
DEFAULT_UTILIZATION = 0.6
DEFAULT_DURATION_S = 1.0
DEFAULT_MAX_BATCH = 8
DEFAULT_TOPOLOGY_KINDS = ("torus", "ocs")

#: Hand-placed scenario timings (simulated seconds): the dead-chip
#: repair window, and the two link failures of the reconfiguration
#: race — close enough that the second failure lands inside the first
#: OCS reconfiguration window.
_CHIP_REPAIR_S = 0.25
_RACE_T0 = 0.05
_RACE_GAP_S = 0.005
_RACE_REPAIR_S = 0.1


@dataclass(frozen=True)
class PodScenario:
    """One way to hurt a pod (all times in simulated seconds).

    ``kill_links`` takes that many distinct links of slice 0 down for
    the whole run (hand-built, not MTBF draws); ``kill_chip`` takes one
    whole chip of slice 0 down for a repair window — a pipeline slice
    cannot serve through a dead member, so the slice is out until the
    chip returns; ``link_race`` fails two links of slice 0 a few
    milliseconds apart (the OCS reconfiguration race — on the torus the
    same pair isolates a member and partitions the slice);
    ``link_slowdown_mtbf_s`` feeds a seeded :class:`PodFaultModel`
    forked per slice.
    """

    name: str
    kill_links: int = 0
    kill_chip: bool = False
    link_race: bool = False
    link_slowdown_mtbf_s: float = math.inf


DEFAULT_POD_SCENARIOS: tuple = (
    PodScenario("faultless"),
    PodScenario("kill-1-link", kill_links=1),
    PodScenario("kill-1-chip", kill_chip=True),
    PodScenario("ocs-reconfig-race", link_race=True),
    PodScenario("link-slowdown", link_slowdown_mtbf_s=0.3),
)


@dataclass(frozen=True)
class PodChaosRow:
    """One (chip, app, topology, scenario, policy) cell of the sweep."""

    chip: str
    app: str
    topology: str
    scenario: str
    policy: str
    slice_chips: int
    offered_qps: float
    stats: ClusterStats


def _scenario_schedules(scenario: PodScenario, sims: Sequence[SliceSimulator],
                        topology: PodTopology, horizon_s: float,
                        seed: int) -> Optional[list]:
    """Per-slice core schedules realizing one scenario (None = clean run).

    Link scenarios are expressed as link timelines first (link indices
    in the core slot of a :class:`FaultSchedule`) and compiled into
    core schedules by each slice — the exact path organic link faults
    take — so hand-built and MTBF-driven scenarios exercise one state
    machine.
    """
    n = len(sims)
    cores = sims[0].point.chip.cores
    num_links = topology.num_links

    if scenario.kill_links:
        if scenario.kill_links > num_links:
            raise ValueError(
                f"scenario {scenario.name!r} kills {scenario.kill_links} "
                f"links; topology has {num_links}")
        link_schedule = FaultSchedule(
            num_links, horizon_s,
            down=[(link, 0.0, math.inf)
                  for link in range(scenario.kill_links)])
        first = sims[0].induced_schedule(link_schedule, horizon_s)
        return [first] + [None] * (n - 1)

    if scenario.kill_chip:
        # One dead member takes the whole pipeline slice out until the
        # chip is repaired: every serving lane of slice 0 is down.
        chip_schedule = FaultSchedule(
            cores, horizon_s,
            down=[(core, 0.0, _CHIP_REPAIR_S) for core in range(cores)])
        return [chip_schedule] + [None] * (n - 1)

    if scenario.link_race:
        link_schedule = FaultSchedule(
            num_links, horizon_s,
            down=[(0, _RACE_T0, _RACE_T0 + _RACE_REPAIR_S),
                  (1, _RACE_T0 + _RACE_GAP_S,
                   _RACE_T0 + _RACE_GAP_S + _RACE_REPAIR_S)])
        first = sims[0].induced_schedule(link_schedule, horizon_s)
        return [first] + [None] * (n - 1)

    if not math.isinf(scenario.link_slowdown_mtbf_s):
        model = PodFaultModel(
            seed=seed, link_slowdown_mtbf_s=scenario.link_slowdown_mtbf_s)
        schedules = []
        for index, sim in enumerate(sims):
            forked = model.fork_for_slice(index)
            link_schedule = forked.link_schedule(num_links, horizon_s)
            schedules.append(sim.induced_schedule(link_schedule, horizon_s))
        return schedules

    return None


def pod_chaos_sweep(seed: int = 0, *,
                    apps: Sequence[str] = ("cnn0",),
                    chips: Optional[Sequence[ChipConfig]] = None,
                    slices: int = DEFAULT_SLICES,
                    slice_chips: int = DEFAULT_SLICE_CHIPS,
                    duration_s: float = DEFAULT_DURATION_S,
                    utilization: float = DEFAULT_UTILIZATION,
                    max_batch: int = DEFAULT_MAX_BATCH,
                    parallelism: str = "pipeline",
                    topology_kinds: Sequence[str] = DEFAULT_TOPOLOGY_KINDS,
                    scenarios: Sequence[PodScenario] = DEFAULT_POD_SCENARIOS,
                    ) -> list:
    """Run every (chip, app, topology kind, scenario) under both router
    policies.

    Traffic per (chip, app, kind) is Poisson at ``utilization`` of the
    SLO capacity of ``slices - 1`` slices (the N+1 rule: one dead slice
    is survivable by construction), seeded from ``seed``: the sweep is
    a pure function of its arguments. Chips without enough ICI ports
    for a ``slice_chips``-chip slice are skipped.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    if slices < 2:
        raise ValueError("a pod chaos sweep needs at least 2 slices")
    if slice_chips < 2:
        raise ValueError(
            "a pod chaos sweep shards across at least 2 chips per slice "
            "(the 1-chip slice is the identity case, covered by tests)")
    chip_list = tuple(chips) if chips is not None else (TPUV4I,)

    rows: list = []
    pair_index = -1
    for chip in chip_list:
        for app in apps:
            for kind in topology_kinds:
                pair_index += 1
                if chip.ici_links < 2:
                    continue  # no fabric: cannot shard at all
                topology = slice_topology(chip, slice_chips, kind=kind)
                spec = app_by_name(app)
                slo = Slo(spec.slo_ms / 1e3)
                point = shared_design_point(chip)
                batch_policy = BatchPolicy(max_batch=max_batch,
                                           max_wait_s=slo.limit_s / 4.0)
                sims = [SliceSimulator(point, spec, batch_policy, slo,
                                       topology=topology,
                                       parallelism=parallelism)
                        for _ in range(slices)]
                # Identical slices share every memo: one shard build,
                # one latency table, one link-state repricing.
                for sim in sims[1:]:
                    sim._latency_cache = sims[0]._latency_cache
                    sim._shards = sims[0]._shards
                    sim._state_latency = sims[0]._state_latency

                steps = BatchPolicy.batch_steps(max_batch)
                table = {step: sims[0].batch_latency_s(step)
                         for step in steps}
                slo_batch = max(
                    (s for s in steps if table[s] <= slo.limit_s), default=1)
                per_slice_qps = chip.cores * slo_batch / table[slo_batch]
                base_qps = utilization * per_slice_qps * (slices - 1)

                policies = (
                    ("static", ClusterPolicy.static()),
                    ("resilient", ClusterPolicy.resilient(
                        slo_limit_s=slo.limit_s, offered_qps=base_qps,
                        max_batch=max_batch, replicas=slices,
                        int8_tier=chip.supports_dtype("int8"))),
                )
                traffic = RequestGenerator(seed * 7919 + pair_index)
                for scenario in scenarios:
                    requests = traffic.rng.poisson_arrivals(
                        base_qps, duration_s)
                    if not requests:
                        continue  # degenerate rate/duration
                    horizon = requests[-1] + 1.0
                    schedules = _scenario_schedules(
                        scenario, sims, topology, horizon, seed)
                    for policy_name, policy in policies:
                        cluster = ClusterSimulator(sims, policy)
                        stats = cluster.simulate(requests,
                                                 schedules=schedules)
                        rows.append(PodChaosRow(
                            chip=chip.name, app=spec.name,
                            topology=kind, scenario=scenario.name,
                            policy=policy_name, slice_chips=slice_chips,
                            offered_qps=base_qps, stats=stats))
    return rows
