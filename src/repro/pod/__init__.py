"""Pod-scale sharded serving: topology, link faults, slices, chaos.

The pod layer composes the existing stacks one level up: a
:class:`~repro.pod.topology.PodTopology` prices ICI routes and
collectives, a :class:`~repro.pod.sharding.ShardedProgram` partitions a
compiled workload across a slice (interconnect priced as lowered-IR
rows, so the replay kernels apply), a
:class:`~repro.pod.slicesim.SliceSimulator` serves through the shard
graph on the shared simulated clock, and
:func:`~repro.pod.sweep.pod_chaos_sweep` drives slices through
link/slice fault scenarios under both cluster router policies.
"""

from repro.pod.faults import PodFaultModel
from repro.pod.sharding import ICI_LEVEL, ShardedProgram, attach_ici_rows
from repro.pod.slicesim import SliceSimulator
from repro.pod.sweep import (DEFAULT_POD_SCENARIOS, PodChaosRow, PodScenario,
                             pod_chaos_sweep)
from repro.pod.topology import (DEFAULT_OCS_RECONFIG_S, PodTopology,
                                slice_topology)

__all__ = [
    "DEFAULT_OCS_RECONFIG_S",
    "DEFAULT_POD_SCENARIOS",
    "ICI_LEVEL",
    "PodChaosRow",
    "PodFaultModel",
    "PodScenario",
    "PodTopology",
    "ShardedProgram",
    "SliceSimulator",
    "attach_ici_rows",
    "pod_chaos_sweep",
    "slice_topology",
]
