"""Shard a compiled program across a slice, priced in the lowered IR.

A :class:`ShardedProgram` partitions one workload over the members of a
:class:`~repro.pod.topology.PodTopology` slice and prices the resulting
inter-chip traffic as **rows in the lowered timing IR** — ICI transfers
become DMA rows on a synthetic ``"ici"`` pool appended to the lowered
program, so :class:`~repro.sim.lowered.FastReplay` (and anything built
on it) replays compute and interconnect together, deterministically,
with the ICI bytes landing in the same per-level traffic ledger as HBM
and CMEM.

Two parallelism modes:

* ``"pipeline"`` — :func:`~repro.core.multichip.partition_module`
  splits the HLO module into FLOPs-balanced stages, one per member;
  each stage's inbound boundary activations become a store-and-forward
  hop chain (one DMA row per link hop) prepended to the stage program.
  When the module has fewer layers than the slice has members, the
  partitioner falls back to the largest stage count that works — the
  remaining members simply hold no stage.
* ``"tensor"`` — batch-axis sharding: every member compiles the model
  at ``ceil(batch / p)`` and the root output shards are ring
  all-gathered at the end, priced as ``p - 1`` synchronous steps of the
  slowest neighbor route. (A width-wise Megatron-style weight split
  would need per-op shape rewrites across layer boundaries; the batch
  axis gives the same traffic/compute tradeoff shape with the compiler
  this repo actually has, and is labelled honestly here.)

The latency model is conservative: a batch's latency is the *sum* of
stage replays (no inter-stage pipelining within one batch) — successive
batches still overlap across a slice's serving lanes exactly as they do
on one chip. Dead and slow links enter through ``dead``/``slow``
arguments at realization time: routes re-resolve around dead links
(torus) and per-hop bytes scale by the slowdown factor, so a degraded
slice's latency is a pure deterministic function of its link state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

from repro.arch.chip import ChipConfig
from repro.arch.ici import IciLink
from repro.compiler.pipeline import compile_model
from repro.core.design_point import DesignPoint
from repro.core.multichip import partition_module
from repro.engine.modules import built_module
from repro.pod.topology import PodTopology
from repro.sim.lowered import (K_BUNDLE, K_DMA, K_HALT, K_SYNC_WAIT,
                               FastReplay, LoweredProgram, lower_program)
from repro.workloads.models import WorkloadSpec

#: Name of the synthetic DMA pool ICI transfers are priced on.
ICI_LEVEL = "ici"

_PARALLELISMS = ("pipeline", "tensor")


def attach_ici_rows(lowered: LoweredProgram, link: IciLink,
                    hop_transfers: Sequence[tuple],
                    where: str = "pre",
                    level: str = ICI_LEVEL) -> LoweredProgram:
    """Append a link DMA pool and price hop transfers as rows.

    ``hop_transfers`` is a sequence of ``(num_bytes, factor)`` pairs —
    one store-and-forward link hop each, ``factor`` the link's slowdown
    multiplier (1.0 when healthy). Each hop becomes a ``K_DMA`` row
    (bytes scaled by the factor) chained to the issue stream with a
    ``K_SYNC_WAIT`` on a fresh flag, so hops serialize exactly like the
    analytic store-and-forward model. ``where="pre"`` inserts the chain
    before the program (inbound activations gate the first bundle);
    ``"post"`` inserts it after the last compute row but before any
    trailing HALT (a closing collective).

    ``level`` names the synthetic pool the bytes are ledgered under:
    :data:`ICI_LEVEL` for inter-chip hops (the default), or another
    level such as the KV-recovery subsystem's ``"host"`` pool
    (:data:`repro.serving.recovery.HOST_LEVEL`) for chip↔host offload
    traffic priced over a PCIe-class link.

    The returned program is a new :class:`LoweredProgram`; the input is
    never mutated. The hop bytes flow into the replay's per-level
    traffic ledger under ``level``.
    """
    if where not in ("pre", "post"):
        raise ValueError(f"where must be 'pre' or 'post', got {where!r}")
    if not hop_transfers:
        return lowered
    for num_bytes, factor in hop_transfers:
        if num_bytes < 0:
            raise ValueError(f"hop bytes must be non-negative, "
                             f"got {num_bytes}")
        if math.isnan(factor) or factor < 1.0:
            raise ValueError(f"hop factor must be >= 1, got {factor}")

    if level in lowered.pool_levels:
        pool = lowered.pool_levels.index(level)
        pool_levels = lowered.pool_levels
        pool_bandwidths = lowered.pool_bandwidths
        pool_latencies = lowered.pool_latencies
        level_names = lowered.level_names
    else:
        pool = len(lowered.pool_levels)
        pool_levels = lowered.pool_levels + (level,)
        pool_bandwidths = lowered.pool_bandwidths + (link.bandwidth,)
        pool_latencies = lowered.pool_latencies + (
            int(math.ceil(link.latency_s * lowered.clock_hz)),)
        level_names = lowered.level_names + (level,)

    flag = lowered.n_flags
    chain: list = [(K_BUNDLE, 0, 0, 0, 0.0)]
    for num_bytes, factor in hop_transfers:
        scaled = int(math.ceil(num_bytes * factor))
        chain.append((K_DMA, pool, scaled, flag, 0.0))
        chain.append((K_SYNC_WAIT, flag, 0, 0, 0.0))
        flag += 1
    chain_rows = tuple(chain)

    if where == "pre":
        rows = chain_rows + lowered.rows
    elif lowered.rows and lowered.rows[-1][0] == K_HALT:
        rows = lowered.rows[:-1] + chain_rows + lowered.rows[-1:]
    else:
        rows = lowered.rows + chain_rows

    return replace(lowered, rows=rows, n_flags=flag,
                   pool_levels=pool_levels,
                   pool_bandwidths=pool_bandwidths,
                   pool_latencies=pool_latencies,
                   level_names=level_names)


def _feasible_stages(module, limit: int) -> tuple:
    """Partition into at most ``limit`` stages, backing off when the
    module is too small (the partitioner raises on an empty stage)."""
    for count in range(limit, 0, -1):
        try:
            return partition_module(module, count)
        except ValueError:
            if count == 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class ShardedProgram:
    """One workload batch partitioned across a slice (immutable).

    Built by :meth:`build`; holds the per-stage lowered programs
    *without* ICI rows plus the transfer metadata needed to realize them
    under any link state. ``stage_nodes[i]`` is the topology node
    hosting stage ``i``; ``inbound_bytes[i]`` the boundary activation
    traffic entering it (pipeline mode; always 0 for stage 0).
    """

    spec_name: str
    batch: int
    parallelism: str
    members: tuple
    topology: PodTopology
    stage_lowereds: tuple
    stage_nodes: tuple
    inbound_bytes: tuple
    shard_output_bytes: int = 0  # tensor mode: per-member root shard

    @classmethod
    def build(cls, point: DesignPoint, spec: WorkloadSpec, batch: int,
              topology: PodTopology,
              members: Optional[Sequence[int]] = None,
              parallelism: str = "pipeline") -> "ShardedProgram":
        """Partition ``spec`` at ``batch`` across ``members`` (default:
        every chip in the topology) and lower each shard for the chip.
        """
        if parallelism not in _PARALLELISMS:
            raise ValueError(
                f"parallelism must be one of {_PARALLELISMS}, "
                f"got {parallelism!r}")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        group = tuple(sorted(members)) if members is not None \
            else tuple(range(topology.num_chips))
        if not group:
            raise ValueError("a slice needs at least one member")
        if len(set(group)) != len(group):
            raise ValueError("slice members must be distinct")
        for member in group:
            if not 0 <= member < topology.num_chips:
                raise ValueError(
                    f"member {member} outside 0..{topology.num_chips - 1}")
        topology.validate_chip(point.chip)
        chip = point.chip
        p = len(group)

        if p == 1:
            compiled = point.compiled(spec, batch)
            lowered = lower_program(compiled.program, chip)
            return cls(spec_name=spec.name, batch=batch,
                       parallelism=parallelism, members=group,
                       topology=topology, stage_lowereds=(lowered,),
                       stage_nodes=(group[0],), inbound_bytes=(0,))

        if parallelism == "tensor":
            sub_batch = math.ceil(batch / p)
            compiled = point.compiled(spec, sub_batch)
            lowered = lower_program(compiled.program, chip)
            shard_bytes = compiled.module.root.shape.byte_size
            return cls(spec_name=spec.name, batch=batch,
                       parallelism=parallelism, members=group,
                       topology=topology, stage_lowereds=(lowered,),
                       stage_nodes=(group[0],), inbound_bytes=(0,),
                       shard_output_bytes=shard_bytes)

        module = built_module(spec, batch)
        stages, boundaries = _feasible_stages(module, p)
        lowereds = []
        for stage in stages:
            compiled = compile_model(stage, chip, version=point.version)
            lowereds.append(lower_program(compiled.program, chip))
        return cls(spec_name=spec.name, batch=batch,
                   parallelism=parallelism, members=group,
                   topology=topology, stage_lowereds=tuple(lowereds),
                   stage_nodes=group[:len(stages)],
                   inbound_bytes=tuple(boundaries))

    # ----------------------------------------------------------- realization

    def ring_pairs(self) -> tuple:
        """Consecutive neighbor pairs of the member ring (sorted order)."""
        return tuple(self.topology._ring_pairs(self.members))

    def realized_stages(self, dead: frozenset = frozenset(),
                        slow: Optional[Mapping[int, float]] = None,
                        ) -> Optional[tuple]:
        """The stage programs with ICI rows for the given link state.

        Routes re-resolve under ``dead`` (the OCS variant ignores dead
        links — its switch patched them); per-hop bytes scale by the
        link's ``slow`` factor. Returns ``None`` when any required route
        is cut: the slice is partitioned and cannot serve at all.
        """
        topo = self.topology
        link = topo.link
        slow = slow or {}

        if self.parallelism == "tensor" and len(self.members) > 1:
            p = len(self.members)
            best_route: Optional[tuple] = None
            best_cost = -1.0
            for src, dst in self.ring_pairs():
                route = topo.route(src, dst, dead)
                if route is None:
                    return None
                cost = topo.path_seconds(route, self.shard_output_bytes, slow)
                if cost > best_cost:
                    best_cost, best_route = cost, route
            hops = [(self.shard_output_bytes, float(slow.get(lid, 1.0)))
                    for lid in best_route] * (p - 1)
            return (attach_ici_rows(self.stage_lowereds[0], link, hops,
                                    where="post"),)

        realized = []
        for index, lowered in enumerate(self.stage_lowereds):
            if index > 0:
                route = topo.route(self.stage_nodes[index - 1],
                                   self.stage_nodes[index], dead)
                if route is None:
                    return None
                hops = [(self.inbound_bytes[index],
                         float(slow.get(lid, 1.0))) for lid in route]
                lowered = attach_ici_rows(lowered, link, hops, where="pre")
            realized.append(lowered)
        return tuple(realized)

    def latency_s(self, chip: ChipConfig, dead: frozenset = frozenset(),
                  slow: Optional[Mapping[int, float]] = None,
                  ) -> Optional[float]:
        """Batch latency through the shard graph under a link state.

        Sum of per-stage replay seconds (conservative: one batch does
        not pipeline across its own stages). ``None`` means partitioned.
        """
        stages = self.realized_stages(dead, slow)
        if stages is None:
            return None
        replayer = FastReplay(chip)
        return sum(replayer.run(stage).seconds for stage in stages)

    def describe(self) -> str:
        return (f"{self.spec_name}@{self.batch} {self.parallelism} over "
                f"{len(self.members)} members of {self.topology.describe()}"
                f" ({len(self.stage_lowereds)} stage programs)")
