"""Cycle-approximate TensorCore simulator.

Executes compiled VLIW programs against a chip's timing models: in-order
bundle issue, pipelined MXU/VPU occupancy, DMA engines with shared-bandwidth
contention, and sync-flag blocking — enough fidelity to reproduce the
paper's utilization, roofline, and latency shapes (the repro band for this
paper is explicitly "analytical/cycle sim, not RTL").
"""

from repro.sim.perf import PerfCounters, PerfReport
from repro.sim.trace import Trace, TraceEvent
from repro.sim.lowered import (
    FastReplay,
    LoweredProgram,
    fastsim_disabled,
    fastsim_enabled,
    lower_program,
    replay,
)
from repro.sim.core import TensorCoreSim, SimResult

__all__ = [
    "FastReplay",
    "LoweredProgram",
    "PerfCounters",
    "PerfReport",
    "Trace",
    "TraceEvent",
    "TensorCoreSim",
    "SimResult",
    "fastsim_disabled",
    "fastsim_enabled",
    "lower_program",
    "replay",
]
