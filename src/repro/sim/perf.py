"""Performance counters and derived reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.chip import ChipConfig
from repro.arch.power import PowerBreakdown, PowerModel
from repro.util.units import TERA


@dataclass
class PerfCounters:
    """Raw counters accumulated while executing one program."""

    cycles: int = 0
    bundles: int = 0
    macs: int = 0
    vector_alu_ops: float = 0.0
    scalar_ops: int = 0
    mxu_busy_cycles: int = 0
    vpu_busy_cycles: int = 0
    dma_busy_cycles: int = 0
    sync_stall_cycles: int = 0
    bytes_by_level: Dict[str, float] = field(default_factory=dict)

    def add_bytes(self, level: str, num_bytes: float) -> None:
        self.bytes_by_level[level] = self.bytes_by_level.get(level, 0.0) + num_bytes


@dataclass(frozen=True)
class PerfReport:
    """Derived metrics for one program execution on one chip."""

    chip_name: str
    program_name: str
    cycles: int
    seconds: float
    ops: float                    # 2 * MACs
    achieved_tops: float
    mxu_utilization: float        # busy cycles / total cycles
    compute_efficiency: float     # achieved ops / peak ops
    hbm_bytes: float
    cmem_bytes: float
    vmem_bytes: float
    hbm_bw_utilization: float
    power: PowerBreakdown
    energy_j: float

    @property
    def tops_per_watt(self) -> float:
        return self.achieved_tops / self.power.total_w if self.power.total_w else 0.0

    @property
    def queries_per_second(self) -> float:
        """If the program is one inference, its standalone throughput.

        0.0 for a degenerate zero-second run (an empty program), so the
        value is always finite and safe to aggregate or serialize.
        """
        return 1.0 / self.seconds if self.seconds else 0.0

    def describe(self) -> str:
        return (
            f"{self.program_name} on {self.chip_name}: "
            f"{self.seconds * 1e3:.3f} ms, {self.achieved_tops:.2f} TOPS "
            f"({self.compute_efficiency:.1%} of peak), "
            f"HBM {self.hbm_bw_utilization:.1%}, "
            f"{self.power.total_w:.1f} W, {self.tops_per_watt:.2f} TOPS/W"
        )


def build_report(chip: ChipConfig, program_name: str, counters: PerfCounters,
                 dtype: str = "bf16") -> PerfReport:
    """Turn raw counters into a :class:`PerfReport` (with power/energy)."""
    if counters.cycles <= 0:
        raise ValueError("cannot report on an execution with zero cycles")
    seconds = counters.cycles / chip.clock_hz
    ops = 2.0 * counters.macs
    hbm = counters.bytes_by_level.get("hbm", 0.0)
    cmem = counters.bytes_by_level.get("cmem", 0.0)
    vmem = counters.bytes_by_level.get("vmem", 0.0)
    power_model = PowerModel(chip)
    power = power_model.average_power(
        seconds,
        macs=counters.macs,
        dtype=dtype,
        sram_bytes=vmem + cmem,
        hbm_bytes=hbm,
        vector_ops=counters.vector_alu_ops,
    )
    return PerfReport(
        chip_name=chip.name,
        program_name=program_name,
        cycles=counters.cycles,
        seconds=seconds,
        ops=ops,
        achieved_tops=(ops / seconds) / TERA,
        mxu_utilization=counters.mxu_busy_cycles / counters.cycles,
        compute_efficiency=(ops / seconds) / chip.peak_ops,
        hbm_bytes=hbm,
        cmem_bytes=cmem,
        vmem_bytes=vmem,
        hbm_bw_utilization=min(1.0, (hbm / seconds) / chip.hbm_bw),
        power=power,
        energy_j=power.total_w * seconds,
    )
