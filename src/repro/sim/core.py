"""The TensorCore simulator: timing execution of compiled programs.

Model (cycle-approximate, per DESIGN.md's fidelity statement):

* bundles issue in order, one per cycle minimum;
* ``sync.wait`` stalls issue until the named flag's completion cycle —
  this is the only blocking primitive, exactly like the hardware;
* the MXU and VPU are pipelined units serialized by their own free time;
  MXM timing comes from :class:`~repro.arch.mxu.MxuModel` (fill/drain,
  weight-reload exposure), vector timing from
  :class:`~repro.arch.vpu.VpuModel`;
* DMA instructions dispatch to per-level engine pools; concurrent engines
  on one level split its bandwidth (contention), and each completed
  transfer stamps its sync flag;
* completion is the max over issue, units, and outstanding DMAs.

Multi-core chips (TPUv2/v3) run one request's program on one core; the
chip-level peak numbers already count all cores, and the serving layer
treats cores as independent request servers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.chip import ChipConfig
from repro.arch.dma import DmaEngine
from repro.arch.memory import MemorySystem
from repro.arch.mxu import MxuModel
from repro.arch.vpu import VpuModel
from repro.isa.instructions import (
    Instruction,
    LEVEL_NAMES,
    Opcode,
    SlotClass,
    VECTOR_OP_CLASS,
)
from repro.isa.program import Program
from repro.sim.lowered import FastReplay, fastsim_enabled
from repro.sim.perf import PerfCounters, PerfReport, build_report
from repro.sim.trace import Trace, TraceEvent

_ENGINES_PER_LEVEL = 4


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated execution."""

    report: PerfReport
    counters: PerfCounters
    trace: Optional[Trace]

    @property
    def seconds(self) -> float:
        return self.report.seconds

    @property
    def cycles(self) -> int:
        return self.report.cycles


@dataclass
class _RunState:
    """Per-run execution unit state.

    Kept local to one :meth:`TensorCoreSim.run` call (never on the sim
    instance) so a single sim is reentrant: the engine's workers and the
    shared design-point registry can reuse one instance concurrently.
    """

    mxu_free: int = 0
    vpu_free: int = 0
    flags: dict[int, int] = field(default_factory=dict)


class TensorCoreSim:
    """Executes :class:`Program` objects on one chip configuration."""

    def __init__(self, chip: ChipConfig) -> None:
        self.chip = chip
        self.mxu = MxuModel(chip)
        self.vpu = VpuModel(chip)
        self.replay = FastReplay(chip)

    # ------------------------------------------------------------------- run

    def run(self, program: Program, *, dtype: str = "bf16",
            trace: bool = False) -> SimResult:
        """Simulate one execution of ``program``; returns timing + counters.

        Routes through the lowered-IR fast path (:mod:`repro.sim.lowered`)
        by default — bit-identical to the interpreter, several times
        faster. Tracing runs and ``REPRO_FASTSIM=0`` use the interpreter
        (:meth:`run_interpreted`), the reference implementation.
        """
        if program.generation != self.chip.generation:
            raise ValueError(
                f"program was compiled for generation {program.generation}; "
                f"{self.chip.name} is generation {self.chip.generation}. "
                "Recompile (Lesson 2) rather than carrying binaries.")
        if not self.chip.supports_dtype(dtype):
            raise ValueError(f"{self.chip.name} does not support {dtype}")
        if not trace and fastsim_enabled():
            # Lazy import: the engine layer sits above the simulator (it
            # caches lowerings process-wide), mirroring how engine sweeps
            # import core lazily in the other direction.
            from repro.engine.lowered import lowered_program
            return self.replay.run(lowered_program(program, self.chip),
                                   dtype=dtype)
        return self.run_interpreted(program, dtype=dtype, trace=trace)

    def run_interpreted(self, program: Program, *, dtype: str = "bf16",
                        trace: bool = False) -> SimResult:
        """The legacy per-instruction interpreter (reference timings)."""
        if program.generation != self.chip.generation:
            raise ValueError(
                f"program was compiled for generation {program.generation}; "
                f"{self.chip.name} is generation {self.chip.generation}. "
                "Recompile (Lesson 2) rather than carrying binaries.")
        if not self.chip.supports_dtype(dtype):
            raise ValueError(f"{self.chip.name} does not support {dtype}")
        memory = MemorySystem(self.chip)
        engines: dict[str, list[DmaEngine]] = {}
        for level in memory.levels():
            if level.name == "vmem":
                continue
            engines[level.name] = [DmaEngine(memory, level.name)
                                   for _ in range(_ENGINES_PER_LEVEL)]

        counters = PerfCounters()
        log = Trace() if trace else None
        state = _RunState()
        elem_bytes = 1 if dtype == "int8" else 2

        issue = 0
        halted = False

        for bundle in program.bundles:
            if halted:
                break
            counters.bundles += 1
            bundle_issue = issue
            for inst in bundle.instructions:
                issue = self._execute(
                    inst, issue, memory, engines, state, counters, log,
                    elem_bytes)
                if inst.opcode is Opcode.HALT:
                    halted = True
                    break
            issue = max(issue, bundle_issue + 1)

        dma_end = max(
            (engine.busy_until for pool in engines.values() for engine in pool),
            default=0)
        total = max(issue, state.mxu_free, state.vpu_free, dma_end,
                    max(state.flags.values(), default=0))
        counters.cycles = max(1, total)
        counters.dma_busy_cycles = sum(
            engine.busy_cycles() for pool in engines.values() for engine in pool)
        for level, moved in memory.traffic().items():
            counters.add_bytes(level, moved)

        report = build_report(self.chip, program.name, counters, dtype)
        return SimResult(report=report, counters=counters, trace=log)

    # ------------------------------------------------------------- internals

    def _execute(self, inst: Instruction, issue: int, memory: MemorySystem,
                 engines: dict[str, list[DmaEngine]], state: _RunState,
                 counters: PerfCounters, log: Optional[Trace],
                 elem_bytes: int) -> int:
        """Execute one instruction; returns the updated issue cycle."""
        op = inst.opcode

        if op is Opcode.SYNC_WAIT:
            target = state.flags.get(inst.args[0], 0)
            if target > issue:
                counters.sync_stall_cycles += target - issue
                if log:
                    log.record(TraceEvent(issue, target, "sync", "sync.wait",
                                          f"flag {inst.args[0]}"))
                return target
            return issue

        if op is Opcode.SYNC_SET:
            state.flags[inst.args[0]] = issue
            return issue

        if op in (Opcode.DMA_IN, Opcode.DMA_OUT):
            level_name = LEVEL_NAMES[inst.args[0]]
            num_bytes = inst.args[1]
            flag = inst.args[2]
            pool = engines.get(level_name)
            if pool is None:
                raise ValueError(
                    f"{self.chip.name} has no DMA path to {level_name!r}")
            engine = min(pool, key=lambda e: e.busy_until)
            active = sum(1 for e in pool if e.busy_until > issue)
            transfer = engine.issue(num_bytes, issue,
                                    contention=max(1, active))
            state.flags[flag] = transfer.end_cycle
            if log:
                log.record(TraceEvent(transfer.start_cycle, transfer.end_cycle,
                                      f"dma.{level_name}", op.mnemonic,
                                      f"{num_bytes} B"))
            return issue

        if op is Opcode.MXM:
            m, k, n = inst.args
            timing = self.mxu.matmul(m, k, n)
            start = max(issue, state.mxu_free)
            state.mxu_free = start + timing.cycles
            counters.macs += timing.macs
            counters.mxu_busy_cycles += timing.cycles
            # Operand/result traffic through VMEM.
            memory.record_traffic(
                "vmem", (m * k + k * n + m * n) * elem_bytes)
            if log:
                log.record(TraceEvent(start, state.mxu_free, "mxu", "mxm",
                                      f"{m}x{k}x{n}"))
            return issue

        if op is Opcode.MXM_LOADW or op is Opcode.MXM_TRANSPOSE:
            a, b = inst.args
            cycles = max(1, a)
            start = max(issue, state.mxu_free)
            state.mxu_free = start + cycles
            counters.mxu_busy_cycles += cycles
            return issue

        if op in VECTOR_OP_CLASS:
            return self._execute_vector(inst, issue, memory, state, counters,
                                        log, elem_bytes)

        if op is Opcode.HALT:
            return issue

        # Scalar ops: single-cycle.
        counters.scalar_ops += 1
        return issue

    def _execute_vector(self, inst: Instruction, issue: int,
                        memory: MemorySystem, state: _RunState,
                        counters: PerfCounters, log: Optional[Trace],
                        elem_bytes: int) -> int:
        op_class = VECTOR_OP_CLASS[inst.opcode]
        if inst.opcode is Opcode.VREDUCE:
            elements, axis_len = inst.args
            timing = self.vpu.reduction(elements, max(1, axis_len))
        else:
            elements = inst.args[0]
            timing = self.vpu.elementwise(op_class, elements)
        start = max(issue, state.vpu_free)
        state.vpu_free = start + timing.cycles
        counters.vector_alu_ops += timing.alu_ops
        counters.vpu_busy_cycles += timing.cycles
        memory.record_traffic("vmem", 2 * elements * elem_bytes)
        if log:
            log.record(TraceEvent(start, state.vpu_free, "vpu",
                                  inst.opcode.mnemonic, f"{elements} elems"))
        return issue

    # ---------------------------------------------------------- model loading

    def weight_load_seconds(self, weight_bytes: float,
                            destination: str = "cmem") -> float:
        """Time to stage a model's weights from HBM at deployment/swap time.

        Loading into CMEM reads HBM once (HBM bandwidth bound); ``"hbm"``
        destination means no staging (weights already there) and costs 0.
        """
        if weight_bytes < 0:
            raise ValueError("bytes must be non-negative")
        if destination == "hbm":
            return 0.0
        if destination != "cmem":
            raise ValueError("destination must be 'cmem' or 'hbm'")
        if not self.chip.has_cmem:
            raise ValueError(f"{self.chip.name} has no CMEM")
        return weight_bytes / self.chip.hbm_bw
