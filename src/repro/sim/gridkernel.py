"""Vectorized grid-replay kernel: one batched pass over many candidates.

:class:`~repro.sim.lowered.FastReplay` already makes a single (chip,
program) evaluation cheap, but a DSE sweep replays *grids*: the same few
compiled programs against dozens of chip variants that differ only in
clock, MXU count, or CMEM provisioning. The per-point path re-lowers and
re-replays every pair. This module factors one program's replay into the
pieces that actually vary across a grid and shares everything else:

* **structure** (:func:`_build_struct`) — one columnar pass per distinct
  ``Program.signature()``: numpy position/shape tables for MXU and VPU
  rows, the short list of *hard* rows (``sync.wait`` / ``sync.set`` /
  DMA — the only rows that move the issue cursor or touch flags), bundle
  run-lengths between them, and the structure-constant totals (MACs,
  scalar ops, VMEM elements, DMA bytes per level). Real programs have
  tens of hard rows among thousands;
* **pricing** (per ``(signature, unit geometry)``) — MXU/VPU cycle costs
  gathered from grid-wide per-shape memos, so a shape is priced once per
  geometry for the whole grid, not once per point;
* **scan** (per ``(signature, DMA/clock configuration)``) — a sequential
  pass over the hard rows only, reproducing the replay loop's exact
  integer/float expressions for bundle ratchets, sync stalls, and DMA
  engine pools.

Unit finish times are then reconstructed in closed form: the issue cycle
at every MXU/VPU row is a gather over the scan's per-hard-row state plus
a bundle run-length offset, and a busy unit's final free time is
``max(issue_i + suffix_cost_i)`` — the max-plus form of the sequential
recurrence. Per-point dtype scaling is a byte multiplier, exactly as in
replay. The result is **bit-identical** to per-point
:class:`FastReplay` (the reference; asserted in ``tests/test_gridsim.py``
and ``benchmarks/bench_engine.py``).

``REPRO_GRIDSIM=0`` (or :func:`gridsim_disabled`) opts out, mirroring
``REPRO_FASTSIM``: :func:`evaluate_grid` then runs the per-point replay
loop. The same fallback covers a missing numpy and the (theoretical)
program whose vector-ALU float accumulation the batched integer sum
cannot reproduce exactly.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.arch.chip import ChipConfig
from repro.arch.memory import MemorySystem
from repro.arch.mxu import MxuModel
from repro.arch.vpu import VpuModel
from repro.isa.instructions import LEVEL_NAMES, Opcode, VECTOR_OP_CLASS
from repro.isa.program import Program
from repro.sim.lowered import DMA_OVERHEAD_CYCLES, ENGINES_PER_LEVEL
from repro.sim.perf import PerfCounters, build_report

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None

#: ``REPRO_GRIDSIM=0`` (or ``off``) routes grid evaluation through the
#: per-point replay reference; anything else uses the batched kernel.
ENV_GRIDSIM = "REPRO_GRIDSIM"

#: Float vector-ALU totals above this are not guaranteed to match the
#: interpreter's sequential accumulation bit for bit (every partial sum
#: must be an exactly-representable multiple of 0.5).
_ALU_EXACT_LIMIT = 2 ** 52

# Hard-row types (the only rows the sequential scan must visit).
_H_WAIT = 0
_H_SET = 1
_H_DMA = 2

_gridsim_off_depth = 0


def gridsim_enabled() -> bool:
    """Whether grid evaluation uses the batched kernel (vs per-point)."""
    if _gridsim_off_depth:
        return False
    return os.environ.get(ENV_GRIDSIM, "").lower() not in ("0", "off")


@contextmanager
def gridsim_disabled() -> Iterator[None]:
    """Force per-point replay (reference timings, benchmarks)."""
    global _gridsim_off_depth
    _gridsim_off_depth += 1
    try:
        yield
    finally:
        _gridsim_off_depth -= 1


# ------------------------------------------------------------------- stats

@dataclass
class GridKernelStats:
    """Work the kernel actually did (vs shared) across a process."""

    batches: int = 0           # evaluate_grid calls that ran batched
    points: int = 0            # grid points requested
    structs: int = 0           # columnar structure tables built
    pricings: int = 0          # (structure, unit-geometry) pricing passes
    scans: int = 0             # (structure, DMA/clock) hard-row scans
    fallback_points: int = 0   # points evaluated by per-point replay


_STATS = GridKernelStats()


def grid_kernel_stats() -> GridKernelStats:
    return _STATS


# ------------------------------------------------------------------ points

@dataclass(frozen=True)
class GridPoint:
    """One (program, chip, dtype) evaluation in a batched grid."""

    program: Program
    chip: ChipConfig
    dtype: str = "bf16"


# ----------------------------------------------------------- chip grouping

@dataclass(frozen=True)
class _ChipInfo:
    """Everything replay derives from the chip, pre-split by role."""

    level_names: tuple
    pool_levels: tuple
    pool_set: frozenset
    mxu_key: tuple             # (mxu_dim, mxus_per_core)
    vpu_key: tuple             # (vpu_lanes, vpu_sublanes)
    scan_key: tuple            # (pool_levels, bandwidths, latencies, clock)
    bandwidths: tuple
    latencies: tuple
    clock_hz: float


_CHIP_INFO: Dict[ChipConfig, _ChipInfo] = {}


def _chip_info(chip: ChipConfig) -> _ChipInfo:
    info = _CHIP_INFO.get(chip)
    if info is None:
        memory = MemorySystem(chip)
        level_names = tuple(level.name for level in memory.levels())
        pool_levels = tuple(n for n in level_names if n != "vmem")
        bandwidths = tuple(memory.level(n).bandwidth for n in pool_levels)
        latencies = tuple(memory.level(n).latency_cycles
                          for n in pool_levels)
        info = _ChipInfo(
            level_names=level_names,
            pool_levels=pool_levels,
            pool_set=frozenset(pool_levels),
            mxu_key=(chip.mxu_dim, chip.mxus_per_core),
            vpu_key=(chip.vpu_lanes, chip.vpu_sublanes),
            scan_key=(pool_levels, bandwidths, latencies, chip.clock_hz),
            bandwidths=bandwidths,
            latencies=latencies,
            clock_hz=chip.clock_hz,
        )
        _CHIP_INFO[chip] = info
    return info


# -------------------------------------------------------------- structure

@dataclass
class _Struct:
    """One program's replay-relevant structure, chip-independent.

    MXU/VPU rows carry (preceding hard-row index, bundle run-length) so
    their issue cycles can be reconstructed from any scan's per-hard-row
    state; hard rows carry the bundle run-length *before* them so the
    scan can apply bundle ratchets in closed form.
    """

    name: str
    generation: int
    n_flags: int
    bundles: int               # bundle markers before HALT
    tail_bundles: int          # bundles after the last hard row
    scalar_ops: int
    macs: int                  # structure constant: sum of m*k*n
    vmem_elements: int         # structure constant: MXM + vector elements
    dma_bytes: Dict[str, int]  # structure constant: DMA bytes per level
    dma_levels: tuple          # distinct DMA levels, first-occurrence order
    shapes: tuple              # unique MXM (m, k, n)
    vecops: tuple              # unique vector ops, as pricing descriptors
    # Per-MXU-row columns (includes mxm.loadw/transpose as fixed costs):
    mxu_shape: "np.ndarray"    # index into shapes, -1 for fixed-cost rows
    mxu_fixed: "np.ndarray"    # cycles for fixed rows, 0 otherwise
    mxu_hidx: "np.ndarray"     # preceding hard-row index (-1: none)
    mxu_b: "np.ndarray"        # bundles since that hard row
    # Per-VPU-row columns:
    vec_id: "np.ndarray"       # index into vecops
    vec_hidx: "np.ndarray"
    vec_b: "np.ndarray"
    # Hard rows (parallel lists; tiny):
    h_type: list               # _H_WAIT / _H_SET / _H_DMA
    h_arg: list                # flag id (wait/set) or bytes (dma)
    h_flag: list               # dma completion flag (0 otherwise)
    h_level: list              # dma level name (None otherwise)
    h_nb: list                 # bundles since the previous hard row
    # Derived caches, filled lazily per chip grouping:
    mxu_priced: dict = field(default_factory=dict)
    vpu_priced: dict = field(default_factory=dict)
    scans: dict = field(default_factory=dict)
    issues: dict = field(default_factory=dict)   # scan_key -> (I_mxu, I_vec)
    finals: dict = field(default_factory=dict)   # (unit, price, scan) -> int
    pool_ids: dict = field(default_factory=dict)  # pool_levels -> list


_STRUCTS: Dict[tuple, _Struct] = {}

# Grid-wide per-shape pricing memos (Tentpole: priced once per geometry
# across the whole grid, not once per point).
_MXM_PRICE: Dict[tuple, int] = {}            # (mxu_key, (m,k,n)) -> cycles
_VEC_PRICE: Dict[tuple, tuple] = {}          # (vpu_key, vecop) -> (cyc, alu2)
_MXU_MODELS: Dict[tuple, MxuModel] = {}
_VPU_MODELS: Dict[tuple, VpuModel] = {}


def clear_grid_kernel() -> None:
    """Drop every kernel cache and zero the stats (tests, cold benches)."""
    global _STATS
    _STRUCTS.clear()
    _MXM_PRICE.clear()
    _VEC_PRICE.clear()
    _MXU_MODELS.clear()
    _VPU_MODELS.clear()
    _CHIP_INFO.clear()
    _STATS = GridKernelStats()


def _build_struct(program: Program) -> _Struct:
    """One columnar pass over the program (mirrors ``lower_program``'s
    row emission exactly, including static truncation at HALT)."""
    shapes: Dict[tuple, int] = {}
    vecops: Dict[tuple, int] = {}
    mxu_shape: List[int] = []
    mxu_fixed: List[int] = []
    mxu_hidx: List[int] = []
    mxu_b: List[int] = []
    vec_id: List[int] = []
    vec_hidx: List[int] = []
    vec_b: List[int] = []
    h_type: List[int] = []
    h_arg: List[int] = []
    h_flag: List[int] = []
    h_level: List[Optional[str]] = []
    h_nb: List[int] = []
    dma_bytes: Dict[str, int] = {}
    dma_levels: List[str] = []

    n_flags = 0
    bundles = 0
    scalar_ops = 0
    macs = 0
    vmem_elements = 0
    last_hard = -1
    bundles_at_last_hard = 0
    halted = False

    for bundle in program.bundles:
        if halted:
            break
        bundles += 1
        for inst in bundle.instructions:
            op = inst.opcode
            if op is Opcode.MXM:
                shape_id = shapes.setdefault(inst.args, len(shapes))
                m, k, n = inst.args
                macs += m * k * n
                vmem_elements += m * k + k * n + m * n
                mxu_shape.append(shape_id)
                mxu_fixed.append(0)
                mxu_hidx.append(last_hard)
                mxu_b.append(bundles - bundles_at_last_hard)
            elif op in VECTOR_OP_CLASS:
                if op is Opcode.VREDUCE:
                    elements, axis_len = inst.args
                    descriptor = ("reduce", elements, max(1, axis_len))
                else:
                    descriptor = ("elementwise", VECTOR_OP_CLASS[op],
                                  inst.args[0])
                    elements = inst.args[0]
                vec_id.append(vecops.setdefault(descriptor, len(vecops)))
                vmem_elements += 2 * elements
                vec_hidx.append(last_hard)
                vec_b.append(bundles - bundles_at_last_hard)
            elif op is Opcode.DMA_IN or op is Opcode.DMA_OUT:
                level_name = LEVEL_NAMES[inst.args[0]]
                flag = inst.args[2]
                if flag >= n_flags:
                    n_flags = flag + 1
                if level_name not in dma_bytes:
                    dma_bytes[level_name] = 0
                    dma_levels.append(level_name)
                dma_bytes[level_name] += inst.args[1]
                h_type.append(_H_DMA)
                h_arg.append(inst.args[1])
                h_flag.append(flag)
                h_level.append(level_name)
                h_nb.append(bundles - bundles_at_last_hard)
                bundles_at_last_hard = bundles
                last_hard += 1
            elif op is Opcode.SYNC_WAIT or op is Opcode.SYNC_SET:
                flag = inst.args[0]
                if flag >= n_flags:
                    n_flags = flag + 1
                h_type.append(_H_WAIT if op is Opcode.SYNC_WAIT else _H_SET)
                h_arg.append(flag)
                h_flag.append(0)
                h_level.append(None)
                h_nb.append(bundles - bundles_at_last_hard)
                bundles_at_last_hard = bundles
                last_hard += 1
            elif op is Opcode.MXM_LOADW or op is Opcode.MXM_TRANSPOSE:
                mxu_shape.append(-1)
                mxu_fixed.append(max(1, inst.args[0]))
                mxu_hidx.append(last_hard)
                mxu_b.append(bundles - bundles_at_last_hard)
            elif op is Opcode.HALT:
                halted = True
                break
            else:
                scalar_ops += 1

    as_i64 = lambda xs: np.asarray(xs, dtype=np.int64)  # noqa: E731
    return _Struct(
        name=program.name,
        generation=program.generation,
        n_flags=n_flags,
        bundles=bundles,
        tail_bundles=bundles - bundles_at_last_hard,
        scalar_ops=scalar_ops,
        macs=macs,
        vmem_elements=vmem_elements,
        dma_bytes=dma_bytes,
        dma_levels=tuple(dma_levels),
        shapes=tuple(shapes),
        vecops=tuple(vecops),
        mxu_shape=as_i64(mxu_shape),
        mxu_fixed=as_i64(mxu_fixed),
        mxu_hidx=as_i64(mxu_hidx),
        mxu_b=as_i64(mxu_b),
        vec_id=as_i64(vec_id),
        vec_hidx=as_i64(vec_hidx),
        vec_b=as_i64(vec_b),
        h_type=h_type,
        h_arg=h_arg,
        h_flag=h_flag,
        h_level=h_level,
        h_nb=h_nb,
    )


# ---------------------------------------------------------------- pricing

@dataclass(frozen=True)
class _Priced:
    """Per-(structure, unit-geometry) cycle costs for one unit."""

    suffix: Optional["np.ndarray"]   # suffix_i = sum of costs from row i on
    busy: int                        # total busy cycles (sum of costs)
    alu2_total: Optional[int]        # VPU only: 2 * vector_alu_ops (exact)


def _mxu_priced(struct: _Struct, info: _ChipInfo) -> _Priced:
    priced = struct.mxu_priced.get(info.mxu_key)
    if priced is not None:
        return priced
    model = _MXU_MODELS.get(info.mxu_key)
    shape_cycles = []
    for shape in struct.shapes:
        key = (info.mxu_key, shape)
        cycles = _MXM_PRICE.get(key)
        if cycles is None:
            if model is None:
                raise RuntimeError("pricing a struct with no chip seen")
            cycles = model.matmul(*shape).cycles
            _MXM_PRICE[key] = cycles
        shape_cycles.append(cycles)
    if struct.mxu_shape.size:
        table = np.asarray(shape_cycles + [0], dtype=np.int64)
        costs = np.where(struct.mxu_shape >= 0, table[struct.mxu_shape],
                         struct.mxu_fixed)
        suffix = np.cumsum(costs[::-1])[::-1]
        priced = _Priced(suffix=suffix, busy=int(costs.sum()),
                         alu2_total=None)
    else:
        priced = _Priced(suffix=None, busy=0, alu2_total=None)
    struct.mxu_priced[info.mxu_key] = priced
    _STATS.pricings += 1
    return priced


def _vpu_priced(struct: _Struct, info: _ChipInfo) -> _Priced:
    priced = struct.vpu_priced.get(info.vpu_key)
    if priced is not None:
        return priced
    model = _VPU_MODELS.get(info.vpu_key)
    cycles_table = []
    alu2_table: List[Optional[int]] = []
    for vecop in struct.vecops:
        key = (info.vpu_key, vecop)
        entry = _VEC_PRICE.get(key)
        if entry is None:
            if model is None:
                raise RuntimeError("pricing a struct with no chip seen")
            if vecop[0] == "reduce":
                timing = model.reduction(vecop[1], vecop[2])
            else:
                timing = model.elementwise(vecop[1], vecop[2])
            alu2 = timing.alu_ops * 2.0
            # The replay accumulates alu_ops as sequential float adds; a
            # doubled-integer sum reproduces it exactly only when every
            # term is a representable multiple of 0.5.
            exact = (alu2 == int(alu2) and abs(alu2) <= _ALU_EXACT_LIMIT)
            entry = (timing.cycles, int(alu2) if exact else None)
            _VEC_PRICE[key] = entry
        cycles_table.append(entry[0])
        alu2_table.append(entry[1])
    if struct.vec_id.size:
        if any(a is None for a in alu2_table):
            priced = _Priced(suffix=None, busy=0, alu2_total=None)
            struct.vpu_priced[info.vpu_key] = priced
            return priced
        costs = np.asarray(cycles_table, dtype=np.int64)[struct.vec_id]
        alu2 = np.asarray(alu2_table, dtype=np.int64)[struct.vec_id]
        total_alu2 = int(alu2.sum())
        if total_alu2 > _ALU_EXACT_LIMIT:
            priced = _Priced(suffix=None, busy=0, alu2_total=None)
        else:
            suffix = np.cumsum(costs[::-1])[::-1]
            priced = _Priced(suffix=suffix, busy=int(costs.sum()),
                             alu2_total=total_alu2)
    else:
        priced = _Priced(suffix=None, busy=0, alu2_total=0)
    struct.vpu_priced[info.vpu_key] = priced
    _STATS.pricings += 1
    return priced


# ------------------------------------------------------------------- scan

@dataclass(frozen=True)
class _Scan:
    """Sequential state from one pass over the hard rows."""

    issue_end: int
    sync_stall: int
    dma_end: int
    flag_max: int
    dma_busy: int
    issue_h: list              # issue cycle after each hard row
    bi_h: list                 # last bundle's issue cycle after each row


def _pool_ids(struct: _Struct, info: _ChipInfo) -> list:
    ids = struct.pool_ids.get(info.pool_levels)
    if ids is None:
        index = {name: i for i, name in enumerate(info.pool_levels)}
        ids = [index[level] if level is not None else -1
               for level in struct.h_level]
        struct.pool_ids[info.pool_levels] = ids
    return ids


def _scan(struct: _Struct, info: _ChipInfo) -> _Scan:
    scan = struct.scans.get(info.scan_key)
    if scan is not None:
        return scan
    pool_ids = _pool_ids(struct, info)
    bandwidths = info.bandwidths
    latencies = info.latencies
    clock_hz = info.clock_hz
    overhead = DMA_OVERHEAD_CYCLES
    ceil = math.ceil

    flags = [0] * struct.n_flags
    busy = [[0] * ENGINES_PER_LEVEL for _ in info.pool_levels]
    issue = 0
    bi = -1                    # last bundle's issue cycle (-1: none yet)
    stall = 0
    dma_busy = 0
    issue_h: List[int] = []
    bi_h: List[int] = []

    for i, h_type in enumerate(struct.h_type):
        nb = struct.h_nb[i]
        if nb:
            # nb consecutive bundle markers with no issue change between
            # them collapse to one ratchet plus nb-1 increments (the
            # first-ever marker has bi == -1, so the ratchet is a no-op —
            # exactly replay's ``in_bundle`` special case).
            nxt = bi + 1
            if nxt > issue:
                issue = nxt
            issue += nb - 1
            bi = issue
        if h_type == _H_DMA:
            pool = busy[pool_ids[i]]
            best = 0
            best_free = pool[0]
            for engine in range(1, ENGINES_PER_LEVEL):
                free_at = pool[engine]
                if free_at < best_free:
                    best = engine
                    best_free = free_at
            active = 0
            for free_at in pool:
                if free_at > issue:
                    active += 1
            contention = active if active > 1 else 1
            # Exact expression from DmaEngine.issue (bit-identity).
            streaming_s = struct.h_arg[i] * contention / bandwidths[pool_ids[i]]
            duration = (overhead + latencies[pool_ids[i]]
                        + ceil(streaming_s * clock_hz))
            start = best_free if best_free > issue else issue
            end = start + duration
            pool[best] = end
            flags[struct.h_flag[i]] = end
            dma_busy += duration
        elif h_type == _H_WAIT:
            target = flags[struct.h_arg[i]]
            if target > issue:
                stall += target - issue
                issue = target
        else:  # _H_SET
            flags[struct.h_arg[i]] = issue
        issue_h.append(issue)
        bi_h.append(bi)

    if struct.tail_bundles:
        nxt = bi + 1
        if nxt > issue:
            issue = nxt
        issue += struct.tail_bundles - 1
        bi = issue
    if struct.bundles:                    # replay's trailing ratchet
        nxt = bi + 1
        if nxt > issue:
            issue = nxt

    scan = _Scan(
        issue_end=issue,
        sync_stall=stall,
        dma_end=max((f for pool in busy for f in pool), default=0),
        flag_max=max(flags, default=0),
        dma_busy=dma_busy,
        issue_h=issue_h,
        bi_h=bi_h,
    )
    struct.scans[info.scan_key] = scan
    _STATS.scans += 1
    return scan


def _issue_at_rows(struct: _Struct, info: _ChipInfo, scan: _Scan) -> tuple:
    """Issue cycle at every MXU row and every VPU row under ``scan``.

    A unit row's issue cycle is the issue after its preceding hard row,
    advanced by the bundle markers in between: 0 markers leave it, b
    markers ratchet once off the last bundle and add b-1.
    """
    cached = struct.issues.get(info.scan_key)
    if cached is not None:
        return cached
    # Sentinel slot 0 encodes "no preceding hard row": issue 0, bi -1.
    issue_h = np.asarray([0] + scan.issue_h, dtype=np.int64)
    bi_h = np.asarray([-1] + scan.bi_h, dtype=np.int64)

    def reconstruct(hidx, b):
        if not hidx.size:
            return None
        base = issue_h[hidx + 1]
        ratchet = np.maximum(base, bi_h[hidx + 1] + 1) + b - 1
        return np.where(b == 0, base, ratchet)

    issues = (reconstruct(struct.mxu_hidx, struct.mxu_b),
              reconstruct(struct.vec_hidx, struct.vec_b))
    struct.issues[info.scan_key] = issues
    return issues


def _unit_final(struct: _Struct, unit: str, price_key: tuple,
                priced: _Priced, issues, scan_key: tuple) -> int:
    """Final free time of one pipelined unit, in max-plus closed form.

    The sequential recurrence ``free = max(free, issue_i) + cost_i``
    (``free`` starting at 0, every ``issue_i >= 0``) has final value
    ``max_i(issue_i + sum_{j>=i} cost_j)``.
    """
    key = (unit, price_key, scan_key)
    final = struct.finals.get(key)
    if final is None:
        final = int((issues + priced.suffix).max()) if issues is not None \
            else 0
        struct.finals[key] = final
    return final


# ------------------------------------------------------------- evaluation

def _replay_point(point: GridPoint):
    """Per-point reference path (shared lowered cache + FastReplay)."""
    from repro.engine.lowered import lowered_program
    from repro.sim.lowered import FastReplay
    return FastReplay(point.chip).run(
        lowered_program(point.program, point.chip), dtype=point.dtype)


def _validate(point: GridPoint) -> None:
    """The replay path's errors, raised before any batched work."""
    chip, program = point.chip, point.program
    if program.generation != chip.generation:
        raise ValueError(
            f"program was compiled for generation {program.generation}; "
            f"{chip.name} is generation {chip.generation}. "
            "Recompile (Lesson 2) rather than carrying binaries.")
    if not chip.supports_dtype(point.dtype):
        raise ValueError(f"{chip.name} does not support {point.dtype}")


def evaluate_grid(points: Sequence[GridPoint]) -> list:
    """Evaluate every point; returns ``SimResult`` objects in input order.

    Bit-identical to ``[FastReplay(p.chip).run(lower_program(p.program,
    p.chip), dtype=p.dtype) for p in points]`` — the per-point loop the
    kernel replaces — including the errors it raises and the order it
    raises them in. Falls back to exactly that loop when the kernel is
    disabled (``REPRO_GRIDSIM=0``) or numpy is unavailable.
    """
    from repro.sim.core import SimResult  # local: core imports our sibling

    points = list(points)
    if not points:
        return []
    if np is None or not gridsim_enabled():
        _STATS.fallback_points += len(points)
        return [_replay_point(p) for p in points]

    _STATS.batches += 1
    _STATS.points += len(points)
    # Signature tuples hold thousands of enum members, and tuples don't
    # cache their hash — resolve each distinct program *object* against
    # the signature-keyed cache once per batch, not once per point.
    struct_by_pid: Dict[int, _Struct] = {}
    results = []
    for point in points:
        _validate(point)
        chip = point.chip
        info = _chip_info(chip)
        struct = struct_by_pid.get(id(point.program))
        if struct is None:
            sig = point.program.signature()
            struct = _STRUCTS.get(sig)
            if struct is None:
                struct = _build_struct(point.program)
                _STRUCTS[sig] = struct
                _STATS.structs += 1
            struct_by_pid[id(point.program)] = struct
        for level in struct.dma_levels:   # parity with lower_program
            if level not in info.pool_set:
                raise ValueError(
                    f"{chip.name} has no DMA path to {level!r}")
        if info.mxu_key not in _MXU_MODELS:
            _MXU_MODELS[info.mxu_key] = MxuModel(chip)
        if info.vpu_key not in _VPU_MODELS:
            _VPU_MODELS[info.vpu_key] = VpuModel(chip)

        mxu = _mxu_priced(struct, info)
        vpu = _vpu_priced(struct, info)
        if vpu.alu2_total is None:
            # Vector-ALU accumulation not exactly reproducible in batch.
            _STATS.fallback_points += 1
            results.append(_replay_point(point))
            continue
        scan = _scan(struct, info)
        issues_mxu, issues_vec = _issue_at_rows(struct, info, scan)
        f_mxu = _unit_final(struct, "mxu", info.mxu_key, mxu, issues_mxu,
                            info.scan_key)
        f_vpu = _unit_final(struct, "vpu", info.vpu_key, vpu, issues_vec,
                            info.scan_key)

        total = max(scan.issue_end, f_mxu, f_vpu, scan.dma_end,
                    scan.flag_max)
        elem_bytes = 1 if point.dtype == "int8" else 2
        counters = PerfCounters(
            cycles=max(1, int(total)),
            bundles=struct.bundles,
            macs=struct.macs,
            vector_alu_ops=vpu.alu2_total / 2.0,
            scalar_ops=struct.scalar_ops,
            mxu_busy_cycles=mxu.busy,
            vpu_busy_cycles=vpu.busy,
            dma_busy_cycles=scan.dma_busy,
            sync_stall_cycles=scan.sync_stall,
        )
        for name in info.level_names:
            if name == "vmem":
                moved = struct.vmem_elements * elem_bytes
            else:
                moved = struct.dma_bytes.get(name, 0)
            counters.add_bytes(name, float(moved))
        report = build_report(chip, struct.name, counters, point.dtype)
        results.append(SimResult(report=report, counters=counters,
                                 trace=None))
    return results
