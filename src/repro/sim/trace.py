"""Execution tracing: per-instruction timeline for debugging and tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One instruction's execution window on one unit."""

    cycle_start: int
    cycle_end: int
    unit: str        # "mxu", "vpu", "dma.hbm", "dma.cmem", "scalar", "sync"
    mnemonic: str
    detail: str = ""

    @property
    def duration(self) -> int:
        return self.cycle_end - self.cycle_start


@dataclass
class Trace:
    """Bounded event log; recording stops silently at ``capacity``.

    The cap keeps long serving simulations from accumulating gigabytes of
    events; ``truncated`` tells you when it hit.
    """

    capacity: int = 100_000
    events: List[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    def record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.capacity:
            self.truncated = True
            return
        self.events.append(event)

    def by_unit(self, unit: str) -> List[TraceEvent]:
        return [e for e in self.events if e.unit == unit]

    def busy_cycles(self, unit: str) -> int:
        return sum(e.duration for e in self.by_unit(unit))

    def last_cycle(self) -> int:
        return max((e.cycle_end for e in self.events), default=0)

    def render(self, limit: int = 40) -> str:
        """A human-readable timeline of the first ``limit`` events."""
        lines = [f"{'cycle':>10}  {'unit':<9} event"]
        for event in self.events[:limit]:
            lines.append(
                f"{event.cycle_start:>10}  {event.unit:<9} "
                f"{event.mnemonic} {event.detail} (+{event.duration})")
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
