"""Lowered timing IR + fast replay kernel for the TensorCore simulator.

:class:`~repro.sim.core.TensorCoreSim`'s interpreter walks ``Instruction``
dataclasses and prices every MXM/vector op through the unit models on each
run — enum dispatch, attribute access, and :meth:`MxuModel.matmul` calls
dominate cold evaluation. This module splits that work in two:

* :func:`lower_program` — a **one-shot lowering pass** that flattens a
  compiled :class:`~repro.isa.program.Program` into contiguous numeric
  rows (small-int opcode kinds plus pre-priced cycle/MAC/traffic
  operands, no ``Instruction`` objects or enums). Unit timing is memoized
  per distinct shape during the pass, so a program with 4 000 MXMs over a
  dozen tile shapes prices each shape once instead of 4 000 times.
* :class:`FastReplay` — a tight specialized loop over those rows that
  computes **bit-identical** cycle counts, :class:`PerfCounters` fields,
  and per-level byte traffic. Identity holds because replay performs the
  same integer/float operations in the same order as the interpreter
  (DMA durations use the exact expression from
  :meth:`~repro.arch.dma.DmaEngine.issue`); ``tests/test_fastsim.py``
  asserts it across every chip generation, workload, dtype, and batch.

The lowered form is dtype-independent (arithmetic width only scales byte
traffic, applied at replay time), so one lowering serves bf16 and int8
replays. The interpreter remains the reference implementation: set
``REPRO_FASTSIM=0`` (or use :func:`fastsim_disabled`) to route every run
through it, and tracing runs always use it.

Rows are plain tuples ``(kind, a0, a1, a2, f)``; :meth:`LoweredProgram.
arrays` exposes them as numpy columns for vectorized analysis when numpy
is available. The replay loop itself stays sequential because issue/unit
state carries a loop dependency the bit-identity contract cannot break.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.arch.chip import ChipConfig
from repro.arch.memory import MemorySystem
from repro.arch.mxu import MxuModel
from repro.arch.vpu import VpuModel
from repro.isa.instructions import LEVEL_NAMES, Opcode, VECTOR_OP_CLASS
from repro.isa.program import Program
from repro.sim.perf import PerfCounters, build_report

#: Mirrors ``repro.sim.core._ENGINES_PER_LEVEL`` (asserted equal in tests).
ENGINES_PER_LEVEL = 4

#: Mirrors ``DmaEngine``'s default per-transfer descriptor overhead.
DMA_OVERHEAD_CYCLES = 64

#: ``REPRO_FASTSIM=0`` (or ``off``) routes all runs through the legacy
#: interpreter; anything else (including unset) uses lowering + replay.
ENV_FASTSIM = "REPRO_FASTSIM"

# Row kinds. Frequency-ordered so the replay dispatch chain tests the
# common cases first (MXM and bundle markers dominate real programs).
K_MXM = 0          # a0=cycles, a1=macs, a2=vmem operand+result elements
K_BUNDLE = 1       # start-of-bundle marker
K_VECTOR = 2       # a0=cycles, a2=vmem elements moved, f=alu_ops
K_SYNC_WAIT = 3    # a0=flag id
K_SYNC_SET = 4     # a0=flag id
K_DMA = 5          # a0=pool index, a1=bytes, a2=flag id
K_SCALAR = 6       # a0=op count (single-cycle scalar slot ops)
K_MXM_FIXED = 7    # a0=cycles (mxm.loadw / mxm.transpose)
K_HALT = 8

_KIND_NAMES = {
    K_MXM: "mxm", K_BUNDLE: "bundle", K_VECTOR: "vector",
    K_SYNC_WAIT: "sync.wait", K_SYNC_SET: "sync.set", K_DMA: "dma",
    K_SCALAR: "scalar", K_MXM_FIXED: "mxm.fixed", K_HALT: "halt",
}

_fastsim_off_depth = 0


def fastsim_enabled() -> bool:
    """Whether runs default to lowering + replay (vs the interpreter)."""
    if _fastsim_off_depth:
        return False
    return os.environ.get(ENV_FASTSIM, "").lower() not in ("0", "off")


@contextmanager
def fastsim_disabled() -> Iterator[None]:
    """Force the legacy interpreter (reference timings, benchmarks)."""
    global _fastsim_off_depth
    _fastsim_off_depth += 1
    try:
        yield
    finally:
        _fastsim_off_depth -= 1


@dataclass(frozen=True)
class LoweredProgram:
    """A :class:`Program` flattened to numeric rows plus chip constants.

    ``rows`` holds ``(kind, a0, a1, a2, f)`` tuples in issue order —
    integer operands in ``a0..a2``, the only float operand (vector ALU
    ops) in ``f``. Everything chip-dependent that replay needs (DMA pool
    bandwidths/latencies, clock) is baked in, so a lowered program is
    only valid for the chip it was lowered against.
    """

    name: str
    generation: int
    rows: tuple
    n_flags: int
    level_names: tuple          # every memory level (traffic ledger keys)
    pool_levels: tuple          # levels with DMA engine pools, pool order
    pool_bandwidths: tuple      # bytes/s per pool level
    pool_latencies: tuple       # load-use latency cycles per pool level
    clock_hz: float
    dma_overhead: int = DMA_OVERHEAD_CYCLES

    def __len__(self) -> int:
        return len(self.rows)

    def kind_histogram(self) -> dict:
        """Row counts by kind name (debugging / tests)."""
        counts: dict[str, int] = {}
        for row in self.rows:
            name = _KIND_NAMES[row[0]]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def arrays(self):
        """The rows as a dict of numpy column arrays (kinds/a0/a1/a2/f).

        For vectorized analysis over DMA/vector segments; returns None
        when numpy is unavailable so no caller needs a hard dependency.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is baked in
            return None
        kinds, a0, a1, a2, f = (list(c) for c in zip(*self.rows)) \
            if self.rows else ([], [], [], [], [])
        return {
            "kind": np.asarray(kinds, dtype=np.int64),
            "a0": np.asarray(a0, dtype=np.int64),
            "a1": np.asarray(a1, dtype=np.int64),
            "a2": np.asarray(a2, dtype=np.int64),
            "f": np.asarray(f, dtype=np.float64),
        }


def lower_program(program: Program, chip: ChipConfig,
                  mxu: Optional[MxuModel] = None,
                  vpu: Optional[VpuModel] = None) -> LoweredProgram:
    """Flatten ``program`` into a :class:`LoweredProgram` for ``chip``.

    Prices every MXM/vector instruction through the unit models exactly
    once per distinct shape (memoized within the pass), resolves DMA
    levels to pool indices (raising the interpreter's error for levels
    the chip cannot reach), and statically truncates at the first HALT —
    execution is straight-line, so everything after it is dead.
    """
    if program.generation != chip.generation:
        raise ValueError(
            f"program was compiled for generation {program.generation}; "
            f"{chip.name} is generation {chip.generation}. "
            "Recompile (Lesson 2) rather than carrying binaries.")
    mxu = mxu if mxu is not None else MxuModel(chip)
    vpu = vpu if vpu is not None else VpuModel(chip)
    memory = MemorySystem(chip)
    level_names = tuple(level.name for level in memory.levels())
    pool_levels = tuple(n for n in level_names if n != "vmem")
    pool_index = {name: i for i, name in enumerate(pool_levels)}
    pool_bandwidths = tuple(memory.level(n).bandwidth for n in pool_levels)
    pool_latencies = tuple(memory.level(n).latency_cycles for n in pool_levels)

    rows: list[tuple] = []
    append = rows.append
    mxm_memo: dict[tuple, tuple] = {}
    vec_memo: dict[tuple, tuple] = {}
    n_flags = 0
    halted = False

    for bundle in program.bundles:
        if halted:
            break
        append((K_BUNDLE, 0, 0, 0, 0.0))
        for inst in bundle.instructions:
            op = inst.opcode
            if op is Opcode.MXM:
                entry = mxm_memo.get(inst.args)
                if entry is None:
                    m, k, n = inst.args
                    timing = mxu.matmul(m, k, n)
                    entry = (K_MXM, timing.cycles, timing.macs,
                             m * k + k * n + m * n, 0.0)
                    mxm_memo[inst.args] = entry
                append(entry)
            elif op in VECTOR_OP_CLASS:
                key = (op, inst.args)
                entry = vec_memo.get(key)
                if entry is None:
                    if op is Opcode.VREDUCE:
                        elements, axis_len = inst.args
                        timing = vpu.reduction(elements, max(1, axis_len))
                    else:
                        elements = inst.args[0]
                        timing = vpu.elementwise(VECTOR_OP_CLASS[op],
                                                 elements)
                    entry = (K_VECTOR, timing.cycles, 0, 2 * elements,
                             timing.alu_ops)
                    vec_memo[key] = entry
                append(entry)
            elif op is Opcode.DMA_IN or op is Opcode.DMA_OUT:
                level_name = LEVEL_NAMES[inst.args[0]]
                pool = pool_index.get(level_name)
                if pool is None:
                    raise ValueError(
                        f"{chip.name} has no DMA path to {level_name!r}")
                flag = inst.args[2]
                if flag >= n_flags:
                    n_flags = flag + 1
                append((K_DMA, pool, inst.args[1], flag, 0.0))
            elif op is Opcode.SYNC_WAIT or op is Opcode.SYNC_SET:
                flag = inst.args[0]
                if flag >= n_flags:
                    n_flags = flag + 1
                kind = K_SYNC_WAIT if op is Opcode.SYNC_WAIT else K_SYNC_SET
                append((kind, flag, 0, 0, 0.0))
            elif op is Opcode.MXM_LOADW or op is Opcode.MXM_TRANSPOSE:
                append((K_MXM_FIXED, max(1, inst.args[0]), 0, 0, 0.0))
            elif op is Opcode.HALT:
                append((K_HALT, 0, 0, 0, 0.0))
                halted = True
                break
            else:
                # NOP / SADD / SMUL / SBRANCH / SLOOP: single-cycle
                # scalar-slot ops; only the counter observes them.
                append((K_SCALAR, 1, 0, 0, 0.0))

    return LoweredProgram(
        name=program.name,
        generation=program.generation,
        rows=tuple(rows),
        n_flags=n_flags,
        level_names=level_names,
        pool_levels=pool_levels,
        pool_bandwidths=pool_bandwidths,
        pool_latencies=pool_latencies,
        clock_hz=chip.clock_hz,
    )


class FastReplay:
    """Replays :class:`LoweredProgram` rows into a :class:`SimResult`.

    One instance per chip (it owns no per-run state); :meth:`run` is
    reentrant exactly like the interpreter.
    """

    def __init__(self, chip: ChipConfig) -> None:
        self.chip = chip

    def run(self, lowered: LoweredProgram, *, dtype: str = "bf16"):
        """Execute the lowered rows; returns a SimResult (trace=None).

        The loop mirrors ``TensorCoreSim._execute`` operation for
        operation — same max/ceil expressions, same accumulation order —
        which is what makes the result bit-identical.
        """
        from repro.sim.core import SimResult  # local: core imports us

        chip = self.chip
        if lowered.generation != chip.generation:
            raise ValueError(
                f"program was compiled for generation {lowered.generation}; "
                f"{chip.name} is generation {chip.generation}. "
                "Recompile (Lesson 2) rather than carrying binaries.")
        if not chip.supports_dtype(dtype):
            raise ValueError(f"{chip.name} does not support {dtype}")

        elem_bytes = 1 if dtype == "int8" else 2
        flags = [0] * lowered.n_flags
        n_pools = len(lowered.pool_levels)
        busy = [[0] * ENGINES_PER_LEVEL for _ in range(n_pools)]
        pool_busy_cycles = [0] * n_pools
        pool_bytes = [0] * n_pools
        bandwidths = lowered.pool_bandwidths
        latencies = lowered.pool_latencies
        overhead = lowered.dma_overhead
        clock_hz = lowered.clock_hz
        ceil = math.ceil

        issue = 0
        bundle_issue = 0
        in_bundle = False
        bundles = 0
        macs = 0
        scalar_ops = 0
        mxu_busy = 0
        vpu_busy = 0
        sync_stall = 0
        mxu_free = 0
        vpu_free = 0
        vector_alu_ops = 0.0
        vmem_elements = 0

        for kind, a0, a1, a2, f in lowered.rows:
            if kind == K_MXM:
                start = mxu_free if mxu_free > issue else issue
                mxu_free = start + a0
                macs += a1
                mxu_busy += a0
                vmem_elements += a2
            elif kind == K_BUNDLE:
                if in_bundle:
                    nxt = bundle_issue + 1
                    if nxt > issue:
                        issue = nxt
                in_bundle = True
                bundles += 1
                bundle_issue = issue
            elif kind == K_VECTOR:
                start = vpu_free if vpu_free > issue else issue
                vpu_free = start + a0
                vector_alu_ops += f
                vpu_busy += a0
                vmem_elements += a2
            elif kind == K_SYNC_WAIT:
                target = flags[a0]
                if target > issue:
                    sync_stall += target - issue
                    issue = target
            elif kind == K_SYNC_SET:
                flags[a0] = issue
            elif kind == K_DMA:
                pool = busy[a0]
                active = 0
                best = 0
                best_free = pool[0]
                for engine in range(1, ENGINES_PER_LEVEL):
                    free_at = pool[engine]
                    if free_at < best_free:
                        best = engine
                        best_free = free_at
                for free_at in pool:
                    if free_at > issue:
                        active += 1
                contention = active if active > 1 else 1
                # Exact expression from DmaEngine.issue (bit-identity).
                streaming_s = a1 * contention / bandwidths[a0]
                duration = (overhead + latencies[a0]
                            + ceil(streaming_s * clock_hz))
                start = best_free if best_free > issue else issue
                end = start + duration
                pool[best] = end
                flags[a2] = end
                pool_busy_cycles[a0] += duration
                pool_bytes[a0] += a1
            elif kind == K_SCALAR:
                scalar_ops += a0
            elif kind == K_MXM_FIXED:
                start = mxu_free if mxu_free > issue else issue
                mxu_free = start + a0
                mxu_busy += a0
            else:  # K_HALT
                break

        if in_bundle:
            nxt = bundle_issue + 1
            if nxt > issue:
                issue = nxt

        dma_end = max((free_at for pool in busy for free_at in pool),
                      default=0)
        flag_max = max(flags, default=0)
        total = max(issue, mxu_free, vpu_free, dma_end, flag_max)

        counters = PerfCounters(
            cycles=max(1, total),
            bundles=bundles,
            macs=macs,
            vector_alu_ops=vector_alu_ops,
            scalar_ops=scalar_ops,
            mxu_busy_cycles=mxu_busy,
            vpu_busy_cycles=vpu_busy,
            dma_busy_cycles=sum(pool_busy_cycles),
            sync_stall_cycles=sync_stall,
        )
        # Same ledger the interpreter folds in: every level present (0.0
        # when untouched); all contributions are integers, so int sums
        # match the interpreter's sequential float accumulation exactly.
        for name in lowered.level_names:
            moved = 0
            if name == "vmem":
                moved = vmem_elements * elem_bytes
            else:
                for pool, pool_name in enumerate(lowered.pool_levels):
                    if pool_name == name:
                        moved = pool_bytes[pool]
                        break
            counters.add_bytes(name, float(moved))

        report = build_report(chip, lowered.name, counters, dtype)
        return SimResult(report=report, counters=counters, trace=None)


def replay(lowered: LoweredProgram, chip: ChipConfig, *,
           dtype: str = "bf16"):
    """One-shot convenience wrapper over :class:`FastReplay`."""
    return FastReplay(chip).run(lowered, dtype=dtype)
