"""HLO-like graph IR (the compiler-compatibility boundary of Lesson 2).

Models are expressed as computations over tensors in a small XLA-HLO-style
op set. This IR — not the VLIW binary — is the durable interface between
ML frameworks and TPU generations: the same :class:`HloModule` compiles to
any generation whose dtypes it uses, which is what "compiler compatibility
trumps binary compatibility" means operationally.
"""

from repro.graph.shapes import DTYPES, DType, Shape
from repro.graph.ops import OpDef, OPDEFS, opdef
from repro.graph.hlo import HloInstruction, HloModule, GraphBuilder
from repro.graph.evaluator import Evaluator, evaluate_module
from repro.graph.text import HloTextError, module_from_text, module_to_text

__all__ = [
    "DTYPES",
    "DType",
    "Shape",
    "OpDef",
    "OPDEFS",
    "opdef",
    "HloInstruction",
    "HloModule",
    "GraphBuilder",
    "Evaluator",
    "evaluate_module",
    "HloTextError",
    "module_from_text",
    "module_to_text",
]
