"""HLO-style module, instructions, and builder.

An :class:`HloModule` holds instructions in topological (construction)
order; :class:`GraphBuilder` is the fluent API the workload zoo uses to
define models. The module also carries the canonical cost accounting —
FLOPs, weight bytes, minimum activation traffic — that the roofline model,
the compiler, and the TCO math all consume, so there is exactly one place
where "how much work is this network" is defined.

Convention: ``constant`` instructions are model *weights*; ``parameter``
instructions are per-request *inputs*. This distinction drives CMEM
allocation (weights are pinned; inputs stream).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.graph.ops import opdef
from repro.graph.shapes import (
    Shape,
    batched_matmul_result,
    conv2d_result,
    matmul_result,
    pool_result,
    reduce_result,
)


@dataclass(frozen=True)
class HloInstruction:
    """One IR instruction (immutable; identity is its ``uid``)."""

    uid: int
    opcode: str
    shape: Shape
    operands: Tuple["HloInstruction", ...] = ()
    attrs: Tuple[Tuple[str, object], ...] = ()
    name: str = ""

    def attr(self, key: str, default: object = None) -> object:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    @property
    def kind(self) -> str:
        return opdef(self.opcode).kind

    def __str__(self) -> str:
        ops = ", ".join(f"%{o.uid}" for o in self.operands)
        label = self.name or self.opcode
        return f"%{self.uid} = {self.opcode}({ops}) : {self.shape}  # {label}"


class HloModule:
    """A computation: instructions in topological order plus a root."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[HloInstruction] = []
        self._root: Optional[HloInstruction] = None
        # Identity set of members, maintained incrementally: rebuilding it
        # per add() made module construction O(n^2), which dominated cold
        # compile time for deep graphs (the unrolled LSTMs).
        self._member_ids: set = set()

    # ----------------------------------------------------------- construction

    def add(self, opcode: str, shape: Shape,
            operands: Iterable[HloInstruction] = (),
            name: str = "", **attrs: object) -> HloInstruction:
        """Append an instruction; operands must already be in this module."""
        opdef(opcode)  # validate opcode
        operands = tuple(operands)
        for operand in operands:
            if id(operand) not in self._member_ids:
                raise ValueError(
                    f"operand %{operand.uid} is not part of module {self.name!r}")
        inst = HloInstruction(
            uid=len(self.instructions),
            opcode=opcode,
            shape=shape,
            operands=operands,
            attrs=tuple(sorted(attrs.items())),
            name=name,
        )
        self.instructions.append(inst)
        self._member_ids.add(id(inst))
        return inst

    def set_root(self, inst: HloInstruction) -> None:
        if all(inst is not existing for existing in self.instructions):
            raise ValueError("root must be an instruction of this module")
        self._root = inst

    @property
    def root(self) -> HloInstruction:
        if self._root is None:
            if not self.instructions:
                raise ValueError(f"module {self.name!r} is empty")
            return self.instructions[-1]
        return self._root

    # ------------------------------------------------------------- accounting

    @staticmethod
    def instruction_flops(inst: HloInstruction) -> float:
        """Arithmetic operations performed by one instruction."""
        definition = opdef(inst.opcode)
        if definition.kind == "matmul":
            lhs, rhs = inst.operands[0].shape, inst.operands[1].shape
            if inst.opcode == "batched_dot":
                b, m, k = lhs.dims
                return 2.0 * b * m * k * rhs.dims[2]
            m = math.prod(lhs.dims[:-1])
            k = lhs.dims[-1]
            n = rhs.dims[1]
            return 2.0 * m * k * n
        if definition.kind == "conv":
            filt = inst.operands[1].shape
            n, oh, ow, cout = inst.shape.dims
            kh, kw, cin, _ = filt.dims
            return 2.0 * n * oh * ow * cout * kh * kw * cin
        if definition.kind in ("unary", "binary"):
            return definition.flops_per_element * inst.shape.num_elements
        if definition.kind in ("reduce", "pool"):
            return float(inst.operands[0].shape.num_elements)
        if definition.kind == "composite":
            # Pre-expansion estimate; exact counts come from the expansion.
            per_elem = 8.0 if inst.opcode == "softmax" else 10.0
            return per_elem * inst.operands[0].shape.num_elements
        return 0.0  # data / shape / gather

    @staticmethod
    def instruction_weight_bytes(inst: HloInstruction) -> int:
        """Bytes of model weights this instruction *defines* (constants only)."""
        return inst.shape.byte_size if inst.opcode == "constant" else 0

    def total_flops(self) -> float:
        """FLOPs of one forward execution of the module."""
        return sum(self.instruction_flops(i) for i in self.instructions)

    def total_weight_bytes(self) -> int:
        """Total parameter footprint."""
        return sum(self.instruction_weight_bytes(i) for i in self.instructions)

    def io_bytes(self) -> int:
        """Request input + output bytes (parameters in, root out)."""
        inputs = sum(i.shape.byte_size for i in self.instructions
                     if i.opcode == "parameter")
        return inputs + self.root.shape.byte_size

    def min_hbm_traffic_bytes(self) -> float:
        """Compulsory off-chip traffic if nothing is cached on chip.

        Weights read once + request I/O. This is the numerator of the
        operational intensity the roofline experiment plots.
        """
        return float(self.total_weight_bytes() + self.io_bytes())

    def operational_intensity(self) -> float:
        """FLOPs per compulsory HBM byte — the roofline x-coordinate."""
        traffic = self.min_hbm_traffic_bytes()
        return self.total_flops() / traffic if traffic else float("inf")

    # -------------------------------------------------------------- utilities

    def instructions_of_kind(self, kind: str) -> List[HloInstruction]:
        return [i for i in self.instructions if i.kind == kind]

    def validate(self) -> None:
        """Check topological order and uid density."""
        seen = set()
        for expected_uid, inst in enumerate(self.instructions):
            if inst.uid != expected_uid:
                raise ValueError(f"uid gap at %{inst.uid}")
            for operand in inst.operands:
                if operand.uid not in seen:
                    raise ValueError(
                        f"%{inst.uid} uses %{operand.uid} before definition")
            seen.add(inst.uid)
        _ = self.root

    def __str__(self) -> str:
        lines = [f"HloModule {self.name}:"]
        lines.extend(f"  {inst}" for inst in self.instructions)
        lines.append(f"  root = %{self.root.uid}")
        return "\n".join(lines)


class GraphBuilder:
    """Fluent builder for :class:`HloModule` with shape inference.

    >>> b = GraphBuilder("tiny")
    >>> x = b.parameter(Shape((8, 256)), "x")
    >>> w = b.constant(Shape((256, 128)), "w")
    >>> y = b.relu(b.dot(x, w))
    >>> b.build().total_flops()
    557056.0
    """

    def __init__(self, name: str) -> None:
        self.module = HloModule(name)

    def build(self) -> HloModule:
        self.module.validate()
        return self.module

    # Data.
    def parameter(self, shape: Shape, name: str = "") -> HloInstruction:
        return self.module.add("parameter", shape, name=name)

    def constant(self, shape: Shape, name: str = "") -> HloInstruction:
        return self.module.add("constant", shape, name=name)

    # Matrix.
    def dot(self, lhs: HloInstruction, rhs: HloInstruction,
            name: str = "") -> HloInstruction:
        shape = matmul_result(lhs.shape, rhs.shape)
        return self.module.add("dot", shape, (lhs, rhs), name=name)

    def batched_dot(self, lhs: HloInstruction, rhs: HloInstruction,
                    name: str = "") -> HloInstruction:
        shape = batched_matmul_result(lhs.shape, rhs.shape)
        return self.module.add("batched_dot", shape, (lhs, rhs), name=name)

    def conv2d(self, image: HloInstruction, filt: HloInstruction,
               stride: int = 1, padding: str = "same",
               name: str = "") -> HloInstruction:
        shape = conv2d_result(image.shape, filt.shape, stride, padding)
        return self.module.add("conv2d", shape, (image, filt), name=name,
                               stride=stride, padding=padding)

    # Elementwise.
    def _unary(self, opcode: str, x: HloInstruction, name: str = "",
               **attrs: object) -> HloInstruction:
        return self.module.add(opcode, x.shape, (x,), name=name, **attrs)

    def _binary(self, opcode: str, a: HloInstruction, b: HloInstruction,
                name: str = "") -> HloInstruction:
        same = a.shape.dims == b.shape.dims
        # Bias broadcast: b is a vector matching a's last dimension.
        bias = b.shape.rank == 1 and b.shape.dims[0] == a.shape.dims[-1]
        if not (same or bias):
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        return self.module.add(opcode, a.shape, (a, b), name=name)

    def relu(self, x, name=""):
        return self._unary("relu", x, name)

    def tanh(self, x, name=""):
        return self._unary("tanh", x, name)

    def sigmoid(self, x, name=""):
        return self._unary("sigmoid", x, name)

    def gelu(self, x, name=""):
        return self._unary("gelu", x, name)

    def exp(self, x, name=""):
        return self._unary("exp", x, name)

    def rsqrt(self, x, name=""):
        return self._unary("rsqrt", x, name)

    def convert(self, x, dtype_name: str, name=""):
        shape = x.shape.with_dtype(dtype_name)
        return self.module.add("convert", shape, (x,), name=name)

    def add(self, a, b, name=""):
        return self._binary("add", a, b, name)

    def sub(self, a, b, name=""):
        return self._binary("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self._binary("mul", a, b, name)

    def div(self, a, b, name=""):
        return self._binary("div", a, b, name)

    def maximum(self, a, b, name=""):
        return self._binary("max", a, b, name)

    # Reductions and composites.
    def reduce_sum(self, x, axis: int, name=""):
        shape = reduce_result(x.shape, axis)
        return self.module.add("reduce_sum", shape, (x,), name=name, axis=axis)

    def reduce_max(self, x, axis: int, name=""):
        shape = reduce_result(x.shape, axis)
        return self.module.add("reduce_max", shape, (x,), name=name, axis=axis)

    def max_pool2d(self, x, window: int = 2, stride: int = 2, name=""):
        shape = pool_result(x.shape, window, stride)
        return self.module.add("max_pool2d", shape, (x,), name=name,
                               window=window, stride=stride)

    def softmax(self, x, name=""):
        return self.module.add("softmax", x.shape, (x,), name=name)

    def layernorm(self, x, name=""):
        return self.module.add("layernorm", x.shape, (x,), name=name)

    # Memory-dominated.
    def embedding_lookup(self, table: HloInstruction, ids: HloInstruction,
                         name: str = "") -> HloInstruction:
        if table.shape.rank != 2:
            raise ValueError("embedding table must be [rows, dim]")
        out = Shape(ids.shape.dims + (table.shape.dims[1],),
                    table.shape.dtype_name)
        return self.module.add("embedding_lookup", out, (table, ids), name=name)

    # Shape ops.
    def reshape(self, x, dims: Tuple[int, ...], name=""):
        if math.prod(dims) != x.shape.num_elements:
            raise ValueError(f"cannot reshape {x.shape} to {dims}")
        return self.module.add("reshape", x.shape.with_dims(dims), (x,), name=name)

    def transpose(self, x, perm: Tuple[int, ...], name=""):
        if sorted(perm) != list(range(x.shape.rank)):
            raise ValueError(f"bad permutation {perm} for {x.shape}")
        dims = tuple(x.shape.dims[p] for p in perm)
        return self.module.add("transpose", x.shape.with_dims(dims), (x,),
                               name=name, perm=perm)

    def concat(self, parts: List[HloInstruction], axis: int, name=""):
        if not parts:
            raise ValueError("concat needs at least one operand")
        base = parts[0].shape
        total = sum(p.shape.dims[axis] for p in parts)
        dims = base.dims[:axis] + (total,) + base.dims[axis + 1:]
        return self.module.add("concat", base.with_dims(dims), tuple(parts),
                               name=name, axis=axis)
