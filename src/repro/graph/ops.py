"""Op definitions: the IR's vocabulary and per-op cost accounting.

Each :class:`OpDef` carries the op's structural *kind* (what lowering rule
applies) and, for vector ops, the VPU op class used to price it. The
``flops``/``weight_bytes`` helpers below give the canonical arithmetic and
parameter-traffic counts per instruction — the numbers every roofline,
power, and scheduling result in the paper derives from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

# Structural kinds, each with one lowering rule in the compiler:
#   data      parameter/constant: produces a tensor, no compute
#   unary     elementwise one-operand VPU op
#   binary    elementwise two-operand VPU op
#   matmul    MXU matrix multiply
#   conv      MXU convolution (im2col)
#   reduce    VPU reduction over one axis
#   pool      spatial max pooling: a windowed VPU reduction
#   gather    embedding lookup: pure memory traffic
#   shape     reshape/transpose/slice/concat: data movement only
#   composite softmax/layernorm: expands to primitives before lowering
KINDS = ("data", "unary", "binary", "matmul", "conv", "reduce", "pool",
         "gather", "shape", "composite")


@dataclass(frozen=True)
class OpDef:
    """Definition of one IR opcode."""

    name: str
    kind: str
    vpu_class: Optional[str] = None  # VPU pricing class for unary/binary/reduce
    flops_per_element: float = 1.0   # for elementwise ops

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"{self.name}: unknown kind {self.kind!r}")
        if self.kind in ("unary", "binary", "reduce") and not self.vpu_class:
            raise ValueError(f"{self.name}: vector ops need a vpu_class")


OPDEFS: Dict[str, OpDef] = {
    op.name: op
    for op in (
        # Data.
        OpDef("parameter", "data"),
        OpDef("constant", "data"),
        # Elementwise unary.
        OpDef("relu", "unary", "relu", 1),
        OpDef("tanh", "unary", "tanh", 8),
        OpDef("sigmoid", "unary", "sigmoid", 8),
        OpDef("gelu", "unary", "gelu", 10),
        OpDef("erf", "unary", "erf", 8),
        OpDef("exp", "unary", "exp", 6),
        OpDef("rsqrt", "unary", "rsqrt", 4),
        OpDef("convert", "unary", "copy", 0.5),
        OpDef("scale", "unary", "mul", 1),  # multiply by a literal factor

        # Elementwise binary.
        OpDef("add", "binary", "add", 1),
        OpDef("sub", "binary", "sub", 1),
        OpDef("mul", "binary", "mul", 1),
        OpDef("div", "binary", "div", 4),
        OpDef("max", "binary", "max", 1),
        OpDef("min", "binary", "min", 1),
        # Matrix.
        OpDef("dot", "matmul"),
        OpDef("batched_dot", "matmul"),
        OpDef("conv2d", "conv"),
        # Reductions.
        OpDef("reduce_sum", "reduce", "reduce", 1),
        OpDef("reduce_max", "reduce", "reduce", 1),
        OpDef("max_pool2d", "pool", "max", 1),
        # Memory-dominated.
        OpDef("embedding_lookup", "gather"),
        # Shape manipulation.
        OpDef("reshape", "shape"),
        OpDef("broadcast", "shape"),
        OpDef("transpose", "shape"),
        OpDef("concat", "shape"),
        OpDef("slice", "shape"),
        # Composites (expanded before lowering).
        OpDef("softmax", "composite"),
        OpDef("layernorm", "composite"),
    )
}


def opdef(name: str) -> OpDef:
    """Look up an op definition."""
    try:
        return OPDEFS[name]
    except KeyError:
        known = ", ".join(sorted(OPDEFS))
        raise KeyError(f"unknown op {name!r}; known: {known}") from None
