"""Functional execution of HLO modules with chip arithmetic semantics.

The timing simulator (`repro.sim`) answers "how fast"; this evaluator
answers "what bits". It executes a module with numpy, applying the target
arithmetic after every operation:

* ``"fp32"`` — reference semantics;
* ``"bf16"`` — operands and results round to bfloat16, matmuls accumulate
  in fp32 (MXU semantics, identical on TPUv2/v3/v4i — Lesson 10's
  bit-exactness is checked end-to-end on real models with this);
* ``"int8"`` — matmul operands quantize per-tensor (calibrated on the
  actual values), accumulate in int32; elementwise math runs in fp32 on
  dequantized values (how int8 NPUs actually execute nonlinearities).

Weights and inputs not supplied explicitly are generated deterministically
from the instruction uid, so two evaluations of the same module always see
the same tensors.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.graph.hlo import HloInstruction, HloModule
from repro.numerics.bfloat16 import to_bf16
from repro.numerics.int8 import calibrate, int8_matmul
from repro.util.rng import DeterministicRng

ARITHMETICS = ("fp32", "bf16", "int8")

_UNARY_FNS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "exp": np.exp,
    "rsqrt": lambda x: 1.0 / np.sqrt(np.maximum(x, 1e-12)),
    "erf": lambda x: np.vectorize(math.erf, otypes=[np.float32])(x),
    "gelu": lambda x: 0.5 * x * (1.0 + np.tanh(
        0.7978845608 * (x + 0.044715 * x**3))),
    "convert": lambda x: x,
}

_BINARY_FNS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": lambda a, b: a / np.where(np.abs(b) < 1e-12, 1e-12, b),
    "max": np.maximum,
    "min": np.minimum,
}


class Evaluator:
    """Executes one module under one arithmetic."""

    def __init__(self, module: HloModule, arithmetic: str = "bf16", *,
                 seed: int = 0) -> None:
        if arithmetic not in ARITHMETICS:
            raise ValueError(
                f"arithmetic must be one of {ARITHMETICS}, got {arithmetic!r}")
        module.validate()
        self.module = module
        self.arithmetic = arithmetic
        self.seed = seed
        self._values: Dict[int, np.ndarray] = {}

    # ----------------------------------------------------------- data supply

    def _default_tensor(self, inst: HloInstruction) -> np.ndarray:
        rng = DeterministicRng(self.seed).fork(inst.uid + 1)
        if inst.shape.dtype_name == "int32":
            size = inst.shape.num_elements
            flat = np.array([rng.integers(0, 1000) for _ in range(size)],
                            dtype=np.int64)
            return flat.reshape(inst.shape.dims)
        # Small scale keeps deep nets numerically tame.
        scale = 1.0 / math.sqrt(max(1, inst.shape.dims[-1]))
        return rng.normal_array(inst.shape.dims, scale=scale)

    def _round(self, value: np.ndarray) -> np.ndarray:
        """Apply the arithmetic's storage rounding to an activation."""
        if value.dtype.kind in "iu":
            return value
        if self.arithmetic == "bf16":
            return to_bf16(value)
        return value.astype(np.float32)

    # ------------------------------------------------------------- execution

    def run(self, inputs: Optional[Mapping[str, np.ndarray]] = None,
            weights: Optional[Mapping[str, np.ndarray]] = None) -> np.ndarray:
        """Execute the module; returns the root tensor.

        ``inputs``/``weights`` map instruction *names* to arrays; anything
        unnamed or missing gets the deterministic default tensor.
        """
        inputs = dict(inputs or {})
        weights = dict(weights or {})
        self._values.clear()
        for inst in self.module.instructions:
            self._values[inst.uid] = self._execute(inst, inputs, weights)
        return self._values[self.module.root.uid]

    def value_of(self, inst: HloInstruction) -> np.ndarray:
        """Tensor produced by an instruction in the last ``run``."""
        return self._values[inst.uid]

    def _execute(self, inst: HloInstruction, inputs: Mapping[str, np.ndarray],
                 weights: Mapping[str, np.ndarray]) -> np.ndarray:
        operands = [self._values[o.uid] for o in inst.operands]
        op = inst.opcode

        if op == "parameter":
            supplied = inputs.get(inst.name)
            value = (np.asarray(supplied, dtype=np.float32)
                     if supplied is not None and inst.shape.dtype.is_float
                     else supplied)
            if value is None:
                value = self._default_tensor(inst)
            if tuple(np.shape(value)) != inst.shape.dims:
                raise ValueError(
                    f"input {inst.name!r}: expected {inst.shape.dims}, got "
                    f"{np.shape(value)}")
            return self._round(np.asarray(value))
        if op == "constant":
            supplied = weights.get(inst.name)
            value = (np.asarray(supplied, dtype=np.float32)
                     if supplied is not None else self._default_tensor(inst))
            if tuple(value.shape) != inst.shape.dims:
                raise ValueError(
                    f"weight {inst.name!r}: expected {inst.shape.dims}, got "
                    f"{value.shape}")
            return self._round(value)

        if op in ("dot", "batched_dot"):
            return self._matmul(operands[0], operands[1], batched=(op == "batched_dot"))
        if op == "conv2d":
            return self._conv2d(inst, operands[0], operands[1])

        if op == "scale":
            factor = float(inst.attr("factor", 1.0))
            return self._round(operands[0].astype(np.float32) * factor)
        if op in _UNARY_FNS:
            return self._round(_UNARY_FNS[op](operands[0].astype(np.float32)))
        if op in _BINARY_FNS:
            a, b = operands
            if b.shape != a.shape:  # bias broadcast over the last axis
                b = np.broadcast_to(b, a.shape)
            return self._round(_BINARY_FNS[op](a.astype(np.float32),
                                               b.astype(np.float32)))

        if op in ("reduce_sum", "reduce_max"):
            axis = int(inst.attr("axis", operands[0].ndim - 1))
            fn = np.sum if op == "reduce_sum" else np.max
            out = fn(operands[0].astype(np.float32), axis=axis)
            if out.ndim == 0:
                out = out.reshape((1,))
            return self._round(out)

        if op == "softmax":
            x = operands[0].astype(np.float32)
            shifted = x - np.max(x, axis=-1, keepdims=True)
            exped = np.exp(shifted)
            return self._round(exped / np.sum(exped, axis=-1, keepdims=True))
        if op == "layernorm":
            x = operands[0].astype(np.float32)
            mean = np.mean(x, axis=-1, keepdims=True)
            var = np.var(x, axis=-1, keepdims=True)
            return self._round((x - mean) / np.sqrt(var + 1e-6))

        if op == "max_pool2d":
            return self._max_pool(inst, operands[0])

        if op == "embedding_lookup":
            table, ids = operands
            return self._round(table[np.clip(ids.astype(np.int64), 0,
                                             table.shape[0] - 1)])

        if op == "reshape":
            return operands[0].reshape(inst.shape.dims)
        if op == "broadcast":
            value = operands[0]
            while value.ndim < len(inst.shape.dims):
                value = value[..., np.newaxis]
            return np.broadcast_to(value, inst.shape.dims)
        if op == "transpose":
            perm = inst.attr("perm")
            return np.transpose(operands[0], perm)
        if op == "concat":
            axis = int(inst.attr("axis", 0))
            return np.concatenate(operands, axis=axis)
        if op == "slice":
            offset = int(inst.attr("offset", 0))
            axis = int(inst.attr("axis", operands[0].ndim - 1))
            width = inst.shape.dims[axis]
            start = offset * width
            indexer = [slice(None)] * operands[0].ndim
            indexer[axis] = slice(start, start + width)
            return operands[0][tuple(indexer)]

        raise NotImplementedError(f"evaluator has no rule for {op!r}")

    # ------------------------------------------------------------- matmuls

    def _matmul(self, lhs: np.ndarray, rhs: np.ndarray, *,
                batched: bool) -> np.ndarray:
        a = lhs.astype(np.float32)
        b = rhs.astype(np.float32)
        if self.arithmetic == "fp32":
            return a @ b
        if self.arithmetic == "bf16":
            return self._round(to_bf16(a) @ to_bf16(b))
        # int8: per-tensor calibration on the live values.
        if batched:
            out = np.empty((a.shape[0], a.shape[1], b.shape[2]),
                           dtype=np.float32)
            for i in range(a.shape[0]):
                out[i] = int8_matmul(a[i], b[i], calibrate(a[i]),
                                     calibrate(b[i]))
            return out
        flat_a = a.reshape(-1, a.shape[-1])
        out = int8_matmul(flat_a, b, calibrate(flat_a), calibrate(b))
        return out.reshape(a.shape[:-1] + (b.shape[-1],))

    def _max_pool(self, inst: HloInstruction, image: np.ndarray) -> np.ndarray:
        """Windowed spatial max with 'same' padding (pad value -inf)."""
        window = int(inst.attr("window", 2))
        stride = int(inst.attr("stride", 2))
        n, h, w, c = image.shape
        out_n, out_h, out_w, _ = inst.shape.dims
        pad_h = max(0, (out_h - 1) * stride + window - h)
        pad_w = max(0, (out_w - 1) * stride + window - w)
        padded = np.pad(image.astype(np.float32),
                        ((0, 0),
                         (pad_h // 2, pad_h - pad_h // 2),
                         (pad_w // 2, pad_w - pad_w // 2),
                         (0, 0)),
                        constant_values=-np.inf)
        out = np.empty((n, out_h, out_w, c), dtype=np.float32)
        for y in range(out_h):
            for x in range(out_w):
                patch = padded[:, y * stride:y * stride + window,
                               x * stride:x * stride + window, :]
                out[:, y, x, :] = patch.max(axis=(1, 2))
        return self._round(out)

    def _conv2d(self, inst: HloInstruction, image: np.ndarray,
                filt: np.ndarray) -> np.ndarray:
        """im2col + matmul (matching how the hardware executes it)."""
        stride = int(inst.attr("stride", 1))
        padding = str(inst.attr("padding", "same"))
        n, h, w, cin = image.shape
        kh, kw, _, cout = filt.shape
        out_n, out_h, out_w, _ = inst.shape.dims

        if padding == "same":
            pad_h = max(0, (out_h - 1) * stride + kh - h)
            pad_w = max(0, (out_w - 1) * stride + kw - w)
            image = np.pad(image.astype(np.float32),
                           ((0, 0),
                            (pad_h // 2, pad_h - pad_h // 2),
                            (pad_w // 2, pad_w - pad_w // 2),
                            (0, 0)))
        cols = np.empty((n, out_h, out_w, kh * kw * cin), dtype=np.float32)
        for y in range(out_h):
            for x in range(out_w):
                patch = image[:, y * stride:y * stride + kh,
                              x * stride:x * stride + kw, :]
                cols[:, y, x, :] = patch.reshape(n, -1)
        flat = cols.reshape(-1, kh * kw * cin)
        kernel = filt.astype(np.float32).reshape(-1, cout)
        out = self._matmul(flat, kernel, batched=False)
        return out.reshape(n, out_h, out_w, cout)


def evaluate_module(module: HloModule, arithmetic: str = "bf16", *,
                    seed: int = 0,
                    inputs: Optional[Mapping[str, np.ndarray]] = None,
                    weights: Optional[Mapping[str, np.ndarray]] = None
                    ) -> np.ndarray:
    """One-shot functional execution; see :class:`Evaluator`."""
    return Evaluator(module, arithmetic, seed=seed).run(inputs, weights)
