"""Tensor shapes and data types for the graph IR."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class DType:
    """An arithmetic type: name, bytes per element, float/integer flag."""

    name: str
    size_bytes: int
    is_float: bool

    def __str__(self) -> str:
        return self.name


DTYPES: Dict[str, DType] = {
    "int8": DType("int8", 1, False),
    "int32": DType("int32", 4, False),  # indices (embedding ids), not MXU math
    "bf16": DType("bf16", 2, True),
    "fp32": DType("fp32", 4, True),
}


def dtype(name: str) -> DType:
    """Look up a dtype by name."""
    try:
        return DTYPES[name]
    except KeyError:
        known = ", ".join(sorted(DTYPES))
        raise KeyError(f"unknown dtype {name!r}; known: {known}") from None


@dataclass(frozen=True)
class Shape:
    """A tensor shape: dimensions plus element type.

    >>> Shape((128, 768), "bf16").byte_size
    196608
    """

    dims: Tuple[int, ...]
    dtype_name: str = "bf16"

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"dimensions must be positive, got {self.dims}")
        dtype(self.dtype_name)  # validate

    @property
    def dtype(self) -> DType:
        return DTYPES[self.dtype_name]

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        return math.prod(self.dims) if self.dims else 1

    @property
    def byte_size(self) -> int:
        return self.num_elements * self.dtype.size_bytes

    def with_dtype(self, dtype_name: str) -> "Shape":
        return Shape(self.dims, dtype_name)

    def with_dims(self, dims: Tuple[int, ...]) -> "Shape":
        return Shape(dims, self.dtype_name)

    def __str__(self) -> str:
        return f"{self.dtype_name}[{','.join(str(d) for d in self.dims)}]"


def matmul_result(lhs: Shape, rhs: Shape) -> Shape:
    """Shape of ``lhs @ rhs``.

    ``lhs`` may have leading batch dims: ``[..., M, K] @ [K, N] -> [..., M, N]``.
    Mixed input dtypes are rejected; accumulate-and-cast is a separate convert.
    """
    if lhs.rank < 2 or rhs.rank != 2:
        raise ValueError(f"matmul needs [...,M,K] @ [K,N]; got {lhs} @ {rhs}")
    if lhs.dims[-1] != rhs.dims[0]:
        raise ValueError(f"contraction mismatch: {lhs} @ {rhs}")
    if lhs.dtype_name != rhs.dtype_name:
        raise ValueError(f"matmul dtype mismatch: {lhs} @ {rhs}")
    return Shape(lhs.dims[:-1] + (rhs.dims[1],), lhs.dtype_name)


def batched_matmul_result(lhs: Shape, rhs: Shape) -> Shape:
    """Shape of a batched matmul ``[B,M,K] @ [B,K,N] -> [B,M,N]``.

    Used for attention (scores and context), where *both* sides are
    activations and vary per batch/head.
    """
    if lhs.rank != 3 or rhs.rank != 3:
        raise ValueError(f"batched matmul needs [B,M,K] @ [B,K,N]; got {lhs} @ {rhs}")
    if lhs.dims[0] != rhs.dims[0]:
        raise ValueError(f"batch mismatch: {lhs} @ {rhs}")
    if lhs.dims[2] != rhs.dims[1]:
        raise ValueError(f"contraction mismatch: {lhs} @ {rhs}")
    if lhs.dtype_name != rhs.dtype_name:
        raise ValueError(f"batched matmul dtype mismatch: {lhs} @ {rhs}")
    return Shape((lhs.dims[0], lhs.dims[1], rhs.dims[2]), lhs.dtype_name)


def conv2d_result(input_shape: Shape, filter_shape: Shape,
                  stride: int, padding: str) -> Shape:
    """Shape of an NHWC conv with HWIO filters.

    ``padding`` is ``"same"`` (output spatial = ceil(in/stride)) or
    ``"valid"``.
    """
    if input_shape.rank != 4 or filter_shape.rank != 4:
        raise ValueError("conv2d needs NHWC input and HWIO filter")
    if padding not in ("same", "valid"):
        raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")
    if stride <= 0:
        raise ValueError("stride must be positive")
    n, h, w, c_in = input_shape.dims
    k_h, k_w, f_in, c_out = filter_shape.dims
    if f_in != c_in:
        raise ValueError(
            f"filter expects {f_in} input channels, input has {c_in}")
    if padding == "same":
        out_h = math.ceil(h / stride)
        out_w = math.ceil(w / stride)
    else:
        if h < k_h or w < k_w:
            raise ValueError("filter larger than input under 'valid' padding")
        out_h = (h - k_h) // stride + 1
        out_w = (w - k_w) // stride + 1
    return Shape((n, out_h, out_w, c_out), input_shape.dtype_name)


def pool_result(input_shape: Shape, window: int, stride: int) -> Shape:
    """Shape of a spatial max/avg pool over an NHWC tensor ('same' padding)."""
    if input_shape.rank != 4:
        raise ValueError("pooling needs an NHWC input")
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    n, h, w, c = input_shape.dims
    out_h = math.ceil(h / stride)
    out_w = math.ceil(w / stride)
    return Shape((n, out_h, out_w, c), input_shape.dtype_name)


def reduce_result(operand: Shape, axis: int) -> Shape:
    """Shape after reducing one axis away."""
    if not -operand.rank <= axis < operand.rank:
        raise ValueError(f"axis {axis} out of range for {operand}")
    axis %= operand.rank
    dims = operand.dims[:axis] + operand.dims[axis + 1:]
    return Shape(dims if dims else (1,), operand.dtype_name)
