"""Textual HLO: print and parse modules as reviewable text.

The graph IR is the durable interface between frameworks and chips
(Lesson 2), so it deserves a durable *file format*. The syntax mirrors
XLA's HLO dumps:

    hlo_module tiny {
      %0 = parameter() : bf16[4,256] "x"
      %1 = constant() : bf16[256,128] "w0"
      %2 = dot(%0, %1) : bf16[4,128] "h"
      %3 = conv2d(%2, %1) {padding="same", stride=2} : ...
      %4 = relu(%2) : bf16[4,128] "act"
      root %4
    }

``module_to_text`` / ``module_from_text`` round-trip exactly (shapes,
attrs, names, root). The parser validates opcodes against the registry
and operand references against prior definitions, so a hand-edited file
fails loudly, not deep inside the compiler.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.graph.hlo import HloInstruction, HloModule
from repro.graph.ops import opdef
from repro.graph.shapes import Shape


class HloTextError(Exception):
    """Malformed HLO text."""


# ---------------------------------------------------------------- printing

def _format_attr_value(value: object) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, tuple):
        return "(" + ",".join(str(v) for v in value) + ")"
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value) if isinstance(value, float) else str(value)


def _format_instruction(inst: HloInstruction) -> str:
    operands = ", ".join(f"%{o.uid}" for o in inst.operands)
    attrs = ""
    if inst.attrs:
        pairs = ", ".join(f"{k}={_format_attr_value(v)}"
                          for k, v in inst.attrs)
        attrs = f" {{{pairs}}}"
    name = f' "{inst.name}"' if inst.name else ""
    return (f"  %{inst.uid} = {inst.opcode}({operands}){attrs} "
            f": {inst.shape}{name}")


def module_to_text(module: HloModule) -> str:
    """Render a module in the textual HLO format."""
    module.validate()
    lines = [f"hlo_module {module.name} {{"]
    lines.extend(_format_instruction(inst) for inst in module.instructions)
    lines.append(f"  root %{module.root.uid}")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------- parsing

_HEADER_RE = re.compile(r"^hlo_module\s+(\S+)\s*\{$")
_INST_RE = re.compile(
    r"^%(?P<uid>\d+)\s*=\s*(?P<opcode>[\w.]+)\((?P<operands>[^)]*)\)"
    r"(?:\s*\{(?P<attrs>[^}]*)\})?"
    r"\s*:\s*(?P<dtype>\w+)\[(?P<dims>[\d,]+)\]"
    r'(?:\s*"(?P<name>[^"]*)")?$'
)
_ROOT_RE = re.compile(r"^root\s+%(\d+)$")


def _parse_attr_value(token: str, line_no: int) -> object:
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token.startswith("(") and token.endswith(")"):
        inner = token[1:-1].strip()
        if not inner:
            return ()
        try:
            return tuple(int(v) for v in inner.split(","))
        except ValueError as exc:
            raise HloTextError(
                f"line {line_no}: bad tuple attr {token!r}") from exc
    if token in ("true", "false"):
        return token == "true"
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError as exc:
        raise HloTextError(f"line {line_no}: bad attr value {token!r}") from exc


def _parse_attrs(text: str, line_no: int) -> Dict[str, object]:
    attrs: Dict[str, object] = {}
    depth = 0
    current = ""
    parts: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current)
    for part in parts:
        if "=" not in part:
            raise HloTextError(f"line {line_no}: bad attr {part.strip()!r}")
        key, _, value = part.partition("=")
        attrs[key.strip()] = _parse_attr_value(value, line_no)
    return attrs


def module_from_text(text: str) -> HloModule:
    """Parse textual HLO into a validated module."""
    module: Optional[HloModule] = None
    by_uid: Dict[int, HloInstruction] = {}
    root_uid = None
    closed = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if module is None:
            match = _HEADER_RE.match(line)
            if not match:
                raise HloTextError(
                    f"line {line_no}: expected 'hlo_module NAME {{'")
            module = HloModule(match.group(1))
            continue
        if closed:
            raise HloTextError(f"line {line_no}: content after closing brace")
        if line == "}":
            closed = True
            continue
        root_match = _ROOT_RE.match(line)
        if root_match:
            root_uid = int(root_match.group(1))
            continue
        match = _INST_RE.match(line)
        if not match:
            raise HloTextError(f"line {line_no}: cannot parse {line!r}")
        uid = int(match.group("uid"))
        if uid != len(module.instructions):
            raise HloTextError(
                f"line {line_no}: expected %{len(module.instructions)}, "
                f"got %{uid}")
        opcode = match.group("opcode")
        try:
            opdef(opcode)
        except KeyError as exc:
            raise HloTextError(f"line {line_no}: {exc}") from exc
        operands: List[HloInstruction] = []
        operand_text = match.group("operands").strip()
        if operand_text:
            for token in operand_text.split(","):
                token = token.strip()
                if not token.startswith("%"):
                    raise HloTextError(
                        f"line {line_no}: bad operand {token!r}")
                ref = int(token[1:])
                if ref not in by_uid:
                    raise HloTextError(
                        f"line {line_no}: %{ref} used before definition")
                operands.append(by_uid[ref])
        attrs = _parse_attrs(match.group("attrs"), line_no) \
            if match.group("attrs") else {}
        dims = tuple(int(d) for d in match.group("dims").split(","))
        try:
            shape = Shape(dims, match.group("dtype"))
        except (ValueError, KeyError) as exc:
            raise HloTextError(f"line {line_no}: {exc}") from exc
        inst = module.add(opcode, shape, operands,
                          name=match.group("name") or "", **attrs)
        by_uid[uid] = inst

    if module is None:
        raise HloTextError("no hlo_module header found")
    if not closed:
        raise HloTextError("missing closing brace")
    if root_uid is not None:
        if root_uid not in by_uid:
            raise HloTextError(f"root %{root_uid} is not defined")
        module.set_root(by_uid[root_uid])
    module.validate()
    return module
