"""Total cost of ownership (Lesson 3: target perf/TCO, not perf/CapEx).

A parametric cost model: CapEx from a die-yield model over the process
node's wafer cost, plus memory/package/board/cooling; OpEx from measured
average power through PUE and electricity price over a deployment life.
The punchline experiment (E12) shows the generations *re-rank* when
ordered by perf/TCO instead of perf/CapEx — the cheap-to-buy chip is not
the cheap-to-own chip once power and cooling pay their way.
"""

from repro.tco.capex import die_cost_usd, chip_capex_usd, dies_per_wafer, die_yield
from repro.tco.opex import OpexParams, chip_opex_usd
from repro.tco.model import ChipTco, chip_tco, perf_per_tco

__all__ = [
    "die_cost_usd",
    "chip_capex_usd",
    "dies_per_wafer",
    "die_yield",
    "OpexParams",
    "chip_opex_usd",
    "ChipTco",
    "chip_tco",
    "perf_per_tco",
]
