"""Capital cost: die, memory, package, board, cooling hardware.

Die cost uses the standard negative-binomial (Murphy/Bose-Einstein) yield
model over the node's wafer cost and defect density. Memory prices are
per-technology (DDR3 vs HBM2). All constants are order-of-magnitude
public figures; the experiment consumes *ratios* between generations.
"""

from __future__ import annotations

import math

from repro.arch.chip import ChipConfig
from repro.arch.cooling import solution_for
from repro.tech.node import ProcessNode, node_by_name
from repro.util.units import GIB

_WAFER_DIAMETER_MM = 300.0
_EDGE_LOSS_MM = 5.0
_YIELD_ALPHA = 4.0  # defect clustering parameter

# Memory $/GiB: commodity DDR3 vs HBM stacks (incl. interposer share).
_DDR3_USD_PER_GIB = 5.0
_HBM_USD_PER_GIB = 20.0
_PACKAGE_USD = 60.0
_BOARD_SHARE_USD = 250.0


def dies_per_wafer(die_mm2: float) -> int:
    """Gross dies per 300mm wafer (area term minus edge-scrap term)."""
    if die_mm2 <= 0:
        raise ValueError("die area must be positive")
    radius = _WAFER_DIAMETER_MM / 2.0 - _EDGE_LOSS_MM
    wafer_area = math.pi * radius**2
    edge = math.pi * 2.0 * radius / math.sqrt(2.0 * die_mm2)
    return max(1, int(wafer_area / die_mm2 - edge))


def die_yield(node: ProcessNode, die_mm2: float) -> float:
    """Fraction of good dies: ``(1 + D0*A/alpha)^-alpha``."""
    if die_mm2 <= 0:
        raise ValueError("die area must be positive")
    defects = node.defect_density_per_cm2 * (die_mm2 / 100.0)
    return (1.0 + defects / _YIELD_ALPHA) ** (-_YIELD_ALPHA)


def die_cost_usd(node: ProcessNode, die_mm2: float) -> float:
    """Cost of one *good* die."""
    good = dies_per_wafer(die_mm2) * die_yield(node, die_mm2)
    return node.wafer_cost_usd / good


def memory_cost_usd(chip: ChipConfig) -> float:
    """Off-chip memory cost (DDR3 for TPUv1, HBM for the rest)."""
    gib = chip.hbm_bytes / GIB
    per_gib = _DDR3_USD_PER_GIB if chip.generation == 1 else _HBM_USD_PER_GIB
    return gib * per_gib


def chip_capex_usd(chip: ChipConfig) -> float:
    """All-in per-accelerator capital cost."""
    node = node_by_name(chip.process)
    cooling = solution_for(chip)
    return (die_cost_usd(node, chip.die_mm2)
            + memory_cost_usd(chip)
            + _PACKAGE_USD
            + _BOARD_SHARE_USD
            + cooling.capex_usd_per_chip)
