"""Combined TCO and the perf/TCO vs perf/CapEx comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.arch.chip import ChipConfig
from repro.tco.capex import chip_capex_usd
from repro.tco.opex import OpexParams, chip_opex_usd


@dataclass(frozen=True)
class ChipTco:
    """Lifetime cost decomposition of one accelerator."""

    chip_name: str
    capex_usd: float
    opex_usd: float

    @property
    def total_usd(self) -> float:
        return self.capex_usd + self.opex_usd

    @property
    def opex_share(self) -> float:
        return self.opex_usd / self.total_usd if self.total_usd else 0.0


def chip_tco(chip: ChipConfig, busy_power_w: float,
             params: OpexParams = OpexParams()) -> ChipTco:
    """TCO of one chip at a measured busy power."""
    return ChipTco(
        chip_name=chip.name,
        capex_usd=chip_capex_usd(chip),
        opex_usd=chip_opex_usd(chip, busy_power_w, params),
    )


def perf_per_tco(qps: float, tco: ChipTco) -> float:
    """Queries/s per lifetime dollar — the paper's figure of merit."""
    if qps < 0:
        raise ValueError("qps must be non-negative")
    return qps / tco.total_usd if tco.total_usd else 0.0


def rank_designs(qps_by_chip: Dict[str, float],
                 tcos: Sequence[ChipTco]) -> Dict[str, List[str]]:
    """Rank chips by perf/CapEx and by perf/TCO.

    Returns ``{"by_capex": [...], "by_tco": [...]}``, best first. The E12
    benchmark prints both orders; Lesson 3 is the observation that they
    differ (and that the purchase decision must use the second).
    """
    by_name = {t.chip_name: t for t in tcos}
    missing = set(qps_by_chip) - set(by_name)
    if missing:
        raise ValueError(f"no TCO for chips: {sorted(missing)}")

    def capex_score(name: str) -> float:
        capex = by_name[name].capex_usd
        return qps_by_chip[name] / capex if capex else 0.0

    def tco_score(name: str) -> float:
        return perf_per_tco(qps_by_chip[name], by_name[name])

    names = list(qps_by_chip)
    return {
        "by_capex": sorted(names, key=capex_score, reverse=True),
        "by_tco": sorted(names, key=tco_score, reverse=True),
    }
