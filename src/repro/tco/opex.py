"""Operating cost: electricity over the deployment lifetime.

OpEx = average chip power x cooling overhead x PUE x hours x $/kWh, plus
a provisioning charge for the power capacity itself (datacenter watts are
paid for whether used or not — one of the reasons a 175 W air-cooled chip
beats a 450 W liquid-cooled one on TCO even at lower peak performance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.chip import ChipConfig
from repro.arch.cooling import solution_for


@dataclass(frozen=True)
class OpexParams:
    """Datacenter economics knobs."""

    years: float = 3.0
    usd_per_kwh: float = 0.06
    pue: float = 1.10
    usd_per_provisioned_watt: float = 1.0  # yearly datacenter capacity charge
    utilization: float = 0.55              # average duty cycle of the fleet

    def __post_init__(self) -> None:
        if self.years <= 0 or self.usd_per_kwh <= 0 or self.pue < 1.0:
            raise ValueError("bad OpEx parameters")
        if not 0 < self.utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")


def average_wall_power_w(chip: ChipConfig, busy_power_w: float,
                         params: OpexParams) -> float:
    """Wall power including idle time, cooling overhead and PUE."""
    if busy_power_w < 0:
        raise ValueError("power must be non-negative")
    cooling = solution_for(chip)
    chip_avg = (params.utilization * busy_power_w
                + (1.0 - params.utilization) * chip.idle_w)
    with_cooling = chip_avg * (1.0 + cooling.opex_w_per_chip_w)
    return with_cooling * params.pue


def chip_opex_usd(chip: ChipConfig, busy_power_w: float,
                  params: OpexParams = OpexParams()) -> float:
    """Lifetime operating cost of one accelerator."""
    wall = average_wall_power_w(chip, busy_power_w, params)
    hours = params.years * 365.0 * 24.0
    energy_usd = wall / 1000.0 * hours * params.usd_per_kwh
    provisioning_usd = (chip.tdp_w * params.usd_per_provisioned_watt
                        * params.years)
    return energy_usd + provisioning_usd
