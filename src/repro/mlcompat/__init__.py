"""Backwards ML compatibility (Lesson 10)."""

from repro.mlcompat.checker import (
    CompatCheck,
    check_numerics_match,
    deployment_readiness,
    model_numerics_match,
)

__all__ = [
    "CompatCheck",
    "check_numerics_match",
    "deployment_readiness",
    "model_numerics_match",
]
