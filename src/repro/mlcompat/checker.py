"""Backwards ML compatibility checks (Lesson 10).

"Backwards ML compatibility" means a model trained on the training chips
(TPUv2/v3, bf16) produces the *same answers* on the inference chip, so
deployment needs no retraining, no quantization study, no per-model
sign-off. The check below is executable: run the same computation through
each generation's arithmetic model and compare bits.

The contrast case is the int8 path (TPUv1-style deployment), where
``deployment_readiness`` reports the calibration work and quality risk
that bf16 deployment avoids — the "deploy DNNs quickly" half of the
lesson.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.arch.chip import ChipConfig
from repro.numerics.bfloat16 import bf16_matmul
from repro.numerics.error import quality_loss_proxy, snr_db
from repro.numerics.int8 import calibrate, int8_matmul
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class CompatCheck:
    """Result of comparing one computation across two chips."""

    source_chip: str
    target_chip: str
    dtype: str
    bit_exact: bool
    snr_db: float
    est_quality_loss_pct: float
    needs_calibration: bool

    @property
    def deployable_without_validation(self) -> bool:
        """The Lesson 10 predicate: same bits, no per-model sign-off needed."""
        return self.bit_exact and not self.needs_calibration


def _chip_matmul(chip: ChipConfig, dtype: str,
                 a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The matmul semantics a chip applies for a dtype."""
    if not chip.supports_dtype(dtype):
        raise ValueError(f"{chip.name} does not support {dtype}")
    if dtype == "bf16":
        return bf16_matmul(a, b)
    if dtype == "int8":
        return int8_matmul(a, b, calibrate(a), calibrate(b))
    if dtype == "fp32":
        return a.astype(np.float32) @ b.astype(np.float32)
    raise ValueError(f"unknown dtype {dtype!r}")


def check_numerics_match(source: ChipConfig, target: ChipConfig,
                         dtype: str = "bf16", *, seed: int = 7,
                         size: int = 128) -> CompatCheck:
    """Run the same matmul through both chips' arithmetic and compare.

    For bf16 the result is bit-exact by construction (deterministic
    rounding, fp32 accumulation) — the property that lets a TPUv3-trained
    model ship on TPUv4i unmodified. For int8 the comparison runs the
    target's quantized path against the source's float path and reports
    the quality cost.
    """
    rng = DeterministicRng(seed)
    a = rng.normal_array((size, size))
    b = rng.normal_array((size, size))

    source_dtype = dtype if source.supports_dtype(dtype) else "bf16"
    reference = _chip_matmul(source, source_dtype, a, b)
    candidate = _chip_matmul(target, dtype, a, b)

    exact = bool(np.array_equal(reference, candidate))
    ratio = snr_db(reference, candidate)
    return CompatCheck(
        source_chip=source.name,
        target_chip=target.name,
        dtype=dtype,
        bit_exact=exact,
        snr_db=ratio,
        est_quality_loss_pct=quality_loss_proxy(ratio),
        needs_calibration=(dtype == "int8"),
    )


def model_numerics_match(module, source: ChipConfig, target: ChipConfig,
                         *, seed: int = 0) -> CompatCheck:
    """Lesson 10 end-to-end: execute a whole model on both chips' arithmetic.

    Runs the functional evaluator (`repro.graph.evaluator`) under each
    chip's best arithmetic (bf16 where supported, else int8) with identical
    weights/inputs and compares the output tensors bit for bit.
    """
    from repro.graph.evaluator import evaluate_module

    def arithmetic_for(chip: ChipConfig) -> str:
        return "bf16" if chip.supports_dtype("bf16") else "int8"

    source_arith = arithmetic_for(source)
    target_arith = arithmetic_for(target)
    reference = evaluate_module(module, source_arith, seed=seed)
    candidate = evaluate_module(module, target_arith, seed=seed)
    exact = bool(np.array_equal(reference, candidate))
    ratio = snr_db(reference, candidate)
    return CompatCheck(
        source_chip=source.name,
        target_chip=target.name,
        dtype=target_arith,
        bit_exact=exact,
        snr_db=ratio,
        est_quality_loss_pct=quality_loss_proxy(ratio),
        needs_calibration=(target_arith == "int8"),
    )


def deployment_readiness(checks: Sequence[CompatCheck]) -> Dict[str, object]:
    """Summarize what stands between training and serving.

    Returns the count of models deployable as-is vs needing a calibration/
    validation cycle, and the worst estimated quality loss — the three
    numbers the deploy-velocity argument turns on.
    """
    if not checks:
        raise ValueError("no checks to summarize")
    ready = sum(1 for c in checks if c.deployable_without_validation)
    return {
        "models": len(checks),
        "deploy_as_is": ready,
        "need_calibration": len(checks) - ready,
        "worst_quality_loss_pct": max(c.est_quality_loss_pct for c in checks),
    }
