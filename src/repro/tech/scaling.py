"""Scaling trajectories across nodes (the Lesson 1 figure).

Each series normalizes a per-node metric to the oldest node in the range so
the benchmark can print the three diverging curves the paper draws: logic
improving fast, SRAM improving slowly, wires barely improving at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.tech.node import NODES, ProcessNode


@dataclass(frozen=True)
class ScalingSeries:
    """A named metric sampled across process nodes, normalized to the first.

    ``values[i]`` is the *improvement factor* of ``nodes[i]`` relative to
    ``nodes[0]`` (always >= 0; 1.0 at the first node; higher is better).
    """

    metric: str
    nodes: Tuple[str, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.values):
            raise ValueError("nodes and values must align")
        if not self.values or abs(self.values[0] - 1.0) > 1e-9:
            raise ValueError("series must be normalized to 1.0 at the first node")

    def final_improvement(self) -> float:
        """Improvement factor at the newest node in the series."""
        return self.values[-1]


def _series(metric: str, nodes: Sequence[ProcessNode],
            higher_is_better: Callable[[ProcessNode], float]) -> ScalingSeries:
    raw = [higher_is_better(n) for n in nodes]
    base = raw[0]
    return ScalingSeries(
        metric=metric,
        nodes=tuple(n.name for n in nodes),
        values=tuple(v / base for v in raw),
    )


def _select(nodes: Sequence[ProcessNode]) -> Sequence[ProcessNode]:
    return nodes if nodes else NODES


def logic_density_series(nodes: Sequence[ProcessNode] = ()) -> ScalingSeries:
    """Logic transistor density improvement (the fast-moving curve)."""
    return _series("logic density", _select(nodes), lambda n: n.logic_density_mtr_mm2)


def sram_density_series(nodes: Sequence[ProcessNode] = ()) -> ScalingSeries:
    """SRAM bit density improvement (lags logic)."""
    return _series("SRAM density", _select(nodes), lambda n: n.sram_bit_density_mbit_mm2)


def wire_delay_series(nodes: Sequence[ProcessNode] = ()) -> ScalingSeries:
    """Wire speed improvement: inverse delay per mm (nearly flat / negative)."""
    return _series("wire speed", _select(nodes), lambda n: 1.0 / n.wire_delay_ps_mm)


def energy_per_op_series(nodes: Sequence[ProcessNode] = ()) -> ScalingSeries:
    """Energy efficiency improvement: inverse MAC energy."""
    return _series("MAC energy efficiency", _select(nodes), lambda n: 1.0 / n.mac_energy_pj)


def relative_improvement(nodes: Sequence[ProcessNode] = ()) -> List[ScalingSeries]:
    """All four Lesson 1 series together, ready for the figure benchmark.

    The defining property (asserted in tests and visible in the bench output)
    is ``logic >> sram > wire`` at the newest node.
    """
    chosen = _select(nodes)
    return [
        logic_density_series(chosen),
        sram_density_series(chosen),
        wire_delay_series(chosen),
        energy_per_op_series(chosen),
    ]
