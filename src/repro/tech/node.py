"""Per-node CMOS characteristics used by the area/power/cost models.

Values follow published industry trends (ITRS/WikiChip-style aggregates and
the Horowitz energy tables widely cited in architecture papers). Absolute
numbers matter less than the *ratios* between nodes: logic density roughly
doubles per node while SRAM bit density and wire performance improve far
more slowly — which is exactly Lesson 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ProcessNode:
    """One CMOS process node.

    Attributes:
        name: marketing name, e.g. ``"7nm"``.
        feature_nm: nominal feature size in nanometres.
        year: approximate year of high-volume availability.
        logic_density_mtr_mm2: logic transistor density, millions/mm^2.
        sram_bit_density_mbit_mm2: SRAM density, Mbit/mm^2.
        wire_delay_ps_mm: RC delay of a repeated mid-level wire, ps/mm.
        mac_energy_pj: energy of one bf16 multiply-accumulate, pJ.
        sram_read_energy_pj_byte: energy to read one byte from a large SRAM, pJ.
        dram_access_energy_pj_byte: energy to move one byte from off-chip DRAM/HBM, pJ.
        wafer_cost_usd: cost of one processed 300mm wafer, USD (for the TCO model).
        defect_density_per_cm2: D0 used by the yield model.
    """

    name: str
    feature_nm: float
    year: int
    logic_density_mtr_mm2: float
    sram_bit_density_mbit_mm2: float
    wire_delay_ps_mm: float
    mac_energy_pj: float
    sram_read_energy_pj_byte: float
    dram_access_energy_pj_byte: float
    wafer_cost_usd: float
    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        for field_name in (
            "feature_nm",
            "logic_density_mtr_mm2",
            "sram_bit_density_mbit_mm2",
            "wire_delay_ps_mm",
            "mac_energy_pj",
            "sram_read_energy_pj_byte",
            "dram_access_energy_pj_byte",
            "wafer_cost_usd",
            "defect_density_per_cm2",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def logic_area_mm2(self, transistors_m: float) -> float:
        """Area for ``transistors_m`` million logic transistors."""
        return transistors_m / self.logic_density_mtr_mm2

    def sram_area_mm2(self, capacity_bytes: float) -> float:
        """Area for a ``capacity_bytes`` SRAM macro (data bits only)."""
        mbit = capacity_bytes * 8 / 1e6
        return mbit / self.sram_bit_density_mbit_mm2

    def wire_delay_s(self, length_mm: float) -> float:
        """Delay of a repeated wire of the given length, in seconds."""
        return self.wire_delay_ps_mm * length_mm * 1e-12


# The trajectory the three TPU generations rode: TPUv1 at 28nm, TPUv2/v3 at
# 16nm, TPUv4i at 7nm, with neighbours included so the scaling figure has a
# full curve to draw. Logic density ~doubles per step; SRAM density improves
# ~1.4-1.8x; wire delay/mm barely improves (and worsens at the finest pitches).
NODES: Tuple[ProcessNode, ...] = (
    ProcessNode("45nm", 45, 2008, 3.3, 0.85, 90.0, 4.6, 1.20, 41.0, 2600, 0.25),
    ProcessNode("28nm", 28, 2011, 8.0, 1.55, 96.0, 2.4, 0.84, 35.0, 3000, 0.20),
    ProcessNode("16nm", 16, 2015, 28.9, 3.20, 105.0, 0.92, 0.52, 28.0, 3900, 0.12),
    ProcessNode("10nm", 10, 2017, 52.5, 4.70, 112.0, 0.62, 0.41, 25.0, 5100, 0.11),
    ProcessNode("7nm", 7, 2019, 96.5, 6.10, 120.0, 0.39, 0.33, 21.0, 9300, 0.10),
    ProcessNode("5nm", 5, 2021, 173.1, 8.10, 131.0, 0.26, 0.27, 18.0, 16900, 0.09),
)

_BY_NAME: Dict[str, ProcessNode] = {n.name: n for n in NODES}


def node_by_name(name: str) -> ProcessNode:
    """Look up a node by marketing name (``"7nm"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown process node {name!r}; known: {known}") from None
