"""Process-technology models (Lesson 1: technology advances unequally).

The paper's first lesson is that logic, SRAM, and wires improve at very
different rates as CMOS scales, which pushed TPUv4i toward big compute and
big on-chip memory *budgeted* against the parts of the chip that stopped
scaling. This package provides per-node density/delay/energy models and the
scaling trajectories the benchmark for that figure sweeps.
"""

from repro.tech.node import ProcessNode, NODES, node_by_name
from repro.tech.scaling import (
    ScalingSeries,
    logic_density_series,
    sram_density_series,
    wire_delay_series,
    energy_per_op_series,
    relative_improvement,
)

__all__ = [
    "ProcessNode",
    "NODES",
    "node_by_name",
    "ScalingSeries",
    "logic_density_series",
    "sram_density_series",
    "wire_delay_series",
    "energy_per_op_series",
    "relative_improvement",
]
