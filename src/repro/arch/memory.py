"""Memory hierarchy model: VMEM, CMEM, and HBM.

TPUv4i's headline memory feature is CMEM — 128 MiB of on-chip SRAM between
VMEM and HBM. Weights (and large activations) resident in CMEM stream at
several times HBM bandwidth and at a fraction of the pJ/byte, which is what
moves the memory-bound production apps up the roofline (experiment E7/E10).

:class:`MemorySystem` provides capacity checking, per-level transfer timing,
and a byte-traffic ledger that the power model consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.chip import ChipConfig
from repro.util.units import bytes_str


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy.

    Attributes:
        name: ``"vmem"``, ``"cmem"``, or ``"hbm"``.
        capacity_bytes: usable capacity.
        bandwidth: sustained bytes/s into the core.
        latency_cycles: load-use latency in core cycles.
    """

    name: str
    capacity_bytes: int
    bandwidth: float
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency_cycles < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Streaming time for ``num_bytes`` at this level's bandwidth."""
        if num_bytes < 0:
            raise ValueError("bytes must be non-negative")
        return num_bytes / self.bandwidth

    def transfer_cycles(self, num_bytes: float, clock_hz: float) -> int:
        """Streaming time in core cycles, including one load-use latency."""
        if num_bytes == 0:
            return 0
        streaming = self.transfer_seconds(num_bytes) * clock_hz
        return self.latency_cycles + math.ceil(streaming)


class MemorySystem:
    """The chip's hierarchy plus a traffic ledger.

    VMEM bandwidth is modeled as matching the compute datapath (it is a
    multi-banked scratchpad feeding the MXU/VPU directly), so in practice
    only CMEM and HBM appear as bandwidth limiters.
    """

    def __init__(self, chip: ChipConfig) -> None:
        self.chip = chip
        # VMEM feeds the MXU: size it to sustain the peak MAC operand rate.
        vmem_bw = chip.peak_ops * 1.0  # ~1 byte/op operand traffic at bf16
        self.vmem = MemoryLevel("vmem", chip.vmem_bytes, vmem_bw, 2)
        self.hbm = MemoryLevel("hbm", chip.hbm_bytes, chip.hbm_bw,
                               chip.hbm_latency_cycles)
        self.cmem: Optional[MemoryLevel] = None
        if chip.has_cmem:
            self.cmem = MemoryLevel("cmem", chip.cmem_bytes, chip.cmem_bw,
                                    chip.cmem_latency_cycles)
        self._traffic: Dict[str, float] = {level.name: 0.0 for level in self.levels()}

    def levels(self) -> List[MemoryLevel]:
        """All levels, fastest first."""
        found = [self.vmem]
        if self.cmem is not None:
            found.append(self.cmem)
        found.append(self.hbm)
        return found

    def level(self, name: str) -> MemoryLevel:
        """Look up a level by name; raises for a CMEM request on a CMEM-less chip."""
        for candidate in self.levels():
            if candidate.name == name:
                return candidate
        raise KeyError(f"{self.chip.name} has no memory level {name!r}")

    # ------------------------------------------------------------- placement

    def fits(self, name: str, num_bytes: float) -> bool:
        """Whether ``num_bytes`` fits in the named level."""
        return num_bytes <= self.level(name).capacity_bytes

    def weight_home(self, weight_bytes: float, reserved_cmem: float = 0.0) -> str:
        """Where a model's weights live: CMEM if they fit, else HBM.

        ``reserved_cmem`` carves out space already claimed (other tenants,
        activation buffers) — the multi-tenancy model relies on this.
        """
        if weight_bytes < 0 or reserved_cmem < 0:
            raise ValueError("byte counts must be non-negative")
        if self.cmem is not None:
            free = self.cmem.capacity_bytes - reserved_cmem
            if weight_bytes <= free:
                return "cmem"
        if weight_bytes > self.hbm.capacity_bytes:
            raise ValueError(
                f"weights ({bytes_str(weight_bytes)}) exceed HBM "
                f"({bytes_str(self.hbm.capacity_bytes)}) on {self.chip.name}"
            )
        return "hbm"

    # --------------------------------------------------------------- traffic

    def record_traffic(self, name: str, num_bytes: float) -> None:
        """Log bytes moved at a level (feeds the power model)."""
        if num_bytes < 0:
            raise ValueError("bytes must be non-negative")
        self.level(name)  # validate
        self._traffic[name] = self._traffic.get(name, 0.0) + num_bytes

    def traffic(self) -> Dict[str, float]:
        """Bytes moved per level since construction/reset."""
        return dict(self._traffic)

    def reset_traffic(self) -> None:
        self._traffic = {level.name: 0.0 for level in self.levels()}

    # ---------------------------------------------------------------- timing

    def stream_cycles(self, name: str, num_bytes: float) -> int:
        """Core cycles to stream ``num_bytes`` from the named level."""
        return self.level(name).transfer_cycles(num_bytes, self.chip.clock_hz)
