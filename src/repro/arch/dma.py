"""DMA engine model: asynchronous bulk transfers that overlap compute.

TPU programs hide HBM latency by issuing DMA descriptors early and blocking
on a sync flag only when the data is needed. The model tracks per-engine
queue serialization and shared-bandwidth contention: two engines pulling
from HBM simultaneously each see half the bandwidth. The simulator
(`repro.sim.core`) drives this to decide how much transfer time compute
actually hides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.arch.memory import MemorySystem


@dataclass(frozen=True)
class DmaTransfer:
    """One completed DMA: where it moved bytes and when.

    ``start_cycle``/``end_cycle`` are in core cycles. ``source`` is the
    bandwidth-limiting level (``"hbm"`` or ``"cmem"``).
    """

    source: str
    num_bytes: float
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle


class DmaEngine:
    """One DMA queue issuing serialized transfers from a memory level.

    ``contention`` scales effective bandwidth down when multiple engines
    share the level (the simulator sets it to the number of concurrently
    active engines on the same level).
    """

    def __init__(self, memory: MemorySystem, source: str, *,
                 per_transfer_overhead_cycles: int = 64) -> None:
        self.memory = memory
        self.source = source
        self.overhead = per_transfer_overhead_cycles
        self.busy_until = 0
        self.completed: List[DmaTransfer] = []
        memory.level(source)  # validate the level exists on this chip

    def issue(self, num_bytes: float, issue_cycle: int, contention: int = 1) -> DmaTransfer:
        """Issue a transfer; returns its completion record.

        The transfer starts when both the engine is free and the descriptor
        has been issued; duration is streaming time at ``bandwidth /
        contention`` plus fixed descriptor overhead.
        """
        if num_bytes < 0:
            raise ValueError("bytes must be non-negative")
        if contention < 1:
            raise ValueError("contention must be >= 1")
        level = self.memory.level(self.source)
        start = max(self.busy_until, issue_cycle)
        streaming_s = num_bytes * contention / level.bandwidth
        duration = self.overhead + level.latency_cycles + math.ceil(
            streaming_s * self.memory.chip.clock_hz)
        end = start + duration
        self.busy_until = end
        self.memory.record_traffic(self.source, num_bytes)
        transfer = DmaTransfer(self.source, num_bytes, start, end)
        self.completed.append(transfer)
        return transfer

    def total_bytes(self) -> float:
        """Bytes moved by this engine so far."""
        return sum(t.num_bytes for t in self.completed)

    def busy_cycles(self) -> int:
        """Cycles this engine spent transferring (its queue occupancy)."""
        return sum(t.duration for t in self.completed)

    def reset(self) -> None:
        self.busy_until = 0
        self.completed.clear()
