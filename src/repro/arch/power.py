"""Chip power model: static + activity-driven dynamic power.

Dynamic energy comes from the process node's per-event energies (MAC ops,
SRAM bytes, HBM bytes); static power is the chip's idle draw. The model
answers the two questions the paper's evaluation asks of it:

* average power while running a workload (for perf/W, experiment E8), and
* a bottom-up TDP estimate at peak activity (used by the design-space
  exploration to enforce Lesson 8's air-cooling ceiling).

Energy-per-event values scale with dtype: int8 MACs cost ~0.4x a bf16 MAC,
fp32 ~3x (multiplier energy grows roughly quadratically in mantissa width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.arch.chip import ChipConfig
from repro.tech.node import ProcessNode, node_by_name

# Relative MAC energy by operand type (bf16 = 1.0).
_DTYPE_MAC_ENERGY = {"int8": 0.4, "bf16": 1.0, "fp32": 3.0}
PICO = 1e-12


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power decomposition over an interval, in watts."""

    static_w: float
    mac_w: float
    sram_w: float
    hbm_w: float
    vector_w: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.mac_w + self.sram_w + self.hbm_w + self.vector_w

    def as_dict(self) -> Dict[str, float]:
        return {
            "static": self.static_w,
            "mac": self.mac_w,
            "sram": self.sram_w,
            "hbm": self.hbm_w,
            "vector": self.vector_w,
            "total": self.total_w,
        }


class PowerModel:
    """Energy accounting for one chip."""

    def __init__(self, chip: ChipConfig, node: ProcessNode = None) -> None:
        self.chip = chip
        self.node = node if node is not None else node_by_name(chip.process)

    def mac_energy_j(self, dtype: str = "bf16") -> float:
        """Energy of one MAC in joules for the given operand type."""
        try:
            scale = _DTYPE_MAC_ENERGY[dtype]
        except KeyError:
            known = ", ".join(sorted(_DTYPE_MAC_ENERGY))
            raise KeyError(f"unknown dtype {dtype!r}; known: {known}") from None
        return self.node.mac_energy_pj * scale * PICO

    def sram_energy_j(self, num_bytes: float) -> float:
        """Energy to move bytes through on-chip SRAM (VMEM/CMEM)."""
        return self.node.sram_read_energy_pj_byte * num_bytes * PICO

    def hbm_energy_j(self, num_bytes: float) -> float:
        """Energy to move bytes across the HBM interface."""
        return self.node.dram_access_energy_pj_byte * num_bytes * PICO

    def vector_energy_j(self, alu_ops: float) -> float:
        """Energy of VPU ALU ops (~half a MAC each: one operand pair, no array)."""
        return 0.5 * self.node.mac_energy_pj * alu_ops * PICO

    def average_power(self, duration_s: float, *, macs: float = 0.0,
                      dtype: str = "bf16", sram_bytes: float = 0.0,
                      hbm_bytes: float = 0.0, vector_ops: float = 0.0) -> PowerBreakdown:
        """Average power while the listed activity happened over ``duration_s``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        for name, value in (("macs", macs), ("sram_bytes", sram_bytes),
                            ("hbm_bytes", hbm_bytes), ("vector_ops", vector_ops)):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")
        return PowerBreakdown(
            static_w=self.chip.idle_w,
            mac_w=self.mac_energy_j(dtype) * macs / duration_s,
            sram_w=self.sram_energy_j(sram_bytes) / duration_s,
            hbm_w=self.hbm_energy_j(hbm_bytes) / duration_s,
            vector_w=self.vector_energy_j(vector_ops) / duration_s,
        )

    def power_from_traffic(self, duration_s: float, macs: float,
                           traffic: Mapping[str, float], dtype: str = "bf16",
                           vector_ops: float = 0.0) -> PowerBreakdown:
        """Average power from a :class:`MemorySystem` traffic ledger."""
        sram_bytes = traffic.get("vmem", 0.0) + traffic.get("cmem", 0.0)
        hbm_bytes = traffic.get("hbm", 0.0)
        return self.average_power(
            duration_s, macs=macs, dtype=dtype, sram_bytes=sram_bytes,
            hbm_bytes=hbm_bytes, vector_ops=vector_ops)

    # Datapath-to-chip ratio: clock distribution, uncore, SerDes/HBM PHY and
    # design margin roughly double the datapath's peak power. Calibrated so
    # the estimate lands near the published TDPs of TPUv2/v3/v4i.
    UNCORE_MARGIN = 1.8

    def tdp_estimate_w(self, dtype: str = "bf16") -> float:
        """Bottom-up peak power: all MXUs and full HBM bandwidth active,
        scaled by :attr:`UNCORE_MARGIN` for everything the activity model
        does not see (uncore, clocking, PHYs, margin).

        Used by the DSE to reject design points that bust the air-cooling
        envelope (Lesson 8), and checked in tests to land within ~2x of
        the configured TDP for the production generations.
        """
        seconds = 1.0
        macs = self.chip.macs_per_cycle * self.chip.clock_hz * seconds
        # Operand traffic at peak: ~2 input bytes + 2 output bytes per 128-MAC
        # column is dwarfed by systolic reuse; approximate SRAM traffic as
        # 2 bytes per MAC row entering the array.
        sram_bytes = 2.0 * macs / self.chip.mxu_dim
        hbm_bytes = self.chip.hbm_bw * seconds
        breakdown = self.average_power(
            seconds, macs=macs, dtype=dtype, sram_bytes=sram_bytes,
            hbm_bytes=hbm_bytes)
        return breakdown.total_w * self.UNCORE_MARGIN
