"""Hardware component models for the TPU generations.

This package is the "silicon" substrate: chip configurations for the three
training/inference generations the paper draws lessons from (TPUv1, TPUv2,
TPUv3) plus the design the lessons produced (TPUv4i), and timing/power models
for their major components — systolic MXUs, the vector unit, the on-chip
memory hierarchy (VMEM/CMEM), HBM, DMA engines, inter-chip links, and the
power/cooling envelope.
"""

from repro.arch.chip import (
    ChipConfig,
    TPUV1,
    TPUV2,
    TPUV3,
    TPUV4I,
    GENERATIONS,
    chip_by_name,
)
from repro.arch.mxu import MxuModel, MatmulTiming
from repro.arch.vpu import VpuModel
from repro.arch.memory import MemoryLevel, MemorySystem
from repro.arch.dma import DmaEngine, DmaTransfer
from repro.arch.ici import IciLink, IciNetwork
from repro.arch.power import PowerModel, PowerBreakdown
from repro.arch.cooling import CoolingSolution, AIR_COOLING, LIQUID_COOLING, junction_temp_c
from repro.arch.thermal import ThermalModel, ThermalSample
from repro.arch.config_io import chip_from_json, chip_to_json, load_chip, save_chip

__all__ = [
    "ChipConfig",
    "TPUV1",
    "TPUV2",
    "TPUV3",
    "TPUV4I",
    "GENERATIONS",
    "chip_by_name",
    "MxuModel",
    "MatmulTiming",
    "VpuModel",
    "MemoryLevel",
    "MemorySystem",
    "DmaEngine",
    "DmaTransfer",
    "IciLink",
    "IciNetwork",
    "PowerModel",
    "PowerBreakdown",
    "CoolingSolution",
    "AIR_COOLING",
    "LIQUID_COOLING",
    "junction_temp_c",
    "ThermalModel",
    "ThermalSample",
    "chip_from_json",
    "chip_to_json",
    "load_chip",
    "save_chip",
]
