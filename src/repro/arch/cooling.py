"""Cooling envelope model (Lesson 8: inference DSAs need air cooling).

Training pods live in a handful of purpose-built datacenters where liquid
cooling amortizes; inference chips deploy next to users in many ordinary
datacenters, so they must live inside an air-cooled server's thermal budget.
The model prices both solutions and computes junction temperature, giving
the DSE a hard feasibility constraint and the TCO model a cost input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.chip import ChipConfig

MAX_JUNCTION_C = 100.0
DEFAULT_AMBIENT_C = 30.0


@dataclass(frozen=True)
class CoolingSolution:
    """One cooling technology.

    Attributes:
        name: ``"air"`` or ``"liquid"``.
        thermal_resistance_c_per_w: junction-to-ambient thermal resistance.
        max_sustained_w: practical per-chip power ceiling for the solution.
        capex_usd_per_chip: heatsink/fans vs cold plates, pumps, manifolds.
        opex_w_per_chip_w: overhead power (fans/pumps) per watt removed.
        deployable_everywhere: whether ordinary datacenters support it —
            the property Lesson 8 turns on.
    """

    name: str
    thermal_resistance_c_per_w: float
    max_sustained_w: float
    capex_usd_per_chip: float
    opex_w_per_chip_w: float
    deployable_everywhere: bool

    def __post_init__(self) -> None:
        if self.thermal_resistance_c_per_w <= 0:
            raise ValueError("thermal resistance must be positive")
        if self.max_sustained_w <= 0:
            raise ValueError("power ceiling must be positive")

    def junction_temp_c(self, power_w: float,
                        ambient_c: float = DEFAULT_AMBIENT_C) -> float:
        """Steady-state junction temperature at the given power."""
        if power_w < 0:
            raise ValueError("power must be non-negative")
        return ambient_c + self.thermal_resistance_c_per_w * power_w

    def supports(self, power_w: float,
                 ambient_c: float = DEFAULT_AMBIENT_C) -> bool:
        """Whether the chip stays under both the power and junction limits."""
        return (power_w <= self.max_sustained_w
                and self.junction_temp_c(power_w, ambient_c) <= MAX_JUNCTION_C)

    def max_power_w(self, ambient_c: float = DEFAULT_AMBIENT_C) -> float:
        """Largest power this solution sustains at the given ambient."""
        thermal_limit = (MAX_JUNCTION_C - ambient_c) / self.thermal_resistance_c_per_w
        return min(self.max_sustained_w, thermal_limit)

    def overhead_power_w(self, chip_power_w: float) -> float:
        """Fan/pump power to remove ``chip_power_w``."""
        if chip_power_w < 0:
            raise ValueError("power must be non-negative")
        return self.opex_w_per_chip_w * chip_power_w


# An air-cooled server sled tops out near ~200 W per accelerator card;
# TPUv4i's 175 W TDP sits just inside. Liquid cold plates reach TPUv3's
# 450 W but cost far more and restrict where the chip can be deployed.
AIR_COOLING = CoolingSolution(
    name="air",
    thermal_resistance_c_per_w=0.33,
    max_sustained_w=200.0,
    capex_usd_per_chip=80.0,
    opex_w_per_chip_w=0.12,
    deployable_everywhere=True,
)

LIQUID_COOLING = CoolingSolution(
    name="liquid",
    thermal_resistance_c_per_w=0.10,
    max_sustained_w=600.0,
    capex_usd_per_chip=350.0,
    opex_w_per_chip_w=0.05,
    deployable_everywhere=False,
)

_SOLUTIONS = {"air": AIR_COOLING, "liquid": LIQUID_COOLING}


def solution_for(chip: ChipConfig) -> CoolingSolution:
    """The cooling solution a chip config declares."""
    return _SOLUTIONS[chip.cooling]


def junction_temp_c(chip: ChipConfig, power_w: float,
                    ambient_c: float = DEFAULT_AMBIENT_C) -> float:
    """Junction temperature of ``chip`` at ``power_w`` under its own cooling."""
    return solution_for(chip).junction_temp_c(power_w, ambient_c)


def air_coolable(tdp_w: float, ambient_c: float = DEFAULT_AMBIENT_C) -> bool:
    """The Lesson 8 predicate: can this TDP ship in an air-cooled server?"""
    return AIR_COOLING.supports(tdp_w, ambient_c)
