"""Timing model of a weight-stationary systolic matrix unit (MXU).

The MXU computes ``A[m,k] @ W[k,n]`` by loading a ``d x d`` tile of ``W``
into the array and streaming rows of ``A`` through it. The model captures
the effects that matter for the paper's arguments:

* pipeline fill/drain (~2d cycles per tile) penalizes small matmuls — this is
  why small batch hurts utilization but, per Lesson 9, latency (not batch) is
  the real limiter;
* weight-tile reload costs ``d`` cycles unless hidden by the double-buffered
  weight FIFO, which it is whenever a tile streams at least ``d`` rows;
* int8 runs the array at 1x the MAC rate on TPUv4i (same array, narrower
  operands) but halves the bytes moved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.chip import ChipConfig


@dataclass(frozen=True)
class MatmulTiming:
    """Cycle breakdown of one matmul on one core's MXUs.

    Attributes:
        cycles: total occupancy cycles of the MXU pipeline.
        ideal_cycles: lower bound with perfect utilization.
        tiles: number of ``d x d`` weight tiles processed.
        weight_load_cycles: cycles spent (un-hidden) loading weight tiles.
        utilization: ideal_cycles / cycles, in (0, 1].
        macs: multiply-accumulates performed.
    """

    cycles: int
    ideal_cycles: int
    tiles: int
    weight_load_cycles: int
    utilization: float
    macs: int


class MxuModel:
    """Timing for matmuls on the MXUs of one TensorCore."""

    def __init__(self, chip: ChipConfig) -> None:
        self.chip = chip
        self.dim = chip.mxu_dim
        self.arrays = chip.mxus_per_core

    def matmul(self, m: int, k: int, n: int) -> MatmulTiming:
        """Cycles to compute ``[m,k] @ [k,n]`` across this core's MXUs.

        Tiles over K and N; the K-tiles of one N-column accumulate in place.
        The ``arrays`` MXUs split the tile grid evenly (the compiler shards
        the N dimension); a remainder tile still costs a full pass.
        """
        if m <= 0 or k <= 0 or n <= 0:
            raise ValueError(f"matmul dims must be positive, got ({m}, {k}, {n})")
        d = self.dim
        k_tiles = math.ceil(k / d)
        n_tiles = math.ceil(n / d)
        tiles = k_tiles * n_tiles

        # Consecutive tiles pipeline: while tile i streams its m rows, the
        # double-buffered weight port loads tile i+1 (d cycles). A tile's
        # effective period is therefore max(m, d) — short streams (m < d)
        # are weight-load bound, the MXU-starvation regime small batches
        # put LSTMs in.
        per_tile = max(m, d)
        exposed_load_total = max(0, d - m) * tiles

        # One pipeline fill+drain for the whole sequence of tiles.
        total_stream = tiles * per_tile + 2 * d
        # The MXUs of the core run tile-columns in parallel.
        cycles = math.ceil(total_stream / self.arrays)

        macs = m * k * n
        ideal = math.ceil(macs / (self.arrays * d * d))
        cycles = max(cycles, ideal)
        return MatmulTiming(
            cycles=cycles,
            ideal_cycles=ideal,
            tiles=tiles,
            weight_load_cycles=exposed_load_total,
            utilization=ideal / cycles,
            macs=macs,
        )

    def conv2d(self, batch: int, out_h: int, out_w: int, in_ch: int,
               out_ch: int, kernel_h: int, kernel_w: int) -> MatmulTiming:
        """Convolution as an im2col matmul (how XLA maps conv to the MXU).

        ``M = batch*out_h*out_w``, ``K = kernel_h*kernel_w*in_ch``,
        ``N = out_ch``.
        """
        m = batch * out_h * out_w
        k = kernel_h * kernel_w * in_ch
        return self.matmul(m, k, out_ch)

    def peak_macs_per_cycle(self) -> int:
        """MACs/cycle at 100% utilization for this core."""
        return self.arrays * self.dim * self.dim
