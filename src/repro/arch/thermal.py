"""Transient thermal model and DVFS throttling (Lesson 8, quantified).

The cooling module answers "does this TDP fit?"; this module answers the
sharper question: *how much performance does a chip actually sustain*
under continuous load. A first-order RC model integrates junction
temperature; when it crosses the throttle threshold the governor steps
the clock down (dynamic power ~ f^3 at constant-voltage-scaling margins),
and steps back up when there is headroom.

The punchline for TPUv4i: at 175 W under air the chip sustains 100% of
nominal frequency. Push the same air cooler to a 250-320 W design and
the *sustained* clock falls 10-25% — the paper's air-cooling ceiling is
about delivered performance, not just mechanical feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch.chip import ChipConfig
from repro.arch.cooling import CoolingSolution, DEFAULT_AMBIENT_C, solution_for

THROTTLE_TEMP_C = 95.0
RECOVERY_TEMP_C = 88.0
_FREQ_STEP = 0.05
_MIN_FREQ_FACTOR = 0.4
_POWER_EXPONENT = 3.0  # dynamic power ~ f^3 (voltage tracks frequency)


@dataclass(frozen=True)
class ThermalSample:
    """One timestep of a transient simulation."""

    time_s: float
    junction_c: float
    power_w: float
    freq_factor: float
    throttled: bool


class ThermalModel:
    """First-order RC junction model with a DVFS governor."""

    def __init__(self, chip: ChipConfig, *,
                 cooling: CoolingSolution = None,
                 ambient_c: float = DEFAULT_AMBIENT_C,
                 time_constant_s: float = 2.0) -> None:
        if time_constant_s <= 0:
            raise ValueError("time constant must be positive")
        self.chip = chip
        self.cooling = cooling if cooling is not None else solution_for(chip)
        self.ambient_c = ambient_c
        self.tau = time_constant_s

    # ------------------------------------------------------------ steady state

    def power_at_frequency(self, busy_power_w: float,
                           freq_factor: float) -> float:
        """Chip power when throttled to ``freq_factor`` of nominal clock."""
        if not 0 < freq_factor <= 1.0:
            raise ValueError("frequency factor must be in (0, 1]")
        dynamic = max(0.0, busy_power_w - self.chip.idle_w)
        return self.chip.idle_w + dynamic * freq_factor**_POWER_EXPONENT

    def steady_junction_c(self, power_w: float) -> float:
        return self.cooling.junction_temp_c(power_w, self.ambient_c)

    def sustained_frequency_factor(self, busy_power_w: float) -> float:
        """Largest clock factor whose steady-state stays under the limit.

        1.0 means no throttling: the design delivers its nominal
        performance indefinitely under this cooling solution.
        """
        if busy_power_w < 0:
            raise ValueError("power must be non-negative")
        factor = 1.0
        while factor > _MIN_FREQ_FACTOR:
            power = self.power_at_frequency(busy_power_w, factor)
            if self.steady_junction_c(power) <= THROTTLE_TEMP_C:
                return factor
            factor = round(factor - _FREQ_STEP, 10)
        return _MIN_FREQ_FACTOR

    def sustained_performance_fraction(self, busy_power_w: float) -> float:
        """Delivered fraction of nominal throughput under continuous load."""
        return self.sustained_frequency_factor(busy_power_w)

    # -------------------------------------------------------------- transient

    def simulate(self, load_power_w: Sequence[float], dt_s: float = 0.1
                 ) -> List[ThermalSample]:
        """Integrate temperature over a power trace with the governor active.

        ``load_power_w[i]`` is the *unthrottled* chip power demanded during
        interval ``i``; the governor scales the dynamic part down whenever
        the junction crosses the throttle threshold, and restores it once
        the junction recovers.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        junction = float(self.ambient_c)
        freq = 1.0
        samples: List[ThermalSample] = []
        for index, demand in enumerate(load_power_w):
            if demand < 0:
                raise ValueError("power demand must be non-negative")
            if junction > THROTTLE_TEMP_C and freq > _MIN_FREQ_FACTOR:
                freq = max(_MIN_FREQ_FACTOR, round(freq - _FREQ_STEP, 10))
            elif junction < RECOVERY_TEMP_C and freq < 1.0:
                freq = min(1.0, round(freq + _FREQ_STEP, 10))
            power = self.power_at_frequency(demand, freq)
            target = self.steady_junction_c(power)
            junction += (target - junction) * (1.0 - pow(2.718281828,
                                                         -dt_s / self.tau))
            samples.append(ThermalSample(
                time_s=(index + 1) * dt_s,
                junction_c=junction,
                power_w=power,
                freq_factor=freq,
                throttled=freq < 1.0,
            ))
        return samples

    @staticmethod
    def delivered_fraction(samples: Sequence[ThermalSample]) -> float:
        """Mean frequency factor over a transient run (delivered/nominal)."""
        if not samples:
            raise ValueError("no samples")
        return sum(s.freq_factor for s in samples) / len(samples)
