"""Timing model of the vector processing unit (VPU).

The VPU executes everything the MXU cannot: activations, normalization,
softmax, elementwise arithmetic, and reductions. Its throughput is
``lanes * sublanes * 2`` ops/cycle per core. Transcendentals (exp, tanh,
erf) run on a slower special-function path, which is why softmax-heavy
models (BERT's attention) show up below the roofline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.chip import ChipConfig

# Cost in ALU-op equivalents of one element of each vector operation class.
_OP_COST = {
    "add": 1.0,
    "sub": 1.0,
    "mul": 1.0,
    "max": 1.0,
    "min": 1.0,
    "select": 1.0,
    "compare": 1.0,
    "relu": 1.0,
    "div": 4.0,
    "rsqrt": 4.0,
    "exp": 6.0,
    "tanh": 8.0,
    "erf": 8.0,
    "sigmoid": 8.0,
    "gelu": 10.0,
    "reduce": 1.0,
    "copy": 0.5,
}


@dataclass(frozen=True)
class VectorTiming:
    """Cycle cost of a vector operation over ``elements`` elements."""

    cycles: int
    elements: int
    alu_ops: float


class VpuModel:
    """Per-core vector unit timing."""

    def __init__(self, chip: ChipConfig) -> None:
        self.chip = chip
        self.ops_per_cycle = chip.vpu_lanes * chip.vpu_sublanes * 2

    @staticmethod
    def known_ops() -> tuple:
        """The vector op classes this model prices."""
        return tuple(sorted(_OP_COST))

    def op_cost(self, op: str) -> float:
        """ALU-op equivalents per element for ``op``."""
        try:
            return _OP_COST[op]
        except KeyError:
            known = ", ".join(sorted(_OP_COST))
            raise KeyError(f"unknown vector op {op!r}; known: {known}") from None

    def elementwise(self, op: str, elements: int) -> VectorTiming:
        """Cycles for an elementwise op over ``elements`` values on one core."""
        if elements < 0:
            raise ValueError(f"elements must be non-negative, got {elements}")
        alu_ops = self.op_cost(op) * elements
        cycles = math.ceil(alu_ops / self.ops_per_cycle) if elements else 0
        return VectorTiming(cycles=cycles, elements=elements, alu_ops=alu_ops)

    def reduction(self, elements: int, axis_len: int) -> VectorTiming:
        """Cycles for a reduction: one pass plus a log-depth combine tree."""
        if elements < 0 or axis_len <= 0:
            raise ValueError("elements must be >= 0 and axis_len positive")
        base = self.elementwise("reduce", elements)
        tree_steps = max(1, math.ceil(math.log2(max(axis_len, 2))))
        return VectorTiming(
            cycles=base.cycles + tree_steps,
            elements=elements,
            alu_ops=base.alu_ops + tree_steps,
        )

    def softmax(self, rows: int, row_len: int) -> VectorTiming:
        """Cycles for a row-softmax: max-reduce, exp, sum-reduce, divide."""
        elements = rows * row_len
        max_pass = self.reduction(elements, row_len)
        exp_pass = self.elementwise("exp", elements)
        sum_pass = self.reduction(elements, row_len)
        div_pass = self.elementwise("div", elements)
        cycles = max_pass.cycles + exp_pass.cycles + sum_pass.cycles + div_pass.cycles
        ops = max_pass.alu_ops + exp_pass.alu_ops + sum_pass.alu_ops + div_pass.alu_ops
        return VectorTiming(cycles=cycles, elements=elements, alu_ops=ops)
