"""Inter-chip interconnect (ICI) model.

TPUv2/v3 connect into 2-D torus pods for training; TPUv4i keeps two ICI
links so inference deployments can gang up to four chips for models whose
weights or SLOs exceed one chip. The model prices point-to-point transfers
and the simple collectives the multi-chip examples use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.chip import ChipConfig


@dataclass(frozen=True)
class IciLink:
    """One serial link: bandwidth in bytes/s and fixed hop latency."""

    bandwidth: float
    latency_s: float = 1e-6

    def __post_init__(self) -> None:
        # Validated here, at construction, with the offending value named
        # (the FaultModel convention): a NaN would pass every downstream
        # comparison and poison every latency it touches, a zero or
        # negative bandwidth would turn transfer times into inf/negative
        # seconds deep inside a collective cost model.
        if math.isnan(self.bandwidth):
            raise ValueError("bandwidth must not be NaN")
        if self.bandwidth <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth}")
        if math.isnan(self.latency_s):
            raise ValueError("latency_s must not be NaN")
        if self.latency_s < 0:
            raise ValueError(
                f"latency_s must be non-negative, got {self.latency_s}")

    def transfer_seconds(self, num_bytes: float) -> float:
        if math.isnan(num_bytes):
            raise ValueError("bytes must not be NaN")
        if num_bytes < 0:
            raise ValueError(f"bytes must be non-negative, got {num_bytes}")
        return self.latency_s + num_bytes / self.bandwidth


class IciNetwork:
    """A ring of ``num_chips`` identical chips (TPUv4i's deployment shape).

    Raises at construction if the chip has no ICI links (TPUv1 was a
    single-chip PCIe accelerator).
    """

    def __init__(self, chip: ChipConfig, num_chips: int) -> None:
        if num_chips < 1:
            raise ValueError("need at least one chip")
        if num_chips > 1 and chip.ici_links == 0:
            raise ValueError(f"{chip.name} has no ICI links; cannot build a ring")
        self.chip = chip
        self.num_chips = num_chips
        self.link = IciLink(chip.ici_link_bw) if chip.ici_links else None

    def point_to_point_seconds(self, num_bytes: float, hops: int = 1) -> float:
        """Time to move bytes ``hops`` ring-hops away (store-and-forward)."""
        if self.num_chips == 1 or hops == 0:
            return 0.0
        assert self.link is not None
        if hops < 0 or hops > self.num_chips // 2:
            raise ValueError(f"hops must be in [0, {self.num_chips // 2}]")
        return hops * self.link.transfer_seconds(num_bytes)

    def all_reduce_seconds(self, num_bytes: float) -> float:
        """Ring all-reduce: 2*(p-1)/p of the data crosses each link."""
        if self.num_chips == 1:
            return 0.0
        assert self.link is not None
        p = self.num_chips
        steps = 2 * (p - 1)
        chunk = num_bytes / p
        return steps * self.link.transfer_seconds(chunk)

    def all_gather_seconds(self, num_bytes_per_chip: float) -> float:
        """Ring all-gather of per-chip shards."""
        if self.num_chips == 1:
            return 0.0
        assert self.link is not None
        steps = self.num_chips - 1
        return steps * self.link.transfer_seconds(num_bytes_per_chip)

    def sharded_weight_bytes(self, total_weight_bytes: float) -> float:
        """Per-chip weight footprint when a model is sharded over the ring."""
        if total_weight_bytes < 0:
            raise ValueError("bytes must be non-negative")
        return math.ceil(total_weight_bytes / self.num_chips)
