"""Chip configurations for the four TPU generations (the paper's Table 1).

Each :class:`ChipConfig` carries the architectural parameters every other
model in the library derives from: MXU organization and clock set peak
throughput; the memory hierarchy sets roofline slopes; process node feeds the
power and cost models; the cooling field encodes Lesson 8's air-cooling
constraint. Published values are used where public (process node, clocks, MXU
counts, HBM bandwidths, TDPs); the rest are set to reproduce the published
peaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.util.units import GHZ, GIB, MHZ, MIB, GIGA, TERA


@dataclass(frozen=True)
class ChipConfig:
    """One TPU chip design point.

    Attributes:
        name: e.g. ``"TPUv4i"``.
        generation: 1-4; drives ISA binary-format versioning (Lesson 2).
        year_deployed: first production deployment.
        process: process-node name resolvable via ``repro.tech.node_by_name``.
        die_mm2: die area.
        cores: TensorCores per chip.
        mxus_per_core: systolic arrays per core.
        mxu_dim: systolic array dimension (128, or 256 on TPUv1).
        clock_hz: core clock.
        vpu_lanes / vpu_sublanes: vector unit shape; ops/cycle = lanes*sublanes*2.
        vmem_bytes: per-core vector memory (compiler-managed scratchpad).
        cmem_bytes: per-chip "common memory" SRAM (TPUv4i's 128 MiB; 0 elsewhere).
        hbm_bytes / hbm_bw: off-chip memory capacity and bandwidth (DDR3 on v1).
        hbm_latency_cycles: load-use latency of off-chip memory.
        cmem_bw / cmem_latency_cycles: CMEM bandwidth/latency (ignored if no CMEM).
        ici_links / ici_link_bw: inter-chip interconnect.
        tdp_w / idle_w: thermal design power and idle power.
        cooling: ``"air"`` or ``"liquid"`` (Lesson 8).
        dtypes: supported arithmetic types (Lesson 7: v4i keeps bf16).
        isa_version: binary-format version; differs every generation, which is
            why binary compatibility was abandoned in favour of compiler
            compatibility (Lesson 2).
    """

    name: str
    generation: int
    year_deployed: int
    process: str
    die_mm2: float
    cores: int
    mxus_per_core: int
    mxu_dim: int
    clock_hz: float
    vpu_lanes: int
    vpu_sublanes: int
    vmem_bytes: int
    cmem_bytes: int
    hbm_bytes: int
    hbm_bw: float
    hbm_latency_cycles: int
    cmem_bw: float
    cmem_latency_cycles: int
    ici_links: int
    ici_link_bw: float
    tdp_w: float
    idle_w: float
    cooling: str
    dtypes: Tuple[str, ...]
    isa_version: int

    def __post_init__(self) -> None:
        if self.cooling not in ("air", "liquid"):
            raise ValueError(f"cooling must be 'air' or 'liquid', got {self.cooling!r}")
        if self.mxu_dim <= 0 or self.cores <= 0 or self.mxus_per_core <= 0:
            raise ValueError("core/MXU organization must be positive")
        if self.cmem_bytes < 0 or self.vmem_bytes <= 0:
            raise ValueError("memory capacities must be non-negative (vmem positive)")
        if self.idle_w >= self.tdp_w:
            raise ValueError("idle power must be below TDP")
        if not self.dtypes:
            raise ValueError("a chip must support at least one dtype")

    # ------------------------------------------------------------------ peaks

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle across all MXUs."""
        return self.cores * self.mxus_per_core * self.mxu_dim * self.mxu_dim

    @property
    def peak_ops(self) -> float:
        """Peak ops/s (1 MAC = 2 ops), the roofline ceiling."""
        return 2.0 * self.macs_per_cycle * self.clock_hz

    @property
    def peak_tops(self) -> float:
        """Peak throughput in tera-ops/s (TOPS) for reporting."""
        return self.peak_ops / TERA

    @property
    def vpu_ops_per_cycle(self) -> int:
        """Peak vector ops/cycle (2 ALU ops per sublane)."""
        return self.cores * self.vpu_lanes * self.vpu_sublanes * 2

    @property
    def on_chip_bytes(self) -> int:
        """Total software-visible on-chip memory (VMEM across cores + CMEM)."""
        return self.cores * self.vmem_bytes + self.cmem_bytes

    @property
    def has_cmem(self) -> bool:
        return self.cmem_bytes > 0

    def supports_dtype(self, dtype: str) -> bool:
        return dtype in self.dtypes

    def ridge_ops_per_byte(self) -> float:
        """Operational intensity where HBM bandwidth stops limiting (roofline ridge)."""
        return self.peak_ops / self.hbm_bw

    def variant(self, name: str, **overrides) -> "ChipConfig":
        """A renamed copy with overridden fields, for design-space exploration."""
        return replace(self, name=name, **overrides)


# --------------------------------------------------------------------------
# The four generations. Peak checks (asserted in tests):
#   TPUv1:  1 core * 1 MXU * 256^2 MACs * 2 * 700 MHz  = 91.8 TOPS (int8)
#   TPUv2:  2 cores * 1 MXU * 128^2 * 2 * 700 MHz      = 45.9 TFLOPS (bf16)
#   TPUv3:  2 cores * 2 MXU * 128^2 * 2 * 940 MHz      = 123.2 TFLOPS (bf16)
#   TPUv4i: 1 core * 4 MXU * 128^2 * 2 * 1.05 GHz      = 137.6 TOPS (bf16/int8)
# --------------------------------------------------------------------------

TPUV1 = ChipConfig(
    name="TPUv1",
    generation=1,
    year_deployed=2015,
    process="28nm",
    die_mm2=331.0,
    cores=1,
    mxus_per_core=1,
    mxu_dim=256,
    clock_hz=700 * MHZ,
    vpu_lanes=256,
    vpu_sublanes=1,
    vmem_bytes=24 * MIB,  # the Unified Buffer
    cmem_bytes=0,
    hbm_bytes=8 * GIB,  # DDR3, not HBM
    hbm_bw=34 * GIGA,
    hbm_latency_cycles=220,
    cmem_bw=0.0,
    cmem_latency_cycles=0,
    ici_links=0,
    ici_link_bw=0.0,
    tdp_w=75.0,
    idle_w=28.0,
    cooling="air",
    dtypes=("int8",),
    isa_version=1,
)

TPUV2 = ChipConfig(
    name="TPUv2",
    generation=2,
    year_deployed=2017,
    process="16nm",
    die_mm2=611.0,
    cores=2,
    mxus_per_core=1,
    mxu_dim=128,
    clock_hz=700 * MHZ,
    vpu_lanes=128,
    vpu_sublanes=8,
    vmem_bytes=16 * MIB,
    cmem_bytes=0,
    hbm_bytes=16 * GIB,
    hbm_bw=700 * GIGA,
    hbm_latency_cycles=240,
    cmem_bw=0.0,
    cmem_latency_cycles=0,
    ici_links=4,
    ici_link_bw=62.5 * GIGA,
    tdp_w=280.0,
    idle_w=100.0,
    cooling="air",
    dtypes=("bf16", "fp32"),
    isa_version=2,
)

TPUV3 = ChipConfig(
    name="TPUv3",
    generation=3,
    year_deployed=2018,
    process="16nm",
    die_mm2=648.0,
    cores=2,
    mxus_per_core=2,
    mxu_dim=128,
    clock_hz=940 * MHZ,
    vpu_lanes=128,
    vpu_sublanes=8,
    vmem_bytes=16 * MIB,
    cmem_bytes=0,
    hbm_bytes=32 * GIB,
    hbm_bw=900 * GIGA,
    hbm_latency_cycles=250,
    cmem_bw=0.0,
    cmem_latency_cycles=0,
    ici_links=4,
    ici_link_bw=81.25 * GIGA,
    tdp_w=450.0,
    idle_w=160.0,
    cooling="liquid",
    dtypes=("bf16", "fp32"),
    isa_version=3,
)

TPUV4I = ChipConfig(
    name="TPUv4i",
    generation=4,
    year_deployed=2020,
    process="7nm",
    die_mm2=400.0,
    cores=1,
    mxus_per_core=4,
    mxu_dim=128,
    clock_hz=1.05 * GHZ,
    vpu_lanes=128,
    vpu_sublanes=8,
    vmem_bytes=16 * MIB,
    cmem_bytes=128 * MIB,
    hbm_bytes=8 * GIB,
    hbm_bw=614 * GIGA,
    hbm_latency_cycles=260,
    cmem_bw=2.8 * TERA,  # wide on-chip SRAM: several x HBM bandwidth
    cmem_latency_cycles=20,
    ici_links=2,
    ici_link_bw=100 * GIGA,
    tdp_w=175.0,
    idle_w=55.0,
    cooling="air",
    dtypes=("bf16", "int8", "fp32"),
    isa_version=4,
)

GENERATIONS: Tuple[ChipConfig, ...] = (TPUV1, TPUV2, TPUV3, TPUV4I)

_BY_NAME: Dict[str, ChipConfig] = {c.name: c for c in GENERATIONS}


def chip_by_name(name: str) -> ChipConfig:
    """Look up a production generation by name (``"TPUv4i"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown chip {name!r}; known: {known}") from None
