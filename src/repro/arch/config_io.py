"""Chip configuration serialization: define custom chips in JSON.

Design-space exploration beyond the built-in grid wants chips defined in
files (reviewable, diffable, shareable). A chip JSON is simply the
:class:`~repro.arch.chip.ChipConfig` fields; everything the library does
— compile, simulate, TCO, thermal — works on a loaded chip unchanged.

Example::

    {
      "name": "v4-lite", "generation": 4, "year_deployed": 2021,
      "process": "7nm", "die_mm2": 250, "cores": 1, "mxus_per_core": 2,
      "mxu_dim": 128, "clock_hz": 1.05e9, "vpu_lanes": 128,
      "vpu_sublanes": 8, "vmem_bytes": 16777216, "cmem_bytes": 67108864,
      "hbm_bytes": 8589934592, "hbm_bw": 4.0e11, "hbm_latency_cycles": 260,
      "cmem_bw": 2.8e12, "cmem_latency_cycles": 20, "ici_links": 2,
      "ici_link_bw": 1.0e11, "tdp_w": 110, "idle_w": 40, "cooling": "air",
      "dtypes": ["bf16", "int8"], "isa_version": 4
    }
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

from repro.arch.chip import ChipConfig
from repro.tech.node import node_by_name


def chip_to_json(chip: ChipConfig, indent: int = 2) -> str:
    """Serialize a chip config to JSON text."""
    payload = dataclasses.asdict(chip)
    payload["dtypes"] = list(payload["dtypes"])
    return json.dumps(payload, indent=indent)


def chip_from_json(text: str) -> ChipConfig:
    """Parse a chip config; validates fields via the dataclass and the
    process-node registry."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid chip JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("chip JSON must be an object")
    field_names = {f.name for f in dataclasses.fields(ChipConfig)}
    unknown = set(payload) - field_names
    if unknown:
        raise ValueError(f"unknown chip fields: {sorted(unknown)}")
    missing = field_names - set(payload)
    if missing:
        raise ValueError(f"missing chip fields: {sorted(missing)}")
    payload["dtypes"] = tuple(payload["dtypes"])
    chip = ChipConfig(**payload)
    node_by_name(chip.process)  # must be a known process node
    return chip


def save_chip(chip: ChipConfig, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a chip config to a JSON file."""
    out = pathlib.Path(path)
    out.write_text(chip_to_json(chip) + "\n")
    return out


def load_chip(path: Union[str, pathlib.Path]) -> ChipConfig:
    """Read a chip config from a JSON file."""
    return chip_from_json(pathlib.Path(path).read_text())
