"""Inference serving models (Lesson 9: latency limits batch; Lesson 4:
multi-tenancy).

A discrete-event serving simulator drives the chip simulator with
synthetic request streams: dynamic batching under an SLO shows how the
latency budget — never an architectural cap — picks the batch size, and
the multi-tenant scheduler quantifies weight-swap costs vs CMEM
partitioning when several models share one chip.

Failures are first-class: ``ServingSimulator.simulate`` accepts a
seeded :class:`~repro.faults.model.FaultModel` (lost batches are
retried on surviving cores under a budget), and :func:`plan_fleet`
sizes N+k fleets whose SLO holds with ``k`` chips failed. Request
conservation is a :class:`ServingStats` constructor invariant —
``requests == served + dropped + shed`` — so no accounting path can
silently lose a request.

One level up, :mod:`repro.cluster` replicates this simulator N ways
behind a health-checked router (admission control, hedging, graceful
degradation) and sizes N+k by *simulated* availability instead of rule
of thumb; a one-replica passthrough cluster is bit-identical to a plain
``ServingSimulator`` run.

Generative models get their own loop: :mod:`repro.serving.continuous`
admits decode *iterations* (not whole requests) into per-core slots —
continuous batching — with the SLO split into TTFT and per-token
budgets, driven by the prefill/decode phase programs in
:mod:`repro.workloads.generative`. Its fault story is checkpointed:
:mod:`repro.serving.recovery` prices every-k-token KV snapshots as
lowered-IR DMA programs, so killed sequences resume from their last
snapshot (delta re-prefill), permanently dead cores migrate their
queues to survivors, and :class:`ContinuousStats` reports goodput —
useful tokens over computed tokens.
"""

from repro.serving.slo import Slo, percentile, percentile_sorted
from repro.serving.batching import BatchPolicy
from repro.serving.server import ServingSimulator, ServingStats
from repro.serving.fastserve import (
    FastServeStats,
    clear_fastserve,
    fastserve_disabled,
    fastserve_enabled,
    fastserve_stats,
)
from repro.serving.fleet import FleetPlan, plan_fleet
from repro.serving.priority import TwoTierServer, TwoTierStats
from repro.serving.multitenancy import (
    Tenant,
    MultiTenantSim,
    MultiTenantStats,
    TenantWindowStats,
    partition_cmem,
)
from repro.serving.continuous import (
    ContinuousBatchingSimulator,
    ContinuousStats,
    GenerativeSlo,
    LlmChaosRow,
    LlmSweepRow,
    llm_chaos_sweep,
    llm_sweep,
    phase_latency_table,
)
from repro.serving.recovery import (
    DEFAULT_HOST_LINK,
    HOST_LEVEL,
    RecoveryPolicy,
    snapshot_latency_table,
    snapshot_lowered,
    snapshot_replay,
    snapshot_seconds,
)

__all__ = [
    "Slo",
    "percentile",
    "percentile_sorted",
    "BatchPolicy",
    "FastServeStats",
    "clear_fastserve",
    "fastserve_disabled",
    "fastserve_enabled",
    "fastserve_stats",
    "ServingSimulator",
    "ServingStats",
    "FleetPlan",
    "TwoTierServer",
    "TwoTierStats",
    "plan_fleet",
    "Tenant",
    "MultiTenantSim",
    "MultiTenantStats",
    "TenantWindowStats",
    "partition_cmem",
    "ContinuousBatchingSimulator",
    "ContinuousStats",
    "GenerativeSlo",
    "LlmChaosRow",
    "LlmSweepRow",
    "llm_chaos_sweep",
    "llm_sweep",
    "phase_latency_table",
    "DEFAULT_HOST_LINK",
    "HOST_LEVEL",
    "RecoveryPolicy",
    "snapshot_latency_table",
    "snapshot_lowered",
    "snapshot_replay",
    "snapshot_seconds",
]
