"""Discrete-event serving simulator.

Feeds a request stream through a dynamic batcher onto a chip's cores
(each core is an independent server running one batch at a time). Batch
compute latencies come from the cycle simulator, memoized per compiled
batch size, so a multi-second traffic simulation costs only a handful of
program simulations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.design_point import DesignPoint
from repro.serving.batching import BatchPolicy
from repro.serving.slo import Slo, percentile
from repro.workloads.generator import Request
from repro.workloads.models import WorkloadSpec


@dataclass(frozen=True)
class ServingStats:
    """Latency/throughput summary of one serving simulation."""

    workload: str
    chip: str
    requests: int
    duration_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_batch: float
    throughput_qps: float
    slo_violation_fraction: float

    def describe(self) -> str:
        return (f"{self.workload} on {self.chip}: {self.requests} reqs, "
                f"p99 {self.p99_s * 1e3:.2f} ms, mean batch "
                f"{self.mean_batch:.1f}, {self.throughput_qps:.0f} qps, "
                f"{self.slo_violation_fraction:.1%} SLO violations")


class ServingSimulator:
    """Simulates request serving for one workload on one design point."""

    def __init__(self, point: DesignPoint, spec: WorkloadSpec,
                 policy: BatchPolicy, slo: Slo) -> None:
        self.point = point
        self.spec = spec
        self.policy = policy
        self.slo = slo
        self._latency_cache: dict[int, float] = {}

    def batch_latency_s(self, batch: int) -> float:
        """Compute latency of one padded batch (memoized).

        Lookups route through the design point and therefore through the
        engine's :class:`~repro.engine.cache.EvalCache`: a second
        simulator over the same (chip, workload) — or a later process
        with the disk tier on — reuses these latencies.
        """
        padded = self.policy.padded_size(batch)
        if padded not in self._latency_cache:
            self._latency_cache[padded] = self.point.latency_s(
                self.spec, padded)
        return self._latency_cache[padded]

    def prewarm(self, workers: Optional[int] = None) -> dict[int, float]:
        """Precompute latencies for every padded batch step, in parallel.

        Fans the policy's batch steps out over the engine's process pool
        (``workers=None`` sizes it to the machine) and seeds both the
        local memo and the global cache, so the event loop never stalls
        on a cold compile/simulate.
        """
        steps = list(BatchPolicy.batch_steps(self.policy.max_batch))
        from repro.engine.sweeps import batch_latency_grid
        grid = batch_latency_grid(self.point.chip, self.spec.name, steps,
                                  version=self.point.version,
                                  workers=workers)
        self._latency_cache.update(grid)
        return dict(grid)

    def simulate(self, requests: Sequence[Request]) -> ServingStats:
        """Run the event loop over a time-sorted request stream."""
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        arrivals = [r.arrival_s for r in requests]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("requests must be sorted by arrival time")

        cores = self.point.chip.cores
        servers = [0.0] * cores
        heapq.heapify(servers)

        latencies: list[float] = []
        batch_sizes: list[int] = []
        index = 0
        queue: list[float] = []  # arrival times of queued requests
        total = len(arrivals)
        last_completion = 0.0

        while index < total or queue:
            if not queue:
                queue.append(arrivals[index])
                index += 1
            server_free = servers[0]
            # Absorb arrivals that land before this batch could launch.
            while (index < total and len(queue) < self.policy.max_batch):
                deadline = queue[0] + self.policy.max_wait_s
                horizon = max(server_free, deadline)
                if arrivals[index] <= horizon:
                    queue.append(arrivals[index])
                    index += 1
                else:
                    break
            if len(queue) >= self.policy.max_batch:
                ready = queue[self.policy.max_batch - 1]
            else:
                ready = queue[0] + self.policy.max_wait_s
            launch = max(server_free, ready)

            size = min(len(queue), self.policy.max_batch)
            batch, queue = queue[:size], queue[size:]
            completion = launch + self.batch_latency_s(size)
            heapq.heapreplace(servers, completion)
            latencies.extend(completion - a for a in batch)
            batch_sizes.append(size)
            last_completion = max(last_completion, completion)

        duration = max(last_completion, arrivals[-1]) - arrivals[0]
        return ServingStats(
            workload=self.spec.name,
            chip=self.point.chip.name,
            requests=total,
            duration_s=duration,
            p50_s=percentile(latencies, 50),
            p95_s=percentile(latencies, 95),
            p99_s=percentile(latencies, 99),
            mean_batch=sum(batch_sizes) / len(batch_sizes),
            throughput_qps=total / duration if duration > 0 else float("inf"),
            slo_violation_fraction=self.slo.violation_fraction(latencies),
        )

    def max_slo_batch(self) -> int:
        """Largest compiled batch step whose *compute alone* fits the SLO.

        The Lesson 9 headline number: even with zero queueing, the latency
        budget caps the batch.
        """
        best = 0
        for step in BatchPolicy.batch_steps(self.policy.max_batch):
            if self.batch_latency_s(step) <= self.slo.limit_s:
                best = max(best, step)
        return best
