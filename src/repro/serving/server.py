"""Discrete-event serving simulator.

Feeds a request stream through a dynamic batcher onto a chip's cores
(each core is an independent server running one batch at a time). Batch
compute latencies come from the cycle simulator, memoized per compiled
batch size, so a multi-second traffic simulation costs only a handful of
program simulations.

Failures are first-class inputs: :meth:`ServingSimulator.simulate`
optionally consumes a :class:`~repro.faults.model.FaultModel` (or a
hand-built :class:`~repro.faults.model.FaultSchedule`). A core failing
mid-batch destroys the in-flight batch; surviving requests are
re-enqueued (keeping their original arrival times) and retried on
whatever cores remain, bounded by the model's retry budget and timeout.
Cores inside an outage window accept no work until repaired, and
transient slowdown windows stretch batch compute. The fault-free path
and the zero-fault model run the *same* event loop and produce
bit-identical :class:`ServingStats` (asserted in ``tests/test_faults.py``
and the engine benchmark).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.core.design_point import DesignPoint
from repro.obs.metrics import UNIT_BUCKETS, metrics
from repro.serving.batching import BatchPolicy
from repro.serving.fastserve import fastserve_enabled, replay_serving
from repro.serving.slo import Slo, percentile_sorted
from repro.workloads.generator import Request
from repro.workloads.models import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.model import FaultModel, FaultSchedule
    from repro.obs.tracer import SpanTracer

#: Retry policy applied when a bare FaultSchedule is passed without a
#: FaultModel carrying its own budget/timeout.
DEFAULT_RETRY_BUDGET = 2
DEFAULT_RETRY_TIMEOUT_S = math.inf


@dataclass(frozen=True)
class ServingStats:
    """Latency/throughput summary of one serving simulation.

    The fault fields keep their defaults on a faultless run, so a
    zero-fault simulation compares equal — field for field, bit for
    bit — to one that never saw a fault model at all.

    Request conservation is a constructor invariant: every offered
    request must be accounted for exactly once, ``requests == served +
    dropped + shed`` (``shed`` is only ever non-zero when a cluster
    router performed admission control upstream of the simulator).
    ``served_requests`` defaults to "derive it" so existing callers are
    unaffected; the simulator passes its actual completion count so a
    request can never silently vanish from the totals.
    """

    workload: str
    chip: str
    requests: int
    duration_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_batch: float
    throughput_qps: float
    slo_violation_fraction: float
    availability: float = 1.0          # served / offered requests
    retried_requests: int = 0          # re-enqueue events after batch loss
    dropped_requests: int = 0          # budget/timeout exhausted, never served
    lost_batches: int = 0              # in-flight batches destroyed
    lost_capacity_fraction: float = 0.0  # core-seconds down / core-seconds
    shed_requests: int = 0             # rejected by upstream admission control
    served_requests: int = -1          # completions (-1: derive from the rest)

    def __post_init__(self) -> None:
        if self.served_requests < 0:
            object.__setattr__(
                self, "served_requests",
                self.requests - self.dropped_requests - self.shed_requests)
        accounted = (self.served_requests + self.dropped_requests
                     + self.shed_requests)
        if accounted != self.requests:
            raise ValueError(
                f"request conservation violated: {self.requests} arrived != "
                f"{self.served_requests} served + {self.dropped_requests} "
                f"dropped + {self.shed_requests} shed")

    def describe(self) -> str:
        base = (f"{self.workload} on {self.chip}: {self.requests} reqs, "
                f"p99 {self.p99_s * 1e3:.2f} ms, mean batch "
                f"{self.mean_batch:.1f}, {self.throughput_qps:.0f} qps, "
                f"{self.slo_violation_fraction:.1%} SLO violations")
        if (self.availability < 1.0 or self.retried_requests
                or self.lost_batches):
            base += (f", {self.availability:.2%} available "
                     f"({self.retried_requests} retries, "
                     f"{self.dropped_requests} dropped, "
                     f"{self.lost_batches} batches lost, "
                     f"{self.lost_capacity_fraction:.1%} capacity down)")
        return base


class ServingSimulator:
    """Simulates request serving for one workload on one design point."""

    def __init__(self, point: DesignPoint, spec: WorkloadSpec,
                 policy: BatchPolicy, slo: Slo) -> None:
        self.point = point
        self.spec = spec
        self.policy = policy
        self.slo = slo
        self._latency_cache: dict[int, float] = {}

    def batch_latency_s(self, batch: int) -> float:
        """Compute latency of one padded batch (memoized).

        Lookups route through the design point and therefore through the
        engine's :class:`~repro.engine.cache.EvalCache`: a second
        simulator over the same (chip, workload) — or a later process
        with the disk tier on — reuses these latencies.
        """
        padded = self.policy.padded_size(batch)
        if padded not in self._latency_cache:
            self._latency_cache[padded] = self.point.latency_s(
                self.spec, padded)
        return self._latency_cache[padded]

    def seed_latencies(self, table: Mapping[int, float]) -> None:
        """Pre-seed the padded-batch -> latency memo.

        For latencies obtained outside the design point's default path —
        an int8-retargeted compile on a chip without bf16, or a synthetic
        table in tests. Keys must be padded batch steps.
        """
        for batch, latency in table.items():
            if batch < 1:
                raise ValueError("batch must be >= 1")
            if latency < 0:
                raise ValueError("latency must be non-negative")
        self._latency_cache.update(table)

    def prewarm(self, workers: Optional[int] = None) -> dict[int, float]:
        """Precompute latencies for every padded batch step, in parallel.

        Fans the policy's batch steps out over the engine's process pool
        (``workers=None`` sizes it to the machine) and seeds both the
        local memo and the global cache, so the event loop never stalls
        on a cold compile/simulate.
        """
        steps = list(BatchPolicy.batch_steps(self.policy.max_batch))
        from repro.engine.sweeps import batch_latency_grid
        grid = batch_latency_grid(self.point.chip, self.spec.name, steps,
                                  version=self.point.version,
                                  workers=workers)
        self._latency_cache.update(grid)
        return dict(grid)

    def simulate(self, requests: Sequence[Request],
                 faults: Optional["FaultModel"] = None,
                 schedule: Optional["FaultSchedule"] = None,
                 tracer: Optional["SpanTracer"] = None) -> ServingStats:
        """Run the event loop over a time-sorted request stream.

        ``faults`` injects the model's seeded failure schedule;
        ``schedule`` supplies a pre-built (or hand-written) one directly
        and wins when both are given. With neither — or with a
        zero-fault model — the loop reduces to the faultless arithmetic
        and the returned stats are bit-identical to a plain run.

        ``tracer`` records one span per launched batch (and per batch
        lost to a fault) on ``serving/core<i>`` tracks, timestamped in
        simulated microseconds. Observability is a pure side channel:
        with ``tracer=None`` and the metrics registry disabled (the
        defaults) the loop performs no extra work beyond one boolean
        check per launch, and the returned stats are bit-identical
        either way (asserted in ``tests/test_obs.py``).

        ``requests`` may be :class:`Request` objects or bare arrival
        timestamps (floats) — the simulator only ever reads arrival
        times, and large sweeps skip a lot of object construction by
        passing timestamps directly.
        """
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        if isinstance(requests[0], Request):
            arrivals = [r.arrival_s for r in requests]
        else:
            arrivals = list(requests)
        if arrivals != sorted(arrivals):  # C-speed on near-sorted input
            raise ValueError("requests must be sorted by arrival time")

        cores = self.point.chip.cores
        if faults is not None:
            retry_budget = faults.retry_budget
            retry_timeout = faults.retry_timeout_s
            if schedule is None and not faults.zero_fault:
                schedule = faults.schedule(
                    cores, arrivals[-1] + faults.horizon_pad_s)
        else:
            retry_budget = DEFAULT_RETRY_BUDGET
            retry_timeout = DEFAULT_RETRY_TIMEOUT_S
        if schedule is not None and schedule.cores != cores:
            raise ValueError(
                f"schedule built for {schedule.cores} cores, chip has {cores}")
        if schedule is not None and schedule.is_empty:
            schedule = None  # empty timeline: take the faultless fast path

        if fastserve_enabled():
            return replay_serving(self, arrivals, schedule, retry_budget,
                                  retry_timeout, tracer)
        return self._replay_events(arrivals, schedule, retry_budget,
                                   retry_timeout, tracer)

    def _replay_events(self, arrivals: list[float],
                       schedule: Optional["FaultSchedule"],
                       retry_budget: int, retry_timeout: float,
                       tracer: Optional["SpanTracer"]) -> ServingStats:
        """Reference event loop (``REPRO_FASTSERVE=0`` path)."""
        servers = [(0.0, core) for core in range(self.point.chip.cores)]
        heapq.heapify(servers)

        # Observability: hoist the enabled checks so the faultless fast
        # path pays one boolean per launch and nothing else.
        reg = metrics()
        rec = reg.enabled

        latencies: list[float] = []
        batch_sizes: list[int] = []
        index = 0
        queue: list[tuple[float, int]] = []  # (arrival time, retries so far)
        total = len(arrivals)
        last_completion = 0.0
        retried = dropped = lost_batches = 0

        while index < total or queue:
            if not queue:
                queue.append((arrivals[index], 0))
                index += 1
            server_free, core = servers[0]
            if schedule is not None and math.isinf(server_free):
                # Every core is gone for good: nothing pending can ever
                # launch, so the remaining stream is lost outright.
                dropped += len(queue) + (total - index)
                queue.clear()
                index = total
                break
            # Absorb arrivals that land before this batch could launch.
            while (index < total and len(queue) < self.policy.max_batch):
                deadline = queue[0][0] + self.policy.max_wait_s
                horizon = max(server_free, deadline)
                if arrivals[index] <= horizon:
                    queue.append((arrivals[index], 0))
                    index += 1
                else:
                    break
            if len(queue) >= self.policy.max_batch:
                ready = queue[self.policy.max_batch - 1][0]
            else:
                ready = queue[0][0] + self.policy.max_wait_s
            launch = max(server_free, ready)

            if retried and not math.isinf(retry_timeout):
                # A re-enqueued request whose relaunch would happen
                # later than the retry timeout after its arrival is
                # dropped here, not served arbitrarily late (and never
                # silently lost: the conservation invariant in
                # ServingStats.__post_init__ would catch that).
                alive = [e for e in queue
                         if not (e[1] > 0 and launch - e[0] > retry_timeout)]
                if len(alive) != len(queue):
                    dropped += len(queue) - len(alive)
                    queue = alive
                    continue

            if schedule is not None:
                down_until = schedule.outage_end(core, launch)
                if down_until is not None:
                    # Core is mid-repair at launch time: it takes no work
                    # until the outage ends; surviving cores go first.
                    if rec:
                        reg.counter("serving.outage_wait_s").inc(
                            max(0.0, down_until - launch))
                    heapq.heapreplace(servers, (down_until, core))
                    continue

            size = min(len(queue), self.policy.max_batch)
            if rec:
                reg.histogram("serving.queue_depth").observe(len(queue))
                reg.histogram("serving.batch_occupancy",
                              UNIT_BUCKETS).observe(
                    size / self.policy.max_batch)
            latency = self.batch_latency_s(size)
            if schedule is not None:
                factor = schedule.slowdown_factor(core, launch)
                if factor != 1.0:
                    latency *= factor
            completion = launch + latency

            if schedule is not None:
                failure = schedule.first_failure_between(
                    core, launch, completion)
                if failure is not None:
                    # The core died mid-batch: the whole in-flight batch
                    # is lost. Requests under budget and timeout keep
                    # their arrival times and rejoin the queue head.
                    fail_start, fail_end = failure
                    lost_batches += 1
                    if tracer is not None:
                        tracer.record(
                            "batch.lost", "serve", "serving", f"core{core}",
                            launch * 1e6, (fail_start - launch) * 1e6,
                            (("size", size),))
                    batch, queue = queue[:size], queue[size:]
                    survivors: list[tuple[float, int]] = []
                    for arrival, retries in batch:
                        if (retries + 1 > retry_budget
                                or fail_start - arrival > retry_timeout):
                            dropped += 1
                        else:
                            retried += 1
                            survivors.append((arrival, retries + 1))
                    queue = survivors + queue
                    heapq.heapreplace(servers, (fail_end, core))
                    continue

            batch, queue = queue[:size], queue[size:]
            heapq.heapreplace(servers, (completion, core))
            if tracer is not None:
                tracer.record("batch", "serve", "serving", f"core{core}",
                              launch * 1e6, latency * 1e6, (("size", size),))
            latencies.extend(completion - a for a, _ in batch)
            batch_sizes.append(size)
            last_completion = max(last_completion, completion)

        return self._finalize(arrivals, schedule, latencies, batch_sizes,
                              retried, dropped, lost_batches, last_completion)

    def _finalize(self, arrivals: list[float],
                  schedule: Optional["FaultSchedule"],
                  latencies: list[float], batch_sizes: list[int],
                  retried: int, dropped: int, lost_batches: int,
                  last_completion: float) -> ServingStats:
        """Fold replay outputs into :class:`ServingStats` (shared by the
        event loop and the fastserve kernel; stats are computed from one
        sorted copy of the latency list, so both paths and all percentile
        queries see identical floats)."""
        total = len(arrivals)
        reg = metrics()
        rec = reg.enabled
        duration = max(last_completion, arrivals[-1]) - arrivals[0]
        served = len(latencies)
        if rec:
            reg.counter("serving.batches").inc(len(batch_sizes))
            reg.counter("serving.requests_offered").inc(total)
            reg.counter("serving.requests_served").inc(served)
            reg.counter("serving.retried_requests").inc(retried)
            reg.counter("serving.dropped_requests").inc(dropped)
            reg.counter("serving.lost_batches").inc(lost_batches)
        lost_capacity = 0.0
        if schedule is not None and duration > 0:
            lost_capacity = (
                schedule.downtime_core_s(arrivals[0], arrivals[0] + duration)
                / (self.point.chip.cores * duration))
        ordered = sorted(latencies)
        return ServingStats(
            workload=self.spec.name,
            chip=self.point.chip.name,
            requests=total,
            duration_s=duration,
            p50_s=percentile_sorted(ordered, 50) if ordered else 0.0,
            p95_s=percentile_sorted(ordered, 95) if ordered else 0.0,
            p99_s=percentile_sorted(ordered, 99) if ordered else 0.0,
            mean_batch=(sum(batch_sizes) / len(batch_sizes)
                        if batch_sizes else 0.0),
            throughput_qps=served / duration if duration > 0 else 0.0,
            slo_violation_fraction=self.slo.violation_fraction_sorted(ordered),
            availability=served / total,
            retried_requests=retried,
            dropped_requests=dropped,
            lost_batches=lost_batches,
            lost_capacity_fraction=lost_capacity,
            served_requests=served,
        )

    def max_slo_batch(self) -> int:
        """Largest compiled batch step whose *compute alone* fits the SLO.

        The Lesson 9 headline number: even with zero queueing, the latency
        budget caps the batch.
        """
        best = 0
        for step in BatchPolicy.batch_steps(self.policy.max_batch):
            if self.batch_latency_s(step) <= self.slo.limit_s:
                best = max(best, step)
        return best
