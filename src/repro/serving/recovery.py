"""KV-cache checkpointing for continuous batching, priced in the IR.

PR 9 made generative fault semantics deliberately lossy: KV caches are
core-resident, so a mid-step kill destroys the generated prefix of
every active sequence on the core and survivors re-prefill from
scratch, while a permanent outage drops its whole round-robin
substream. The training-supercomputer retrospective (PAPERS.md) makes
checkpoint-based recovery and *goodput* — useful work over total work —
the centerpiece of resilience at scale; this module gives the
generative layer the same tools the rest of the stack already has
(PR 5 fleet failover, PR 8 slice reroute).

:class:`RecoveryPolicy` configures three mechanisms the continuous
batching simulator (:mod:`repro.serving.continuous`) executes:

* **Every-k-token snapshots** — after each ``checkpoint_every`` decode
  tokens a sequence's KV cache is copied HBM → host. The copy is *real
  phase-program work*: :func:`snapshot_lowered` hand-builds a
  :class:`~repro.sim.lowered.LoweredProgram` with one HBM ``K_DMA``
  read row per cached K/V tensor per layer (serialized by sync waits,
  exactly how the decode graph's cache parameters stream) and a host
  write chain attached via the PR 8 ``attach_ici_rows`` machinery on a
  synthetic :data:`HOST_LEVEL` pool. :class:`~repro.sim.lowered.
  FastReplay` prices it, so snapshot bytes land in the same
  ``bytes_by_level`` traffic ledger as HBM and ICI traffic and the
  checkpoint interval becomes a measurable latency-vs-recovery knob,
  not a magic constant.
* **Delta re-prefill** — a killed sequence with a snapshot resumes by
  reloading the snapshot (host → HBM, priced with the same program:
  the transfer is byte-symmetric) and re-prefilling only the generated
  suffix the snapshot missed, at the suffix's prompt bucket, instead
  of re-running its whole prompt and regenerating every token.
* **Migration** — on a permanent core death, pending and
  retry-admissible active sequences rebalance round-robin to surviving
  cores instead of being dropped wholesale.

A ``checkpoint_every=0`` policy snapshots nothing, and under zero
faults the simulator's float operations are bit-identical to the plain
PR 9 path — the same contract style as the ``REPRO_FASTSIM`` /
``REPRO_FASTSERVE`` identity gates, asserted in tests and the engine
bench.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.arch.chip import ChipConfig
from repro.arch.ici import IciLink
from repro.arch.memory import MemorySystem
from repro.core.design_point import DesignPoint
from repro.serving.batching import BatchPolicy
from repro.sim.lowered import (K_BUNDLE, K_DMA, K_SYNC_WAIT, FastReplay,
                               LoweredProgram)
from repro.workloads.generative import GenerativeSpec

__all__ = [
    "DEFAULT_HOST_LINK",
    "HOST_LEVEL",
    "RecoveryPolicy",
    "snapshot_lowered",
    "snapshot_replay",
    "snapshot_seconds",
    "snapshot_latency_table",
]

#: Ledger name of the synthetic chip↔host DMA pool snapshots write to.
HOST_LEVEL = "host"

#: Host attach for KV offload: PCIe gen3 x16-class bandwidth with a
#: microsecond-scale doorbell, deliberately far below any generation's
#: HBM bandwidth so the host hop — not the HBM read — dominates
#: snapshot cost, as it does in real disaggregated KV serving.
DEFAULT_HOST_LINK = IciLink(bandwidth=16e9, latency_s=5e-6)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a continuous-batching engine checkpoints and recovers.

    ``checkpoint_every=0`` (the default) disables snapshots entirely —
    combined with an empty fault schedule this is the configuration
    contractually bit-identical to the plain simulator. ``migrate``
    governs only permanent core deaths; temporary kills always retry on
    the owning core. ``host_link`` prices the HBM↔host hop.
    """

    checkpoint_every: int = 0
    migrate: bool = True
    host_link: IciLink = DEFAULT_HOST_LINK

    def __post_init__(self) -> None:
        every = self.checkpoint_every
        if not isinstance(every, int) or isinstance(every, bool):
            raise ValueError(
                f"checkpoint_every must be an int, got {every!r}")
        if every < 0:
            raise ValueError(
                f"checkpoint_every must be non-negative, got {every}")

    @property
    def checkpointing(self) -> bool:
        """True when the policy takes snapshots at all."""
        return self.checkpoint_every > 0

    def describe(self) -> str:
        every = (f"every {self.checkpoint_every} tokens"
                 if self.checkpointing else "never")
        return (f"RecoveryPolicy: snapshot {every}, "
                f"migration {'on' if self.migrate else 'off'}, host link "
                f"{self.host_link.bandwidth / 1e9:.3g} GB/s")


# ------------------------------------------------------------- snapshot cost

def _base_lowered(chip: ChipConfig, name: str) -> LoweredProgram:
    """An empty lowered program with ``chip``'s real DMA pools.

    Mirrors :func:`~repro.sim.lowered.lower_program`'s pool derivation
    exactly (every memory level except vmem gets a DMA engine pool), so
    rows appended here replay with the same bandwidths, latencies and
    per-transfer overhead as compiler-produced programs.
    """
    memory = MemorySystem(chip)
    level_names = tuple(level.name for level in memory.levels())
    pool_levels = tuple(n for n in level_names if n != "vmem")
    return LoweredProgram(
        name=name,
        generation=chip.generation,
        rows=(),
        n_flags=0,
        level_names=level_names,
        pool_levels=pool_levels,
        pool_bandwidths=tuple(
            memory.level(n).bandwidth for n in pool_levels),
        pool_latencies=tuple(
            memory.level(n).latency_cycles for n in pool_levels),
        clock_hz=chip.clock_hz,
    )


def snapshot_lowered(chip: ChipConfig, spec: GenerativeSpec, kv_bucket: int,
                     batch: int, *,
                     host_link: IciLink = DEFAULT_HOST_LINK,
                     dtype_bytes: int = 2) -> LoweredProgram:
    """The lowered program of one KV snapshot step (HBM read + host write).

    One ``K_DMA`` row on the HBM pool per cached K/V tensor per layer —
    the same ``(batch, kv, hidden)`` parameter tensors the decode graph
    streams every step — each serialized by a sync wait (the host
    transfer consumes them in order), then the total payload crossing
    the host link as a single post-attached hop on the
    :data:`HOST_LEVEL` pool. Restore is the same program read backward
    (host → HBM): the byte counts are symmetric, so one pricing serves
    both directions.
    """
    if kv_bucket < 1:
        raise ValueError(f"kv_bucket must be >= 1, got {kv_bucket}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if dtype_bytes < 1:
        raise ValueError(f"dtype_bytes must be >= 1, got {dtype_bytes}")
    from repro.pod.sharding import attach_ici_rows  # local: pod imports sim

    base = _base_lowered(
        chip, f"{spec.name}.kv_snapshot@{kv_bucket}x{batch}")
    hbm = base.pool_levels.index("hbm")
    per_tensor = batch * kv_bucket * spec.hidden * dtype_bytes
    rows = [(K_BUNDLE, 0, 0, 0, 0.0)]
    flag = 0
    for _ in range(2 * spec.layers):  # K and V caches, every layer
        rows.append((K_DMA, hbm, per_tensor, flag, 0.0))
        rows.append((K_SYNC_WAIT, flag, 0, 0, 0.0))
        flag += 1
    lowered = replace(base, rows=tuple(rows), n_flags=flag)
    total = 2 * spec.layers * per_tensor
    return attach_ici_rows(lowered, host_link, [(total, 1.0)],
                           where="post", level=HOST_LEVEL)


def snapshot_replay(point: DesignPoint, spec: GenerativeSpec, kv_bucket: int,
                    batch: int, *,
                    host_link: IciLink = DEFAULT_HOST_LINK,
                    dtype: Optional[str] = None):
    """Replay one snapshot step; returns the full ``SimResult``.

    The result's ``bytes_by_level`` ledger carries the HBM read bytes
    and the :data:`HOST_LEVEL` write bytes — tests and the profiler
    read them the same way they read any phase program's traffic.
    """
    chip = point.chip
    if dtype is None:
        dtype = "bf16" if chip.supports_dtype("bf16") else "int8"
    dtype_bytes = 1 if dtype == "int8" else 2
    lowered = snapshot_lowered(chip, spec, kv_bucket, batch,
                               host_link=host_link, dtype_bytes=dtype_bytes)
    return FastReplay(chip).run(lowered, dtype=dtype)


def snapshot_seconds(point: DesignPoint, spec: GenerativeSpec,
                     kv_bucket: int, batch: int, *,
                     host_link: IciLink = DEFAULT_HOST_LINK,
                     dtype: Optional[str] = None) -> float:
    """Latency of one snapshot (or restore) step in seconds."""
    return snapshot_replay(point, spec, kv_bucket, batch,
                           host_link=host_link, dtype=dtype).seconds


def snapshot_latency_table(point: DesignPoint, spec: GenerativeSpec,
                           slots: int, *,
                           host_link: IciLink = DEFAULT_HOST_LINK,
                           dtype: Optional[str] = None,
                           ) -> Dict[Tuple[str, int, int], float]:
    """("snapshot", kv bucket, padded batch) -> seconds, for seeding.

    The snapshot companion of
    :func:`repro.serving.continuous.phase_latency_table`: every KV
    bucket at every padded batch step, so a checkpointing simulator can
    be fully seeded and the chaos sweeps stay pure functions of their
    arguments.
    """
    table: Dict[Tuple[str, int, int], float] = {}
    for bucket in spec.kv_buckets:
        for step in BatchPolicy.batch_steps(slots):
            table[("snapshot", bucket, step)] = snapshot_seconds(
                point, spec, bucket, step, host_link=host_link, dtype=dtype)
    return table
