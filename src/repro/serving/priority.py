"""Two-tier serving: interactive traffic plus offline filler.

Inference fleets are provisioned for peak interactive load, which leaves
cycles idle off-peak. Production recovers them with a second tier of
offline work (batch scoring, backfills) that runs only when no
interactive request is waiting. The simulator quantifies the deal: how
much utilization the filler recovers, and what it costs the interactive
tier's tail latency (non-preemptive service means an interactive arrival
can find the core busy with an offline batch).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.design_point import DesignPoint
from repro.serving.slo import percentile
from repro.workloads.generator import Request
from repro.workloads.models import WorkloadSpec


@dataclass(frozen=True)
class TwoTierStats:
    """Outcome of one two-tier simulation."""

    interactive_requests: int
    interactive_p50_s: float
    interactive_p99_s: float
    offline_batches: int
    offline_samples_per_s: float
    busy_fraction: float

    def describe(self) -> str:
        return (f"interactive p99 {self.interactive_p99_s * 1e3:.2f} ms over "
                f"{self.interactive_requests} reqs; offline filler "
                f"{self.offline_samples_per_s:.0f} samples/s; chip busy "
                f"{self.busy_fraction:.0%}")


class TwoTierServer:
    """Non-preemptive priority serving on one chip's cores.

    Interactive requests are served individually (batch 1, lowest
    latency); whenever a core would idle, it runs one offline batch of
    ``offline_batch`` samples instead.
    """

    def __init__(self, point: DesignPoint, interactive: WorkloadSpec,
                 offline: WorkloadSpec, *, offline_batch: int = 32) -> None:
        if offline_batch < 1:
            raise ValueError("offline batch must be >= 1")
        self.point = point
        self.interactive = interactive
        self.offline = offline
        self.offline_batch = offline_batch
        self._interactive_s = point.latency_s(interactive, 1)
        self._offline_s = point.latency_s(offline, offline_batch)

    def simulate(self, requests: Sequence[Request], duration_s: float,
                 *, fill_idle: bool = True) -> TwoTierStats:
        """Serve a time-sorted interactive stream over ``duration_s``.

        With ``fill_idle=False`` the offline tier is disabled — the
        baseline whose idle fraction the filler recovers.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        arrivals = [r.arrival_s for r in requests]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("requests must be sorted by arrival time")

        cores = self.point.chip.cores
        servers = [0.0] * cores
        heapq.heapify(servers)

        latencies: List[float] = []
        offline_batches = 0
        busy_s = 0.0
        index = 0
        total = len(arrivals)

        while index < total:
            free_at = heapq.heappop(servers)
            arrival = arrivals[index]
            if fill_idle and free_at + 1e-12 < arrival:
                # Idle gap before the next interactive arrival: fill it
                # with offline batches (non-preemptive: possibly overrunning
                # into the interactive request's start).
                gap_batches = max(0, int((arrival - free_at)
                                         / self._offline_s))
                run = max(1, gap_batches)
                offline_batches += run
                busy_s += run * self._offline_s
                free_at += run * self._offline_s
            start = max(free_at, arrival)
            completion = start + self._interactive_s
            busy_s += self._interactive_s
            latencies.append(completion - arrival)
            heapq.heappush(servers, completion)
            index += 1

        # Tail: fill remaining time on every core until the horizon.
        if fill_idle:
            while servers and min(servers) < duration_s:
                free_at = heapq.heappop(servers)
                offline_batches += 1
                busy_s += self._offline_s
                heapq.heappush(servers, free_at + self._offline_s)

        capacity_s = cores * duration_s
        return TwoTierStats(
            interactive_requests=total,
            interactive_p50_s=percentile(latencies, 50) if latencies else 0.0,
            interactive_p99_s=percentile(latencies, 99) if latencies else 0.0,
            offline_batches=offline_batches,
            offline_samples_per_s=(offline_batches * self.offline_batch
                                   / duration_s),
            busy_fraction=min(1.0, busy_s / capacity_s),
        )
