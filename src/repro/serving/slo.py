"""Service-level objectives and percentile math."""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence


def percentile_sorted(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an **already sorted** sample.

    The indexing half of :func:`percentile`: callers that need several
    percentiles of one sample sort once and index repeatedly instead of
    paying an O(n log n) sort per query. Same float-coercion contract.
    """
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if not 0 < pct <= 100:
        raise ValueError(f"pct must be in (0, 100], got {pct}")
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (the convention serving dashboards use).

    Always returns a ``float``, regardless of the element type of
    ``values`` — callers compare percentiles against float SLO limits
    and feed them into float arithmetic, so an int sample must not leak
    an int out.

    >>> percentile([1, 2, 3, 4], 50)
    2.0
    """
    return percentile_sorted(sorted(values), pct)


@dataclass(frozen=True)
class Slo:
    """A latency SLO: ``pct`` of requests must finish within ``limit_s``."""

    limit_s: float
    pct: float = 99.0

    def __post_init__(self) -> None:
        if self.limit_s <= 0:
            raise ValueError("SLO limit must be positive")
        if not 0 < self.pct <= 100:
            raise ValueError("SLO percentile must be in (0, 100]")

    def met_by(self, latencies_s: Sequence[float]) -> bool:
        """Whether a latency sample satisfies the SLO.

        An empty sample is **vacuously met**: no request was served, so
        no request was late. Callers that consider "no traffic" a
        failure (e.g. a fleet whose every chip is down) must check
        sample size themselves — this predicate is about latency only.
        """
        if not latencies_s:
            return True
        return percentile(latencies_s, self.pct) <= self.limit_s

    def violation_fraction(self, latencies_s: Sequence[float]) -> float:
        """Fraction of requests over the limit.

        An empty sample has **zero violations** by definition (0 of 0
        requests were late), matching :meth:`met_by`'s vacuous truth —
        never a ZeroDivisionError.
        """
        if not latencies_s:
            return 0.0
        over = sum(1 for l in latencies_s if l > self.limit_s)
        return over / len(latencies_s)

    def violation_fraction_sorted(self, ordered: Sequence[float]) -> float:
        """:meth:`violation_fraction` of an **already sorted** sample.

        Counts the over-limit suffix with one bisection instead of a
        full scan; same count, same division, same float as the unsorted
        form — and the same zero-violations contract on an empty sample.
        """
        if not ordered:
            return 0.0
        over = len(ordered) - bisect_right(ordered, self.limit_s)
        return over / len(ordered)
