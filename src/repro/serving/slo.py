"""Service-level objectives and percentile math."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (the convention serving dashboards use).

    >>> percentile([1, 2, 3, 4], 50)
    2
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 < pct <= 100:
        raise ValueError(f"pct must be in (0, 100], got {pct}")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class Slo:
    """A latency SLO: ``pct`` of requests must finish within ``limit_s``."""

    limit_s: float
    pct: float = 99.0

    def __post_init__(self) -> None:
        if self.limit_s <= 0:
            raise ValueError("SLO limit must be positive")
        if not 0 < self.pct <= 100:
            raise ValueError("SLO percentile must be in (0, 100]")

    def met_by(self, latencies_s: Sequence[float]) -> bool:
        """Whether a latency sample satisfies the SLO."""
        if not latencies_s:
            return True
        return percentile(latencies_s, self.pct) <= self.limit_s

    def violation_fraction(self, latencies_s: Sequence[float]) -> float:
        """Fraction of requests over the limit."""
        if not latencies_s:
            return 0.0
        over = sum(1 for l in latencies_s if l > self.limit_s)
        return over / len(latencies_s)
