"""Continuous batching for autoregressive decode (slot-based admission).

Classic serving admits whole requests into batches; generative serving
cannot — a request is alive for one prefill plus up to ``max_decode_len``
decode *iterations*, and tying a batch's lifetime to its slowest member
would idle every slot. This simulator therefore admits decode
iterations, vLLM-style:

* each core runs an independent engine with ``slots`` request slots
  (requests are assigned to cores round-robin, so multi-core chips keep
  the deterministic, replayable structure of the PR 3 event loop);
* an admitted request is first *prefilled* alone (one prompt-bucket
  program at batch 1 — prefill produces the first token, so TTFT is the
  prefill completion minus arrival);
* every engine step after that decodes *all* prefilled slots together:
  one decode program at the padded active count, against the KV bucket
  covering the deepest sequence in flight. Requests join and retire
  between iterations without draining the batch;
* prefills are prioritized over decode steps (admit-heavy, the
  continuous-batching scheduling choice that bounds TTFT).

Faults reuse the PR 3 machinery unchanged: a seeded
:class:`~repro.faults.model.FaultModel` (or a hand-built schedule)
injects outages, slowdowns, and mid-step kills. KV caches are
core-resident state, so a core dying mid-step destroys the *generated
prefix of every active request on that core*; survivors re-enqueue with
their original arrival times under the model's retry budget and
timeout, and re-prefill from scratch when re-admitted.

A :class:`~repro.serving.recovery.RecoveryPolicy` changes those loss
semantics into the checkpointed ones the training-supercomputer
retrospective argues for (PAPERS.md):

* every ``checkpoint_every`` generated tokens, due sequences take one
  *snapshot step* — their KV caches copy HBM → host through a lowered
  DMA program priced by the same replay as every other step (bytes in
  the ``bytes_by_level`` ledger; see :mod:`repro.serving.recovery`), so
  checkpoint cadence is a measurable latency-vs-recovery tradeoff;
* a killed sequence whose snapshot covers ``snap`` tokens re-enqueues
  as a *resume*: on re-admission it runs one *restore step* (snapshot
  reload + a delta re-prefill of only the uncovered generated suffix)
  instead of re-prefilling its whole prompt and regenerating
  everything. Its first token already streamed, so TTFT keeps the
  original prefill time while the per-token latency honestly absorbs
  the outage and restore;
* a permanently dead core's pending requests — and its active
  sequences still admissible under the retry budget/timeout — *migrate*
  round-robin to surviving cores instead of being dropped wholesale
  (they become visible to survivors at the death instant, never
  earlier).

Goodput accounting runs with or without a policy:
:class:`ContinuousStats` counts every token computed (prefill, decode,
delta re-prefill), every token recomputed after a loss, and every token
a snapshot recovered; ``goodput_fraction`` is generated ÷ computed —
1.0 exactly on a faultless run.

This event loop IS the reference path: there is no vectorized twin (the
``REPRO_FASTSERVE`` toggle does not apply here), and the byte-identity
contract is two-fold — run-to-run determinism (asserted in the engine
bench and CI by diffing two ``repro llm`` runs), and a zero-checkpoint
zero-fault :class:`~repro.serving.recovery.RecoveryPolicy` being
bit-identical to running with no policy at all (the same contract style
as the ``REPRO_FASTSIM``/``REPRO_FASTSERVE`` identity gates).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Mapping, Optional, Sequence, \
    Tuple

from repro.core.design_point import DesignPoint
from repro.obs.metrics import metrics
from repro.serving.batching import BatchPolicy
from repro.serving.recovery import RecoveryPolicy, snapshot_latency_table, \
    snapshot_seconds
from repro.serving.server import (
    DEFAULT_RETRY_BUDGET,
    DEFAULT_RETRY_TIMEOUT_S,
)
from repro.serving.slo import percentile_sorted
from repro.workloads.generative import GenerativeSpec, GenRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.model import FaultModel, FaultSchedule


@dataclass(frozen=True)
class GenerativeSlo:
    """The generative latency contract: TTFT plus a per-token budget.

    One number cannot describe an autoregressive request — a fast first
    token with slow streaming and a slow first token with fast streaming
    are different failures. Violations are tracked separately against
    each budget at the same percentile.
    """

    ttft_s: float
    per_token_s: float
    pct: float = 99.0

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.per_token_s <= 0:
            raise ValueError("SLO budgets must be positive")
        if not 0 < self.pct <= 100:
            raise ValueError("percentile must be in (0, 100]")


@dataclass(frozen=True)
class ContinuousStats:
    """Outcome of one continuous-batching simulation.

    Request conservation is a constructor invariant, exactly as in
    :class:`~repro.serving.server.ServingStats`: ``requests == served +
    dropped`` (continuous engines sit below any admission control, so
    there is no shed bucket). ``served_requests`` defaults to "derive
    it" for hand-built instances; the simulator always passes its actual
    retirement count.

    Goodput accounting is a second invariant: ``tokens_computed`` (every
    token the engines actually produced — prefills, decodes, and delta
    re-prefills after a fault) can never be less than
    ``tokens_generated`` (the tokens of *served* requests), because
    every delivered token was computed at least once.
    ``goodput_fraction`` is their ratio; ``wasted_tokens`` the
    difference — work burned on sequences that were later killed or
    dropped. ``recomputed_tokens`` counts the subset of computed tokens
    that repeated an earlier computation of the same position;
    ``recovered_tokens`` counts positions a snapshot restore made
    *unnecessary* to recompute.
    """

    workload: str
    chip: str
    requests: int
    duration_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    per_token_p50_s: float
    per_token_p99_s: float
    tokens_generated: int
    prefill_steps: int
    decode_steps: int
    mean_decode_batch: float
    tokens_per_s: float
    ttft_violation_fraction: float
    per_token_violation_fraction: float
    availability: float = 1.0
    retried_requests: int = 0
    dropped_requests: int = 0
    lost_steps: int = 0
    served_requests: int = -1
    tokens_computed: int = -1
    recomputed_tokens: int = 0
    recovered_tokens: int = 0
    migrated_requests: int = 0
    snapshots: int = 0
    snapshot_steps: int = 0
    restore_steps: int = 0

    def __post_init__(self) -> None:
        if self.served_requests < 0:
            object.__setattr__(self, "served_requests",
                               self.requests - self.dropped_requests)
        if self.served_requests + self.dropped_requests != self.requests:
            raise ValueError(
                f"request conservation violated: {self.requests} arrived != "
                f"{self.served_requests} served + {self.dropped_requests} "
                f"dropped")
        if self.tokens_computed < 0:
            object.__setattr__(self, "tokens_computed",
                               self.tokens_generated)
        if self.tokens_computed < self.tokens_generated:
            raise ValueError(
                f"goodput accounting violated: tokens_computed "
                f"{self.tokens_computed} < tokens_generated "
                f"{self.tokens_generated}")

    @property
    def wasted_tokens(self) -> int:
        """Computed tokens that never reached a served request."""
        return self.tokens_computed - self.tokens_generated

    @property
    def goodput_fraction(self) -> float:
        """Useful tokens over computed tokens (1.0 for an idle engine)."""
        if self.tokens_computed == 0:
            return 1.0
        return self.tokens_generated / self.tokens_computed

    def describe(self) -> str:
        base = (f"{self.workload} on {self.chip}: {self.requests} reqs, "
                f"{self.tokens_generated} tokens, TTFT p99 "
                f"{self.ttft_p99_s * 1e3:.2f} ms, per-token p99 "
                f"{self.per_token_p99_s * 1e3:.2f} ms, "
                f"{self.tokens_per_s:.0f} tok/s, mean decode batch "
                f"{self.mean_decode_batch:.1f}")
        if self.retried_requests or self.dropped_requests or self.lost_steps:
            base += (f", {self.availability:.2%} available "
                     f"({self.retried_requests} retries, "
                     f"{self.dropped_requests} dropped, "
                     f"{self.lost_steps} steps lost, goodput "
                     f"{self.goodput_fraction:.2%})")
        if self.snapshots or self.migrated_requests:
            base += (f", {self.snapshots} snapshots, "
                     f"{self.recovered_tokens} tokens recovered, "
                     f"{self.migrated_requests} migrated")
        return base


class _Pending:
    """One queued request plus its recovery context (loop-internal).

    A fresh arrival has no context: zero retries, nothing resumed. A
    re-enqueued casualty carries what its next admission needs — the
    snapshot coverage (``resume_tokens``), how far it had decoded
    (``produced``), its original first-token time, and the deepest
    position any earlier attempt reached (``high_water``, which is what
    recompute counting is measured against). ``ready_s`` is when the
    entry becomes admissible: the arrival time for fresh and same-core
    retried entries, the death instant for migrants. ``order`` is the
    request's index in the original stream — the deterministic
    tiebreaker for merged queues.
    """

    __slots__ = ("request", "retries", "resume_tokens", "produced",
                 "first_token_t", "high_water", "ready_s", "order")

    def __init__(self, request: GenRequest, retries: int,
                 resume_tokens: int, produced: int,
                 first_token_t: Optional[float], high_water: int,
                 ready_s: float, order: int) -> None:
        self.request = request
        self.retries = retries
        self.resume_tokens = resume_tokens
        self.produced = produced
        self.first_token_t = first_token_t
        self.high_water = high_water
        self.ready_s = ready_s
        self.order = order


class _Slot:
    """One admitted request's engine-side state (mutable, loop-internal)."""

    __slots__ = ("request", "retries", "produced", "target", "prefill_t",
                 "snap", "high_water", "restore_pending", "order")

    def __init__(self, entry: _Pending, target: int) -> None:
        self.request = entry.request
        self.retries = entry.retries
        self.produced = entry.produced  # tokens generated so far
        self.target = target            # decode_len capped at max_decode_len
        self.prefill_t = entry.first_token_t  # first-token time, or None
        self.snap = entry.resume_tokens       # tokens covered by snapshot
        self.high_water = entry.high_water    # deepest earlier attempt
        self.restore_pending = entry.resume_tokens > 0
        self.order = entry.order


class _Accumulator:
    """Cross-core tallies folded into ContinuousStats at the end."""

    __slots__ = ("ttft", "per_token", "served", "dropped", "retried",
                 "tokens", "prefills", "decode_steps", "decode_batch_sum",
                 "lost_steps", "last_completion", "computed", "recomputed",
                 "recovered", "migrated", "snapshots", "snapshot_steps",
                 "restores")

    def __init__(self) -> None:
        self.ttft: List[float] = []
        self.per_token: List[float] = []
        self.served = 0
        self.dropped = 0
        self.retried = 0
        self.tokens = 0
        self.prefills = 0
        self.decode_steps = 0
        self.decode_batch_sum = 0
        self.lost_steps = 0
        self.last_completion = 0.0
        self.computed = 0
        self.recomputed = 0
        self.recovered = 0
        self.migrated = 0
        self.snapshots = 0
        self.snapshot_steps = 0
        self.restores = 0


class ContinuousBatchingSimulator:
    """Slot-based continuous batching of one generative model on one chip."""

    def __init__(self, point: DesignPoint, spec: GenerativeSpec,
                 slots: Optional[int] = None,
                 slo: Optional[GenerativeSlo] = None,
                 max_decode_len: Optional[int] = None,
                 recovery: Optional[RecoveryPolicy] = None) -> None:
        self.point = point
        self.spec = spec
        self.slots = slots if slots is not None else spec.default_slots
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        self.slo = slo if slo is not None else GenerativeSlo(
            spec.slo_ttft_ms / 1e3, spec.slo_per_token_ms / 1e3)
        self.max_decode_len = (max_decode_len if max_decode_len is not None
                               else spec.max_decode_len)
        if self.max_decode_len < 1:
            raise ValueError("max_decode_len must be >= 1")
        self.recovery = recovery
        # Decode batches pad to the same power-of-two ladder the classic
        # batcher compiles for; the policy also rejects padded_size(0),
        # so an empty decode step can never be priced.
        self._policy = BatchPolicy(max_batch=self.slots, max_wait_s=0.0)
        self._latency: dict[Tuple[str, int, int], float] = {}

    # ------------------------------------------------------------- latencies

    def step_latency_s(self, phase: str, bucket: int, batch: int) -> float:
        """Compute latency of one engine step (memoized).

        Keyed by (phase, sequence bucket, padded batch); prefill and
        decode lookups route through the design point and therefore the
        engine EvalCache, whose keys carry the phase and KV bucket
        explicitly. The ``"snapshot"`` phase prices the policy's
        HBM → host KV copy through the lowered-IR replay in
        :mod:`repro.serving.recovery`.
        """
        padded = self._policy.padded_size(batch)
        key = (phase, bucket, padded)
        if key not in self._latency:
            if phase == "snapshot":
                link = (self.recovery.host_link if self.recovery is not None
                        else RecoveryPolicy().host_link)
                self._latency[key] = snapshot_seconds(
                    self.point, self.spec, bucket, padded, host_link=link)
            else:
                spec = (self.spec.prefill(bucket) if phase == "prefill"
                        else self.spec.decode(bucket))
                self._latency[key] = self.point.latency_s(spec, padded)
        return self._latency[key]

    def seed_latencies(
            self, table: Mapping[Tuple[str, int, int], float]) -> None:
        """Pre-seed the (phase, bucket, padded batch) -> latency memo.

        For latencies obtained outside the design point's default path —
        an int8-retargeted compile on a chip without bf16 (TPUv1), a
        :func:`~repro.serving.recovery.snapshot_latency_table`, or a
        synthetic table in tests.
        """
        for (phase, _bucket, batch), latency in table.items():
            if phase not in ("prefill", "decode", "snapshot"):
                raise ValueError(f"unknown phase {phase!r}")
            if batch < 1:
                raise ValueError("batch must be >= 1")
            if latency < 0:
                raise ValueError("latency must be non-negative")
        self._latency.update(table)

    def _restore_latency_s(self, slot: _Slot) -> float:
        """One restore step: snapshot reload + delta re-prefill.

        The reload prices like the snapshot that produced it (the
        transfer is byte-symmetric, host → HBM); the uncovered generated
        suffix — positions the snapshot missed but the user already
        received — re-prefills at the suffix's prompt bucket. Long
        suffixes saturate at the largest prompt bucket, the same
        conservative padding trade prefill itself makes.
        """
        depth = slot.request.prompt_len + slot.snap
        latency = self.step_latency_s(
            "snapshot", self.spec.kv_bucket(depth), 1)
        suffix = slot.produced - slot.snap
        if suffix > 0:
            latency += self.step_latency_s(
                "prefill", self.spec.prompt_bucket(suffix), 1)
        return latency

    # -------------------------------------------------------------- simulate

    def simulate(self, requests: Sequence[GenRequest],
                 faults: Optional["FaultModel"] = None,
                 schedule: Optional["FaultSchedule"] = None
                 ) -> ContinuousStats:
        """Run the continuous-batching engines over a sorted request stream.

        Unlike the classic simulator, an empty stream is a valid quiet
        window (continuous engines idle between bursts), returning
        all-zero stats rather than raising.

        With a migrating :class:`~repro.serving.recovery.RecoveryPolicy`
        and a schedule containing permanent core deaths, the dying
        cores run first: the work they lose at death — pending entries,
        plus active sequences still admissible under the retry
        budget/timeout — rebalances round-robin onto the surviving
        cores' queues (ready at the death instant), and only then do
        the survivors run. Without a policy (or with no survivor), a
        permanent death keeps the PR 9 semantics: the core's whole
        substream is dropped.
        """
        arrivals = [r.arrival_s for r in requests]
        if arrivals != sorted(arrivals):
            raise ValueError("requests must be sorted by arrival time")

        cores = self.point.chip.cores
        if faults is not None:
            retry_budget = faults.retry_budget
            retry_timeout = faults.retry_timeout_s
            if schedule is None and not faults.zero_fault and requests:
                schedule = faults.schedule(
                    cores, arrivals[-1] + faults.horizon_pad_s)
        else:
            retry_budget = DEFAULT_RETRY_BUDGET
            retry_timeout = DEFAULT_RETRY_TIMEOUT_S
        if schedule is not None and schedule.cores != cores:
            raise ValueError(
                f"schedule built for {schedule.cores} cores, chip has {cores}")
        if schedule is not None and schedule.is_empty:
            schedule = None

        substreams: List[List[_Pending]] = [[] for _ in range(cores)]
        for order, request in enumerate(requests):
            substreams[order % cores].append(_Pending(
                request, 0, 0, 0, None, 0, request.arrival_s, order))

        dying: List[int] = []
        survivors = list(range(cores))
        if (self.recovery is not None and self.recovery.migrate
                and schedule is not None):
            deaths = [schedule.permanent_death_s(core)
                      for core in range(cores)]
            dying = [c for c in range(cores) if deaths[c] is not None]
            survivors = [c for c in range(cores) if deaths[c] is None]

        acc = _Accumulator()
        if dying and survivors:
            migrants: List[_Pending] = []
            for core in dying:
                if substreams[core]:
                    self._run_core(core, deque(substreams[core]), schedule,
                                   retry_budget, retry_timeout, acc, migrants)
            acc.migrated = len(migrants)
            migrants.sort(key=lambda e: (e.ready_s, e.request.arrival_s,
                                         e.order))
            assigned: dict[int, List[_Pending]] = {c: [] for c in survivors}
            for index, entry in enumerate(migrants):
                assigned[survivors[index % len(survivors)]].append(entry)
            for core in survivors:
                merged = sorted(substreams[core] + assigned[core],
                                key=lambda e: (e.ready_s, e.order))
                if merged:
                    self._run_core(core, deque(merged), schedule,
                                   retry_budget, retry_timeout, acc, None)
        else:
            for core in range(cores):
                if substreams[core]:
                    self._run_core(core, deque(substreams[core]), schedule,
                                   retry_budget, retry_timeout, acc, None)

        stats = self._finalize(requests, acc)
        reg = metrics()
        if reg.enabled:
            reg.counter("continuous.requests").inc(stats.requests)
            reg.counter("continuous.served").inc(stats.served_requests)
            reg.counter("continuous.dropped").inc(stats.dropped_requests)
            reg.counter("continuous.retried").inc(stats.retried_requests)
            reg.counter("continuous.migrated").inc(stats.migrated_requests)
            reg.counter("continuous.snapshots").inc(stats.snapshots)
            reg.counter("continuous.tokens_computed").inc(
                stats.tokens_computed)
            reg.counter("continuous.recovered_tokens").inc(
                stats.recovered_tokens)
            reg.counter("continuous.wasted_tokens").inc(stats.wasted_tokens)
        return stats

    def _requeue_entry(self, slot: _Slot,
                       ready_s: Optional[float] = None) -> _Pending:
        """The pending entry a killed slot re-enqueues as.

        With a policy and a snapshot, the slot resumes — its coverage,
        progress, and original first-token time travel with it.
        Otherwise it restarts from scratch exactly as PR 9 did; either
        way ``high_water`` remembers the deepest position reached, so
        the tokens the next attempt replays are counted as recomputed.
        ``ready_s`` defaults to the original arrival (same-core retry);
        migration passes the death instant.
        """
        arrival = slot.request.arrival_s
        ready = arrival if ready_s is None else max(arrival, ready_s)
        high_water = max(slot.high_water, slot.produced)
        if self.recovery is not None and slot.snap > 0:
            return _Pending(slot.request, slot.retries + 1, slot.snap,
                            slot.produced, slot.prefill_t, high_water,
                            ready, slot.order)
        return _Pending(slot.request, slot.retries + 1, 0, 0, None,
                        high_water, ready, slot.order)

    def _lose_core(self, active: List[_Slot], pending: Deque[_Pending],
                   t: float, retry_budget: int, retry_timeout: float,
                   acc: _Accumulator,
                   migrants_out: Optional[List[_Pending]]) -> None:
        """A core is gone for good at ``t``: migrate or drop its work.

        Without migration (``migrants_out is None``) everything the core
        owns — active prefixes and its whole static substream — is lost,
        the PR 9 semantics. With migration, active sequences are gated
        by the same retry budget/timeout every mid-step kill applies
        (the satellite fix: a request is only dropped when a retry
        would be inadmissible anyway), and pending entries move without
        consuming a retry — they had no in-flight work to lose.
        """
        if migrants_out is None:
            acc.dropped += len(active) + len(pending)
            return
        for slot in active:
            if (slot.retries + 1 > retry_budget
                    or t - slot.request.arrival_s > retry_timeout):
                acc.dropped += 1
            else:
                acc.retried += 1
                migrants_out.append(self._requeue_entry(slot, ready_s=t))
        for entry in pending:
            entry.ready_s = max(entry.ready_s, t)
            migrants_out.append(entry)

    def _run_core(self, core: int, pending: Deque[_Pending],
                  schedule: Optional["FaultSchedule"], retry_budget: int,
                  retry_timeout: float, acc: _Accumulator,
                  migrants_out: Optional[List[_Pending]]) -> None:
        """One core's engine loop over its (possibly merged) queue."""
        active: List[_Slot] = []
        now = 0.0

        while pending or active:
            if not active and pending:
                now = max(now, pending[0].ready_s)

            if schedule is not None:
                down_until = schedule.outage_end(core, now)
                if down_until is not None:
                    if math.isinf(down_until):
                        self._lose_core(active, pending, now, retry_budget,
                                        retry_timeout, acc, migrants_out)
                        return
                    now = down_until

            # Admission: ready requests claim free slots FIFO. A
            # retried request whose re-admission would already exceed
            # the retry timeout is dropped here, never served late.
            while (pending and len(active) < self.slots
                   and pending[0].ready_s <= now):
                entry = pending.popleft()
                if (entry.retries > 0
                        and now - entry.request.arrival_s > retry_timeout):
                    acc.dropped += 1
                    continue
                active.append(_Slot(entry, min(entry.request.decode_len,
                                               self.max_decode_len)))
            if not active:
                continue  # timed-out retries only; re-check arrivals

            # Step selection: oldest slot needing a prefill or a restore
            # first; then, when checkpointing, a snapshot step for every
            # sequence whose uncovered progress reached the cadence;
            # else one decode iteration over every prefilled slot.
            waiting = [s for s in active
                       if s.prefill_t is None or s.restore_pending]
            due: List[_Slot] = []
            if waiting:
                members = [waiting[0]]
                if members[0].restore_pending:
                    phase = "restore"
                    latency = self._restore_latency_s(members[0])
                else:
                    phase = "prefill"
                    bucket = self.spec.prompt_bucket(
                        members[0].request.prompt_len)
                    latency = self.step_latency_s(phase, bucket, 1)
            else:
                if self.recovery is not None and self.recovery.checkpointing:
                    every = self.recovery.checkpoint_every
                    due = [s for s in active if s.produced - s.snap >= every]
                if due:
                    members = due
                    phase = "snapshot"
                    deepest = max(s.request.prompt_len + s.produced
                                  for s in members)
                    bucket = self.spec.kv_bucket(deepest)
                    latency = self.step_latency_s(phase, bucket, len(members))
                else:
                    members = active
                    phase = "decode"
                    deepest = max(s.request.prompt_len + s.produced
                                  for s in members)
                    bucket = self.spec.kv_bucket(deepest)
                    latency = self.step_latency_s(phase, bucket, len(members))
            if schedule is not None:
                latency *= schedule.slowdown_factor(core, now)
            completion = now + latency

            if schedule is not None:
                failure = schedule.first_failure_between(core, now, completion)
                if failure is not None:
                    # The core died mid-step. KV caches are core-resident,
                    # so EVERY active request loses its generated prefix
                    # beyond its last snapshot, not just the step's
                    # members; survivors re-enqueue (front, original
                    # arrivals) and resume or re-prefill when re-admitted.
                    fail_start, fail_end = failure
                    acc.lost_steps += 1
                    if math.isinf(fail_end):
                        # The core never comes back.
                        self._lose_core(active, pending, fail_start,
                                        retry_budget, retry_timeout, acc,
                                        migrants_out)
                        return
                    survivors: List[_Pending] = []
                    for slot in active:
                        if (slot.retries + 1 > retry_budget
                                or fail_start - slot.request.arrival_s
                                > retry_timeout):
                            acc.dropped += 1
                        else:
                            acc.retried += 1
                            survivors.append(self._requeue_entry(slot))
                    pending.extendleft(reversed(survivors))
                    active = []
                    now = fail_end
                    continue

            # Commit the step.
            now = completion
            if phase == "prefill":
                slot = members[0]
                slot.prefill_t = completion
                slot.produced = 1
                acc.prefills += 1
                acc.computed += 1
                if slot.high_water >= 1:
                    acc.recomputed += 1
            elif phase == "restore":
                slot = members[0]
                suffix = slot.produced - slot.snap
                acc.computed += suffix
                acc.recomputed += suffix
                acc.recovered += slot.snap
                acc.restores += 1
                slot.restore_pending = False
            elif phase == "snapshot":
                acc.snapshot_steps += 1
                acc.snapshots += len(members)
                for slot in members:
                    slot.snap = slot.produced
            else:
                acc.decode_steps += 1
                acc.decode_batch_sum += len(members)
                acc.computed += len(members)
                for slot in members:
                    slot.produced += 1
                    if slot.produced <= slot.high_water:
                        acc.recomputed += 1

            retiring = [s for s in active if s.produced >= s.target]
            if retiring:
                active = [s for s in active if s.produced < s.target]
                for slot in retiring:
                    acc.served += 1
                    acc.tokens += slot.target
                    acc.ttft.append(slot.prefill_t - slot.request.arrival_s)
                    if slot.target > 1:
                        acc.per_token.append(
                            (completion - slot.prefill_t)
                            / (slot.target - 1))
            acc.last_completion = max(acc.last_completion, completion)

    def _finalize(self, requests: Sequence[GenRequest],
                  acc: _Accumulator) -> ContinuousStats:
        total = len(requests)
        duration = (max(acc.last_completion, requests[-1].arrival_s)
                    - requests[0].arrival_s) if requests else 0.0
        ttft = sorted(acc.ttft)
        per_token = sorted(acc.per_token)

        def _violations(ordered: List[float], limit: float) -> float:
            if not ordered:
                return 0.0
            return sum(1 for v in ordered if v > limit) / len(ordered)

        return ContinuousStats(
            workload=self.spec.name,
            chip=self.point.chip.name,
            requests=total,
            duration_s=duration,
            ttft_p50_s=percentile_sorted(ttft, 50) if ttft else 0.0,
            ttft_p99_s=percentile_sorted(ttft, self.slo.pct) if ttft else 0.0,
            per_token_p50_s=(percentile_sorted(per_token, 50)
                             if per_token else 0.0),
            per_token_p99_s=(percentile_sorted(per_token, self.slo.pct)
                             if per_token else 0.0),
            tokens_generated=acc.tokens,
            prefill_steps=acc.prefills,
            decode_steps=acc.decode_steps,
            mean_decode_batch=(acc.decode_batch_sum / acc.decode_steps
                               if acc.decode_steps else 0.0),
            tokens_per_s=acc.tokens / duration if duration > 0 else 0.0,
            ttft_violation_fraction=_violations(ttft, self.slo.ttft_s),
            per_token_violation_fraction=_violations(
                per_token, self.slo.per_token_s),
            availability=acc.served / total if total else 1.0,
            retried_requests=acc.retried,
            dropped_requests=acc.dropped,
            lost_steps=acc.lost_steps,
            served_requests=acc.served,
            tokens_computed=acc.computed,
            recomputed_tokens=acc.recomputed,
            recovered_tokens=acc.recovered,
            migrated_requests=acc.migrated,
            snapshots=acc.snapshots,
            snapshot_steps=acc.snapshot_steps,
            restore_steps=acc.restores,
        )


# ----------------------------------------------------------------- sweeps

def phase_latency_table(point: DesignPoint, spec: GenerativeSpec,
                        slots: int, *, dtype: Optional[str] = None
                        ) -> dict[Tuple[str, int, int], float]:
    """(phase, bucket, padded batch) -> latency for one (chip, model).

    The generative analogue of :func:`repro.faults.sweep.latency_table`:
    bf16 chips price every phase program through one batched grid-kernel
    pass (results land in the EvalCache under the same phase-aware keys
    ``latency_s`` uses); chips without bf16 (TPUv1) go through an
    int8-retargeted compile with explicit phase/kv-bucket cache keys, so
    the sweep covers all four generations.
    """
    entries: List[Tuple[str, int, int]] = []
    for bucket in spec.prompt_buckets:
        entries.append(("prefill", bucket, 1))
    for bucket in spec.kv_buckets:
        for step in BatchPolicy.batch_steps(slots):
            entries.append(("decode", bucket, step))

    chip = point.chip
    if dtype is None:
        dtype = "bf16" if chip.supports_dtype("bf16") else "int8"
    phase_specs = {("prefill", b): spec.prefill(b) for b in spec.prompt_buckets}
    phase_specs.update(
        {("decode", b): spec.decode(b) for b in spec.kv_buckets})

    if dtype == "bf16":
        from repro.engine.grid import GridJob, run_grid
        results = run_grid([
            GridJob(point, phase_specs[(phase, bucket)], batch)
            for phase, bucket, batch in entries])
        return {entry: r.seconds for entry, r in zip(entries, results)}

    from repro.compiler.pipeline import compile_model, retarget_dtype
    from repro.engine.cache import get_cache
    from repro.engine.keys import eval_key, key_meta
    cache = get_cache()
    table: dict[Tuple[str, int, int], float] = {}
    for phase, bucket, batch in entries:
        pspec = phase_specs[(phase, bucket)]
        key = eval_key("sim", point.chip_fp, point.compiler_fp, pspec.name,
                       batch, None, dtype, phase=phase, kv_bucket=bucket)
        result = cache.get(key)
        if result is None:
            module = retarget_dtype(pspec.build(batch), dtype)
            program = compile_model(module, chip,
                                    version=point.version).program
            result = point.sim.run(program, dtype=dtype)
            cache.put(key, result,
                      key_meta("sim", chip.name, point.version.name,
                               pspec.name, batch, None, dtype,
                               phase=phase, kv_bucket=bucket))
        table[(phase, bucket, batch)] = result.seconds
    return table


@dataclass(frozen=True)
class LlmSweepRow:
    """One (chip, model) outcome of the generative serving sweep."""

    chip: str
    model: str
    slots: int
    offered_qps: float
    decode_ops_per_byte: float
    decode_memory_bound: bool
    stats: ContinuousStats


@dataclass(frozen=True)
class LlmChaosRow:
    """One (chip, model, scenario, policy) outcome of the chaos sweep."""

    chip: str
    model: str
    scenario: str
    policy: str
    checkpoint_every: int
    stats: ContinuousStats


def _sweep_pairs(seed: int, models: Sequence[str],
                 chips: Optional[Sequence], duration_s: float,
                 slots: Optional[int], utilization: float) -> List[tuple]:
    """The shared (chip, model) setup behind both generative sweeps.

    One entry per pair: the design point, seeded latency table, derived
    offered rate, and sampled request stream. Deriving the rate from the
    seeded table keeps every sweep a pure function of its arguments —
    same seed, same traffic, byte for byte.
    """
    from repro.arch import GENERATIONS
    from repro.core.design_point import shared_design_point
    from repro.workloads.generative import generative_by_name, \
        sample_gen_requests

    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    chip_list = tuple(chips) if chips is not None else GENERATIONS

    pairs: List[tuple] = []
    for pair_index, (chip, model) in enumerate(
            (c, m) for c in chip_list for m in models):
        spec = generative_by_name(model)
        point = shared_design_point(chip)
        n_slots = slots if slots is not None else spec.default_slots
        table = phase_latency_table(point, spec, n_slots)

        # Steady-state capacity: a full decode batch advances n_slots
        # sequences one token per step, and a request needs one prefill
        # plus ~mean_decode steps of its slot. Offered load derives from
        # the seeded table, so the sweep stays a pure function of its
        # arguments across runs.
        policy = BatchPolicy(max_batch=n_slots, max_wait_s=0.0)
        decode_s = table[("decode", spec.kv_buckets[0],
                          policy.padded_size(n_slots))]
        prefill_s = table[("prefill", spec.prompt_buckets[0], 1)]
        service_s = spec.mean_decode * decode_s + prefill_s
        capacity_qps = point.chip.cores * n_slots / service_s
        rate_qps = utilization * capacity_qps

        requests = sample_gen_requests(
            spec, seed * 7919 + pair_index, rate_qps, duration_s)
        pairs.append((chip, spec, point, n_slots, table, policy, rate_qps,
                      requests, pair_index))
    return pairs


def llm_sweep(seed: int = 0, *,
              models: Sequence[str] = ("llm0", "llm1"),
              chips: Optional[Sequence] = None,
              duration_s: float = 2.0,
              slots: Optional[int] = None,
              utilization: float = 0.6) -> List[LlmSweepRow]:
    """Continuous-batching serving sweep across chips and decoder models.

    One row per (chip, model): seeded traffic (arrivals + per-request
    prompt/decode lengths) at ``utilization`` of the engine's steady
    decode token throughput, simulated under continuous batching. The
    whole sweep is a pure function of its arguments — same seed, same
    rows, byte for byte (asserted in the engine bench and CI).
    """
    rows: List[LlmSweepRow] = []
    for (chip, spec, point, n_slots, table, policy, rate_qps, requests,
         _pair_index) in _sweep_pairs(seed, models, chips, duration_s,
                                      slots, utilization):
        if not requests:
            continue  # degenerate rate/duration; nothing to serve

        simulator = ContinuousBatchingSimulator(point, spec, slots=n_slots)
        simulator.seed_latencies(table)
        stats = simulator.simulate(requests)

        decode_spec = spec.decode(spec.kv_buckets[0])
        oi = decode_spec.ops_per_byte(policy.padded_size(n_slots))
        rows.append(LlmSweepRow(
            chip=chip.name, model=spec.name, slots=n_slots,
            offered_qps=rate_qps, decode_ops_per_byte=oi,
            decode_memory_bound=oi < chip.ridge_ops_per_byte(),
            stats=stats))
    return rows


def llm_chaos_sweep(seed: int = 0, *,
                    models: Sequence[str] = ("llm0", "llm1"),
                    chips: Optional[Sequence] = None,
                    duration_s: float = 2.0,
                    slots: Optional[int] = None,
                    utilization: float = 0.6,
                    checkpoint_every: int = 8) -> List[LlmChaosRow]:
    """Recovery-policy comparison under chaos, per (chip, model).

    Three scenarios — ``faultless`` (checkpoint overhead in isolation),
    ``kill`` (seeded repairable mid-step core kills), and ``outage``
    (the last core dies permanently mid-stream) — each simulated twice
    over the *same* traffic and fault schedule: once with the PR 9
    scratch-re-prefill baseline (no policy) and once with an
    every-``checkpoint_every``-tokens snapshot policy with migration.
    The goodput, recovery, and migration columns are the measurable
    answer to "what does a checkpoint interval buy": like
    :func:`llm_sweep`, the whole table is a pure function of its
    arguments (asserted by byte-diffing two ``repro llm --faults`` runs
    in CI).
    """
    from repro.faults.model import FaultModel, FaultSchedule

    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}")

    rows: List[LlmChaosRow] = []
    for (chip, spec, point, n_slots, table, _policy, _rate_qps, requests,
         pair_index) in _sweep_pairs(seed, models, chips, duration_s,
                                     slots, utilization):
        if not requests:
            continue
        cores = chip.cores
        last_arrival = requests[-1].arrival_s
        horizon = last_arrival + 1.0
        # Enough repairable kills to matter, deterministic per pair; the
        # permanent death lands mid-arrival-stream so roughly half the
        # dying core's substream is still in flight or unserved.
        kill_model = FaultModel(seed=seed * 104729 + pair_index,
                                core_mtbf_s=horizon / 6.0,
                                core_repair_s=horizon / 30.0,
                                retry_budget=4)
        quiet_model = FaultModel(retry_budget=4)
        outage = FaultSchedule(
            cores, horizon,
            down=((cores - 1, last_arrival / 2.0, math.inf),))
        scenarios = (("faultless", None, None),
                     ("kill", kill_model, None),
                     ("outage", quiet_model, outage))
        recovery = RecoveryPolicy(checkpoint_every=checkpoint_every)
        snap_table = snapshot_latency_table(
            point, spec, n_slots, host_link=recovery.host_link)
        policies = (("scratch", None),
                    (f"ckpt{checkpoint_every}", recovery))

        for scenario, fault_model, schedule in scenarios:
            for policy_name, policy_recovery in policies:
                simulator = ContinuousBatchingSimulator(
                    point, spec, slots=n_slots, recovery=policy_recovery)
                simulator.seed_latencies(table)
                simulator.seed_latencies(snap_table)
                stats = simulator.simulate(requests, faults=fault_model,
                                           schedule=schedule)
                rows.append(LlmChaosRow(
                    chip=chip.name, model=spec.name, scenario=scenario,
                    policy=policy_name,
                    checkpoint_every=(checkpoint_every
                                      if policy_recovery is not None else 0),
                    stats=stats))
    return rows
