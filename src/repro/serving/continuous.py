"""Continuous batching for autoregressive decode (slot-based admission).

Classic serving admits whole requests into batches; generative serving
cannot — a request is alive for one prefill plus up to ``max_decode_len``
decode *iterations*, and tying a batch's lifetime to its slowest member
would idle every slot. This simulator therefore admits decode
iterations, vLLM-style:

* each core runs an independent engine with ``slots`` request slots
  (requests are assigned to cores round-robin, so multi-core chips keep
  the deterministic, replayable structure of the PR 3 event loop);
* an admitted request is first *prefilled* alone (one prompt-bucket
  program at batch 1 — prefill produces the first token, so TTFT is the
  prefill completion minus arrival);
* every engine step after that decodes *all* prefilled slots together:
  one decode program at the padded active count, against the KV bucket
  covering the deepest sequence in flight. Requests join and retire
  between iterations without draining the batch;
* prefills are prioritized over decode steps (admit-heavy, the
  continuous-batching scheduling choice that bounds TTFT).

Faults reuse the PR 3 machinery unchanged: a seeded
:class:`~repro.faults.model.FaultModel` (or a hand-built schedule)
injects outages, slowdowns, and mid-step kills. KV caches are
core-resident state, so a core dying mid-step destroys the *generated
prefix of every active request on that core*; survivors re-enqueue with
their original arrival times under the model's retry budget and
timeout, and re-prefill from scratch when re-admitted.

This event loop IS the reference path: there is no vectorized twin (the
``REPRO_FASTSERVE`` toggle does not apply here), and the byte-identity
contract is run-to-run determinism — asserted in the engine bench and
CI by diffing two ``repro llm`` runs.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence, Tuple

from repro.core.design_point import DesignPoint
from repro.serving.batching import BatchPolicy
from repro.serving.server import (
    DEFAULT_RETRY_BUDGET,
    DEFAULT_RETRY_TIMEOUT_S,
)
from repro.serving.slo import percentile_sorted
from repro.workloads.generative import GenerativeSpec, GenRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.model import FaultModel, FaultSchedule


@dataclass(frozen=True)
class GenerativeSlo:
    """The generative latency contract: TTFT plus a per-token budget.

    One number cannot describe an autoregressive request — a fast first
    token with slow streaming and a slow first token with fast streaming
    are different failures. Violations are tracked separately against
    each budget at the same percentile.
    """

    ttft_s: float
    per_token_s: float
    pct: float = 99.0

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.per_token_s <= 0:
            raise ValueError("SLO budgets must be positive")
        if not 0 < self.pct <= 100:
            raise ValueError("percentile must be in (0, 100]")


@dataclass(frozen=True)
class ContinuousStats:
    """Outcome of one continuous-batching simulation.

    Request conservation is a constructor invariant, exactly as in
    :class:`~repro.serving.server.ServingStats`: ``requests == served +
    dropped`` (continuous engines sit below any admission control, so
    there is no shed bucket). ``served_requests`` defaults to "derive
    it" for hand-built instances; the simulator always passes its actual
    retirement count.
    """

    workload: str
    chip: str
    requests: int
    duration_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    per_token_p50_s: float
    per_token_p99_s: float
    tokens_generated: int
    prefill_steps: int
    decode_steps: int
    mean_decode_batch: float
    tokens_per_s: float
    ttft_violation_fraction: float
    per_token_violation_fraction: float
    availability: float = 1.0
    retried_requests: int = 0
    dropped_requests: int = 0
    lost_steps: int = 0
    served_requests: int = -1

    def __post_init__(self) -> None:
        if self.served_requests < 0:
            object.__setattr__(self, "served_requests",
                               self.requests - self.dropped_requests)
        if self.served_requests + self.dropped_requests != self.requests:
            raise ValueError(
                f"request conservation violated: {self.requests} arrived != "
                f"{self.served_requests} served + {self.dropped_requests} "
                f"dropped")

    def describe(self) -> str:
        base = (f"{self.workload} on {self.chip}: {self.requests} reqs, "
                f"{self.tokens_generated} tokens, TTFT p99 "
                f"{self.ttft_p99_s * 1e3:.2f} ms, per-token p99 "
                f"{self.per_token_p99_s * 1e3:.2f} ms, "
                f"{self.tokens_per_s:.0f} tok/s, mean decode batch "
                f"{self.mean_decode_batch:.1f}")
        if self.retried_requests or self.dropped_requests or self.lost_steps:
            base += (f", {self.availability:.2%} available "
                     f"({self.retried_requests} retries, "
                     f"{self.dropped_requests} dropped, "
                     f"{self.lost_steps} steps lost)")
        return base


class _Slot:
    """One admitted request's engine-side state (mutable, loop-internal)."""

    __slots__ = ("request", "retries", "produced", "target", "prefill_t")

    def __init__(self, request: GenRequest, retries: int, target: int) -> None:
        self.request = request
        self.retries = retries
        self.produced = 0          # tokens generated so far
        self.target = target       # decode_len capped at max_decode_len
        self.prefill_t = None      # completion time of the prefill, or None


class _Accumulator:
    """Cross-core tallies folded into ContinuousStats at the end."""

    __slots__ = ("ttft", "per_token", "served", "dropped", "retried",
                 "tokens", "prefills", "decode_steps", "decode_batch_sum",
                 "lost_steps", "last_completion")

    def __init__(self) -> None:
        self.ttft: List[float] = []
        self.per_token: List[float] = []
        self.served = 0
        self.dropped = 0
        self.retried = 0
        self.tokens = 0
        self.prefills = 0
        self.decode_steps = 0
        self.decode_batch_sum = 0
        self.lost_steps = 0
        self.last_completion = 0.0


class ContinuousBatchingSimulator:
    """Slot-based continuous batching of one generative model on one chip."""

    def __init__(self, point: DesignPoint, spec: GenerativeSpec,
                 slots: Optional[int] = None,
                 slo: Optional[GenerativeSlo] = None,
                 max_decode_len: Optional[int] = None) -> None:
        self.point = point
        self.spec = spec
        self.slots = slots if slots is not None else spec.default_slots
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        self.slo = slo if slo is not None else GenerativeSlo(
            spec.slo_ttft_ms / 1e3, spec.slo_per_token_ms / 1e3)
        self.max_decode_len = (max_decode_len if max_decode_len is not None
                               else spec.max_decode_len)
        if self.max_decode_len < 1:
            raise ValueError("max_decode_len must be >= 1")
        # Decode batches pad to the same power-of-two ladder the classic
        # batcher compiles for; the policy also rejects padded_size(0),
        # so an empty decode step can never be priced.
        self._policy = BatchPolicy(max_batch=self.slots, max_wait_s=0.0)
        self._latency: dict[Tuple[str, int, int], float] = {}

    # ------------------------------------------------------------- latencies

    def step_latency_s(self, phase: str, bucket: int, batch: int) -> float:
        """Compute latency of one engine step (memoized).

        Keyed by (phase, sequence bucket, padded batch); lookups route
        through the design point and therefore the engine EvalCache,
        whose keys carry the phase and KV bucket explicitly.
        """
        padded = self._policy.padded_size(batch)
        key = (phase, bucket, padded)
        if key not in self._latency:
            spec = (self.spec.prefill(bucket) if phase == "prefill"
                    else self.spec.decode(bucket))
            self._latency[key] = self.point.latency_s(spec, padded)
        return self._latency[key]

    def seed_latencies(
            self, table: Mapping[Tuple[str, int, int], float]) -> None:
        """Pre-seed the (phase, bucket, padded batch) -> latency memo.

        For latencies obtained outside the design point's default path —
        an int8-retargeted compile on a chip without bf16 (TPUv1), or a
        synthetic table in tests.
        """
        for (phase, _bucket, batch), latency in table.items():
            if phase not in ("prefill", "decode"):
                raise ValueError(f"unknown phase {phase!r}")
            if batch < 1:
                raise ValueError("batch must be >= 1")
            if latency < 0:
                raise ValueError("latency must be non-negative")
        self._latency.update(table)

    # -------------------------------------------------------------- simulate

    def simulate(self, requests: Sequence[GenRequest],
                 faults: Optional["FaultModel"] = None,
                 schedule: Optional["FaultSchedule"] = None
                 ) -> ContinuousStats:
        """Run the continuous-batching engines over a sorted request stream.

        Unlike the classic simulator, an empty stream is a valid quiet
        window (continuous engines idle between bursts), returning
        all-zero stats rather than raising.
        """
        arrivals = [r.arrival_s for r in requests]
        if arrivals != sorted(arrivals):
            raise ValueError("requests must be sorted by arrival time")

        cores = self.point.chip.cores
        if faults is not None:
            retry_budget = faults.retry_budget
            retry_timeout = faults.retry_timeout_s
            if schedule is None and not faults.zero_fault and requests:
                schedule = faults.schedule(
                    cores, arrivals[-1] + faults.horizon_pad_s)
        else:
            retry_budget = DEFAULT_RETRY_BUDGET
            retry_timeout = DEFAULT_RETRY_TIMEOUT_S
        if schedule is not None and schedule.cores != cores:
            raise ValueError(
                f"schedule built for {schedule.cores} cores, chip has {cores}")
        if schedule is not None and schedule.is_empty:
            schedule = None

        acc = _Accumulator()
        for core in range(cores):
            substream = [r for i, r in enumerate(requests) if i % cores == core]
            if substream:
                self._run_core(core, substream, schedule, retry_budget,
                               retry_timeout, acc)
        return self._finalize(requests, acc)

    def _run_core(self, core: int, requests: Sequence[GenRequest],
                  schedule: Optional["FaultSchedule"], retry_budget: int,
                  retry_timeout: float, acc: _Accumulator) -> None:
        """One core's engine loop over its round-robin substream."""
        pending = deque((r, 0) for r in requests)  # (request, retries)
        active: List[_Slot] = []
        now = 0.0

        while pending or active:
            if not active and pending:
                now = max(now, pending[0][0].arrival_s)

            if schedule is not None:
                down_until = schedule.outage_end(core, now)
                if down_until is not None:
                    if math.isinf(down_until):
                        # Core is gone for good: everything it owns —
                        # active prefixes and its whole substream — is
                        # lost (round-robin placement is static).
                        acc.dropped += len(active) + len(pending)
                        return
                    now = down_until

            # Admission: arrived requests claim free slots FIFO. A
            # retried request whose re-admission would already exceed
            # the retry timeout is dropped here, never served late.
            while (pending and len(active) < self.slots
                   and pending[0][0].arrival_s <= now):
                request, retries = pending.popleft()
                if retries > 0 and now - request.arrival_s > retry_timeout:
                    acc.dropped += 1
                    continue
                active.append(_Slot(request, retries,
                                    min(request.decode_len,
                                        self.max_decode_len)))
            if not active:
                continue  # timed-out retries only; re-check arrivals

            # Step selection: oldest un-prefilled slot first, else one
            # decode iteration over every prefilled slot.
            waiting_prefill = [s for s in active if s.prefill_t is None]
            if waiting_prefill:
                members = [waiting_prefill[0]]
                phase = "prefill"
                bucket = self.spec.prompt_bucket(members[0].request.prompt_len)
            else:
                members = active
                phase = "decode"
                deepest = max(s.request.prompt_len + s.produced
                              for s in members)
                bucket = self.spec.kv_bucket(deepest)
            latency = self.step_latency_s(phase, bucket, len(members))
            if schedule is not None:
                latency *= schedule.slowdown_factor(core, now)
            completion = now + latency

            if schedule is not None:
                failure = schedule.first_failure_between(core, now, completion)
                if failure is not None:
                    # The core died mid-step. KV caches are core-resident,
                    # so EVERY active request loses its generated prefix,
                    # not just the step's members; survivors re-enqueue
                    # (front, original arrivals) and re-prefill later.
                    fail_start, fail_end = failure
                    acc.lost_steps += 1
                    if math.isinf(fail_end):
                        # The core never comes back: its prefixes and
                        # its whole static substream are gone.
                        acc.dropped += len(active) + len(pending)
                        return
                    survivors: List[Tuple[GenRequest, int]] = []
                    for slot in active:
                        if (slot.retries + 1 > retry_budget
                                or fail_start - slot.request.arrival_s
                                > retry_timeout):
                            acc.dropped += 1
                        else:
                            acc.retried += 1
                            survivors.append((slot.request, slot.retries + 1))
                    pending.extendleft(reversed(survivors))
                    active = []
                    now = fail_end
                    continue

            # Commit the step.
            now = completion
            if phase == "prefill":
                slot = members[0]
                slot.prefill_t = completion
                slot.produced = 1
                acc.prefills += 1
            else:
                acc.decode_steps += 1
                acc.decode_batch_sum += len(members)
                for slot in members:
                    slot.produced += 1

            retiring = [s for s in active if s.produced >= s.target]
            if retiring:
                active = [s for s in active if s.produced < s.target]
                for slot in retiring:
                    acc.served += 1
                    acc.tokens += slot.target
                    acc.ttft.append(slot.prefill_t - slot.request.arrival_s)
                    if slot.target > 1:
                        acc.per_token.append(
                            (completion - slot.prefill_t)
                            / (slot.target - 1))
            acc.last_completion = max(acc.last_completion, completion)

    def _finalize(self, requests: Sequence[GenRequest],
                  acc: _Accumulator) -> ContinuousStats:
        total = len(requests)
        duration = (max(acc.last_completion, requests[-1].arrival_s)
                    - requests[0].arrival_s) if requests else 0.0
        ttft = sorted(acc.ttft)
        per_token = sorted(acc.per_token)

        def _violations(ordered: List[float], limit: float) -> float:
            if not ordered:
                return 0.0
            return sum(1 for v in ordered if v > limit) / len(ordered)

        return ContinuousStats(
            workload=self.spec.name,
            chip=self.point.chip.name,
            requests=total,
            duration_s=duration,
            ttft_p50_s=percentile_sorted(ttft, 50) if ttft else 0.0,
            ttft_p99_s=percentile_sorted(ttft, self.slo.pct) if ttft else 0.0,
            per_token_p50_s=(percentile_sorted(per_token, 50)
                             if per_token else 0.0),
            per_token_p99_s=(percentile_sorted(per_token, self.slo.pct)
                             if per_token else 0.0),
            tokens_generated=acc.tokens,
            prefill_steps=acc.prefills,
            decode_steps=acc.decode_steps,
            mean_decode_batch=(acc.decode_batch_sum / acc.decode_steps
                               if acc.decode_steps else 0.0),
            tokens_per_s=acc.tokens / duration if duration > 0 else 0.0,
            ttft_violation_fraction=_violations(ttft, self.slo.ttft_s),
            per_token_violation_fraction=_violations(
                per_token, self.slo.per_token_s),
            availability=acc.served / total if total else 1.0,
            retried_requests=acc.retried,
            dropped_requests=acc.dropped,
            lost_steps=acc.lost_steps,
            served_requests=acc.served,
        )


# ----------------------------------------------------------------- sweeps

def phase_latency_table(point: DesignPoint, spec: GenerativeSpec,
                        slots: int, *, dtype: Optional[str] = None
                        ) -> dict[Tuple[str, int, int], float]:
    """(phase, bucket, padded batch) -> latency for one (chip, model).

    The generative analogue of :func:`repro.faults.sweep.latency_table`:
    bf16 chips price every phase program through one batched grid-kernel
    pass (results land in the EvalCache under the same phase-aware keys
    ``latency_s`` uses); chips without bf16 (TPUv1) go through an
    int8-retargeted compile with explicit phase/kv-bucket cache keys, so
    the sweep covers all four generations.
    """
    entries: List[Tuple[str, int, int]] = []
    for bucket in spec.prompt_buckets:
        entries.append(("prefill", bucket, 1))
    for bucket in spec.kv_buckets:
        for step in BatchPolicy.batch_steps(slots):
            entries.append(("decode", bucket, step))

    chip = point.chip
    if dtype is None:
        dtype = "bf16" if chip.supports_dtype("bf16") else "int8"
    phase_specs = {("prefill", b): spec.prefill(b) for b in spec.prompt_buckets}
    phase_specs.update(
        {("decode", b): spec.decode(b) for b in spec.kv_buckets})

    if dtype == "bf16":
        from repro.engine.grid import GridJob, run_grid
        results = run_grid([
            GridJob(point, phase_specs[(phase, bucket)], batch)
            for phase, bucket, batch in entries])
        return {entry: r.seconds for entry, r in zip(entries, results)}

    from repro.compiler.pipeline import compile_model, retarget_dtype
    from repro.engine.cache import get_cache
    from repro.engine.keys import eval_key, key_meta
    cache = get_cache()
    table: dict[Tuple[str, int, int], float] = {}
    for phase, bucket, batch in entries:
        pspec = phase_specs[(phase, bucket)]
        key = eval_key("sim", point.chip_fp, point.compiler_fp, pspec.name,
                       batch, None, dtype, phase=phase, kv_bucket=bucket)
        result = cache.get(key)
        if result is None:
            module = retarget_dtype(pspec.build(batch), dtype)
            program = compile_model(module, chip,
                                    version=point.version).program
            result = point.sim.run(program, dtype=dtype)
            cache.put(key, result,
                      key_meta("sim", chip.name, point.version.name,
                               pspec.name, batch, None, dtype,
                               phase=phase, kv_bucket=bucket))
        table[(phase, bucket, batch)] = result.seconds
    return table


@dataclass(frozen=True)
class LlmSweepRow:
    """One (chip, model) outcome of the generative serving sweep."""

    chip: str
    model: str
    slots: int
    offered_qps: float
    decode_ops_per_byte: float
    decode_memory_bound: bool
    stats: ContinuousStats


def llm_sweep(seed: int = 0, *,
              models: Sequence[str] = ("llm0", "llm1"),
              chips: Optional[Sequence] = None,
              duration_s: float = 2.0,
              slots: Optional[int] = None,
              utilization: float = 0.6) -> List[LlmSweepRow]:
    """Continuous-batching serving sweep across chips and decoder models.

    One row per (chip, model): seeded traffic (arrivals + per-request
    prompt/decode lengths) at ``utilization`` of the engine's steady
    decode token throughput, simulated under continuous batching. The
    whole sweep is a pure function of its arguments — same seed, same
    rows, byte for byte (asserted in the engine bench and CI).
    """
    from repro.arch import GENERATIONS
    from repro.core.design_point import shared_design_point
    from repro.workloads.generative import generative_by_name, \
        sample_gen_requests

    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    chip_list = tuple(chips) if chips is not None else GENERATIONS

    rows: List[LlmSweepRow] = []
    for pair_index, (chip, model) in enumerate(
            (c, m) for c in chip_list for m in models):
        spec = generative_by_name(model)
        point = shared_design_point(chip)
        n_slots = slots if slots is not None else spec.default_slots
        table = phase_latency_table(point, spec, n_slots)

        simulator = ContinuousBatchingSimulator(point, spec, slots=n_slots)
        simulator.seed_latencies(table)

        # Steady-state capacity: a full decode batch advances n_slots
        # sequences one token per step, and a request needs one prefill
        # plus ~mean_decode steps of its slot. Offered load derives from
        # the seeded table, so the sweep stays a pure function of its
        # arguments across runs.
        policy = BatchPolicy(max_batch=n_slots, max_wait_s=0.0)
        decode_s = table[("decode", spec.kv_buckets[0],
                          policy.padded_size(n_slots))]
        prefill_s = table[("prefill", spec.prompt_buckets[0], 1)]
        service_s = spec.mean_decode * decode_s + prefill_s
        capacity_qps = point.chip.cores * n_slots / service_s
        rate_qps = utilization * capacity_qps

        requests = sample_gen_requests(
            spec, seed * 7919 + pair_index, rate_qps, duration_s)
        if not requests:
            continue  # degenerate rate/duration; nothing to serve
        stats = simulator.simulate(requests)

        decode_spec = spec.decode(spec.kv_buckets[0])
        oi = decode_spec.ops_per_byte(policy.padded_size(n_slots))
        rows.append(LlmSweepRow(
            chip=chip.name, model=spec.name, slots=n_slots,
            offered_qps=rate_qps, decode_ops_per_byte=oi,
            decode_memory_bound=oi < chip.ridge_ops_per_byte(),
            stats=stats))
    return rows
