"""Dynamic batching policy.

Serving systems accumulate requests and launch a batch when either it is
full or its oldest member has waited long enough. Both knobs trade
throughput (MXU utilization grows with batch) against latency (waiting +
longer batch compute) — the tension Lesson 9 resolves in favour of the
latency SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

_BATCH_STEPS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class BatchPolicy:
    """Dynamic batcher configuration.

    Attributes:
        max_batch: hard cap on batch size.
        max_wait_s: launch a partial batch once its oldest request has
            waited this long.
    """

    max_batch: int
    max_wait_s: float

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")

    def padded_size(self, actual: int) -> int:
        """Batch size the accelerator actually runs (padded to a step).

        Compiled programs exist per batch size, so partial batches pad up
        to the next power-of-two step — wasted work the latency model
        charges honestly.
        """
        if actual < 1:
            raise ValueError("batch must be >= 1")
        capped = min(actual, self.max_batch)
        for step in _BATCH_STEPS:
            if step >= capped:
                return min(step, self.max_batch)
        return self.max_batch

    @staticmethod
    def batch_steps(max_batch: int) -> Tuple[int, ...]:
        """The compiled batch sizes needed to serve up to ``max_batch``."""
        steps = [s for s in _BATCH_STEPS if s <= max_batch]
        if not steps or steps[-1] != max_batch:
            steps.append(max_batch)
        return tuple(steps)
