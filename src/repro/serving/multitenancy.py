"""Multi-tenant serving (Lesson 4: support multi-tenancy).

The paper reports that most production inference services keep *several*
models resident per accelerator (traffic mixing, A/B experiments, canary
versions). Two policies are modeled:

* ``"swap"`` — one model owns all of CMEM at a time; switching tenants
  re-stages the incoming model's weights from HBM (fast, *if* every
  tenant's weights were provisioned to stay HBM-resident);
* ``"swap_host"`` — the unsupported-multi-tenancy case: on-device memory
  only holds the active model, so a switch hauls the incoming model's
  full weights from host DRAM over PCIe — tens of milliseconds that land
  squarely on request latency;
* ``"partition"`` — CMEM is divided among the tenants up front; each runs
  slightly slower (smaller weight budget) but switching is free.

With interleaved traffic the ordering is partition <= swap << swap_host:
co-residency must be *provisioned for* (enough HBM for every tenant's
weights, enough CMEM to split) — the quantitative form of Lesson 4, and
why TPUv4i carries 8 GiB of HBM and 128 MiB of CMEM for inference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.design_point import DesignPoint
from repro.serving.slo import percentile
from repro.util.units import GIGA
from repro.workloads.generator import Request
from repro.workloads.models import WorkloadSpec

# Host link for the unsupported-multi-tenancy case (PCIe Gen3 x16-class).
PCIE_BW_BYTES_PER_S = 16 * GIGA

_POLICIES = ("swap", "swap_host", "partition")


@dataclass(frozen=True)
class Tenant:
    """One co-resident model and its traffic rate."""

    spec: WorkloadSpec
    rate_qps: float
    batch: int = 1

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("tenant rate must be positive")
        if self.batch < 1:
            raise ValueError("tenant batch must be >= 1")


@dataclass(frozen=True)
class TenantWindowStats:
    """One tenant's share of a simulation window.

    A registered tenant can receive zero requests in a window (canary
    models between experiments are mostly idle), so every ratio here is
    guarded: an idle tenant reports 0.0 latencies, never a
    ZeroDivisionError.
    """

    tenant: str
    requests: int
    p99_s: float
    mean_latency_s: float

    @classmethod
    def from_latencies(cls, tenant: str,
                       latencies: Sequence[float]) -> "TenantWindowStats":
        return cls(
            tenant=tenant,
            requests=len(latencies),
            p99_s=percentile(latencies, 99) if latencies else 0.0,
            mean_latency_s=(sum(latencies) / len(latencies)
                            if latencies else 0.0),
        )


@dataclass(frozen=True)
class MultiTenantStats:
    """Outcome of one multi-tenant simulation."""

    policy: str
    tenants: int
    requests: int
    p99_s: float
    mean_latency_s: float
    throughput_qps: float
    swap_count: int
    swap_seconds_total: float
    per_tenant: Tuple[TenantWindowStats, ...] = field(default=())

    def describe(self) -> str:
        return (f"{self.policy}/{self.tenants} tenants: p99 "
                f"{self.p99_s * 1e3:.2f} ms, {self.throughput_qps:.0f} qps, "
                f"{self.swap_count} swaps costing "
                f"{self.swap_seconds_total * 1e3:.1f} ms total")


def partition_cmem(point: DesignPoint, tenants: Sequence[Tenant]) -> Dict[str, int]:
    """Split CMEM among tenants proportionally to their weight footprints.

    Returns tenant name -> CMEM budget in bytes. A tenant set on a
    CMEM-less chip gets all-zero budgets (everything streams from HBM).
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    capacity = point.chip.cmem_bytes
    weights = {t.spec.name: t.spec.build(1).total_weight_bytes()
               for t in tenants}
    total = sum(weights.values())
    if total == 0 or capacity == 0:
        return {name: 0 for name in weights}
    return {name: int(capacity * w / total) for name, w in weights.items()}


class MultiTenantSim:
    """FCFS multi-tenant serving with swap or partition CMEM policies."""

    def __init__(self, point: DesignPoint, tenants: Sequence[Tenant]) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.spec.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant workloads must be distinct")
        self.point = point
        self.tenants = list(tenants)
        self._by_name = {t.spec.name: t for t in tenants}

    def _latencies(self, policy: str) -> Dict[str, float]:
        """Per-tenant single-request service time under the policy."""
        result: Dict[str, float] = {}
        if policy == "partition":
            budgets = partition_cmem(self.point, self.tenants)
            for tenant in self.tenants:
                result[tenant.spec.name] = self.point.latency_s(
                    tenant.spec, tenant.batch,
                    cmem_budget_bytes=budgets[tenant.spec.name])
        elif policy in ("swap", "swap_host"):
            for tenant in self.tenants:
                result[tenant.spec.name] = self.point.latency_s(
                    tenant.spec, tenant.batch)
        else:
            raise ValueError(
                f"policy must be one of {_POLICIES}, got {policy!r}")
        return result

    def _swap_cost_s(self, tenant: Tenant, policy: str) -> float:
        """Time to bring a tenant's weights back when it becomes active.

        ``swap``: only the CMEM-resident portion restages, at HBM bandwidth
        (the weights stayed in HBM — co-residency was provisioned).
        ``swap_host``: the full weight footprint crosses PCIe from host
        memory (on-device capacity holds only the active model).
        """
        if policy == "swap_host":
            weights = tenant.spec.build(1).total_weight_bytes()
            return weights / PCIE_BW_BYTES_PER_S
        if not self.point.chip.has_cmem:
            return 0.0
        compiled = self.point.compiled(tenant.spec, tenant.batch)
        return self.point.sim.weight_load_seconds(
            compiled.memory.cmem_weight_bytes, "cmem")

    def simulate(self, requests: Sequence[Request],
                 policy: str) -> MultiTenantStats:
        """FCFS service of a merged, time-sorted request stream."""
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        service = self._latencies(policy)
        latencies: List[float] = []
        by_tenant: Dict[str, List[float]] = {
            t.spec.name: [] for t in self.tenants}
        server_free = 0.0
        resident: str = ""
        swap_count = 0
        swap_total = 0.0

        for request in requests:
            tenant = self._by_name.get(request.tenant)
            if tenant is None:
                raise KeyError(f"request for unknown tenant {request.tenant!r}")
            start = max(server_free, request.arrival_s)
            if policy in ("swap", "swap_host") and request.tenant != resident:
                if resident:  # first residency is free (deploy-time load)
                    cost = self._swap_cost_s(tenant, policy)
                    start += cost
                    swap_count += 1
                    swap_total += cost
                resident = request.tenant
            completion = start + service[request.tenant]
            server_free = completion
            latencies.append(completion - request.arrival_s)
            by_tenant[request.tenant].append(completion - request.arrival_s)

        # Both aggregate ratios are guarded exactly like the per-tenant
        # ones: a window can legitimately close with zero completions.
        duration = server_free - requests[0].arrival_s
        return MultiTenantStats(
            policy=policy,
            tenants=len(self.tenants),
            requests=len(requests),
            p99_s=percentile(latencies, 99) if latencies else 0.0,
            mean_latency_s=(sum(latencies) / len(latencies)
                            if latencies else 0.0),
            throughput_qps=len(requests) / duration if duration > 0 else 0.0,
            swap_count=swap_count,
            swap_seconds_total=swap_total,
            per_tenant=tuple(
                TenantWindowStats.from_latencies(t.spec.name,
                                                 by_tenant[t.spec.name])
                for t in self.tenants),
        )
