"""Fleet sizing: how many chips does a production service need?

The purchasing decision behind Lesson 3, made concrete: given a target
aggregate rate and the app's latency SLO, find the largest SLO-feasible
batch, the per-chip throughput at that batch, the chip count (with
headroom for diurnal peaks), and the fleet's lifetime cost.

Resilient fleets are N+k: ``spare_chips=k`` provisions ``k`` extra hot
chips so the SLO still holds with any ``k`` chips failed, and
:attr:`FleetPlan.resilience_premium` prices what that insurance costs —
the Lesson 3 number under failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.design_point import DesignPoint
from repro.serving.slo import Slo
from repro.tco.model import ChipTco, chip_tco
from repro.workloads.models import WorkloadSpec


@dataclass(frozen=True)
class FleetPlan:
    """A sized fleet for one workload on one design point."""

    workload: str
    chip: str
    target_qps: float
    slo_batch: int
    per_chip_qps: float
    chips: int
    fleet_tco_usd: float
    fleet_power_w: float
    spare_chips: int = 0
    #: Availability measured by a cluster simulation of this N+k shape
    #: under a fault model (None when the plan was sized statically).
    simulated_availability: Optional[float] = None

    @property
    def cost_per_kqps_usd(self) -> float:
        """Lifetime dollars per thousand served qps — the comparison metric.

        0.0 for a degenerate zero-qps plan (never inf/ZeroDivisionError).
        """
        if self.target_qps <= 0:
            return 0.0
        return self.fleet_tco_usd / (self.target_qps / 1000.0)

    @property
    def serving_chips(self) -> int:
        """Chips needed to hold the SLO with every spare failed."""
        return self.chips - self.spare_chips

    @property
    def resilience_premium(self) -> float:
        """Fractional TCO cost of the spares over the N+0 fleet.

        TCO is linear in chips, so k spares over n serving chips cost
        exactly k/n extra — 0.0 for an N+0 plan, and 0.0 (not a
        ZeroDivisionError) for a degenerate all-spare plan.
        """
        if self.serving_chips <= 0:
            return 0.0
        return self.spare_chips / self.serving_chips

    def describe(self) -> str:
        text = (f"{self.workload} @ {self.target_qps:.0f} qps on {self.chip}: "
                f"{self.chips} chips (batch {self.slo_batch}, "
                f"{self.per_chip_qps:.0f} qps/chip), "
                f"${self.fleet_tco_usd:,.0f} 3-yr TCO, "
                f"{self.fleet_power_w / 1000:.1f} kW")
        if self.spare_chips:
            text += (f", N+{self.spare_chips} spares "
                     f"({self.resilience_premium:.1%} TCO premium)")
        if self.simulated_availability is not None:
            text += f", {self.simulated_availability:.2%} simulated avail"
        return text


def plan_fleet(point: DesignPoint, spec: WorkloadSpec, target_qps: float, *,
               slo: Optional[Slo] = None,
               peak_headroom: float = 1.4,
               spare_chips: int = 0) -> FleetPlan:
    """Size a fleet to serve ``target_qps`` under the app's SLO.

    ``peak_headroom`` provisions for diurnal peaks above the mean rate
    (a 1.4x peak-to-mean is typical of user-facing traffic).

    ``spare_chips`` makes the plan N+k: k additional hot chips beyond
    the SLO-holding count, so the fleet still meets the target with k
    chips failed. Spares are live (they draw power and cost TCO); the
    plan's :attr:`FleetPlan.resilience_premium` reports what the
    insurance costs.

    Raises ValueError if no batch size meets the SLO on this chip — the
    workload simply cannot be served compliantly on this design.
    """
    if target_qps <= 0:
        raise ValueError("target rate must be positive")
    if peak_headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    if spare_chips < 0:
        raise ValueError("spare chips must be non-negative")
    limit = slo if slo is not None else Slo(spec.slo_ms / 1e3)

    batch = point.max_batch_under_slo(spec, limit.limit_s)
    if batch == 0:
        raise ValueError(
            f"{spec.name} cannot meet its {limit.limit_s * 1e3:.0f} ms SLO "
            f"on {point.chip.name} at any batch size")
    evaluation = point.evaluate(spec, batch)
    serving = max(1, math.ceil(target_qps * peak_headroom
                               / evaluation.chip_qps))
    chips = serving + spare_chips
    tco: ChipTco = chip_tco(point.chip, evaluation.chip_power_w)
    return FleetPlan(
        workload=spec.name,
        chip=point.chip.name,
        target_qps=target_qps,
        slo_batch=batch,
        per_chip_qps=evaluation.chip_qps,
        chips=chips,
        fleet_tco_usd=chips * tco.total_usd,
        fleet_power_w=chips * evaluation.chip_power_w,
        spare_chips=spare_chips,
    )
