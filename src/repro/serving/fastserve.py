"""Vectorized serving-replay kernel: whole timelines as batched scans.

The discrete-event loops in :mod:`repro.serving.server` and
:mod:`repro.cluster.cluster` pay Python interpreter overhead per
*request*: every arrival is absorbed one comparison at a time, every
event-selection pass re-derives each replica's next launch time from
scratch, and every routing decision spins up generators. That made the
cluster chaos sweep the cold path of the whole repo once the grid
kernel (PR 6) made design-point simulation nearly free.

This module replays the same timelines at batch granularity:

* :func:`replay_serving` — one :class:`ServingSimulator` timeline.
  Between fault boundaries the queue provably drains on every launch
  (absorption is capped at ``max_batch``), so each batch is a
  *contiguous window* of the sorted arrival array: the absorb loop
  collapses to one :func:`bisect.bisect_right` over the arrivals and
  the per-request latency appends to one list comprehension. Fault
  boundaries — outages, mid-batch kills, retry-timeout purges — cut
  the timeline into segments; the short survivor list is carried across
  a boundary explicitly and each fault-free segment replays vectorized.
* :func:`replay_cluster` — one :class:`ClusterSimulator` timeline. The
  router's event loop is replayed with each replica's next launch time
  *cached* and invalidated only on the state changes that can move it
  (queue edits, server-heap edits, tier changes), join-shortest-queue
  routing inlined, per-(tier, replica, size) latency memos, and — when
  the policy neither probes nor hedges — completion events elided
  entirely (a request then has exactly one copy, so first-response-wins
  bookkeeping is order-independent and can be settled at launch).

Both kernels reproduce the reference event loops' arithmetic operation
for operation — same floats, same metric observations, same tracer
spans — so the returned stats are **bit-identical** to the event loop
on every scenario (asserted per chaos-sweep scenario in
``tests/test_fastserve.py`` and ``benchmarks/bench_engine.py``).
``REPRO_FASTSERVE=0`` (or :func:`fastserve_disabled`) opts out,
mirroring ``REPRO_FASTSIM``/``REPRO_GRIDSIM``: the simulators then run
the original event loops, which remain the reference.

Segment/batch/boundary counts are kept in the always-on module stats
(:func:`fastserve_stats`, surfaced by ``repro engine stats``) and, when
the metrics registry is enabled, in ``serving.fastserve.*`` counters.
"""

from __future__ import annotations

import heapq
import math
import os
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.obs.metrics import UNIT_BUCKETS, metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import ClusterSimulator, ClusterStats, _Replica
    from repro.faults.model import FaultSchedule
    from repro.obs.tracer import SpanTracer
    from repro.serving.server import ServingSimulator, ServingStats

#: ``REPRO_FASTSERVE=0`` (or ``off``) routes serving simulations through
#: the reference event loops; anything else uses the replay kernels.
ENV_FASTSERVE = "REPRO_FASTSERVE"

_fastserve_off_depth = 0


def fastserve_enabled() -> bool:
    """Whether serving simulations use the replay kernels (vs events)."""
    if _fastserve_off_depth:
        return False
    return os.environ.get(ENV_FASTSERVE, "").lower() not in ("0", "off")


@contextmanager
def fastserve_disabled() -> Iterator[None]:
    """Force the reference event loops (identity tests, benchmarks)."""
    global _fastserve_off_depth
    _fastserve_off_depth += 1
    try:
        yield
    finally:
        _fastserve_off_depth -= 1


# ------------------------------------------------------------------- stats

@dataclass
class FastServeStats:
    """Work the replay kernels did across a process."""

    replays: int = 0           # single-simulator timelines replayed
    cluster_replays: int = 0   # cluster timelines replayed
    batches: int = 0           # batches the kernels launched
    segments: int = 0          # fault-free segments replayed vectorized
    boundaries: int = 0        # outage/kill/purge/eject/tier segment cuts

    def describe(self) -> str:
        return (f"fastserve: {self.replays} replays "
                f"(+{self.cluster_replays} cluster), {self.batches} batches "
                f"over {self.segments} segments "
                f"({self.boundaries} fault boundaries)")


_STATS = FastServeStats()


def fastserve_stats() -> FastServeStats:
    return _STATS


def clear_fastserve() -> None:
    global _STATS
    _STATS = FastServeStats()


# --------------------------------------------------- single-simulator kernel

def replay_serving(sim: "ServingSimulator", arrivals: List[float],
                   schedule: Optional["FaultSchedule"], retry_budget: int,
                   retry_timeout: float,
                   tracer: Optional["SpanTracer"]) -> "ServingStats":
    """Replay one serving timeline; bit-identical to the event loop.

    Called by :meth:`ServingSimulator.simulate` after validation, with
    the fault schedule already resolved (``None`` for a faultless run).
    The queue invariant the kernel exploits: absorption never grows the
    queue past ``max_batch``, so a successful launch always drains it
    and a mid-batch kill leaves only the survivor list — the queue is
    always "survivors + a contiguous arrival window".
    """
    policy = sim.policy
    max_batch = policy.max_batch
    max_wait = policy.max_wait_s
    total = len(arrivals)

    servers = [(0.0, core) for core in range(sim.point.chip.cores)]
    heapq.heapify(servers)

    reg = metrics()
    rec = reg.enabled

    # Per-size latency memo over batch_latency_s (same lookups, one
    # padded_size call per distinct size instead of one per batch).
    lat_by_size: List[Optional[float]] = [None] * (max_batch + 1)

    latencies: List[float] = []
    batch_sizes: List[int] = []
    last_completion = 0.0
    retried = dropped = lost_batches = 0
    segments = 1
    boundaries = 0

    heapreplace = heapq.heapreplace
    record = tracer.record if tracer is not None else None

    if schedule is None:
        # One fault-free segment: every batch is a contiguous window
        # [s, e) of the arrival array and the queue drains each launch.
        s = 0
        while s < total:
            server_free, core = servers[0]
            deadline = arrivals[s] + max_wait
            horizon = server_free if server_free > deadline else deadline
            top = s + max_batch
            if top > total:
                top = total
            e = bisect_right(arrivals, horizon, s + 1, top)
            size = e - s
            if size >= max_batch:
                ready = arrivals[e - 1]
            else:
                ready = deadline
            launch = server_free if server_free > ready else ready
            if rec:
                reg.histogram("serving.queue_depth").observe(size)
                reg.histogram("serving.batch_occupancy",
                              UNIT_BUCKETS).observe(size / max_batch)
            latency = lat_by_size[size]
            if latency is None:
                latency = sim.batch_latency_s(size)
                lat_by_size[size] = latency
            completion = launch + latency
            heapreplace(servers, (completion, core))
            if record is not None:
                record("batch", "serve", "serving", f"core{core}",
                       launch * 1e6, latency * 1e6, (("size", size),))
            latencies.extend([completion - a for a in arrivals[s:e]])
            batch_sizes.append(size)
            if completion > last_completion:
                last_completion = completion
            s = e
    else:
        outage_end = schedule.outage_end
        slowdown_factor = schedule.slowdown_factor
        first_failure = schedule.first_failure_between
        check_timeout = not math.isinf(retry_timeout)
        # Queue = survivor prefix P (retried entries) + the contiguous
        # absorbed window arrivals[s:t]; t advances by bisection.
        pend: List[Tuple[float, int]] = []
        s = t = 0
        while True:
            n_pend = len(pend)
            if n_pend == 0 and t == s:
                if s >= total:
                    break
                t = s + 1
            server_free, core = servers[0]
            if math.isinf(server_free):
                # Every core is gone for good (same drop accounting as
                # the event loop: queued entries plus the unseen stream).
                dropped += n_pend + (total - s)
                pend = []
                s = t = total
                break
            qlen = n_pend + (t - s)
            if t < total and qlen < max_batch:
                head = pend[0][0] if n_pend else arrivals[s]
                deadline = head + max_wait
                horizon = (server_free if server_free > deadline
                           else deadline)
                top = t + (max_batch - qlen)
                if top > total:
                    top = total
                t = bisect_right(arrivals, horizon, t, top)
                qlen = n_pend + (t - s)
            if qlen >= max_batch:
                k = max_batch - 1
                ready = pend[k][0] if k < n_pend else arrivals[s + k - n_pend]
            else:
                head = pend[0][0] if n_pend else arrivals[s]
                ready = head + max_wait
            launch = server_free if server_free > ready else ready

            if retried and check_timeout:
                # Only survivor entries carry retries > 0, so the purge
                # scan never touches the stream window.
                alive = [e_ for e_ in pend
                         if not (e_[1] > 0 and launch - e_[0] > retry_timeout)]
                if len(alive) != n_pend:
                    dropped += n_pend - len(alive)
                    pend = alive
                    boundaries += 1
                    segments += 1
                    continue

            down_until = outage_end(core, launch)
            if down_until is not None:
                if rec:
                    reg.counter("serving.outage_wait_s").inc(
                        max(0.0, down_until - launch))
                heapreplace(servers, (down_until, core))
                boundaries += 1
                segments += 1
                continue

            size = qlen
            if rec:
                reg.histogram("serving.queue_depth").observe(qlen)
                reg.histogram("serving.batch_occupancy",
                              UNIT_BUCKETS).observe(size / max_batch)
            latency = lat_by_size[size]
            if latency is None:
                latency = sim.batch_latency_s(size)
                lat_by_size[size] = latency
            factor = slowdown_factor(core, launch)
            if factor != 1.0:
                latency *= factor
            completion = launch + latency

            failure = first_failure(core, launch, completion)
            if failure is not None:
                fail_start, fail_end = failure
                lost_batches += 1
                if record is not None:
                    record("batch.lost", "serve", "serving", f"core{core}",
                           launch * 1e6, (fail_start - launch) * 1e6,
                           (("size", size),))
                survivors: List[Tuple[float, int]] = []
                for arrival, retries in pend:
                    if (retries + 1 > retry_budget
                            or fail_start - arrival > retry_timeout):
                        dropped += 1
                    else:
                        retried += 1
                        survivors.append((arrival, retries + 1))
                for j in range(s, t):
                    arrival = arrivals[j]
                    if 1 > retry_budget or fail_start - arrival > retry_timeout:
                        dropped += 1
                    else:
                        retried += 1
                        survivors.append((arrival, 1))
                pend = survivors
                s = t
                heapreplace(servers, (fail_end, core))
                boundaries += 1
                segments += 1
                continue

            heapreplace(servers, (completion, core))
            if record is not None:
                record("batch", "serve", "serving", f"core{core}",
                       launch * 1e6, latency * 1e6, (("size", size),))
            if n_pend:
                latencies.extend([completion - a for a, _ in pend])
                pend = []
            latencies.extend([completion - a for a in arrivals[s:t]])
            batch_sizes.append(size)
            if completion > last_completion:
                last_completion = completion
            s = t

    _STATS.replays += 1
    _STATS.batches += len(batch_sizes)
    _STATS.segments += segments
    _STATS.boundaries += boundaries
    if rec:
        reg.count("serving.fastserve.replays")
        reg.count("serving.fastserve.segments", segments)
        reg.count("serving.fastserve.boundaries", boundaries)
    return sim._finalize(arrivals, schedule, latencies, batch_sizes,
                         retried, dropped, lost_batches, last_completion)


# ------------------------------------------------------------ cluster kernel

def replay_cluster(cluster: "ClusterSimulator", arrivals: List[float],
                   reps: List["_Replica"], tier_tables: list,
                   retry_budget: int, retry_timeout: float,
                   tracer: Optional["SpanTracer"]) -> "ClusterStats":
    """Replay one cluster timeline; bit-identical to the event loop.

    Called by :meth:`ClusterSimulator.simulate` after validation with
    replicas and degradation-tier tables already built. The event loop's
    per-iteration ``next_launch``/``tier_cap``/``route`` calls are
    replaced by cached launch times with explicit invalidation, a
    precomputed per-tier cap array, and inlined join-shortest-queue
    scans; lazy dead-replica discovery keeps its exact timing because a
    replica's launch cache only refreshes after the queue/server change
    that the reference's rediscovery would have reacted to.
    """
    from repro.cluster.cluster import _EJECTED, _HEALTHY, _P_COMPLETION

    policy = cluster.policy
    n = len(reps)
    total = len(arrivals)
    inf = math.inf

    reg = metrics()
    rec = reg.enabled

    probes_on = policy.probes
    hedges_on = policy.hedges
    # Without probes or hedges a request has exactly one live copy, so
    # completion bookkeeping is order-independent: settle it at launch
    # and skip the completion heap entirely.
    simple = not probes_on and not hedges_on

    admission_rate = policy.admission_rate_qps
    admission_burst = policy.admission_burst
    max_queue_depth = policy.max_queue_depth
    check_timeout = not math.isinf(retry_timeout)

    # ----- per-request state (unique-request accounting) -----
    # Simple mode keeps exactly one copy per request, so the per-copy
    # ledgers are never consulted: drops/completions settle directly.
    # A request never has more than two live copies (one primary plus
    # at most one hedge; fail-over moves a copy, it does not add one),
    # so the reference's per-request holder *list* flattens into two
    # int slots (-1 = empty) — no 100k-list allocation, no method calls.
    if simple:
        completed_at: List[Optional[float]] = []
        outstanding: List[int] = []
        hold_a: List[int] = []
        hold_b: List[int] = []
        hedged_flag: List[bool] = []
    else:
        completed_at = [None] * total
        outstanding = [0] * total
        hold_a = [-1] * total
        hold_b = [-1] * total
        hedged_flag = [False] * total

    cluster_latencies: List[float] = []
    shed = dropped_unique = 0
    hedged = cancelled_hedges = wasted_hedges = failed_over = 0
    probes = probe_failures = ejections = readmissions = 0
    boundaries = 0

    # ----- router clocks -----
    tokens = admission_burst
    tokens_at = arrivals[0]
    next_probe = (arrivals[0] + policy.probe_interval_s
                  if probes_on else inf)
    hedge_delay = policy.hedge_delay_s
    # Hedge-race bound for inline completion settling: with hedging off
    # a request only ever has one copy, so every completion qualifies.
    hedge_bound = hedge_delay if hedges_on else inf
    # Hedge timers fire arrival + constant delay after nondecreasing
    # arrivals, so the pending set is already sorted: a list with a head
    # cursor replaces the reference's heap (same pop order). Only the
    # request id is stored — the fire time is recomputed as
    # ``arrivals[rid] + hedge_delay``, the exact float the reference
    # pushed (same operands, same addition).
    hedges: List[int] = []
    hedge_head = 0
    completion_heap: list = []
    completion_seq = 0

    # ----- degradation ladder -----
    tier = 0
    tier_names = ("full",) + tuple(t.name for t in policy.tiers)
    tier_time = [0.0] * len(tier_names)
    tier_since = arrivals[0]
    bad_windows = good_windows = 0

    max_waits = [r.sim.policy.max_wait_s for r in reps]
    base_caps = [r.sim.policy.max_batch for r in reps]

    def caps_for_tier() -> List[int]:
        if tier == 0:
            return list(base_caps)
        override = policy.tiers[tier - 1].max_batch
        if override is None:
            return list(base_caps)
        return [b if b < override else override for b in base_caps]

    caps = caps_for_tier()
    # Pre-slowdown latency memo per (tier, replica, size).
    lat_memos: List[dict] = [{} for _ in tier_names]
    cur_lats = lat_memos[0]

    def tier_latency(rep: "_Replica", size: int) -> float:
        if tier == 0 or policy.tiers[tier - 1].dtype is None:
            return rep.sim.batch_latency_s(size)
        dtype = policy.tiers[tier - 1].dtype
        padded = rep.sim.policy.padded_size(size)
        return tier_tables[rep.index][dtype][padded]

    # Cached _Replica.next_launch(tier_cap) values (inf = nothing to
    # launch); stale[i] marks a replica whose queue, server heap, or cap
    # changed since computed.
    launches: List[float] = [inf] * n
    stale = [True] * n
    queued_total = 0  # total queued entries (replaces any(r.queue ...))
    # Latest completion time settled inline (no heap event). The
    # reference keeps such completions in its heap until the clock
    # passes them, and its probe clock runs while the heap is
    # non-empty — so probes must keep ticking until this time passes.
    settled_until = -inf
    # Queue objects are mutated in place (del/clear/slice-assign, never
    # rebound), so this alias list stays valid for the whole replay and
    # the hot join-shortest-queue scan indexes it directly.
    queues: List[list] = [r.queue for r in reps]
    # Ascending indices of healthy live replicas — the first routing
    # pool. Rebuilt at the only three places membership changes: eject,
    # readmit, and lazy dead discovery.
    pool1 = tuple(range(n))

    def rebuild_pool() -> None:
        nonlocal pool1
        pool1 = tuple(i for i in range(n)
                      if reps[i].health == _HEALTHY and not reps[i].dead)

    # ----- helpers (transcribed from the event loop) -----
    def copy_dropped(rid: int, rep_index: int) -> None:
        # Never called in simple mode (single-copy drops count
        # dropped_unique directly at the drop site).
        nonlocal dropped_unique
        outstanding[rid] -= 1
        if hold_a[rid] == rep_index:
            hold_a[rid] = -1
        elif hold_b[rid] == rep_index:
            hold_b[rid] = -1
        if outstanding[rid] == 0 and completed_at[rid] is None:
            dropped_unique += 1

    def route(exclude=(), last_resort: bool = False) -> Optional["_Replica"]:
        # Join-shortest-queue with the reference's pool fallbacks,
        # inlined: first healthy live, then live, then (last resort)
        # anything. Ascending index with strict < keeps min()'s
        # first-minimal tie-break.
        best = None
        best_len = 0
        for rep in reps:
            if (rep.health == _HEALTHY and not rep.dead
                    and rep.index not in exclude):
                qn = len(rep.queue)
                if best is None or qn < best_len:
                    best, best_len = rep, qn
        if best is not None:
            return best
        for rep in reps:
            if not rep.dead and rep.index not in exclude:
                qn = len(rep.queue)
                if best is None or qn < best_len:
                    best, best_len = rep, qn
        if best is not None or not last_resort:
            return best
        for rep in reps:
            if rep.index not in exclude:
                qn = len(rep.queue)
                if best is None or qn < best_len:
                    best, best_len = rep, qn
        return best

    def hold_add(rid: int, rep_index: int) -> None:
        if hold_a[rid] < 0:
            hold_a[rid] = rep_index
        else:
            hold_b[rid] = rep_index

    def assign(rep: "_Replica", entry: Tuple[float, int, int]) -> None:
        nonlocal queued_total, dropped_unique
        rid = entry[2]
        rep.note_assignment(entry[0])
        if rep.dead:
            rep.dropped += 1
            if simple:
                dropped_unique += 1
            else:
                outstanding[rid] += 1
                hold_add(rid, rep.index)
                copy_dropped(rid, rep.index)
            return
        rep.queue.append(entry)
        queued_total += 1
        stale[rep.index] = True
        if not simple:
            outstanding[rid] += 1
            hold_add(rid, rep.index)

    def fail_over(rep: "_Replica", entries: list) -> None:
        nonlocal failed_over
        for entry in entries:
            rid = entry[2]
            outstanding[rid] -= 1
            if hold_a[rid] == rep.index:
                hold_a[rid] = -1
            elif hold_b[rid] == rep.index:
                hold_b[rid] = -1
            target = route(exclude=(rep.index,))
            if target is None or target.dead or target.health != _HEALTHY:
                rep.dropped += 1
                outstanding[rid] += 1
                hold_add(rid, rep.index)
                copy_dropped(rid, rep.index)
            else:
                failed_over += 1
                assign(target, entry)

    def eject(rep: "_Replica", now: float) -> None:
        nonlocal ejections, queued_total, boundaries
        rep.health = _EJECTED
        rep.ejected_until = now + policy.ejection_s
        rep.consecutive_failures = 0
        ejections += 1
        boundaries += 1
        rebuild_pool()
        if tracer is not None:
            tracer.record("eject", "router", "cluster", "router",
                          now * 1e6, 0.0, (("replica", rep.index),))
        q = rep.queue
        moved = q[:]
        q.clear()
        queued_total -= len(moved)
        stale[rep.index] = True
        fail_over(rep, moved)

    def probe_fails(rep: "_Replica", now: float) -> bool:
        if rep.schedule is None:
            return False
        oe = rep.schedule.outage_end
        for core in range(rep.sim.point.chip.cores):
            if oe(core, now) is None:
                return False
        return True

    def set_tier(new_tier: int, now: float) -> None:
        nonlocal tier, tier_since, caps, cur_lats, boundaries
        tier_time[tier] += now - tier_since
        tier = new_tier
        tier_since = now
        caps = caps_for_tier()
        cur_lats = lat_memos[tier]
        boundaries += 1
        for i in range(n):
            stale[i] = True
        if rec:
            reg.counter("cluster.tier_changes").inc()
        if tracer is not None:
            tracer.record("tier", "router", "cluster", "router",
                          now * 1e6, 0.0, (("tier", tier_names[new_tier]),))

    # ----- the replay loop -----
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    kernel_batches = 0
    index = 0
    while True:
        # Refresh stale launch caches (the reference recomputes every
        # replica's next_launch each iteration; only changed replicas
        # can produce a different answer, including the lazy dead
        # discovery and the no-probe stranded-queue drop) and find the
        # earliest launch in the same pass. min_launch doubles as the
        # launch candidate (first minimal index wins ties, matching the
        # reference's strict-< scan) and as the launch bound for the
        # drain loops below.
        min_launch = inf
        best_i = -1
        for i in range(n):
            if stale[i]:
                stale[i] = False
                q = queues[i]
                if not q:
                    launches[i] = inf
                else:
                    rep = reps[i]
                    free = rep.servers[0][0]
                    if free == inf:
                        rep.dead = True
                        rebuild_pool()
                        launches[i] = inf
                        if not probes_on:
                            queued_total -= len(q)
                            if simple:
                                rep.dropped += len(q)
                                dropped_unique += len(q)
                            else:
                                for entry in q:
                                    rep.dropped += 1
                                    copy_dropped(entry[2], i)
                            q.clear()
                        continue
                    cap = caps[i]
                    if len(q) >= cap:
                        ready = q[cap - 1][0]
                    else:
                        ready = q[0][0] + max_waits[i]
                    launches[i] = free if free > ready else ready
            when = launches[i]
            if when < min_launch:
                min_launch = when
                best_i = i

        t_completion = completion_heap[0][0] if completion_heap else inf
        t_arrival = arrivals[index] if index < total else inf
        # Timers for requests that already finished (or already hedged,
        # or lost every copy) are guaranteed no-ops — the conditions are
        # monotone, so what is true now is true at fire time, and the
        # reference pops them without touching any state. Skipping them
        # here saves a full loop round per timer; the probe-clock
        # bookkeeping below accounts for them by fire time instead.
        hlen = len(hedges)
        while hedge_head < hlen:
            hrid = hedges[hedge_head]
            if (completed_at[hrid] is not None or hedged_flag[hrid]
                    or outstanding[hrid] == 0):
                hedge_head += 1
            else:
                break
        if hedge_head < hlen:
            t_hedge = arrivals[hedges[hedge_head]] + hedge_delay
        else:
            t_hedge = inf
        # The reference's probe clock runs while its event heaps are
        # non-empty. Inline-settled completions and pruned no-op timers
        # never reach this kernel's heaps, but the reference holds them
        # until the clock passes their fire times — so count them by
        # time: an elided completion pends strictly past next_probe
        # (completions win the tie), a timer through it (probes beat
        # hedges at equal times, so the reference still sees the timer
        # in its heap when the tied probe is selected).
        if probes_on and (
                index < total or completion_heap or queued_total
                or settled_until > next_probe
                or (hedges and arrivals[hedges[-1]] + hedge_delay
                    >= next_probe)):
            t_probe = next_probe
        else:
            t_probe = inf

        best_time = inf
        best_kind = None
        if t_completion < best_time:
            best_time, best_kind = t_completion, 0   # completion
        if t_probe < best_time:
            best_time, best_kind = t_probe, 1        # probe
        if t_arrival < best_time:
            best_time, best_kind = t_arrival, 2      # arrival
        if t_hedge < best_time:
            best_time, best_kind = t_hedge, 3        # hedge
        if min_launch < best_time:
            best_time, best_kind = min_launch, 4     # launch
        if best_kind is None:
            if probes_on and queued_total:
                best_time, best_kind = next_probe, 1
            else:
                break

        if best_kind == 0:       # ----- completion drain -----
            # Completions win every tie, so drain the heap until the
            # next one would land after some other event. Hedge cancels
            # only push launch times later, so min_launch stays a valid
            # (conservative) bound.
            while True:
                when, _, _, rep_index, batch = heappop(completion_heap)
                for arrival, _, rid in batch:
                    outstanding[rid] -= 1
                    if hold_a[rid] == rep_index:
                        hold_a[rid] = -1
                    elif hold_b[rid] == rep_index:
                        hold_b[rid] = -1
                    if completed_at[rid] is None:
                        completed_at[rid] = when
                        cluster_latencies.append(when - arrival)
                        if outstanding[rid] > 0:
                            # Cancel queued twins; the slot snapshot
                            # mirrors the reference's list(h) copy.
                            for peer_index in (hold_a[rid], hold_b[rid]):
                                if peer_index < 0:
                                    continue
                                peer_q = queues[peer_index]
                                for pos, entry in enumerate(peer_q):
                                    if entry[2] == rid:
                                        del peer_q[pos]
                                        queued_total -= 1
                                        stale[peer_index] = True
                                        outstanding[rid] -= 1
                                        if hold_a[rid] == peer_index:
                                            hold_a[rid] = -1
                                        elif hold_b[rid] == peer_index:
                                            hold_b[rid] = -1
                                        cancelled_hedges += 1
                                        break
                    else:
                        wasted_hedges += 1
                if not completion_heap:
                    break
                nxt = completion_heap[0][0]
                if (nxt > t_probe or nxt > t_arrival or nxt > t_hedge
                        or nxt > min_launch):
                    break
            continue

        if best_kind == 1:       # ----- probe window -----
            now = next_probe
            for rep in reps:
                if rep.health == _HEALTHY:
                    probes += 1
                    if probe_fails(rep, now):
                        probe_failures += 1
                        rep.consecutive_failures += 1
                        if rep.consecutive_failures >= policy.unhealthy_after:
                            eject(rep, now)
                    else:
                        rep.consecutive_failures = 0
                elif now >= rep.ejected_until:
                    probes += 1
                    if probe_fails(rep, now):
                        probe_failures += 1
                        rep.ejected_until = now + policy.ejection_s
                    else:
                        rep.health = _HEALTHY
                        readmissions += 1
                        rebuild_pool()
                        if tracer is not None:
                            tracer.record(
                                "readmit", "router", "cluster", "router",
                                now * 1e6, 0.0, (("replica", rep.index),))
            healthy = 0
            for rep in reps:
                if rep.health == _HEALTHY and not rep.dead:
                    healthy += 1
            if rec:
                reg.gauge("cluster.healthy_replicas").set(healthy)
            if policy.degrades:
                queued = queued_total
                bad = (healthy / n < policy.degrade_below_healthy
                       or (policy.degrade_above_queue is not None
                           and queued > policy.degrade_above_queue))
                if bad:
                    bad_windows += 1
                    good_windows = 0
                    if (bad_windows >= policy.degrade_after
                            and tier < len(policy.tiers)):
                        set_tier(tier + 1, now)
                        bad_windows = 0
                else:
                    good_windows += 1
                    bad_windows = 0
                    if good_windows >= policy.recover_after and tier > 0:
                        set_tier(tier - 1, now)
                        good_windows = 0
            next_probe = now + policy.probe_interval_s
            continue

        if best_kind == 2:       # ----- arrival drain -----
            # Arrivals dominate event counts, and only the *target*
            # replica's launch time can change between consecutive
            # arrivals, so absorb a whole run in one tight loop with
            # join-shortest-queue and the launch refresh inlined.
            while True:
                arrival = arrivals[index]
                rid = index
                index += 1
                admitted = True
                if admission_rate is not None:
                    tokens += (arrival - tokens_at) * admission_rate
                    if tokens > admission_burst:
                        tokens = admission_burst
                    tokens_at = arrival
                    if tokens < 1.0:
                        shed += 1
                        if rec:
                            reg.counter("cluster.shed_requests").inc()
                        admitted = False
                    else:
                        tokens -= 1.0
                if admitted:
                    # route(last_resort=True), inlined: the maintained
                    # healthy-live pool first, then live, then anything.
                    ti = -1
                    tql = 0
                    for pi in pool1:
                        ql = len(queues[pi])
                        if ti < 0 or ql < tql:
                            ti, tql = pi, ql
                    if ti < 0:
                        target = None
                        for rr in reps:
                            if not rr.dead:
                                ql = len(rr.queue)
                                if target is None or ql < tql:
                                    target, tql = rr, ql
                        if target is None:
                            for rr in reps:
                                ql = len(rr.queue)
                                if target is None or ql < tql:
                                    target, tql = rr, ql
                        ti = target.index
                    else:
                        target = reps[ti]
                    if max_queue_depth is not None and tql >= max_queue_depth:
                        shed += 1
                        if rec:
                            reg.counter("cluster.shed_requests").inc()
                    elif target.dead:
                        assign(target, (arrival, 0, rid))  # cluster down
                    else:
                        # assign() + note_assignment, inlined (arrivals
                        # are nondecreasing, so last_arrival is a plain
                        # overwrite and first_arrival a set-once).
                        if target.first_arrival is None:
                            target.first_arrival = arrival
                        target.last_arrival = arrival
                        q = queues[ti]
                        q.append((arrival, 0, rid))
                        queued_total += 1
                        if not simple:
                            outstanding[rid] = 1
                            hold_a[rid] = ti
                            if hedges_on:
                                hedges.append(rid)
                                if t_hedge == inf:
                                    t_hedge = arrival + hedge_delay
                        # Refresh the target's launch time in place.
                        # Deep queues skip it: with more than cap
                        # entries already ahead, the cap-th arrival pins
                        # ``ready`` and this append cannot change it
                        # (stale[ti] is always False inside the drain,
                        # so the cached time is the current one).
                        cap = caps[ti]
                        if len(q) <= cap:
                            free = target.servers[0][0]
                            if free == inf:
                                stale[ti] = True  # refresh handles it
                                break
                            if len(q) >= cap:
                                ready = q[cap - 1][0]
                            else:
                                ready = q[0][0] + max_waits[ti]
                            when = free if free > ready else ready
                            launches[ti] = when
                            stale[ti] = False
                            if when < min_launch:
                                min_launch = when
                if index >= total:
                    break
                nxt = arrivals[index]
                if (nxt >= t_completion or nxt >= t_probe
                        or nxt > t_hedge or nxt > min_launch):
                    break
            continue

        if best_kind == 3:       # ----- hedge-timer drain -----
            # Timers whose request already finished (the common case)
            # are no-ops: drain them in a run, pausing only to place an
            # actual hedge copy (which can pull a launch earlier).
            while True:
                rid = hedges[hedge_head]
                hedge_head += 1
                if not (completed_at[rid] is not None or hedged_flag[rid]
                        or outstanding[rid] == 0):
                    target = route(exclude=(hold_a[rid], hold_b[rid]))
                    if not (target is None or target.dead
                            or target.health != _HEALTHY):
                        hedged_flag[rid] = True
                        hedged += 1
                        if rec:
                            reg.counter("cluster.hedged_requests").inc()
                        assign(target, (arrivals[rid], 0, rid))
                        ti = target.index
                        q = target.queue
                        free = target.servers[0][0]
                        if free == inf:
                            break  # assign left it stale; refresh decides
                        cap = caps[ti]
                        if len(q) >= cap:
                            ready = q[cap - 1][0]
                        else:
                            ready = q[0][0] + max_waits[ti]
                        when = free if free > ready else ready
                        launches[ti] = when
                        stale[ti] = False
                        if when < min_launch:
                            min_launch = when
                if hedge_head >= len(hedges):
                    break
                nxt = arrivals[hedges[hedge_head]] + hedge_delay
                if (nxt >= t_completion or nxt >= t_probe
                        or nxt >= t_arrival or nxt > min_launch):
                    break
            continue

        # ----- launch on reps[best_i] at best_time -----
        i = best_i
        rep = reps[i]
        launch = best_time
        stale[i] = True   # every outcome below edits the queue or heap
        q = queues[i]
        core = rep.servers[0][1]

        if rep.retried and check_timeout:
            alive = [e for e in q
                     if not (e[1] > 0 and launch - e[0] > retry_timeout)]
            if len(alive) != len(q):
                removed = len(q) - len(alive)
                rep.dropped += removed
                if simple:
                    dropped_unique += removed
                else:
                    for entry in q:
                        if entry[1] > 0 and launch - entry[0] > retry_timeout:
                            copy_dropped(entry[2], i)
                queued_total -= removed
                q[:] = alive
                boundaries += 1
                continue

        sched = rep.schedule
        if sched is not None:
            down_until = sched.outage_end(core, launch)
            if down_until is not None:
                if rec:
                    reg.counter("serving.outage_wait_s").inc(
                        max(0.0, down_until - launch))
                heapreplace(rep.servers, (down_until, core))
                boundaries += 1
                continue

        cap = caps[i]
        qn = len(q)
        size = qn if qn < cap else cap
        lat_key = (i, size)
        latency = cur_lats.get(lat_key)
        if latency is None:
            latency = tier_latency(rep, size)
            cur_lats[lat_key] = latency
        if sched is not None:
            factor = sched.slowdown_factor(core, launch)
            if factor != 1.0:
                latency *= factor
        completion = launch + latency

        if sched is not None:
            failure = sched.first_failure_between(core, launch, completion)
            if failure is not None:
                fail_start, fail_end = failure
                rep.lost_batches += 1
                boundaries += 1
                if tracer is not None:
                    tracer.record("batch.lost", "serve", "cluster",
                                  f"replica{i}/core{core}",
                                  launch * 1e6, (fail_start - launch) * 1e6,
                                  (("size", size),))
                batch = q[:size]
                del q[:size]
                queued_total -= size
                survivors: list = []
                for arrival, retries, rid in batch:
                    if (retries + 1 > retry_budget
                            or fail_start - arrival > retry_timeout):
                        rep.dropped += 1
                        if simple:
                            dropped_unique += 1
                        else:
                            copy_dropped(rid, i)
                    else:
                        rep.retried += 1
                        survivors.append((arrival, retries + 1, rid))
                if rep.health == _HEALTHY:
                    q[:0] = survivors
                    queued_total += len(survivors)
                else:
                    # Ejected mid-flight: survivors fail over instead of
                    # rejoining a drained queue.
                    fail_over(rep, survivors)
                heapreplace(rep.servers, (fail_end, core))
                continue

        batch = q[:size]
        del q[:size]
        queued_total -= size
        heapreplace(rep.servers, (completion, core))
        if tracer is not None:
            tracer.record("batch", "serve", "cluster",
                          f"replica{i}/core{core}",
                          launch * 1e6, latency * 1e6, (("size", size),))
        kernel_batches += 1
        if completion > rep.last_completion:
            rep.last_completion = completion
        rep.batch_sizes.append(size)
        if simple:
            # Single-copy completions settle at launch: with no hedge
            # twins to race or cancel, first-response-wins bookkeeping
            # is order-independent, so the completion heap is elided.
            lats = [completion - a for a, _, _ in batch]
            rep.latencies.extend(lats)
            cluster_latencies.extend(lats)
        else:
            # Single-copy entries whose completion lands no later than
            # their hedge timer also settle inline: the reference
            # processes the completion first there too (completions win
            # ties), so the timer sees them finished either way and no
            # cancel scan can involve them. Only the rest ride the heap.
            lats = []
            deferred = None
            for entry in batch:
                lat = completion - entry[0]
                lats.append(lat)
                rid = entry[2]
                if (outstanding[rid] == 1 and not hedged_flag[rid]
                        and completion <= entry[0] + hedge_bound):
                    outstanding[rid] = 0
                    if hold_a[rid] == i:
                        hold_a[rid] = -1
                    else:
                        hold_b[rid] = -1
                    completed_at[rid] = completion
                    cluster_latencies.append(lat)
                else:
                    if deferred is None:
                        deferred = []
                    deferred.append(entry)
            rep.latencies.extend(lats)
            if deferred is not None:
                completion_seq += 1
                heappush(completion_heap,
                         (completion, _P_COMPLETION, completion_seq, i,
                          tuple(deferred)))
            elif completion > settled_until:
                # Whole batch settled inline: the reference still holds
                # its completion event until the clock passes it, which
                # keeps the probe clock alive — remember the fire time.
                settled_until = completion

    _STATS.cluster_replays += 1
    _STATS.batches += kernel_batches
    _STATS.segments += boundaries + 1
    _STATS.boundaries += boundaries
    if rec:
        reg.count("serving.fastserve.cluster_replays")
        reg.count("serving.fastserve.segments", boundaries + 1)
        reg.count("serving.fastserve.boundaries", boundaries)
    return cluster._finalize(
        arrivals, reps, cluster_latencies, shed, dropped_unique, hedged,
        cancelled_hedges, wasted_hedges, failed_over, probes,
        probe_failures, ejections, readmissions, tier_names, tier_time,
        tier, tier_since)
