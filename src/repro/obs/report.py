"""Profiling reports: where cycles and wall time actually go.

Two attributions, mirroring how the TPU papers argue from counters:

* :func:`profile_result` — one simulated run's cycles attributed to the
  MXU, VPU, DMA engines and sync stalls, plus byte traffic per memory
  level (the hardware-performance-counter view of the original TPU
  paper). Pure arithmetic over :class:`~repro.sim.perf.PerfCounters`,
  so it is deterministic and works on any ``SimResult`` regardless of
  which simulator path produced it.
* :func:`tier_report` — a sweep's wall time attributed to the
  compile / simulate / cache-lookup tiers, read from the timer counters
  :class:`~repro.core.design_point.DesignPoint` records when the metrics
  registry is enabled. Wall-clock by nature; it feeds the human-facing
  ``repro metrics`` output, never a determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RunProfile", "goodput_report", "profile_result", "tier_report"]


@dataclass(frozen=True)
class RunProfile:
    """Cycle and traffic attribution for one simulated execution.

    Busy fractions are each unit's busy cycles over total cycles; they
    legitimately sum past 1.0 when units overlap (that overlap is the
    pipelining the simulator models). ``other_fraction`` is the share of
    total cycles no unit claims — issue-bound and idle time.
    """

    chip: str
    program: str
    cycles: int
    seconds: float
    mxu_fraction: float
    vpu_fraction: float
    dma_fraction: float
    sync_stall_fraction: float
    bytes_by_level: tuple   # ((level, bytes), ...) in ledger order

    @property
    def other_fraction(self) -> float:
        """Cycles covered by no unit (clamped at 0 when units overlap)."""
        covered = (self.mxu_fraction + self.vpu_fraction
                   + self.dma_fraction + self.sync_stall_fraction)
        return max(0.0, 1.0 - covered)

    def render(self) -> str:
        lines = [
            f"{self.program} on {self.chip}: {self.cycles:,} cycles "
            f"({self.seconds * 1e3:.3f} ms)",
            f"  mxu busy     {self.mxu_fraction:6.1%}",
            f"  vpu busy     {self.vpu_fraction:6.1%}",
            f"  dma busy     {self.dma_fraction:6.1%}  "
            "(engine-cycles / cycles; >100% = concurrent engines)",
            f"  sync stalls  {self.sync_stall_fraction:6.1%}",
            f"  unattributed {self.other_fraction:6.1%}",
        ]
        for level, moved in self.bytes_by_level:
            lines.append(f"  {level:<12} {moved / 1e6:10.3f} MB moved")
        return "\n".join(lines)


def profile_result(result) -> RunProfile:
    """Attribute a :class:`~repro.sim.core.SimResult`'s cycles per unit."""
    counters = result.counters
    cycles = max(1, counters.cycles)
    return RunProfile(
        chip=result.report.chip_name,
        program=result.report.program_name,
        cycles=counters.cycles,
        seconds=result.report.seconds,
        mxu_fraction=counters.mxu_busy_cycles / cycles,
        vpu_fraction=counters.vpu_busy_cycles / cycles,
        dma_fraction=counters.dma_busy_cycles / cycles,
        sync_stall_fraction=counters.sync_stall_cycles / cycles,
        bytes_by_level=tuple(sorted(counters.bytes_by_level.items())),
    )


def goodput_report(stats) -> str:
    """Render a generative run's goodput attribution, token by token.

    Takes a :class:`~repro.serving.continuous.ContinuousStats` (anything
    with its goodput fields works) and answers the resilience question
    the training-supercomputer retrospective asks of every fleet: of all
    the tokens the engines computed, how many reached a served request,
    how many repeated earlier work, and how many did checkpoints save us
    from repeating?
    """
    computed = max(1, stats.tokens_computed)
    lines = [
        f"{stats.workload} on {stats.chip}: goodput "
        f"{stats.goodput_fraction:6.1%} "
        f"({stats.tokens_generated:,} useful of "
        f"{stats.tokens_computed:,} computed tokens)",
        f"  wasted      {stats.wasted_tokens:8,}  "
        f"({stats.wasted_tokens / computed:6.1%} of computed)",
        f"  recomputed  {stats.recomputed_tokens:8,}  "
        f"(positions replayed after a loss)",
        f"  recovered   {stats.recovered_tokens:8,}  "
        f"(positions a snapshot restore skipped)",
    ]
    if stats.snapshots or stats.migrated_requests or stats.restore_steps:
        lines.append(
            f"  recovery    {stats.snapshots:,} snapshots in "
            f"{stats.snapshot_steps:,} steps, {stats.restore_steps:,} "
            f"restores, {stats.migrated_requests:,} requests migrated")
    return "\n".join(lines)


#: The DesignPoint timer counters, in presentation order.
TIER_COUNTERS = (
    ("tier.compile_s", "compile"),
    ("tier.sim_s", "simulate"),
    ("tier.cache_lookup_s", "cache lookup"),
)


def tier_report(snapshot: dict) -> str:
    """Render the compile/sim/cache wall-time attribution of a snapshot.

    Reads the ``tier.*`` timer counters plus the engine cache counters;
    returns an explanatory note when nothing was recorded (metrics were
    off, or every result came from a warm memo).
    """
    total = sum(snapshot[name]["value"]
                for name, _ in TIER_COUNTERS if name in snapshot)
    lines = []
    if total > 0:
        lines.append(f"wall-time tiers ({total:.3f} s attributed):")
        for name, label in TIER_COUNTERS:
            entry = snapshot.get(name)
            if entry is None:
                continue
            seconds = entry["value"]
            lines.append(f"  {label:<14} {seconds:8.3f} s "
                         f"({seconds / total:6.1%})")
    else:
        lines.append("wall-time tiers: nothing attributed "
                     "(metrics were off, or every lookup hit a warm memo)")
    hits = snapshot.get("engine.cache.hits", {}).get("value", 0)
    disk = snapshot.get("engine.cache.disk_hits", {}).get("value", 0)
    misses = snapshot.get("engine.cache.misses", {}).get("value", 0)
    lookups = hits + disk + misses
    if lookups:
        lines.append(
            f"engine cache: {lookups:g} lookups, {hits:g} memory hits, "
            f"{disk:g} disk hits, {misses:g} misses "
            f"({(hits + disk) / lookups:.0%} hit rate)")
    return "\n".join(lines)
