"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The observability layer's numeric half. Instrumented subsystems — the
engine's :class:`~repro.engine.cache.EvalCache` (hits/misses/corrupt),
:class:`~repro.engine.parallel.ParallelSweeper` (pool retries, serial
fallbacks, items mapped), the serving simulator (queue depth, batch
occupancy, retries, outage wait) and :class:`~repro.faults.model.
FaultModel` schedules — report into a process-global
:class:`MetricsRegistry` through :func:`metrics`.

Two rules every consumer can rely on:

* **Zero cost when disabled.** The global registry starts *disabled*;
  every instrumented call site guards its recording with a single
  ``registry.enabled`` check (hot loops hoist it once per call), so the
  default paths do no metric work at all and stay bit-identical to the
  uninstrumented code (asserted in ``tests/test_obs.py`` and the engine
  benchmark's observability phase).
* **Deterministic recording.** Histograms use *fixed* bucket bounds
  supplied at creation; observing the same value sequence always yields
  the same bucket counts, so two runs of a seeded simulation snapshot
  identically. Wall-clock enters only through :meth:`MetricsRegistry.
  timer` counters, which exist for the human-facing ``repro metrics``
  report and are never part of a determinism contract (the span tracer
  in :mod:`repro.obs.tracer` is the deterministic instrument).

Snapshots are plain nested dicts (JSON-serializable); :func:`diff_
snapshots` subtracts one from another so a caller can attribute activity
to a region of code without resetting the registry.

This module deliberately imports nothing from the rest of ``repro`` so
any layer (arch, sim, engine, serving) may report into it.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collecting_metrics",
    "diff_snapshots",
    "disable_metrics",
    "enable_metrics",
    "metrics",
    "render_snapshot",
    "set_metrics",
]


class Counter:
    """A monotonically increasing value (counts or accumulated seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (pool width, queue length, horizon)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: Default histogram bounds: powers of two — right for counts (queue
#: depths, batch sizes) and wide enough for most rates.
DEFAULT_BUCKETS: tuple = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Bounds for values already normalized into [0, 1] (occupancies).
UNIT_BUCKETS: tuple = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)


class Histogram:
    """Fixed-bucket histogram with deterministic recording.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound. Recording is a bisect over
    the fixed bounds — no adaptive resizing, no sampling — so identical
    observation sequences always produce identical snapshots.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        ordered = tuple(bounds)
        if any(b <= a for b, a in zip(ordered[1:], ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        buckets = {f"le_{bound:g}": count
                   for bound, count in zip(self.bounds, self.counts)}
        buckets["overflow"] = self.counts[-1]
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "buckets": buckets,
        }


class _NullTimer:
    """Reusable no-op context manager for disabled registries."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    """Accumulates elapsed wall seconds into a counter on exit."""

    __slots__ = ("_counter", "_t0")

    def __init__(self, counter: Counter) -> None:
        self._counter = counter
        self._t0 = 0.0

    def __enter__(self) -> None:
        self._t0 = time.perf_counter()
        return None

    def __exit__(self, *exc) -> bool:
        self._counter.inc(time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """Named metrics, created on first use.

    ``enabled`` is the one switch call sites check; a disabled registry's
    accessors still work (so tests can poke at it) but instrumented code
    never reaches them. ``op_count`` tallies recording operations while
    enabled — the engine benchmark uses it to bound what the *disabled*
    guards could possibly cost (see ``_bench_observability``).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.op_count = 0
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------- accessors

    def _named(self, name: str, factory) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        if self.enabled:
            self.op_count += 1
        metric = self._named(name, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def gauge(self, name: str) -> Gauge:
        if self.enabled:
            self.op_count += 1
        metric = self._named(name, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if self.enabled:
            self.op_count += 1
        metric = self._named(name, lambda n: Histogram(n, bounds))
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric

    # ------------------------------------------------- recording conveniences

    def count(self, name: str, amount: float = 1) -> None:
        """Guarded counter increment (no-op when disabled)."""
        if self.enabled:
            self.counter(name).inc(amount)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Guarded histogram observation (no-op when disabled)."""
        if self.enabled:
            self.histogram(name, bounds).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Guarded gauge set (no-op when disabled)."""
        if self.enabled:
            self.gauge(name).set(value)

    def timer(self, name: str):
        """Context manager adding elapsed wall seconds to counter ``name``.

        Wall-clock by design — this feeds the tier attribution in
        ``repro metrics``, never a deterministic artifact. Disabled
        registries return a shared no-op context (no allocation).
        """
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.counter(name))

    # --------------------------------------------------------------- exports

    def snapshot(self) -> dict:
        """All metrics as a name-sorted plain dict (JSON-serializable)."""
        return {name: self._metrics[name].as_dict()  # type: ignore[attr-defined]
                for name in sorted(self._metrics)}

    def as_dict(self) -> dict:
        return self.snapshot()

    def reset(self) -> None:
        self._metrics.clear()
        self.op_count = 0

    def __len__(self) -> int:
        return len(self._metrics)


def diff_snapshots(after: dict, before: dict) -> dict:
    """Activity between two snapshots: counters/histograms subtracted.

    Gauges keep their ``after`` value (a gauge is a level, not a flow).
    Metrics absent from ``before`` pass through unchanged.
    """
    result: dict = {}
    for name, entry in after.items():
        prior = before.get(name)
        if prior is None or entry["type"] == "gauge":
            result[name] = dict(entry)
            continue
        if entry["type"] == "counter":
            delta = entry["value"] - prior["value"]
            if delta:
                result[name] = {"type": "counter", "value": delta}
            continue
        count = entry["count"] - prior["count"]
        if not count:
            continue
        total = entry["sum"] - prior["sum"]
        result[name] = {
            "type": "histogram",
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": entry["min"],
            "max": entry["max"],
            "buckets": {k: entry["buckets"][k] - prior["buckets"].get(k, 0)
                        for k in entry["buckets"]},
        }
    return result


def render_snapshot(snapshot: dict) -> str:
    """A human-readable, name-sorted rendering of a snapshot."""
    if not snapshot:
        return "(no metrics recorded)"
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        if kind == "histogram":
            lines.append(
                f"  {name:<34} n={entry['count']:<8g} "
                f"mean={entry['mean']:.4g} min={entry['min']:.4g} "
                f"max={entry['max']:.4g}")
        else:
            value = entry["value"]
            text = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<34} {text}")
    return "\n".join(lines)


# --------------------------------------------------------- global registry

_REGISTRY = MetricsRegistry(enabled=False)


def metrics() -> MetricsRegistry:
    """The process-global registry (disabled until someone enables it)."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry in; returns the previous one."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Turn the global registry on (instrumented paths start recording)."""
    _REGISTRY.enabled = True
    return _REGISTRY


def disable_metrics() -> MetricsRegistry:
    """Turn the global registry off (instrumentation back to zero-cost)."""
    _REGISTRY.enabled = False
    return _REGISTRY


@contextmanager
def collecting_metrics() -> Iterator[MetricsRegistry]:
    """Install a fresh, enabled registry for the ``with`` body.

    The previous registry (and its enabled state) is restored on exit,
    so tests and the CLI can collect without leaking global state.
    """
    fresh = MetricsRegistry(enabled=True)
    previous = set_metrics(fresh)
    try:
        yield fresh
    finally:
        set_metrics(previous)
