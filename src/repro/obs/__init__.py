"""Observability: deterministic tracing, metrics, and profiling reports.

Three pieces, split by what clock they run on:

* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and fixed-bucket histograms the engine cache, process-pool
  sweeper, serving simulator and fault scheduler report into. Disabled
  by default; zero cost (one boolean check) until enabled.
* :mod:`repro.obs.tracer` — span tracing on *simulated* time (never
  wall-clock), with a byte-stable Chrome trace-event JSON exporter and
  a traced replay over the lowered IR that is bit-identical to the
  untraced fast path.
* :mod:`repro.obs.report` — cycle attribution for one run and
  compile/sim/cache wall-time attribution for a sweep (the
  ``repro metrics`` output).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting_metrics,
    diff_snapshots,
    disable_metrics,
    enable_metrics,
    metrics,
    render_snapshot,
    set_metrics,
)
from repro.obs.report import RunProfile, goodput_report, \
    profile_result, tier_report
from repro.obs.tracer import (
    Span,
    SpanTracer,
    TraceResult,
    build_trace,
    replay_traced,
    spans_from_interpreter_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunProfile",
    "Span",
    "SpanTracer",
    "TraceResult",
    "build_trace",
    "collecting_metrics",
    "diff_snapshots",
    "disable_metrics",
    "enable_metrics",
    "metrics",
    "profile_result",
    "render_snapshot",
    "replay_traced",
    "set_metrics",
    "spans_from_interpreter_trace",
    "tier_report",
    "goodput_report",
]
