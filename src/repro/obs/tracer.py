"""Deterministic span tracing with a Chrome trace-event exporter.

The observability layer's timeline half. A :class:`Span` is one named
interval on one track; a :class:`SpanTracer` collects spans and exports
them as Chrome trace-event JSON (load the file in ``chrome://tracing``
or https://ui.perfetto.dev).

**The determinism rule:** every timestamp is *simulated* time or a
deterministic work proxy — never wall-clock. Two runs of the same
(app, chip, batch, seed) therefore export byte-identical JSON, which is
what lets CI diff traces and a reviewer diff the traces of two commits.
Concretely, the three track groups use these clocks:

* ``pipeline`` — compile -> lower -> replay -> serve phase spans laid
  end to end on a work-unit axis (1 tick = 1 instruction for compile,
  1 row for lower, 1 cycle for replay, 1 simulated us for serve);
* ``core`` — per-instruction spans replayed from the **lowered IR**
  (:mod:`repro.sim.lowered` rows), on the chip's simulated clock
  converted to microseconds; one track per unit (mxu, vpu, dma.<level>,
  sync);
* ``serving`` — one span per launched batch on ``core<i>`` tracks, on
  the serving simulator's simulated-seconds clock.

:func:`replay_traced` mirrors :class:`~repro.sim.lowered.FastReplay`
operation for operation while emitting the per-row spans; its
:class:`~repro.sim.core.SimResult` is bit-identical to the untraced
replay (asserted in ``tests/test_obs.py``), so tracing is purely
additive — it can never change what it measures.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.arch.chip import ChipConfig
from repro.sim.lowered import (
    ENGINES_PER_LEVEL,
    K_BUNDLE,
    K_DMA,
    K_HALT,
    K_MXM,
    K_MXM_FIXED,
    K_SCALAR,
    K_SYNC_SET,
    K_SYNC_WAIT,
    K_VECTOR,
    LoweredProgram,
    lower_program,
)
from repro.sim.perf import PerfCounters, build_report

__all__ = [
    "Span",
    "SpanTracer",
    "TraceResult",
    "build_trace",
    "replay_traced",
    "spans_from_interpreter_trace",
]

#: Default cap on recorded spans; far above any compiled program in the
#: zoo, low enough that a runaway serve trace cannot eat the heap.
DEFAULT_SPAN_CAPACITY = 200_000


@dataclass(frozen=True)
class Span:
    """One named interval on one track.

    ``ts_us``/``dur_us`` are microseconds on that track group's
    deterministic clock (see the module docstring); ``args`` is a tuple
    of (key, value) pairs so spans stay hashable and deterministic.
    """

    name: str
    cat: str
    group: str       # Chrome "process": pipeline / core / serving
    track: str       # Chrome "thread": mxu, vpu, dma.hbm, core0, ...
    ts_us: float
    dur_us: float
    args: tuple = ()

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us


@dataclass
class SpanTracer:
    """Collects spans; exports Chrome trace-event JSON.

    Bounded like :class:`~repro.sim.trace.Trace`: recording stops
    silently at ``capacity`` and ``truncated`` flips, so tracing a long
    serving simulation degrades instead of exhausting memory. The cap is
    part of the deterministic contract — the same run always keeps the
    same prefix.
    """

    capacity: int = DEFAULT_SPAN_CAPACITY
    spans: list = field(default_factory=list)
    truncated: bool = False

    @property
    def enabled(self) -> bool:
        return True

    def record(self, name: str, cat: str, group: str, track: str,
               ts_us: float, dur_us: float, args: tuple = ()) -> None:
        if len(self.spans) >= self.capacity:
            self.truncated = True
            return
        self.spans.append(Span(name, cat, group, track, ts_us, dur_us, args))

    def by_group(self, group: str) -> list:
        return [s for s in self.spans if s.group == group]

    def by_track(self, group: str, track: str) -> list:
        return [s for s in self.spans
                if s.group == group and s.track == track]

    def busy_us(self, group: str, track: str) -> float:
        return sum(s.dur_us for s in self.by_track(group, track))

    # --------------------------------------------------------------- export

    def chrome_trace(self, comment: str = "") -> dict:
        """The Chrome trace-event representation (a plain dict).

        Groups become processes and tracks become threads, ids assigned
        in first-appearance order (deterministic because spans are
        recorded deterministically); ``M`` metadata events carry the
        readable names.
        """
        group_ids: dict[str, int] = {}
        track_ids: dict[tuple, int] = {}
        events: list = []
        for span in self.spans:
            pid = group_ids.get(span.group)
            if pid is None:
                pid = len(group_ids)
                group_ids[span.group] = pid
                events.append({"ph": "M", "name": "process_name", "pid": pid,
                               "tid": 0, "args": {"name": span.group}})
            key = (span.group, span.track)
            tid = track_ids.get(key)
            if tid is None:
                tid = sum(1 for g, _ in track_ids if g == span.group)
                track_ids[key] = tid
                events.append({"ph": "M", "name": "thread_name", "pid": pid,
                               "tid": tid, "args": {"name": span.track}})
            event = {"ph": "X", "name": span.name, "cat": span.cat,
                     "pid": pid, "tid": tid, "ts": span.ts_us,
                     "dur": span.dur_us}
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        trace: dict = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated (deterministic; never wall-clock)",
                "spans": len(self.spans),
                "truncated": self.truncated,
            },
        }
        if comment:
            trace["otherData"]["comment"] = comment
        return trace

    def export_json(self, comment: str = "") -> str:
        """Byte-stable Chrome trace JSON (sorted keys, fixed separators).

        Identical runs serialize to identical bytes — the property the
        CI trace-diff relies on.
        """
        return json.dumps(self.chrome_trace(comment), sort_keys=True,
                          separators=(",", ":")) + "\n"


# ------------------------------------------------------------ traced replay

def replay_traced(lowered: LoweredProgram, chip: ChipConfig, *,
                  dtype: str = "bf16",
                  tracer: Optional[SpanTracer] = None,
                  group: str = "core"):
    """Replay lowered rows, emitting one span per executed instruction.

    Returns ``(SimResult, SpanTracer)``. The loop mirrors
    :meth:`~repro.sim.lowered.FastReplay.run` operation for operation —
    same max/ceil expressions, same accumulation order — so the result
    is bit-identical to the untraced replay; the spans are a pure
    side channel. Kept separate from ``FastReplay`` so the untraced hot
    loop carries no per-row branch (the zero-cost-when-disabled rule).
    """
    from repro.sim.core import SimResult  # local: core imports sim.lowered

    if lowered.generation != chip.generation:
        raise ValueError(
            f"program was compiled for generation {lowered.generation}; "
            f"{chip.name} is generation {chip.generation}. "
            "Recompile (Lesson 2) rather than carrying binaries.")
    if not chip.supports_dtype(dtype):
        raise ValueError(f"{chip.name} does not support {dtype}")
    if tracer is None:
        tracer = SpanTracer()

    elem_bytes = 1 if dtype == "int8" else 2
    flags = [0] * lowered.n_flags
    n_pools = len(lowered.pool_levels)
    busy = [[0] * ENGINES_PER_LEVEL for _ in range(n_pools)]
    pool_busy_cycles = [0] * n_pools
    pool_bytes = [0] * n_pools
    bandwidths = lowered.pool_bandwidths
    latencies = lowered.pool_latencies
    overhead = lowered.dma_overhead
    clock_hz = lowered.clock_hz
    ceil = math.ceil
    scale = 1e6 / clock_hz  # cycles -> simulated microseconds
    emit = tracer.record

    issue = 0
    bundle_issue = 0
    in_bundle = False
    bundles = 0
    macs = 0
    scalar_ops = 0
    mxu_busy = 0
    vpu_busy = 0
    sync_stall = 0
    mxu_free = 0
    vpu_free = 0
    vector_alu_ops = 0.0
    vmem_elements = 0

    for kind, a0, a1, a2, f in lowered.rows:
        if kind == K_MXM:
            start = mxu_free if mxu_free > issue else issue
            mxu_free = start + a0
            macs += a1
            mxu_busy += a0
            vmem_elements += a2
            emit("mxm", "compute", group, "mxu",
                 start * scale, a0 * scale, (("macs", a1),))
        elif kind == K_BUNDLE:
            if in_bundle:
                nxt = bundle_issue + 1
                if nxt > issue:
                    issue = nxt
            in_bundle = True
            bundles += 1
            bundle_issue = issue
        elif kind == K_VECTOR:
            start = vpu_free if vpu_free > issue else issue
            vpu_free = start + a0
            vector_alu_ops += f
            vpu_busy += a0
            vmem_elements += a2
            emit("vector", "compute", group, "vpu",
                 start * scale, a0 * scale, (("alu_ops", f),))
        elif kind == K_SYNC_WAIT:
            target = flags[a0]
            if target > issue:
                sync_stall += target - issue
                emit("sync.wait", "sync", group, "sync",
                     issue * scale, (target - issue) * scale,
                     (("flag", a0),))
                issue = target
        elif kind == K_SYNC_SET:
            flags[a0] = issue
        elif kind == K_DMA:
            pool = busy[a0]
            active = 0
            best = 0
            best_free = pool[0]
            for engine in range(1, ENGINES_PER_LEVEL):
                free_at = pool[engine]
                if free_at < best_free:
                    best = engine
                    best_free = free_at
            for free_at in pool:
                if free_at > issue:
                    active += 1
            contention = active if active > 1 else 1
            # Exact expression from DmaEngine.issue (bit-identity).
            streaming_s = a1 * contention / bandwidths[a0]
            duration = (overhead + latencies[a0]
                        + ceil(streaming_s * clock_hz))
            start = best_free if best_free > issue else issue
            end = start + duration
            pool[best] = end
            flags[a2] = end
            pool_busy_cycles[a0] += duration
            pool_bytes[a0] += a1
            emit("dma", "memory", group, f"dma.{lowered.pool_levels[a0]}",
                 start * scale, duration * scale, (("bytes", a1),))
        elif kind == K_SCALAR:
            scalar_ops += a0
        elif kind == K_MXM_FIXED:
            start = mxu_free if mxu_free > issue else issue
            mxu_free = start + a0
            mxu_busy += a0
            emit("mxm.fixed", "compute", group, "mxu",
                 start * scale, a0 * scale)
        else:  # K_HALT
            break

    if in_bundle:
        nxt = bundle_issue + 1
        if nxt > issue:
            issue = nxt

    dma_end = max((free_at for pool in busy for free_at in pool),
                  default=0)
    flag_max = max(flags, default=0)
    total = max(issue, mxu_free, vpu_free, dma_end, flag_max)

    counters = PerfCounters(
        cycles=max(1, total),
        bundles=bundles,
        macs=macs,
        vector_alu_ops=vector_alu_ops,
        scalar_ops=scalar_ops,
        mxu_busy_cycles=mxu_busy,
        vpu_busy_cycles=vpu_busy,
        dma_busy_cycles=sum(pool_busy_cycles),
        sync_stall_cycles=sync_stall,
    )
    for name in lowered.level_names:
        moved = 0
        if name == "vmem":
            moved = vmem_elements * elem_bytes
        else:
            for pool, pool_name in enumerate(lowered.pool_levels):
                if pool_name == name:
                    moved = pool_bytes[pool]
                    break
        counters.add_bytes(name, float(moved))

    report = build_report(chip, lowered.name, counters, dtype)
    return SimResult(report=report, counters=counters, trace=None), tracer


def spans_from_interpreter_trace(trace, clock_hz: float,
                                 tracer: Optional[SpanTracer] = None,
                                 group: str = "core") -> SpanTracer:
    """Convert a :class:`~repro.sim.trace.Trace` (interpreter run) to spans.

    The reference interpreter records :class:`~repro.sim.trace.
    TraceEvent` rows; this maps them onto the same track layout the
    lowered-IR replay uses, so either simulator path exports to the same
    Chrome format.
    """
    if tracer is None:
        tracer = SpanTracer()
    scale = 1e6 / clock_hz
    for event in trace.events:
        tracer.record(event.mnemonic, "compute" if event.unit in
                      ("mxu", "vpu") else "memory" if
                      event.unit.startswith("dma") else "sync",
                      group, event.unit, event.cycle_start * scale,
                      event.duration * scale,
                      (("detail", event.detail),) if event.detail else ())
    if trace.truncated:
        tracer.truncated = True
    return tracer


# --------------------------------------------------------- pipeline tracing

@dataclass(frozen=True)
class TraceResult:
    """Everything one end-to-end trace produced."""

    tracer: SpanTracer
    result: object                       # SimResult of the traced replay
    serving: Optional[object] = None     # ServingStats when serve=True
    summary: tuple = ()                  # deterministic (key, value) pairs

    def summary_dict(self) -> dict:
        return dict(self.summary)


def build_trace(spec, chip: ChipConfig, *, batch: Optional[int] = None,
                dtype: Optional[str] = None, serve: bool = True,
                serve_duration_s: float = 0.25, utilization: float = 0.5,
                max_batch: int = 8, seed: int = 0,
                capacity: int = DEFAULT_SPAN_CAPACITY) -> TraceResult:
    """Trace one app end to end: compile -> lower -> replay -> serve.

    Deterministic by construction: compilation and lowering are pure,
    the replay runs on the simulated clock, and the serve phase uses a
    seeded Poisson stream over latencies replayed in-process (no engine
    cache involvement), so the exported JSON is byte-identical across
    runs. ``dtype=None`` picks bf16 where supported and falls back to
    the int8 retarget TPUv1 actually served with.
    """
    from repro.compiler.pipeline import compile_model, retarget_dtype
    from repro.sim.lowered import FastReplay

    if serve_duration_s <= 0:
        raise ValueError("serve duration must be positive")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    if dtype is None:
        dtype = "bf16" if chip.supports_dtype("bf16") else "int8"
    b = batch if batch is not None else spec.default_batch

    def compile_batch(size: int):
        module = spec.build(size)
        if not chip.supports_dtype("bf16"):
            module = retarget_dtype(module, "int8")
        return compile_model(module, chip).program

    tracer = SpanTracer(capacity=capacity)
    program = compile_batch(b)
    n_instructions = sum(len(bundle.instructions)
                         for bundle in program.bundles)
    lowered = lower_program(program, chip)

    # Pipeline track: phases end to end on a work-unit axis (1 tick =
    # 1 us): instructions compiled, rows lowered, cycles replayed,
    # simulated us served. Deterministic cost proxies, not wall time.
    t = 0.0
    tracer.record("compile", "pipeline", "pipeline", "phases", t,
                  float(n_instructions),
                  (("instructions", n_instructions), ("batch", b)))
    t += n_instructions
    tracer.record("lower", "pipeline", "pipeline", "phases", t,
                  float(len(lowered.rows)), (("rows", len(lowered.rows)),))
    t += len(lowered.rows)

    result, _ = replay_traced(lowered, chip, dtype=dtype, tracer=tracer)
    tracer.record("replay", "pipeline", "pipeline", "phases", t,
                  float(result.cycles), (("cycles", result.cycles),))
    t += result.cycles

    serving_stats = None
    if serve:
        from repro.core.design_point import DesignPoint
        from repro.engine.cache import EvalCache
        from repro.serving.batching import BatchPolicy
        from repro.serving.server import ServingSimulator
        from repro.serving.slo import Slo
        from repro.workloads.generator import RequestGenerator

        replayer = FastReplay(chip)
        steps = BatchPolicy.batch_steps(max_batch)
        table = {
            step: replayer.run(lower_program(compile_batch(step), chip),
                               dtype=dtype).seconds
            for step in steps}
        slo = Slo(spec.slo_ms / 1e3)
        slo_batch = max((s for s in steps if table[s] <= slo.limit_s),
                        default=1)
        rate_qps = utilization * chip.cores * slo_batch / table[slo_batch]
        policy = BatchPolicy(max_batch=max_batch,
                             max_wait_s=slo.limit_s / 4.0)
        point = DesignPoint(chip, cache=EvalCache(enabled=False))
        simulator = ServingSimulator(point, spec, policy, slo)
        simulator.seed_latencies(table)
        requests = RequestGenerator(seed).poisson(
            spec.name, rate_qps, serve_duration_s)
        if requests:
            serving_stats = simulator.simulate(requests, tracer=tracer)
            tracer.record("serve", "pipeline", "pipeline", "phases", t,
                          serving_stats.duration_s * 1e6,
                          (("requests", serving_stats.requests),))

    summary = (
        ("app", spec.name),
        ("chip", chip.name),
        ("batch", b),
        ("dtype", dtype),
        ("cycles", result.cycles),
        ("instructions", n_instructions),
        ("rows", len(lowered.rows)),
        ("spans", len(tracer.spans)),
        ("truncated", tracer.truncated),
        ("served_requests",
         serving_stats.served_requests if serving_stats else 0),
    )
    return TraceResult(tracer=tracer, result=result, serving=serving_stats,
                       summary=summary)
