"""Fault injection: deterministic failures for serving, fleets, engine.

The paper's serving numbers (Lesson 9) and TCO comparisons (Lesson 3)
assume nothing ever breaks. This package drops that assumption without
giving up reproducibility:

* :mod:`repro.faults.model` — :class:`FaultModel` (seeded MTBF-style
  core/chip failures, transient slowdowns, repair times, retry policy)
  and :class:`FaultSchedule`, the realized per-core outage timeline the
  serving simulator consumes;
* :mod:`repro.faults.sweep` — :func:`fault_sweep`, the seeded
  faultless-vs-faulted sweep over (chip generation, app) pairs behind
  the ``repro faults`` CLI and the engine benchmark's
  ``faulted_sweep_s`` phase.

Companion changes live where the failures land: ``ServingSimulator.
simulate(faults=...)`` retries lost batches under a budget,
``plan_fleet(spare_chips=k)`` sizes N+k fleets and prices the resilience
premium, and the engine's :class:`~repro.engine.parallel.ParallelSweeper`
/ :class:`~repro.engine.cache.EvalCache` survive worker crashes and
corrupt disk entries.

Determinism guarantee: a zero-fault model is bit-identical to no model
at all, and any seeded sweep is a pure function of its arguments.
"""

from repro.faults.model import FaultModel, FaultSchedule
from repro.faults.sweep import FaultSweepRow, fault_sweep, latency_table

__all__ = [
    "FaultModel",
    "FaultSchedule",
    "FaultSweepRow",
    "fault_sweep",
    "latency_table",
]
