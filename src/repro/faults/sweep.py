"""Seeded fault sweeps: availability and p99-under-faults across the fleet.

One row per (chip generation, app): generate deterministic Poisson
traffic at a fixed fraction of the chip's SLO-feasible capacity, simulate
it twice — once faultless, once under a :class:`~repro.faults.model.
FaultModel` — and report availability, retries, drops and the latency
tail the faults cost. Everything is seeded, so two sweeps with the same
arguments are identical record for record (the engine benchmark asserts
this).

Chips without bf16 (TPUv1) are served through an int8-retargeted
compile — the dtype those parts actually ran in production — so the
sweep covers all four generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch import GENERATIONS
from repro.arch.chip import ChipConfig
from repro.core.design_point import DesignPoint, shared_design_point
from repro.faults.model import FaultModel
from repro.serving.batching import BatchPolicy
from repro.serving.server import ServingSimulator, ServingStats
from repro.serving.slo import Slo
from repro.workloads.generator import RequestGenerator
from repro.workloads.models import app_by_name

#: Default sweep shape: the DSE app subset at half of SLO capacity.
DEFAULT_UTILIZATION = 0.5
DEFAULT_DURATION_S = 2.0
DEFAULT_MAX_BATCH = 16


@dataclass(frozen=True)
class FaultSweepRow:
    """Faultless-vs-faulted serving stats for one (chip, app) pair."""

    chip: str
    app: str
    offered_qps: float
    baseline: ServingStats
    faulted: ServingStats

    @property
    def p99_degradation(self) -> float:
        """Faulted p99 over baseline p99 (1.0 = no tail impact)."""
        if self.baseline.p99_s == 0.0:
            return 1.0
        return self.faulted.p99_s / self.baseline.p99_s


def latency_table(point: DesignPoint, spec, steps: Sequence[int], *,
                  dtype: Optional[str] = None) -> dict[int, float]:
    """Batch -> compute latency for one (chip, app), dtype-aware.

    ``dtype=None`` picks the chip's natural serving path: bf16 where
    supported, otherwise an int8-retargeted compile (TPUv1, and the
    cluster's degraded-precision tier, actually ran int8 in production).
    Passing ``dtype="int8"`` forces the retargeted path on any chip —
    the PR 3 migration path the cluster degradation ladder reuses.
    """
    chip = point.chip
    if dtype is None:
        dtype = "bf16" if chip.supports_dtype("bf16") else "int8"
    if dtype == "bf16":
        # One batched grid-kernel pass over every step (each result
        # lands in the EvalCache under the same key latency_s uses).
        from repro.engine.grid import GridJob, run_grid
        results = run_grid([GridJob(point, spec, step) for step in steps])
        return {step: r.seconds for step, r in zip(steps, results)}
    from repro.compiler.pipeline import compile_model, retarget_dtype
    from repro.engine.cache import get_cache
    from repro.engine.keys import eval_key, key_meta
    cache = get_cache()
    table: dict[int, float] = {}
    for step in steps:
        # Retargeted compiles are content-addressed too, so identical
        # replicas (and later processes, via the disk tier) share one
        # compile per unique (chip, compiler, app, step, dtype).
        key = eval_key("sim", point.chip_fp, point.compiler_fp, spec.name,
                       step, None, dtype)
        result = cache.get(key)
        if result is None:
            module = retarget_dtype(spec.build(step), dtype)
            program = compile_model(module, chip,
                                    version=point.version).program
            result = point.sim.run(program, dtype=dtype)
            cache.put(key, result,
                      key_meta("sim", chip.name, point.version.name,
                               spec.name, step, None, dtype))
        table[step] = result.seconds
    return table


def fault_sweep(model: FaultModel, *,
                apps: Optional[Sequence[str]] = None,
                chips: Optional[Sequence[ChipConfig]] = None,
                duration_s: float = DEFAULT_DURATION_S,
                utilization: float = DEFAULT_UTILIZATION,
                max_batch: int = DEFAULT_MAX_BATCH) -> list[FaultSweepRow]:
    """Simulate every (chip, app) pair faultless and under ``model``.

    Traffic per pair is Poisson at ``utilization`` of the chip's
    capacity at its largest SLO-feasible batch (batch 1 when nothing
    meets the SLO, so no generation is silently skipped), seeded from
    the model's seed — the whole sweep is a pure function of its
    arguments.
    """
    from repro.core.dse import DEFAULT_DSE_APPS
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    app_names = tuple(apps) if apps is not None else DEFAULT_DSE_APPS
    chip_list = tuple(chips) if chips is not None else GENERATIONS

    rows: list[FaultSweepRow] = []
    for pair_index, (chip, app) in enumerate(
            (c, a) for c in chip_list for a in app_names):
        spec = app_by_name(app)
        slo = Slo(spec.slo_ms / 1e3)
        point = shared_design_point(chip)
        steps = BatchPolicy.batch_steps(max_batch)
        table = latency_table(point, spec, steps)

        slo_batch = max((s for s in steps if table[s] <= slo.limit_s),
                        default=1)
        capacity_qps = chip.cores * slo_batch / table[slo_batch]
        rate_qps = utilization * capacity_qps

        policy = BatchPolicy(max_batch=max_batch,
                             max_wait_s=slo.limit_s / 4.0)
        simulator = ServingSimulator(point, spec, policy, slo)
        simulator.seed_latencies(table)

        # Per-pair traffic stream, derived from the fault seed so the
        # sweep stays a pure function of (model, apps, chips, ...).
        # Bare timestamps (same draws as .poisson, which delegates
        # here): the simulator only reads arrival times.
        traffic = RequestGenerator(model.seed * 7919 + pair_index)
        requests = traffic.rng.poisson_arrivals(rate_qps, duration_s)
        if not requests:
            continue  # degenerate rate/duration; nothing to serve
        baseline = simulator.simulate(requests)
        faulted = simulator.simulate(requests, faults=model)
        rows.append(FaultSweepRow(chip=chip.name, app=spec.name,
                                  offered_qps=rate_qps, baseline=baseline,
                                  faulted=faulted))
    return rows
