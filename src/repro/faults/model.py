"""Deterministic fault injection: who fails, when, and for how long.

Production fleets are never the perfect world the rest of the library
models: cores die mid-batch, whole chips drop out for repair, and
thermally throttled parts run slow for a while. This module makes those
events first-class, *deterministic* inputs:

* :class:`FaultModel` — the configuration: MTBF-style mean times between
  core failures, chip-wide outages and transient slowdowns, plus mean
  repair times, a retry budget and a retry timeout. All stochastic draws
  come from :class:`~repro.util.rng.DeterministicRng` streams forked per
  fault source, so a seed fully determines every failure.
* :class:`FaultSchedule` — the realized timeline: per-core down
  intervals and slowdown windows over a horizon. The serving simulator
  consumes schedules; tests can also construct them by hand to place an
  outage at an exact instant.

A model whose every MTBF is infinite is *zero-fault*: it produces an
empty schedule, and simulating with it is bit-identical to simulating
with no fault model at all (asserted in ``tests/test_faults.py`` and the
engine benchmark).

Times are simulated seconds, the same compressed clock the serving
simulator runs on; an MTBF of 0.5 s simply means "a couple of failures
per second of simulated traffic", not a statement about real hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.obs.metrics import metrics
from repro.util.rng import DeterministicRng

#: Stream salts: each fault source forks its own RNG so adding one
#: source (say, slowdowns) never perturbs another's draws.
_CHIP_SALT = 1
_CORE_SALT = 1_000
_SLOWDOWN_SALT = 1_000_000


class FaultSchedule:
    """Realized fault timeline: down intervals and slowdowns per core.

    ``down`` holds ``(core, start_s, end_s)`` outages (``end_s`` may be
    ``inf`` for a core that is never repaired); ``slowdowns`` holds
    ``(core, start_s, end_s, factor)`` windows during which batches
    launched on that core run ``factor`` times slower. Chip-wide outages
    are expanded to one interval per core before construction.

    **Boundary contract.** Every interval is half-open ``[start, end)``:
    a query at exactly ``start`` is *inside* the interval, a query at
    exactly ``end`` is *outside*. Concretely:

    * ``outage_end(core, start)`` returns the interval's end;
      ``outage_end(core, end)`` returns ``None`` (the core is back).
    * ``slowdown_factor(core, start)`` applies the factor;
      ``slowdown_factor(core, end)`` does not.
    * ``first_failure_between(core, a, b)`` matches outages whose start
      is *strictly* inside the open interval ``(a, b)``: a failure at
      exactly ``a`` (batch launch — the launcher already checked the
      core was up) or exactly ``b`` (batch completion — results are
      committed) does not kill the batch.

    These semantics are pinned by regression tests in
    ``tests/test_faults.py`` — link and slice fault sources in
    ``repro.pod`` reuse these queries with link indices in the core
    slot, so changing any boundary silently changes pod chaos results.
    """

    def __init__(self, cores: int, horizon_s: float,
                 down: Sequence[tuple[int, float, float]] = (),
                 slowdowns: Sequence[tuple[int, float, float, float]] = (),
                 ) -> None:
        if cores < 1:
            raise ValueError("a schedule needs at least one core")
        if not horizon_s >= 0:  # phrased to reject NaN too
            raise ValueError(f"horizon must be non-negative, got {horizon_s}")
        for core, start, end in down:
            if not 0 <= core < cores:
                raise ValueError(f"down interval on unknown core {core}")
            if not 0 <= start <= end:  # rejects negatives and NaN
                raise ValueError(f"bad down interval [{start}, {end})")
        for core, start, end, factor in slowdowns:
            if not 0 <= core < cores:
                raise ValueError(f"slowdown on unknown core {core}")
            if not 0 <= start <= end:
                raise ValueError(f"bad slowdown interval [{start}, {end})")
            if not factor >= 1.0:
                raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.cores = cores
        self.horizon_s = horizon_s
        self.down = tuple(sorted(down, key=lambda d: (d[1], d[0], d[2])))
        self.slowdowns = tuple(
            sorted(slowdowns, key=lambda s: (s[1], s[0], s[2])))
        self._down_by_core: dict[int, list[tuple[float, float]]] = {
            c: [] for c in range(cores)}
        for core, start, end in self.down:
            self._down_by_core[core].append((start, end))
        self._slow_by_core: dict[int, list[tuple[float, float, float]]] = {
            c: [] for c in range(cores)}
        for core, start, end, factor in self.slowdowns:
            self._slow_by_core[core].append((start, end, factor))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return (self.cores == other.cores
                and self.horizon_s == other.horizon_s
                and self.down == other.down
                and self.slowdowns == other.slowdowns)

    def __hash__(self) -> int:
        return hash((self.cores, self.horizon_s, self.down, self.slowdowns))

    @property
    def is_empty(self) -> bool:
        """True when the schedule contains no events of any kind."""
        return not self.down and not self.slowdowns

    # --------------------------------------------------------------- queries

    def outage_end(self, core: int, t: float) -> Optional[float]:
        """End of the outage covering instant ``t`` on ``core``, or None.

        Intervals are half-open: an outage ``[start, stop)`` covers
        ``t == start`` but not ``t == stop`` (the core is considered
        repaired at the instant the interval ends).

        Overlapping outages (a core failure inside a chip outage) return
        the latest covering end, so a caller waiting it out never lands
        inside another known interval.
        """
        end: Optional[float] = None
        for start, stop in self._down_by_core[core]:
            if start > t:
                break
            if t < stop and (end is None or stop > end):
                end = stop
        return end

    def first_failure_between(self, core: int, start_s: float,
                              end_s: float) -> Optional[tuple[float, float]]:
        """Earliest outage beginning strictly inside ``(start_s, end_s)``.

        This is the "core dies mid-batch" query: a batch occupying
        ``[start_s, end_s)`` is destroyed by the first failure that
        begins after launch and before completion. Both endpoints are
        exclusive — a failure at exactly ``start_s`` is the launcher's
        problem (it should have consulted :meth:`outage_end`), and a
        failure at exactly ``end_s`` arrives after the batch committed.
        """
        for start, stop in self._down_by_core[core]:
            if start >= end_s:
                break
            if start > start_s:
                return (start, stop)
        return None

    def permanent_death_s(self, core: int) -> Optional[float]:
        """Start of the earliest never-repaired outage on ``core``.

        A ``down`` interval whose end is ``inf`` marks a core that dies
        and is never repaired within the schedule — the migration
        orchestrator (``repro.serving.continuous``) uses this to decide
        which cores need their sequences rebalanced to survivors before
        the run. Returns ``None`` when every outage on the core repairs.
        """
        for start, stop in self._down_by_core[core]:
            if math.isinf(stop):
                return start
        return None

    def slowdown_factor(self, core: int, t: float) -> float:
        """Combined slowdown multiplier in effect on ``core`` at ``t``.

        Windows are half-open like outages: the factor applies at
        exactly ``start`` and no longer applies at exactly ``stop``.
        Overlapping windows multiply.
        """
        factor = 1.0
        for start, stop, scale in self._slow_by_core[core]:
            if start > t:
                break
            if t < stop:
                factor *= scale
        return factor

    def downtime_core_s(self, window_start_s: float,
                        window_end_s: float) -> float:
        """Total core-seconds of outage inside a window (overlaps merged)."""
        if window_end_s <= window_start_s:
            return 0.0
        total = 0.0
        for intervals in self._down_by_core.values():
            merged_start: Optional[float] = None
            merged_end = 0.0
            for start, stop in intervals:
                lo = max(start, window_start_s)
                hi = min(stop, window_end_s)
                if hi <= lo:
                    continue
                if merged_start is None:
                    merged_start, merged_end = lo, hi
                elif lo <= merged_end:
                    merged_end = max(merged_end, hi)
                else:
                    total += merged_end - merged_start
                    merged_start, merged_end = lo, hi
            if merged_start is not None:
                total += merged_end - merged_start
        return total

    def describe(self) -> str:
        return (f"FaultSchedule: {self.cores} cores over "
                f"{self.horizon_s:.3g} s, {len(self.down)} outages, "
                f"{len(self.slowdowns)} slowdowns")


@dataclass(frozen=True)
class FaultModel:
    """Seeded fault-injection configuration (all times in simulated s).

    The defaults are all-infinite MTBFs: a :class:`FaultModel` with no
    overrides is the zero-fault model, and schedules it generates are
    empty. Repair durations are drawn per event (exponential with the
    given mean); a mean of 0 repairs instantly, ``inf`` never repairs.

    ``retry_budget`` caps how many times one request may be re-enqueued
    after losing its in-flight batch before it is dropped;
    ``retry_timeout_s`` additionally drops a request whose batch dies
    later than this long after its arrival. ``horizon_pad_s`` extends
    the generated schedule past the last arrival so retries that run
    beyond the traffic window still see failures.
    """

    seed: int = 0
    core_mtbf_s: float = math.inf
    core_repair_s: float = 0.1
    chip_mtbf_s: float = math.inf
    chip_repair_s: float = 0.5
    slowdown_mtbf_s: float = math.inf
    slowdown_s: float = 0.25
    slowdown_factor: float = 2.0
    retry_budget: int = 2
    retry_timeout_s: float = math.inf
    horizon_pad_s: float = 1.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        # Every rate/duration is validated here, at construction: a bad
        # value must never survive into schedule generation, where a
        # negative mean would crash deep inside the RNG and a NaN would
        # pass every comparison and spin event_times() forever.
        for name in ("core_mtbf_s", "chip_mtbf_s", "slowdown_mtbf_s",
                     "core_repair_s", "chip_repair_s", "slowdown_s",
                     "slowdown_factor", "retry_timeout_s", "horizon_pad_s"):
            if math.isnan(getattr(self, name)):
                raise ValueError(f"{name} must not be NaN")
        for name in ("core_mtbf_s", "chip_mtbf_s", "slowdown_mtbf_s"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}")
        for name in ("core_repair_s", "chip_repair_s", "slowdown_s",
                     "horizon_pad_s"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)}")
        if self.slowdown_factor < 1.0:
            raise ValueError(
                f"slowdown_factor must be >= 1, got {self.slowdown_factor}")
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be non-negative, got {self.retry_budget}")
        if self.retry_timeout_s <= 0:
            raise ValueError(
                f"retry_timeout_s must be positive, got {self.retry_timeout_s}")

    @property
    def zero_fault(self) -> bool:
        """True when no fault source is active (every MTBF infinite)."""
        return (math.isinf(self.core_mtbf_s)
                and math.isinf(self.chip_mtbf_s)
                and math.isinf(self.slowdown_mtbf_s))

    def _repair(self, stream: DeterministicRng, mean_s: float) -> float:
        if math.isinf(mean_s):
            return math.inf
        if mean_s == 0.0:
            return 0.0
        return stream.exponential(mean_s)

    def schedule(self, cores: int, horizon_s: float) -> FaultSchedule:
        """Realize the model into a schedule for ``cores`` over a horizon.

        Deterministic: the same (model, cores, horizon) always yields the
        same schedule. Each fault source draws from its own forked
        stream, so e.g. enabling slowdowns does not move core failures.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        root = DeterministicRng(self.seed)
        down: list[tuple[int, float, float]] = []
        for core in range(cores):
            stream = root.fork(_CORE_SALT + core)
            for start in stream.event_times(self.core_mtbf_s, horizon_s):
                down.append(
                    (core, start,
                     start + self._repair(stream, self.core_repair_s)))
        core_outages = len(down)
        chip_stream = root.fork(_CHIP_SALT)
        chip_outages = 0
        for start in chip_stream.event_times(self.chip_mtbf_s, horizon_s):
            end = start + self._repair(chip_stream, self.chip_repair_s)
            down.extend((core, start, end) for core in range(cores))
            chip_outages += 1
        slowdowns: list[tuple[int, float, float, float]] = []
        for core in range(cores):
            stream = root.fork(_SLOWDOWN_SALT + core)
            for start in stream.event_times(self.slowdown_mtbf_s, horizon_s):
                slowdowns.append((core, start, start + self.slowdown_s,
                                  self.slowdown_factor))
        reg = metrics()
        if reg.enabled:
            reg.counter("faults.schedules").inc()
            reg.counter("faults.core_outages").inc(core_outages)
            reg.counter("faults.chip_outages").inc(chip_outages)
            reg.counter("faults.slowdowns").inc(len(slowdowns))
        return FaultSchedule(cores, horizon_s, down, slowdowns)

    def describe(self) -> str:
        def mtbf(value: float) -> str:
            return "never" if math.isinf(value) else f"{value:.3g} s"

        return (f"FaultModel(seed={self.seed}): core MTBF "
                f"{mtbf(self.core_mtbf_s)}, chip MTBF "
                f"{mtbf(self.chip_mtbf_s)}, slowdown MTBF "
                f"{mtbf(self.slowdown_mtbf_s)}, retry budget "
                f"{self.retry_budget}")
