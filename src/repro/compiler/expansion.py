"""Composite expansion: softmax and layernorm become primitive sequences.

Expansion happens before fusion so the fuser sees the real elementwise and
reduction structure (and can, e.g., fuse the exp into the preceding matmul's
epilogue). The expansions follow the standard numerically-stable recipes:

    softmax(x)   = exp(x - max(x)) / sum(exp(x - max(x)))
    layernorm(x) = (x - mean(x)) * rsqrt(var(x) + eps) * gamma + beta
"""

from __future__ import annotations

from typing import Dict

from repro.graph.hlo import HloInstruction, HloModule
from repro.graph.shapes import Shape, reduce_result


def _broadcast_back(module: HloModule, reduced: HloInstruction,
                    like: HloInstruction, name: str) -> HloInstruction:
    """Re-expand a reduced tensor to ``like``'s shape (a free shape op).

    The reduced tensor's dims are a prefix of the target's; the broadcast
    repeats it along the trailing (reduced-away) axis.
    """
    return module.add("broadcast", like.shape, (reduced,), name=name)


def _expand_softmax(module: HloModule, operand: HloInstruction,
                    name: str) -> HloInstruction:
    axis = operand.shape.rank - 1
    row_max = module.add("reduce_max", reduce_result(operand.shape, axis),
                         (operand,), name=f"{name}.max", axis=axis)
    row_max_b = _broadcast_back(module, row_max, operand, f"{name}.max.b")
    shifted = module.add("sub", operand.shape, (operand, row_max_b),
                         name=f"{name}.shift")
    exped = module.add("exp", operand.shape, (shifted,), name=f"{name}.exp")
    denom = module.add("reduce_sum", reduce_result(operand.shape, axis),
                       (exped,), name=f"{name}.sum", axis=axis)
    denom_b = _broadcast_back(module, denom, operand, f"{name}.sum.b")
    return module.add("div", operand.shape, (exped, denom_b), name=f"{name}.div")


def _expand_layernorm(module: HloModule, operand: HloInstruction,
                      name: str) -> HloInstruction:
    axis = operand.shape.rank - 1
    feature = operand.shape.dims[-1]
    total = module.add("reduce_sum", reduce_result(operand.shape, axis),
                       (operand,), name=f"{name}.sum", axis=axis)
    mean = module.add("scale", total.shape, (total,), name=f"{name}.mean",
                      factor=1.0 / feature)
    mean_b = _broadcast_back(module, mean, operand, f"{name}.mean.b")
    centered = module.add("sub", operand.shape, (operand, mean_b),
                          name=f"{name}.center")
    squared = module.add("mul", operand.shape, (centered, centered),
                         name=f"{name}.sq")
    sq_total = module.add("reduce_sum", reduce_result(operand.shape, axis),
                          (squared,), name=f"{name}.sqsum", axis=axis)
    var = module.add("scale", sq_total.shape, (sq_total,),
                     name=f"{name}.var", factor=1.0 / feature)
    var_b = _broadcast_back(module, var, operand, f"{name}.var.b")
    inv = module.add("rsqrt", operand.shape, (var_b,), name=f"{name}.rsqrt")
    normed = module.add("mul", operand.shape, (centered, inv),
                        name=f"{name}.norm")
    gamma = module.add("constant", Shape((feature,), operand.shape.dtype_name),
                       name=f"{name}.gamma")
    scaled = module.add("mul", operand.shape, (normed, gamma),
                        name=f"{name}.scale")
    beta = module.add("constant", Shape((feature,), operand.shape.dtype_name),
                      name=f"{name}.beta")
    return module.add("add", operand.shape, (scaled, beta), name=f"{name}.bias")


def expand_composites(module: HloModule) -> HloModule:
    """Return a new module with every composite replaced by primitives.

    Non-composite instructions are copied over (with fresh uids); operand
    references are remapped through the copies.
    """
    out = HloModule(module.name)
    mapping: Dict[int, HloInstruction] = {}

    for inst in module.instructions:
        operands = tuple(mapping[o.uid] for o in inst.operands)
        if inst.opcode == "softmax":
            label = inst.name or f"softmax{inst.uid}"
            mapping[inst.uid] = _expand_softmax(out, operands[0], label)
        elif inst.opcode == "layernorm":
            label = inst.name or f"layernorm{inst.uid}"
            mapping[inst.uid] = _expand_layernorm(out, operands[0], label)
        else:
            attrs = {k: v for k, v in inst.attrs}
            mapping[inst.uid] = out.add(inst.opcode, inst.shape, operands,
                                        name=inst.name, **attrs)

    out.set_root(mapping[module.root.uid])
    out.validate()
    return out
