"""Memory allocation: weight placement in CMEM/HBM and activation spilling.

TPUv4i's 128 MiB CMEM exists so production models' weights stream from
on-chip SRAM instead of HBM. The allocator packs weight tensors into CMEM
greedily by traffic benefit until it runs out, leaving the rest in HBM;
the CMEM-capacity experiment (E10) sweeps the capacity and watches
performance climb until the working set fits.

Activations are VMEM-resident while they flow producer->consumer; an
intermediate bigger than the activation budget spills to CMEM (if free)
or HBM, costing a DMA round-trip that lowering materializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.chip import ChipConfig
from repro.graph.hlo import HloInstruction, HloModule

# Fraction of VMEM usable for one instruction's working set; the rest holds
# double-buffered DMA tiles and the other live operands.
_VMEM_WORKING_FRACTION = 0.5


@dataclass
class MemoryPlan:
    """Placement decisions for one module on one chip.

    Attributes:
        weight_home: constant uid -> ``"cmem"`` or ``"hbm"``.
        spilled: uids of intermediate tensors that round-trip off VMEM,
            mapped to the level they spill to.
        cmem_weight_bytes / hbm_weight_bytes: placement totals.
        cmem_budget_bytes: capacity the plan was computed against (can be a
            partition of the physical CMEM under multi-tenancy).
    """

    weight_home: Dict[int, str] = field(default_factory=dict)
    spilled: Dict[int, str] = field(default_factory=dict)
    cmem_weight_bytes: int = 0
    hbm_weight_bytes: int = 0
    cmem_budget_bytes: int = 0

    def home_of(self, uid: int) -> str:
        return self.weight_home.get(uid, "hbm")

    @property
    def cmem_hit_fraction(self) -> float:
        """Fraction of weight bytes served from CMEM."""
        total = self.cmem_weight_bytes + self.hbm_weight_bytes
        return self.cmem_weight_bytes / total if total else 1.0


def plan_memory(module: HloModule, chip: ChipConfig, *,
                cmem_budget_bytes: Optional[int] = None,
                use_cmem: bool = True) -> MemoryPlan:
    """Place weights and find activation spills.

    ``cmem_budget_bytes`` overrides the physical capacity (the E10 sweep and
    the multi-tenant partitioner use this); ``use_cmem=False`` models a
    compiler too old to know about CMEM (the versions experiment).
    """
    budget = chip.cmem_bytes if cmem_budget_bytes is None else cmem_budget_bytes
    if budget < 0:
        raise ValueError("CMEM budget must be non-negative")
    if not use_cmem or not chip.has_cmem:
        budget = 0
    budget = min(budget, chip.cmem_bytes)

    plan = MemoryPlan(cmem_budget_bytes=budget)

    # --- weights: greedy fill, largest first (maximizes bytes on chip,
    # since every weight byte is read exactly once per inference).
    constants = [i for i in module.instructions if i.opcode == "constant"]
    remaining = budget
    for inst in sorted(constants, key=lambda i: i.shape.byte_size, reverse=True):
        size = inst.shape.byte_size
        if size <= remaining:
            plan.weight_home[inst.uid] = "cmem"
            plan.cmem_weight_bytes += size
            remaining -= size
        else:
            plan.weight_home[inst.uid] = "hbm"
            plan.hbm_weight_bytes += size

    # --- activations: anything whose output exceeds the VMEM working
    # budget spills. Spills prefer leftover CMEM, then HBM.
    working_budget = int(chip.vmem_bytes * _VMEM_WORKING_FRACTION)
    for inst in module.instructions:
        if inst.kind in ("data", "shape"):
            continue
        if inst.shape.byte_size > working_budget:
            if inst.shape.byte_size <= remaining:
                plan.spilled[inst.uid] = "cmem"
                remaining -= inst.shape.byte_size
            else:
                plan.spilled[inst.uid] = "hbm"
    return plan


def weight_load_bytes(module: HloModule, plan: MemoryPlan) -> Tuple[int, int]:
    """(bytes from CMEM, bytes from HBM) to stream all weights once."""
    cmem = 0
    hbm = 0
    for inst in module.instructions:
        if inst.opcode != "constant":
            continue
        if plan.home_of(inst.uid) == "cmem":
            cmem += inst.shape.byte_size
        else:
            hbm += inst.shape.byte_size
    return cmem, hbm
