"""VLIW bundle scheduling.

Packs the lowered instruction stream into issue bundles for the target
generation. Program order is preserved (the TensorCore issues in order);
the scheduler's freedom is *density*: with the ``dual_issue`` compiler
feature it fills every slot class a bundle offers, so a DMA, a sync, a
matmul and a vector op can issue together; without it each instruction
gets its own bundle (the bring-up compiler's behaviour).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.compiler.lowering import LoweredOp
from repro.compiler.versions import CompilerVersion
from repro.isa.instructions import (
    Bundle,
    Instruction,
    Opcode,
    SlotClass,
    slot_layout_for_generation,
)
from repro.isa.program import Program


def _flush(bundles: List[Bundle], pending: List[Instruction]) -> None:
    if pending:
        bundles.append(Bundle(tuple(pending)))
        pending.clear()


def _pack(instructions: Iterable[Instruction], generation: int,
          dense: bool) -> List[Bundle]:
    layout = slot_layout_for_generation(generation)
    bundles: List[Bundle] = []
    pending: List[Instruction] = []
    usage: Dict[SlotClass, int] = {}

    for inst in instructions:
        capacity = layout.get(inst.slot, 0)
        if capacity == 0:
            raise ValueError(
                f"generation {generation} has no {inst.slot.value} slot for "
                f"{inst.opcode.mnemonic}")
        if not dense:
            _flush(bundles, pending)
            usage = {}
        if usage.get(inst.slot, 0) >= capacity:
            _flush(bundles, pending)
            usage = {}
        pending.append(inst)
        usage[inst.slot] = usage.get(inst.slot, 0) + 1
        if not dense:
            _flush(bundles, pending)
            usage = {}
    _flush(bundles, pending)
    return bundles


def schedule(lowered: List[LoweredOp], name: str, generation: int,
             version: CompilerVersion) -> Program:
    """Build the final program from lowered ops.

    The emission order interleaves each op's prologue DMAs ahead of its
    body (lowering already hoisted prefetchable DMAs into prologues), and
    appends a HALT so the simulator knows the stream ended.
    """
    stream: List[Instruction] = []
    for op in lowered:
        stream.extend(op.prologue)
        stream.extend(op.body)
        stream.extend(op.epilogue)
    stream.append(Instruction(Opcode.HALT))

    program = Program(name=name, generation=generation)
    program.extend(_pack(stream, generation, dense=version.has("dual_issue")))
    program.metadata["compiler_version"] = version.name
    program.metadata["lowered_ops"] = len(lowered)
    return program
