"""Compiler compatibility vs binary compatibility (Lesson 2, experiment E13).

Two facts, demonstrated executably:

* ``binary_runs_on``: a compiled binary only decodes on its own generation —
  the VLIW formats are mutually unintelligible, so "ship binaries" was never
  an option across TPU generations;
* ``migrate_model``: the HLO graph recompiles onto any generation whose
  dtypes it uses (with an explicit, quality-tracked retarget step for
  int8-only TPUv1), and the recompiled program immediately benefits from
  the target's compiler features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.chip import ChipConfig
from repro.compiler.pipeline import (
    CompiledModel,
    UnsupportedDtypeError,
    compile_model,
    retarget_dtype,
)
from repro.compiler.versions import CompilerVersion, LATEST
from repro.graph.hlo import HloModule
from repro.isa.encoding import IncompatibleBinaryError, decode_program, encode_program


@dataclass(frozen=True)
class CompatReport:
    """Outcome of moving one model from one chip to another.

    Attributes:
        source_chip / target_chip: the migration endpoints.
        binary_portable: whether the source binary decodes on the target
            (False whenever generations differ).
        recompiled: whether HLO recompilation succeeded.
        retargeted_dtype: dtype forced during migration (e.g. ``"int8"``
            when moving a bf16 model to TPUv1), or None.
        notes: human-readable explanation.
    """

    source_chip: str
    target_chip: str
    binary_portable: bool
    recompiled: bool
    retargeted_dtype: Optional[str]
    notes: str


def binary_runs_on(compiled: CompiledModel, target: ChipConfig) -> bool:
    """Whether a compiled binary is even decodable on ``target``.

    Round-trips the real encoder: encode with the source format, attempt to
    decode with the target's.
    """
    binary = encode_program(compiled.program)
    try:
        decode_program(binary, target.generation)
        return True
    except IncompatibleBinaryError:
        return False


def migrate_model(module: HloModule, source: ChipConfig, target: ChipConfig,
                  *, version: CompilerVersion = LATEST) -> CompatReport:
    """Move a model across generations the way production actually did.

    Step 1: try carrying the binary (fails across generations).
    Step 2: recompile the graph for the target, retargeting dtypes if the
    target lacks the model's formats.
    """
    source_compiled = compile_model(module, source, version=version)
    portable = binary_runs_on(source_compiled, target)

    retargeted: Optional[str] = None
    try:
        compile_model(module, target, version=version)
        recompiled = True
    except UnsupportedDtypeError:
        fallback = "int8" if target.supports_dtype("int8") else None
        if fallback is None:
            return CompatReport(
                source_chip=source.name, target_chip=target.name,
                binary_portable=portable, recompiled=False,
                retargeted_dtype=None,
                notes="no common dtype; model cannot run on target")
        compile_model(retarget_dtype(module, fallback), target, version=version)
        recompiled = True
        retargeted = fallback

    if portable:
        notes = "same generation: binary carries over"
    elif retargeted:
        notes = (f"binary incompatible; recompiled from HLO with dtype "
                 f"retarget to {retargeted} (quality must be re-validated)")
    else:
        notes = "binary incompatible; clean recompile from HLO succeeded"
    return CompatReport(
        source_chip=source.name,
        target_chip=target.name,
        binary_portable=portable,
        recompiled=recompiled,
        retargeted_dtype=retargeted,
        notes=notes,
    )
