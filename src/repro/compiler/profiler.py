"""Per-operator cost attribution: where does an inference spend its time?

The simulator reports totals; performance work needs *attribution*. The
profiler lowers a module and prices each fusion group in isolation —
MXU cycles from the systolic model, VPU cycles from the vector model,
DMA time from the source level's bandwidth — then reports the top
operators and the compute/vector/memory split.

Costs are *unoverlapped*: each group's MXU, VPU, and DMA components are
summed as if nothing hides behind anything. The total therefore exceeds
the simulator's (overlapped) latency; the ratio between them is printed
as the pipeline's overlap efficiency, itself a useful number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.chip import ChipConfig
from repro.arch.memory import MemorySystem
from repro.arch.mxu import MxuModel
from repro.arch.vpu import VpuModel
from repro.compiler.expansion import expand_composites
from repro.compiler.fusion import plan_fusion
from repro.compiler.lowering import LoweredOp, lower_module
from repro.compiler.allocator import plan_memory
from repro.compiler.versions import CompilerVersion, LATEST
from repro.graph.hlo import HloModule
from repro.isa.instructions import LEVEL_NAMES, Opcode, VECTOR_OP_CLASS


@dataclass(frozen=True)
class OpProfile:
    """Unoverlapped cost of one lowered operator."""

    description: str
    mxu_cycles: int
    vpu_cycles: int
    dma_cycles: int
    dma_bytes: float

    @property
    def total_cycles(self) -> int:
        return self.mxu_cycles + self.vpu_cycles + self.dma_cycles

    @property
    def bound_by(self) -> str:
        parts = (("mxu", self.mxu_cycles), ("vpu", self.vpu_cycles),
                 ("dma", self.dma_cycles))
        return max(parts, key=lambda p: p[1])[0]


@dataclass(frozen=True)
class ModuleProfile:
    """Full attribution for one module on one chip."""

    model: str
    chip: str
    ops: Tuple[OpProfile, ...]

    @property
    def total_cycles(self) -> int:
        return sum(op.total_cycles for op in self.ops)

    def category_cycles(self) -> Dict[str, int]:
        """Cycles by component across all operators."""
        return {
            "mxu": sum(op.mxu_cycles for op in self.ops),
            "vpu": sum(op.vpu_cycles for op in self.ops),
            "dma": sum(op.dma_cycles for op in self.ops),
        }

    def top(self, count: int = 10) -> List[OpProfile]:
        """The heaviest operators, descending."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return sorted(self.ops, key=lambda op: op.total_cycles,
                      reverse=True)[:count]

    def render(self, count: int = 10) -> str:
        """Human-readable report."""
        lines = [f"profile of {self.model} on {self.chip} "
                 f"({len(self.ops)} operators, unoverlapped)"]
        categories = self.category_cycles()
        total = max(1, self.total_cycles)
        lines.append("  split: " + ", ".join(
            f"{name} {cycles / total:.0%}"
            for name, cycles in categories.items()))
        width = max((len(op.description) for op in self.top(count)),
                    default=10)
        for op in self.top(count):
            lines.append(
                f"  {op.description.ljust(width)} "
                f"{op.total_cycles:>12,} cyc "
                f"({op.total_cycles / total:5.1%})  [{op.bound_by}]")
        return "\n".join(lines)


def _price_op(op: LoweredOp, chip: ChipConfig, mxu: MxuModel, vpu: VpuModel,
              memory: MemorySystem) -> OpProfile:
    mxu_cycles = 0
    vpu_cycles = 0
    dma_cycles = 0
    dma_bytes = 0.0
    for inst in op.all_instructions():
        if inst.opcode is Opcode.MXM:
            mxu_cycles += mxu.matmul(*inst.args).cycles
        elif inst.opcode in (Opcode.MXM_LOADW, Opcode.MXM_TRANSPOSE):
            mxu_cycles += max(1, inst.args[0])
        elif inst.opcode is Opcode.VREDUCE:
            elements, axis_len = inst.args
            vpu_cycles += vpu.reduction(elements, max(1, axis_len)).cycles
        elif inst.opcode in VECTOR_OP_CLASS:
            vpu_cycles += vpu.elementwise(VECTOR_OP_CLASS[inst.opcode],
                                          inst.args[0]).cycles
        elif inst.opcode in (Opcode.DMA_IN, Opcode.DMA_OUT):
            level = LEVEL_NAMES[inst.args[0]]
            dma_cycles += memory.stream_cycles(level, inst.args[1])
            dma_bytes += inst.args[1]
    return OpProfile(
        description=op.description,
        mxu_cycles=mxu_cycles,
        vpu_cycles=vpu_cycles,
        dma_cycles=dma_cycles,
        dma_bytes=dma_bytes,
    )


def profile_module(module: HloModule, chip: ChipConfig, *,
                   version: CompilerVersion = LATEST) -> ModuleProfile:
    """Lower and price every operator of a module for one chip."""
    module.validate()
    expanded = expand_composites(module)
    fusion = plan_fusion(expanded, enabled=version.has("fusion"))
    memory_plan = plan_memory(expanded, chip,
                              use_cmem=version.has("cmem_alloc"))
    lowered = lower_module(expanded, fusion, memory_plan, chip, version)
    mxu = MxuModel(chip)
    vpu = VpuModel(chip)
    memory = MemorySystem(chip)
    ops = tuple(_price_op(op, chip, mxu, vpu, memory) for op in lowered)
    return ModuleProfile(model=module.name, chip=chip.name, ops=ops)
