"""Matmul/conv tiling onto the MXU and VMEM.

A matmul ``[M,K] @ [K,N]`` rarely fits VMEM whole, so it executes as a
sequence of M-chunks: stream a chunk of activations in, run it against the
(row-resident) weights, stream the result out. The chunk height is chosen
so the chunk's inputs + outputs fit the VMEM working budget while staying
a multiple of the MXU dimension (short chunks waste fill/drain — the
"better_tiling" compiler feature raises the chunk height, one of the
measured version-over-version wins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.arch.chip import ChipConfig


@dataclass(frozen=True)
class TileShape:
    """One M-chunk of a matmul: ``[rows, k] @ [k, n]``."""

    rows: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError("tile dims must be positive")

    @property
    def macs(self) -> int:
        return self.rows * self.k * self.n

    def input_bytes(self, elem_bytes: int) -> int:
        return self.rows * self.k * elem_bytes

    def output_bytes(self, elem_bytes: int) -> int:
        return self.rows * self.n * elem_bytes

    def weight_bytes(self, elem_bytes: int) -> int:
        return self.k * self.n * elem_bytes


def max_chunk_rows(k: int, n: int, elem_bytes: int, vmem_budget: int,
                   mxu_dim: int) -> int:
    """Largest MXU-aligned chunk height whose working set fits the budget.

    Working set per chunk: activations in (rows*k) + results out (rows*n)
    + one weight K-panel (k*n capped at k*mxu_dim since weight tiles
    stream column by column).
    """
    if vmem_budget <= 0:
        raise ValueError("VMEM budget must be positive")
    weight_panel = k * min(n, mxu_dim) * elem_bytes
    per_row = (k + n) * elem_bytes
    available = vmem_budget - weight_panel
    if available <= 0:
        # Degenerate: weights alone blow the budget; fall back to one
        # MXU-row chunk and let the DMA engine thrash (huge layers).
        return mxu_dim
    rows = available // per_row
    if rows <= 0:
        return mxu_dim
    aligned = max(mxu_dim, (rows // mxu_dim) * mxu_dim)
    return int(aligned)


def plan_matmul_tiles(m: int, k: int, n: int, chip: ChipConfig, *,
                      vmem_budget: int, good_tiling: bool = True) -> List[TileShape]:
    """Split an ``[m,k] @ [k,n]`` matmul into M-chunks.

    With ``good_tiling=False`` chunks are a fixed, conservative four MXU
    heights — the static tile early compiler releases used regardless of
    layer shape.
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError("matmul dims must be positive")
    elem = 2  # bf16 operand bytes; int8 halves this but tiling stays safe
    if good_tiling:
        chunk = max_chunk_rows(k, n, elem, vmem_budget, chip.mxu_dim)
    else:
        chunk = 4 * chip.mxu_dim
    chunk = min(chunk, m) if m >= chip.mxu_dim else m
    tiles: List[TileShape] = []
    row = 0
    while row < m:
        rows = min(chunk, m - row)
        tiles.append(TileShape(rows=rows, k=k, n=n))
        row += rows
    return tiles
