"""Operator fusion: group elementwise consumers with their producers.

Without fusion every elementwise op round-trips its tensor through memory;
with it, the epilogue (bias add, activation, residual add) applies while
the producer's result is still in VMEM. The fuser is the classic XLA
greedy rule: an instruction fuses into its producer's group when

* it is elementwise (unary/binary) or a reduction,
* its producer is in a fusable group (matmul/conv/elementwise root),
* the producer has no other consumer that would duplicate work, and
* the shapes stream (equal element counts, same dtype width class).

The result is a :class:`FusionPlan` mapping instruction uid -> group id;
lowering emits one DMA round-trip per *group* rather than per op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.graph.hlo import HloInstruction, HloModule

_FUSABLE_ROOT_KINDS = {"matmul", "conv", "unary", "binary", "reduce", "pool"}
_FUSABLE_FOLLOWER_KINDS = {"unary", "binary", "reduce", "pool", "shape"}


@dataclass
class FusionPlan:
    """Assignment of instructions to fusion groups.

    ``group_of[uid]`` is the group id; ``members[gid]`` lists uids in issue
    order. Singleton groups are normal — they just mean "not fused".
    """

    group_of: Dict[int, int] = field(default_factory=dict)
    members: Dict[int, List[int]] = field(default_factory=dict)

    def new_group(self, uid: int) -> int:
        gid = len(self.members)
        self.members[gid] = [uid]
        self.group_of[uid] = gid
        return gid

    def join(self, uid: int, gid: int) -> None:
        self.members[gid].append(uid)
        self.group_of[uid] = gid

    def group_sizes(self) -> List[int]:
        return [len(m) for m in self.members.values()]

    def fused_op_count(self) -> int:
        """Instructions eliminated as separate memory round-trips."""
        return sum(size - 1 for size in self.group_sizes())


def _consumer_counts(module: HloModule) -> Dict[int, int]:
    counts: Dict[int, int] = {inst.uid: 0 for inst in module.instructions}
    for inst in module.instructions:
        for operand in inst.operands:
            counts[operand.uid] += 1
    return counts


def _streams_with(producer: HloInstruction, consumer: HloInstruction) -> bool:
    """Whether the consumer can process the producer's output in place."""
    if consumer.kind == "reduce":
        return consumer.operands[0].uid == producer.uid
    return consumer.shape.num_elements <= producer.shape.num_elements


def plan_fusion(module: HloModule, enabled: bool = True) -> FusionPlan:
    """Compute fusion groups for a composite-free module.

    With ``enabled=False`` every instruction is a singleton group — the
    pre-fusion compiler the versions experiment (E9) measures against.
    """
    plan = FusionPlan()
    consumers = _consumer_counts(module)

    for inst in module.instructions:
        if not enabled:
            plan.new_group(inst.uid)
            continue
        fused = False
        if inst.kind in _FUSABLE_FOLLOWER_KINDS and inst.operands:
            # Prefer fusing into the largest producer operand (the one whose
            # round-trip we eliminate); bias vectors ride along for free.
            candidates = sorted(inst.operands,
                                key=lambda o: o.shape.num_elements,
                                reverse=True)
            for producer in candidates:
                gid = plan.group_of.get(producer.uid)
                if gid is None:
                    continue
                root = module.instructions[plan.members[gid][0]]
                if root.kind not in _FUSABLE_ROOT_KINDS:
                    continue  # never fuse compute into parameters/constants
                if consumers[producer.uid] != 1:
                    continue  # producer feeds others; keep it materialized
                if not _streams_with(producer, inst):
                    continue
                plan.join(inst.uid, gid)
                fused = True
                break
        if not fused:
            plan.new_group(inst.uid)
    return plan
