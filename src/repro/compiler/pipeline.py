"""The end-to-end compile pipeline and its result object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.chip import ChipConfig
from repro.compiler.allocator import MemoryPlan, plan_memory
from repro.compiler.expansion import expand_composites
from repro.compiler.fusion import FusionPlan, plan_fusion
from repro.compiler.lowering import lower_module
from repro.compiler.scheduler import schedule
from repro.compiler.versions import CompilerVersion, LATEST
from repro.graph.hlo import HloInstruction, HloModule
from repro.isa.program import Program


class UnsupportedDtypeError(Exception):
    """The chip cannot execute the module's arithmetic (e.g. bf16 on TPUv1)."""


@dataclass
class CompiledModel:
    """Everything the compiler produced for one (module, chip, version).

    Attributes:
        program: the scheduled VLIW program the simulator runs.
        module: the expanded (composite-free) module actually compiled.
        source: the module as the user built it.
        fusion / memory: the pass results, for inspection and tests.
        chip / version: the compile target.
    """

    program: Program
    module: HloModule
    source: HloModule
    fusion: FusionPlan
    memory: MemoryPlan
    chip: ChipConfig
    version: CompilerVersion

    @property
    def weight_bytes(self) -> int:
        return self.module.total_weight_bytes()

    @property
    def cmem_resident_bytes(self) -> int:
        return self.memory.cmem_weight_bytes

    def summary(self) -> Dict[str, object]:
        return {
            "model": self.source.name,
            "chip": self.chip.name,
            "compiler": self.version.name,
            "bundles": len(self.program),
            "fused_away": self.fusion.fused_op_count(),
            "weights_in_cmem": self.memory.cmem_hit_fraction,
        }


_ARITHMETIC_KINDS = ("unary", "binary", "matmul", "conv", "reduce", "composite")


def _check_dtypes(module: HloModule, chip: ChipConfig) -> None:
    # Only arithmetic ops need datapath support; index tensors (int32 ids)
    # and pure data movement are dtype-agnostic.
    used = {inst.shape.dtype_name for inst in module.instructions
            if inst.kind in _ARITHMETIC_KINDS}
    unsupported = sorted(d for d in used if not chip.supports_dtype(d))
    if unsupported:
        raise UnsupportedDtypeError(
            f"{chip.name} does not support {unsupported}; supported: "
            f"{sorted(chip.dtypes)}. Retarget the model (see "
            f"retarget_dtype) or pick a chip with the needed formats."
        )


def retarget_dtype(module: HloModule, dtype_name: str) -> HloModule:
    """Rebuild a module with every tensor in ``dtype_name``.

    This is the "quantize everything" deployment move TPUv1 required —
    numerically lossy (quantify with ``repro.numerics``), but it makes the
    graph executable on an int8-only chip.
    """
    out = HloModule(f"{module.name}.{dtype_name}")
    mapping: Dict[int, HloInstruction] = {}
    for inst in module.instructions:
        operands = tuple(mapping[o.uid] for o in inst.operands)
        attrs = {k: v for k, v in inst.attrs}
        # Only arithmetic (float) tensors retarget; index tensors keep int32.
        if inst.shape.dtype.is_float:
            shape = inst.shape.with_dtype(dtype_name)
        else:
            shape = inst.shape
        mapping[inst.uid] = out.add(inst.opcode, shape, operands,
                                    name=inst.name, **attrs)
    out.set_root(mapping[module.root.uid])
    return out


def compile_model(module: HloModule, chip: ChipConfig, *,
                  version: CompilerVersion = LATEST,
                  cmem_budget_bytes: Optional[int] = None) -> CompiledModel:
    """Compile an HLO module for a chip with a given compiler release.

    This is the library's central entry point: every benchmark, example and
    serving simulation goes through here. ``cmem_budget_bytes`` restricts
    the weight allocator (capacity sweeps, multi-tenant partitions).
    """
    module.validate()
    _check_dtypes(module, chip)
    expanded = expand_composites(module)
    fusion = plan_fusion(expanded, enabled=version.has("fusion"))
    memory = plan_memory(expanded, chip, cmem_budget_bytes=cmem_budget_bytes,
                         use_cmem=version.has("cmem_alloc"))
    lowered = lower_module(expanded, fusion, memory, chip, version)
    program = schedule(lowered, module.name, chip.generation, version)
    program.metadata["weight_bytes"] = expanded.total_weight_bytes()
    return CompiledModel(
        program=program,
        module=expanded,
        source=module,
        fusion=fusion,
        memory=memory,
        chip=chip,
        version=version,
    )
