"""XLA-like compiler: HLO modules -> scheduled VLIW programs.

The pipeline mirrors the passes that mattered in the paper's story:

1. **expansion** — composites (softmax, layernorm) become primitives;
2. **fusion** — elementwise chains fuse with their producers, eliminating
   memory round-trips (the single biggest compiler win);
3. **allocation** — weights are placed in CMEM when they fit (TPUv4i's
   headline feature) and HBM otherwise; oversized activations spill;
4. **tiling + lowering** — matmuls/convs tile to the MXU and VMEM, every
   HLO becomes DMA/MXM/vector instruction sequences;
5. **scheduling** — instructions pack into VLIW bundles, with DMA prefetch
   hoisted across compute at higher optimization levels.

``versions`` models fifteen months of compiler releases as growing feature
sets (the Lesson 2 "performance arrives by software" figure), and
``compat`` demonstrates the compatibility contract: binaries never cross
generations, HLO always does.
"""

from repro.compiler.expansion import expand_composites
from repro.compiler.fusion import FusionPlan, plan_fusion
from repro.compiler.allocator import MemoryPlan, plan_memory
from repro.compiler.tiling import TileShape, plan_matmul_tiles
from repro.compiler.lowering import LoweredOp, lower_module
from repro.compiler.scheduler import schedule
from repro.compiler.pipeline import CompiledModel, compile_model
from repro.compiler.profiler import ModuleProfile, OpProfile, profile_module
from repro.compiler.versions import CompilerVersion, RELEASES, release_by_name, LATEST
from repro.compiler.compat import (
    CompatReport,
    binary_runs_on,
    migrate_model,
)

__all__ = [
    "expand_composites",
    "FusionPlan",
    "plan_fusion",
    "MemoryPlan",
    "plan_memory",
    "TileShape",
    "plan_matmul_tiles",
    "LoweredOp",
    "lower_module",
    "schedule",
    "CompiledModel",
    "compile_model",
    "ModuleProfile",
    "OpProfile",
    "profile_module",
    "CompilerVersion",
    "RELEASES",
    "release_by_name",
    "LATEST",
    "CompatReport",
    "binary_runs_on",
    "migrate_model",
]
