"""Compiler releases over time (the Lesson 2 performance-from-software figure).

The paper shows the same hardware getting substantially faster over ~15
months purely from compiler releases. We model each release as a feature
set; the pipeline consults the features, so compiling one workload across
RELEASES reproduces the gain curve (experiment E9).

Features:
    fusion        elementwise/epilogue fusion (eliminates round-trips)
    cmem_alloc    weight placement in CMEM (before it: weights from HBM!)
    good_tiling   VMEM-filling M-chunks instead of one-MXU-row chunks
    prefetch      DMA for chunk i+1 issued during compute of chunk i
    dual_issue    denser VLIW packing (vector ops beside matmuls)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

ALL_FEATURES: FrozenSet[str] = frozenset(
    {"fusion", "cmem_alloc", "good_tiling", "prefetch", "dual_issue"})


@dataclass(frozen=True)
class CompilerVersion:
    """One compiler release."""

    name: str
    months_after_launch: int
    features: FrozenSet[str]

    def __post_init__(self) -> None:
        unknown = self.features - ALL_FEATURES
        if unknown:
            raise ValueError(f"unknown compiler features: {sorted(unknown)}")
        if self.months_after_launch < 0:
            raise ValueError("months_after_launch must be non-negative")

    def has(self, feature: str) -> bool:
        if feature not in ALL_FEATURES:
            raise KeyError(f"unknown feature {feature!r}")
        return feature in self.features


# The release train: bring-up compiler at launch, roughly one feature per
# quarter after. Names are "vYYYY.Q".
RELEASES: Tuple[CompilerVersion, ...] = (
    CompilerVersion("v2020.1", 0, frozenset()),
    CompilerVersion("v2020.2", 3, frozenset({"cmem_alloc"})),
    CompilerVersion("v2020.3", 6, frozenset({"cmem_alloc", "fusion"})),
    CompilerVersion("v2020.4", 9, frozenset({"cmem_alloc", "fusion",
                                             "good_tiling"})),
    CompilerVersion("v2021.1", 12, frozenset({"cmem_alloc", "fusion",
                                              "good_tiling", "prefetch"})),
    CompilerVersion("v2021.2", 15, ALL_FEATURES),
)

LATEST: CompilerVersion = RELEASES[-1]

_BY_NAME: Dict[str, CompilerVersion] = {v.name: v for v in RELEASES}


def release_by_name(name: str) -> CompilerVersion:
    """Look up a release (``"v2021.2"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(v.name for v in RELEASES)
        raise KeyError(f"unknown release {name!r}; known: {known}") from None
