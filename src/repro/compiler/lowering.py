"""Lowering: fused HLO groups -> DMA/MXM/vector instruction streams.

Each fusion group becomes one *lowered op*: the DMAs that stage its
operands, the MXU or VPU work, and the DMA that writes back a materialized
result. Matmuls and convs are tiled into M-chunks (see ``tiling``).

Compiler-feature semantics (these are what the versions experiment
measures):

* ``prefetch`` — DMAs are hoisted into the op's prologue and waited on
  only at the point of use, so transfers overlap compute. Without it every
  DMA is *synchronous*: issue, then immediately wait (bring-up codegen).
* ``fusion`` — fused followers stream the producer's output in VMEM for
  free. Without fusion, any intermediate larger than a quarter of the
  VMEM working budget is materialized: written back to CMEM/HBM by its
  producer and re-staged by every consumer (the naive op-by-op executor).
* ``cmem_alloc`` — weights stream from their allocator-assigned home;
  without it everything streams from HBM.

Traffic rules (the numbers every experiment rides on):

* weights stream from their home once per execution — or once per M-chunk
  when the weight panel exceeds the VMEM weight budget;
* parameters (request inputs) stream from HBM; intermediates live in VMEM
  unless spilled/materialized;
* embedding lookups read ``rows * dim`` bytes from the table's home level.

Ordering note: a consumer staging a materialized tensor waits on the
producer's store flag before issuing its load, so write-then-read through
HBM is never reordered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.chip import ChipConfig
from repro.compiler.allocator import MemoryPlan
from repro.compiler.fusion import FusionPlan
from repro.compiler.tiling import plan_matmul_tiles
from repro.compiler.versions import CompilerVersion
from repro.graph.hlo import HloInstruction, HloModule
from repro.graph.ops import opdef
from repro.isa.instructions import Instruction, LEVEL_IDS, Opcode

# Vector-class name -> vector opcode.
_VECTOR_OPCODES: Dict[str, Opcode] = {
    "add": Opcode.VADD,
    "sub": Opcode.VSUB,
    "mul": Opcode.VMUL,
    "max": Opcode.VMAX,
    "min": Opcode.VMIN,
    "select": Opcode.VSELECT,
    "relu": Opcode.VRELU,
    "div": Opcode.VDIV,
    "rsqrt": Opcode.VRSQRT,
    "exp": Opcode.VEXP,
    "tanh": Opcode.VTANH,
    "sigmoid": Opcode.VSIGMOID,
    "gelu": Opcode.VGELU,
    "erf": Opcode.VERF,
    "copy": Opcode.VCOPY,
}

_NUM_FLAGS = 64
_VMEM_WEIGHT_FRACTION = 0.4
_VMEM_WORKING_FRACTION = 0.5
_MATERIALIZE_DIVISOR = 4  # no-fusion round-trip threshold: working budget / 4


@dataclass
class LoweredOp:
    """One fusion group's executable form."""

    group_id: int
    description: str
    prologue: List[Instruction] = field(default_factory=list)  # hoisted DMAs
    body: List[Instruction] = field(default_factory=list)      # waits + compute
    epilogue: List[Instruction] = field(default_factory=list)  # store DMAs

    def all_instructions(self) -> List[Instruction]:
        return self.prologue + self.body + self.epilogue


class _FlagAllocator:
    """Round-robin sync-flag ids (64 architectural flags)."""

    def __init__(self) -> None:
        self._next = 0

    def take(self) -> int:
        flag = self._next
        self._next = (self._next + 1) % _NUM_FLAGS
        return flag


class _Lowerer:
    def __init__(self, module: HloModule, fusion: FusionPlan,
                 memory: MemoryPlan, chip: ChipConfig,
                 version: CompilerVersion) -> None:
        self.module = module
        self.fusion = fusion
        self.memory = memory
        self.chip = chip
        self.version = version
        self.flags = _FlagAllocator()
        # uid -> where the tensor is available: "vmem", "cmem", or "hbm".
        self.location: Dict[int, str] = {}
        # uid -> store flag of the DMA that materialized it (for ordering).
        self.store_flag: Dict[int, int] = {}
        self.elem_bytes = 1 if module.root.shape.dtype_name == "int8" else 2
        working = int(chip.vmem_bytes * _VMEM_WORKING_FRACTION)
        self.materialize_threshold = working // _MATERIALIZE_DIVISOR

    # ------------------------------------------------------------ DMA helpers

    def _emit_load(self, op: LoweredOp, level: str, num_bytes: int,
                   after_flag: Optional[int] = None) -> int:
        """Emit a DMA_IN; returns the flag to wait on before using the data.

        With ``prefetch`` the DMA goes to the prologue (hoisted, overlapped);
        without it the DMA is synchronous: emitted in the body and waited on
        immediately.
        """
        flag = self.flags.take()
        if after_flag is not None:
            op.body.append(Instruction(Opcode.SYNC_WAIT, (after_flag,)))
        load = Instruction(Opcode.DMA_IN,
                           (LEVEL_IDS[level], max(1, int(num_bytes)), flag))
        if self.version.has("prefetch") and after_flag is None:
            op.prologue.append(load)
        else:
            op.body.append(load)
            if not self.version.has("prefetch"):
                op.body.append(Instruction(Opcode.SYNC_WAIT, (flag,)))
        return flag

    def _emit_store(self, op: LoweredOp, level: str, num_bytes: int) -> int:
        flag = self.flags.take()
        op.epilogue.append(Instruction(
            Opcode.DMA_OUT, (LEVEL_IDS[level], max(1, int(num_bytes)), flag)))
        return flag

    def _wait(self, op: LoweredOp, flag: Optional[int]) -> None:
        if flag is not None:
            op.body.append(Instruction(Opcode.SYNC_WAIT, (flag,)))

    def _stage_operand(self, op: LoweredOp, operand: HloInstruction) -> None:
        """Bring one operand into VMEM if it is not already there."""
        location = self._location_of(operand)
        if location == "vmem":
            return
        flag = self._emit_load(op, location, operand.shape.byte_size,
                               after_flag=self.store_flag.get(operand.uid))
        self._wait(op, flag)

    def _location_of(self, operand: HloInstruction) -> str:
        if operand.opcode == "parameter":
            return "hbm"
        if operand.opcode == "constant":
            if self.version.has("cmem_alloc"):
                return self.memory.home_of(operand.uid)
            return "hbm"
        return self.location.get(operand.uid, "vmem")

    # --------------------------------------------------------------- matmuls

    def _lower_matmul(self, op: LoweredOp, inst: HloInstruction,
                      m: int, k: int, n: int) -> None:
        weight = inst.operands[1]
        activation = inst.operands[0]
        weight_home = self._location_of(weight)
        weight_bytes = k * n * self.elem_bytes

        vmem_working = int(self.chip.vmem_bytes * _VMEM_WORKING_FRACTION)
        tiles = plan_matmul_tiles(
            m, k, n, self.chip, vmem_budget=vmem_working,
            good_tiling=self.version.has("good_tiling"))

        weight_budget = int(self.chip.vmem_bytes * _VMEM_WEIGHT_FRACTION)
        weight_resident = weight_bytes <= weight_budget
        weight_streams = 1 if weight_resident else len(tiles)

        act_location = self._location_of(activation)
        act_bytes_total = m * k * self.elem_bytes
        act_store = self.store_flag.get(activation.uid)
        weight_store = self.store_flag.get(weight.uid)

        # Weight stream(s).
        weight_flags: List[int] = []
        for _ in range(weight_streams):
            if weight_home == "vmem":
                break
            weight_flags.append(self._emit_load(op, weight_home, weight_bytes,
                                                after_flag=weight_store))
            weight_store = None  # ordering enforced once

        # Per-tile activation stream + compute.
        for index, tile in enumerate(tiles):
            if act_location != "vmem":
                share = tile.rows / m
                flag = self._emit_load(
                    op, act_location, int(math.ceil(act_bytes_total * share)),
                    after_flag=act_store)
                act_store = None
                self._wait(op, flag)
            if weight_flags:
                wait_index = min(index, len(weight_flags) - 1)
                self._wait(op, weight_flags[wait_index])
            op.body.append(Instruction(Opcode.MXM, (tile.rows, k, n)))

    def _lower_batched_dot(self, op: LoweredOp, root: HloInstruction) -> None:
        """Attention-style activation x activation matmul: one MXU matmul
        per batch/head entry (distinct "weights" each time)."""
        for operand in root.operands:
            self._stage_operand(op, operand)
        batch, m, k = root.operands[0].shape.dims
        n = root.operands[1].shape.dims[2]
        for _ in range(batch):
            op.body.append(Instruction(Opcode.MXM, (m, k, n)))

    # ---------------------------------------------------------------- vector

    def _lower_vector(self, op: LoweredOp, inst: HloInstruction) -> None:
        definition = opdef(inst.opcode)
        if definition.kind == "pool":
            window = int(inst.attr("window", 2))
            op.body.append(Instruction(
                Opcode.VREDUCE,
                (inst.operands[0].shape.num_elements, window * window)))
            return
        if definition.kind == "reduce":
            axis = int(inst.attr("axis", inst.operands[0].shape.rank - 1))
            axis_len = inst.operands[0].shape.dims[axis]
            op.body.append(Instruction(
                Opcode.VREDUCE,
                (inst.operands[0].shape.num_elements, axis_len)))
            return
        opcode = _VECTOR_OPCODES[definition.vpu_class]
        op.body.append(Instruction(opcode, (inst.shape.num_elements,)))

    # ---------------------------------------------------------------- gather

    # Minimum DRAM burst per random row access; short embedding rows pay
    # the full burst (the random-access tax that makes embedding lookups
    # bandwidth-inefficient on real HBM).
    _MIN_BURST_BYTES = 256

    def _lower_gather(self, op: LoweredOp, inst: HloInstruction) -> None:
        table = inst.operands[0]
        home = self._location_of(table)
        if home == "vmem":
            home = "hbm"
        row_bytes = table.shape.dims[1] * table.shape.dtype.size_bytes
        rows = inst.shape.num_elements // max(1, table.shape.dims[1])
        read_bytes = rows * max(row_bytes, self._MIN_BURST_BYTES)
        flag = self._emit_load(op, home, read_bytes)
        self._wait(op, flag)
        op.body.append(Instruction(Opcode.VCOPY, (inst.shape.num_elements,)))

    # ----------------------------------------------------------------- group

    def lower_group(self, gid: int,
                    members: List[HloInstruction]) -> Optional[LoweredOp]:
        root = members[0]
        if root.kind == "data":
            for member in members:
                self.location[member.uid] = self._location_of(member)
            return None
        if root.kind == "shape":
            for member in members:
                src = member.operands[0] if member.operands else None
                self.location[member.uid] = (
                    self._location_of(src) if src is not None else "vmem")
                if src is not None and src.uid in self.store_flag:
                    self.store_flag[member.uid] = self.store_flag[src.uid]
            return None

        op = LoweredOp(group_id=gid, description=root.name or root.opcode)

        if root.opcode == "batched_dot":
            self._lower_batched_dot(op, root)
        elif root.kind in ("matmul", "conv"):
            if root.kind == "matmul":
                lhs = root.operands[0].shape
                m = math.prod(lhs.dims[:-1])
                k = lhs.dims[-1]
                n = root.operands[1].shape.dims[1]
            else:
                filt = root.operands[1].shape
                n_batch, oh, ow, cout = root.shape.dims
                kh, kw, cin, _ = filt.dims
                m, k, n = n_batch * oh * ow, kh * kw * cin, cout
            self._lower_matmul(op, root, m, k, n)
        elif root.kind == "gather":
            self._lower_gather(op, root)
        else:  # unary / binary / reduce / pool root
            for operand in root.operands:
                self._stage_operand(op, operand)
            self._lower_vector(op, root)

        # Fused followers: VPU work only; extra non-resident operands of the
        # followers (bias vectors, residual inputs) are staged too.
        for member in members[1:]:
            if member.kind in ("unary", "binary", "reduce", "pool"):
                for operand in member.operands:
                    if operand.uid in (m.uid for m in members):
                        continue
                    if operand.shape.byte_size > self.materialize_threshold:
                        self._stage_operand(op, operand)
                self._lower_vector(op, member)
            # shape followers are free

        self._place_output(op, members)
        return op

    def _place_output(self, op: LoweredOp, members: List[HloInstruction]) -> None:
        tail = members[-1]
        spill_level = self.memory.spilled.get(tail.uid)
        size = tail.shape.byte_size

        if tail.uid == self.module.root.uid:
            self._emit_store(op, "hbm", size)
            self.location[tail.uid] = "hbm"
        elif spill_level is not None:
            self.store_flag[tail.uid] = self._emit_store(op, spill_level, size)
            self.location[tail.uid] = spill_level
        elif (not self.version.has("fusion")
              and size > self.materialize_threshold):
            # Naive executor: materialize sizeable intermediates off-VMEM.
            level = "cmem" if (self.chip.has_cmem
                               and self.version.has("cmem_alloc")) else "hbm"
            self.store_flag[tail.uid] = self._emit_store(op, level, size)
            self.location[tail.uid] = level
        else:
            self.location[tail.uid] = "vmem"
        for member in members:
            self.location.setdefault(member.uid, self.location[tail.uid])


def lower_module(module: HloModule, fusion: FusionPlan, memory: MemoryPlan,
                 chip: ChipConfig, version: CompilerVersion) -> List[LoweredOp]:
    """Lower a composite-free module into executable lowered ops."""
    lowerer = _Lowerer(module, fusion, memory, chip, version)
    by_uid = {inst.uid: inst for inst in module.instructions}
    lowered: List[LoweredOp] = []
    for gid in sorted(fusion.members):
        members = [by_uid[uid] for uid in fusion.members[gid]]
        op = lowerer.lower_group(gid, members)
        if op is not None:
            lowered.append(op)
    return lowered
