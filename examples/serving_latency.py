"""Serving under an SLO: Lesson 9 ("apps limit latency, not batch size").

Serves Poisson traffic for BERT0 through a dynamic batcher at several load
levels and batching configurations, printing the latency/throughput
trade-off and the largest batch the SLO admits.

Run:  python examples/serving_latency.py
"""

from repro import BatchPolicy, DesignPoint, ServingSimulator, Slo, TPUV4I, app_by_name
from repro.workloads import RequestGenerator


def main():
    spec = app_by_name("bert0")
    point = DesignPoint(TPUV4I)
    slo = Slo(limit_s=spec.slo_ms / 1e3, pct=99)
    print(f"app: {spec.name} ({spec.description}); SLO p99 <= {spec.slo_ms} ms\n")

    print("-- compute-only latency by batch (no queueing) --")
    policy = BatchPolicy(max_batch=64, max_wait_s=0.002)
    server = ServingSimulator(point, spec, policy, slo)
    for batch in BatchPolicy.batch_steps(64):
        latency_ms = server.batch_latency_s(batch) * 1e3
        marker = "OK " if latency_ms <= spec.slo_ms else "SLO!"
        print(f"  batch {batch:>3}: {latency_ms:7.2f} ms  {marker}")
    print(f"  -> largest SLO-feasible batch: {server.max_slo_batch()}\n")

    print("-- served traffic at rising load --")
    generator = RequestGenerator(seed=7)
    for rate in (100, 500, 1000, 2000):
        requests = generator.poisson(spec.name, rate_qps=rate, duration_s=3.0)
        stats = server.simulate(requests)
        print(f"  offered {rate:>5} qps: p99 {stats.p99_s * 1e3:7.2f} ms, "
              f"mean batch {stats.mean_batch:5.1f}, "
              f"violations {stats.slo_violation_fraction:6.1%}")

    print("\n-- batching knobs at fixed load (1000 qps) --")
    requests = generator.poisson(spec.name, rate_qps=1000, duration_s=3.0)
    for max_batch, max_wait_ms in ((1, 0.0), (8, 1.0), (32, 2.0), (64, 8.0)):
        policy = BatchPolicy(max_batch=max_batch, max_wait_s=max_wait_ms / 1e3)
        stats = ServingSimulator(point, spec, policy, slo).simulate(requests)
        print(f"  max_batch {max_batch:>3}, wait {max_wait_ms:4.1f} ms: "
              f"p99 {stats.p99_s * 1e3:7.2f} ms, "
              f"throughput {stats.throughput_qps:7.0f} qps, "
              f"violations {stats.slo_violation_fraction:6.1%}")

    print("\nLesson 9: throughput keeps rising with batch, but the latency "
          "budget cuts the batch off first.")


if __name__ == "__main__":
    main()
