"""Quickstart: build a model, compile it for TPUv4i, simulate an inference.

Walks the full public API surface in ~60 lines:

1. define a small network in the HLO-like graph IR;
2. compile it with the latest XLA-like release;
3. run the cycle simulator and read the performance report;
4. place the model on the chip's roofline.

Run:  python examples/quickstart.py
"""

from repro import (
    GraphBuilder,
    Shape,
    TPUV4I,
    TensorCoreSim,
    chip_roofline,
    compile_model,
    place_module,
)


def build_model():
    """A two-block MLP classifier in the graph IR."""
    builder = GraphBuilder("quickstart-mlp")
    x = builder.parameter(Shape((64, 1024)), "input")
    w0 = builder.constant(Shape((1024, 4096)), "w0")
    b0 = builder.constant(Shape((4096,)), "b0")
    h = builder.relu(builder.add(builder.dot(x, w0), b0), "hidden")
    w1 = builder.constant(Shape((4096, 1000)), "w1")
    logits = builder.dot(h, w1, "logits")
    module = builder.build()
    module.set_root(logits)
    return module


def main():
    module = build_model()
    print(f"model: {module.name}")
    print(f"  weights: {module.total_weight_bytes() / 2**20:.1f} MiB")
    print(f"  flops/inference: {module.total_flops() / 1e9:.2f} GFLOP")
    print(f"  operational intensity: {module.operational_intensity():.0f} ops/byte")

    compiled = compile_model(module, TPUV4I)
    print(f"\ncompiled for {TPUV4I.name} with {compiled.version.name}:")
    print(f"  bundles: {len(compiled.program)}")
    print(f"  ops fused away: {compiled.fusion.fused_op_count()}")
    print(f"  weights resident in CMEM: {compiled.memory.cmem_hit_fraction:.0%}")

    result = TensorCoreSim(TPUV4I).run(compiled.program)
    print(f"\nsimulated: {result.report.describe()}")

    roof = chip_roofline(TPUV4I, "hbm")
    placed = place_module(module, TPUV4I,
                          cmem_hit_fraction=compiled.memory.cmem_hit_fraction)
    bound = "memory-bound" if placed.memory_bound_hbm else "compute-bound"
    print(f"\nroofline: ridge at {roof.ridge_ops_per_byte:.0f} ops/byte; "
          f"model is {bound} on HBM; "
          f"attainable {placed.attainable_tops_cmem:.1f} TOPS with CMEM")


if __name__ == "__main__":
    main()
