"""Architecture co-design: how much CMEM is enough?

Reruns the design decision behind TPUv4i's 128 MiB CMEM:

1. sweep the weight allocator's CMEM budget per app and watch latency
   fall until the hot working set fits;
2. sweep MXU count x CMEM under the air-cooling ceiling and print the
   Pareto frontier the shipped configuration sits on;
3. show the multi-tenant angle: CMEM big enough for one model is not
   big enough for a production machine serving four.

Run:  python examples/codesign_cmem.py
"""

from repro import DesignPoint, TPUV4I, app_by_name
from repro.core import cmem_sweep, enumerate_candidates, evaluate_candidate, pareto_frontier
from repro.serving import MultiTenantSim, Tenant
from repro.util.units import MIB
from repro.workloads import RequestGenerator


def sweep_apps():
    print("-- latency (ms) vs CMEM budget --")
    capacities = [0, 32 * MIB, 64 * MIB, 128 * MIB]
    header = "  " + "app".ljust(6) + "".join(
        f"{c // MIB:>9} MiB" for c in capacities)
    print(header)
    for name in ("mlp1", "cnn0", "rnn0", "rnn1"):
        sweep = cmem_sweep(app_by_name(name), capacities)
        cells = "".join(f"{latency * 1e3:>13.2f}" for _, latency in sweep)
        print(f"  {name:<6}{cells}")
    print("  -> weight-streaming apps (RNNs, big MLPs) buy the SRAM; "
          "CNNs shrug.\n")


def sweep_designs():
    print("-- MXU count x CMEM under the air-cooling ceiling --")
    candidates = [evaluate_candidate(chip)
                  for chip in enumerate_candidates(
                      mxu_counts=(2, 4, 8), cmem_mib_options=(0, 128))]
    frontier = {id(c) for c in pareto_frontier(candidates)}
    for candidate in sorted(candidates, key=lambda c: c.tdp_estimate_w):
        mark = "  <-- frontier" if id(candidate) in frontier else ""
        print(f"  {candidate.describe()}{mark}")
    print("  -> 8-MXU designs bust the air envelope; the shipped point "
          "(4 MXU + 128 MiB) is on the frontier.\n")


def multitenant():
    print("-- four co-resident models on one chip (Lesson 4) --")
    point = DesignPoint(TPUV4I)
    names = ("cnn0", "rnn0", "bert0", "mlp1")
    tenants = [Tenant(app_by_name(n), 30) for n in names]
    sim = MultiTenantSim(point, tenants)
    requests = RequestGenerator(3).multi_tenant(list(names),
                                                [30.0] * len(names), 2.0)
    for policy in ("swap_host", "swap", "partition"):
        stats = sim.simulate(requests, policy)
        print(f"  {policy:<10} p99 {stats.p99_s * 1e3:8.2f} ms, "
              f"{stats.swap_count:>4} swaps costing "
              f"{stats.swap_seconds_total * 1e3:7.1f} ms")
    print("  -> without provisioned co-residency (swap_host), PCIe reloads "
          "destroy tail latency.")


def main():
    sweep_apps()
    sweep_designs()
    multitenant()


if __name__ == "__main__":
    main()
