"""Scaling past one chip: pipeline a CMEM-overflowing model over ICI.

bert1's 636 MiB of weights dwarf TPUv4i's 128 MiB CMEM, so a single chip
streams most weights from HBM. Pipelining the model across the board's
ICI ring splits the weights per chip — and once each slice fits CMEM,
throughput scales *superlinearly* in chips.

Run:  python examples/multichip_scaling.py
"""

from repro.core import PipelineDeployment
from repro.util.units import MIB
from repro.workloads import app_by_name


def main():
    deployment = PipelineDeployment()
    for name in ("bert1", "rnn1"):
        spec = app_by_name(name)
        weights = spec.build(1).total_weight_bytes() / MIB
        print(f"\n{name}: {weights:.0f} MiB of weights "
              f"(CMEM holds 128 MiB), batch {spec.default_batch}")
        reports = deployment.scaling_study(spec.build, spec.default_batch,
                                           (1, 2, 4))
        base = reports[0].throughput_qps
        for report in reports:
            print(f"  {report.num_chips} chip(s): "
                  f"{report.request_latency_s * 1e3:7.2f} ms/request, "
                  f"{report.throughput_qps:7.0f} qps "
                  f"({report.throughput_qps / base:4.2f}x), "
                  f"worst-stage CMEM residency {report.min_cmem_hit:4.0%}")
        for stage in reports[-1].stages:
            print(f"    stage {stage.stage}: "
                  f"{stage.weight_bytes / MIB:6.1f} MiB weights, "
                  f"{stage.latency_s * 1e3:6.2f} ms compute, "
                  f"{stage.inbound_transfer_s * 1e3:5.2f} ms ICI in")

    print("\nSuperlinear scaling is the CMEM story again: each chip's slice "
          "of the weights newly fits on-chip SRAM.")


if __name__ == "__main__":
    main()
