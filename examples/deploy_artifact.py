"""Ahead-of-time deployment: compile, ship an artifact, serve requests.

The production flow in miniature:

1. compile bert0 for TPUv4i and save the artifact (VLIW binary + JSON
   metadata) to disk;
2. a "serving host" loads it, checks the generation gate (a TPUv3 host
   must refuse it — Lesson 2 applies to files too);
3. an :class:`InferenceServer` answers requests with real output tensors
   *and* simulated latency/energy per batch.

Run:  python examples/deploy_artifact.py
"""

import tempfile
import pathlib

import numpy as np

from repro import TPUV3, TPUV4I, compile_model
from repro.runtime import InferenceServer, load_artifact, save_artifact
from repro.workloads import app_by_name


def main():
    spec = app_by_name("bert0")
    module = spec.build(batch=2)
    compiled = compile_model(module, TPUV4I)

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "bert0.tpu"
        save_artifact(compiled, path)
        size_kib = path.stat().st_size / 1024
        print(f"saved artifact: {path.name} ({size_kib:.1f} KiB)")

        artifact = load_artifact(path)
        print(f"loaded: model={artifact.metadata['model']} "
              f"compiler={artifact.metadata['compiler']} "
              f"weights={int(artifact.metadata['weight_bytes']) / 2**20:.0f} MiB")
        print(f"  runs on TPUv4i? {artifact.runs_on(TPUV4I)}")
        print(f"  runs on TPUv3?  {artifact.runs_on(TPUV3)} "
              "(generation gate: recompile, don't copy)")

    server = InferenceServer(module, TPUV4I)
    print(f"\nserver: {server.describe()}")
    ids = np.arange(2 * 128).reshape(2, 128) % 30522
    result = server.infer(inputs={"token.ids": ids})
    print(f"request served: output {result.output.shape}, "
          f"{result.latency_ms:.3f} ms, {result.energy_j * 1e3:.2f} mJ")
    again = server.infer(inputs={"token.ids": ids})
    print(f"bit-stable answers: {np.array_equal(result.output, again.output)} "
          "(Lesson 10 at the serving API)")


if __name__ == "__main__":
    main()
