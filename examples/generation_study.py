"""Three generations of lessons: run one model across TPUv1/v2/v3/v4i.

Demonstrates the compatibility story (Lesson 2 + 7 + 10) and the
perf/perf-per-watt/TCO trajectory (Lessons 1, 3, 8) on a single workload:

* the bf16 model compiles for v2/v3/v4i unchanged; TPUv1 needs an int8
  retarget (and the numerics report quantifies what that costs);
* binaries never move between generations — the graph does;
* each generation's chip-level throughput, power, and 3-year TCO.

Run:  python examples/generation_study.py
"""

from repro import (
    DesignPoint,
    GENERATIONS,
    TPUV3,
    TPUV4I,
    app_by_name,
    chip_tco,
    migrate_model,
    perf_per_tco,
)
from repro.mlcompat import check_numerics_match


def main():
    spec = app_by_name("cnn0")
    module = spec.build(spec.default_batch)
    print(f"workload: {spec.name} ({spec.description}), "
          f"batch {spec.default_batch}\n")

    print("-- migration matrix (from TPUv3, where the model was trained) --")
    for target in GENERATIONS:
        report = migrate_model(module, TPUV3, target)
        print(f"  -> {target.name:<7} binary ports: "
              f"{str(report.binary_portable):<5} "
              f"recompile: {str(report.recompiled):<5} "
              f"retarget: {report.retargeted_dtype or '-'}")

    print("\n-- numerics of each deployment path (vs TPUv3 training bits) --")
    for dtype in ("bf16", "int8"):
        check = check_numerics_match(TPUV3, TPUV4I, dtype)
        exact = "bit-exact" if check.bit_exact else f"{check.snr_db:.1f} dB SNR"
        print(f"  {dtype}: {exact}; est. quality loss "
              f"{check.est_quality_loss_pct:.2f} pp; "
              f"calibration needed: {check.needs_calibration}")

    print("\n-- chip-level evaluation across the bf16 generations --")
    header = (f"  {'chip':<8}{'qps':>10}{'power W':>10}{'qps/W':>10}"
              f"{'TCO $':>10}{'qps/TCO$':>10}")
    print(header)
    for chip in GENERATIONS:
        if not chip.supports_dtype("bf16"):
            continue  # TPUv1 runs the int8 retarget; see matrix above
        evaluation = DesignPoint(chip).evaluate(spec)
        tco = chip_tco(chip, evaluation.chip_power_w)
        print(f"  {chip.name:<8}{evaluation.chip_qps:>10.0f}"
              f"{evaluation.chip_power_w:>10.1f}"
              f"{evaluation.samples_per_joule:>10.1f}"
              f"{tco.total_usd:>10.0f}"
              f"{perf_per_tco(evaluation.chip_qps, tco):>10.2f}")

    print("\nThe inference chip wins exactly where it was designed to: "
          "perf/W and perf/TCO, inside an air-cooled server.")


if __name__ == "__main__":
    main()
