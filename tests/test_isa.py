"""Tests for the VLIW ISA: instructions, bundles, programs."""

import pytest

from repro.isa import (
    Bundle,
    Instruction,
    Opcode,
    Program,
    SlotClass,
    slot_layout_for_generation,
)


class TestInstruction:
    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MXM, (1, 2))  # needs 3
        with pytest.raises(ValueError):
            Instruction(Opcode.HALT, (1,))

    def test_negative_operand_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.VADD, (-5,))

    def test_slot_from_opcode(self):
        assert Instruction(Opcode.MXM, (1, 1, 1)).slot is SlotClass.MATRIX
        assert Instruction(Opcode.VEXP, (10,)).slot is SlotClass.VECTOR
        assert Instruction(Opcode.DMA_IN, (0, 1, 2)).slot is SlotClass.DMA

    def test_str(self):
        assert str(Instruction(Opcode.MXM, (8, 16, 32))) == "mxm 8, 16, 32"
        assert str(Instruction(Opcode.HALT)) == "halt"

    def test_mnemonic_lookup(self):
        assert Opcode.by_mnemonic("mxm") is Opcode.MXM
        with pytest.raises(KeyError):
            Opcode.by_mnemonic("bogus")


class TestBundle:
    def test_slot_usage(self):
        bundle = Bundle((Instruction(Opcode.MXM, (1, 1, 1)),
                         Instruction(Opcode.VADD, (8,))))
        usage = bundle.slot_usage()
        assert usage[SlotClass.MATRIX] == 1
        assert usage[SlotClass.VECTOR] == 1

    def test_gen1_rejects_two_matrix_ops(self):
        bundle = Bundle((Instruction(Opcode.MXM, (1, 1, 1)),
                         Instruction(Opcode.MXM, (2, 2, 2))))
        with pytest.raises(ValueError):
            bundle.validate_for(1)
        bundle.validate_for(4)  # gen4 has 2 matrix slots

    def test_layouts_grow_over_generations(self):
        g1 = slot_layout_for_generation(1)
        g4 = slot_layout_for_generation(4)
        assert sum(g4.values()) > sum(g1.values())

    def test_unknown_generation(self):
        with pytest.raises(KeyError):
            slot_layout_for_generation(5)

    def test_empty_bundle(self):
        assert Bundle().is_empty()
        assert str(Bundle()) == "nop"


class TestProgram:
    def _program(self):
        p = Program("test", generation=4)
        p.append(Bundle((Instruction(Opcode.DMA_IN, (0, 4096, 1)),)))
        p.append(Bundle((Instruction(Opcode.SYNC_WAIT, (1,)),
                         Instruction(Opcode.MXM, (64, 128, 128)))))
        p.append(Bundle((Instruction(Opcode.DMA_OUT, (0, 2048, 2)),
                         Instruction(Opcode.HALT))))
        return p

    def test_append_validates(self):
        p = Program("x", generation=1)
        with pytest.raises(ValueError):
            p.append(Bundle((Instruction(Opcode.MXM, (1, 1, 1)),
                             Instruction(Opcode.MXM, (1, 1, 1)))))

    def test_total_macs(self):
        assert self._program().total_macs() == 64 * 128 * 128

    def test_dma_bytes(self):
        assert self._program().dma_bytes() == (4096, 2048)

    def test_opcode_histogram(self):
        counts = self._program().count_opcodes()
        assert counts[Opcode.MXM] == 1
        assert counts[Opcode.DMA_IN] == 1

    def test_iteration_flattens(self):
        assert len(list(self._program().instructions())) == 5

    def test_slot_occupancy(self):
        occ = self._program().slot_occupancy()
        assert occ[SlotClass.DMA] == 2
        assert occ[SlotClass.SCALAR] == 1  # HALT

    def test_validate_passes(self):
        self._program().validate()
