"""Direct unit tests for the lowering and scheduling passes."""

import pytest

from repro.arch import TPUV3, TPUV4I
from repro.compiler import (
    expand_composites,
    lower_module,
    plan_fusion,
    plan_memory,
    release_by_name,
    schedule,
    LATEST,
)
from repro.graph import GraphBuilder, Shape
from repro.isa.instructions import LEVEL_IDS, Opcode

from tests.conftest import make_tiny_mlp

EARLY = release_by_name("v2020.1")
WITH_CMEM = release_by_name("v2020.2")


def lower(module, chip=TPUV4I, version=LATEST, cmem_budget=None):
    expanded = expand_composites(module)
    fusion = plan_fusion(expanded, enabled=version.has("fusion"))
    memory = plan_memory(expanded, chip, cmem_budget_bytes=cmem_budget,
                         use_cmem=version.has("cmem_alloc"))
    return expanded, lower_module(expanded, fusion, memory, chip, version)


def all_instructions(lowered):
    out = []
    for op in lowered:
        out.extend(op.all_instructions())
    return out


class TestMatmulLowering:
    def test_weights_stream_from_cmem_when_resident(self, tiny_mlp):
        _, lowered = lower(tiny_mlp)
        loads = [i for i in all_instructions(lowered)
                 if i.opcode is Opcode.DMA_IN]
        levels = {i.args[0] for i in loads}
        assert LEVEL_IDS["cmem"] in levels  # weights
        assert LEVEL_IDS["hbm"] in levels   # request input

    def test_weights_stream_from_hbm_without_cmem_alloc(self, tiny_mlp):
        _, lowered = lower(tiny_mlp, version=EARLY)
        loads = [i for i in all_instructions(lowered)
                 if i.opcode is Opcode.DMA_IN]
        assert all(i.args[0] == LEVEL_IDS["hbm"] for i in loads)

    def test_every_mxm_preceded_by_wait_when_data_is_remote(self, tiny_mlp):
        _, lowered = lower(tiny_mlp)
        for op in lowered:
            body_ops = [i.opcode for i in op.body]
            if Opcode.MXM in body_ops:
                first_mxm = body_ops.index(Opcode.MXM)
                assert Opcode.SYNC_WAIT in body_ops[:first_mxm]

    def test_mxm_dims_match_module(self, tiny_mlp):
        _, lowered = lower(tiny_mlp)
        mxms = [i for i in all_instructions(lowered)
                if i.opcode is Opcode.MXM]
        macs = sum(m * k * n for m, k, n in (i.args for i in mxms))
        expected = 4 * 256 * 128 + 4 * 128 * 16
        assert macs == expected

    def test_prefetch_hoists_dmas_to_prologue(self, tiny_mlp):
        _, eager = lower(tiny_mlp, version=LATEST)
        _, sync = lower(tiny_mlp, version=WITH_CMEM)  # no prefetch yet
        eager_prologue_dmas = sum(
            1 for op in eager for i in op.prologue
            if i.opcode is Opcode.DMA_IN)
        sync_prologue_dmas = sum(
            1 for op in sync for i in op.prologue
            if i.opcode is Opcode.DMA_IN)
        assert eager_prologue_dmas > sync_prologue_dmas

    def test_synchronous_dma_waits_immediately(self, tiny_mlp):
        _, lowered = lower(tiny_mlp, version=EARLY)
        for op in lowered:
            body = op.body
            for index, inst in enumerate(body):
                if inst.opcode is Opcode.DMA_IN:
                    assert body[index + 1].opcode is Opcode.SYNC_WAIT
                    assert body[index + 1].args == (inst.args[2],)


class TestConvAndGather:
    def test_conv_lowering_im2col_dims(self):
        b = GraphBuilder("conv")
        x = b.parameter(Shape((2, 16, 16, 32)))
        f = b.constant(Shape((3, 3, 32, 64)))
        b.conv2d(x, f)
        _, lowered = lower(b.build())
        mxms = [i for i in all_instructions(lowered)
                if i.opcode is Opcode.MXM]
        macs = sum(m * k * n for m, k, n in (i.args for i in mxms))
        assert macs == 2 * 16 * 16 * 9 * 32 * 64

    def test_gather_reads_touched_rows_with_burst_padding(self):
        b = GraphBuilder("emb")
        table = b.constant(Shape((1_000_000, 64)))  # 122 MiB table
        ids = b.parameter(Shape((8, 4), "int32"))
        b.embedding_lookup(table, ids)
        _, lowered = lower(b.build(), cmem_budget=0)
        loads = [i for i in all_instructions(lowered)
                 if i.opcode is Opcode.DMA_IN]
        # 32 rows of 128 B each pad to the 256 B DRAM burst.
        gathered = 8 * 4 * 256
        assert any(i.args[1] == gathered for i in loads)
        assert all(i.args[1] < 1_000_000 for i in loads)

    def test_wide_gather_rows_not_padded(self):
        b = GraphBuilder("emb")
        table = b.constant(Shape((10_000, 256)))  # 512 B rows > burst
        ids = b.parameter(Shape((4, 2), "int32"))
        b.embedding_lookup(table, ids)
        _, lowered = lower(b.build(), cmem_budget=0)
        loads = [i for i in all_instructions(lowered)
                 if i.opcode is Opcode.DMA_IN]
        assert any(i.args[1] == 4 * 2 * 256 * 2 for i in loads)

    def test_batched_dot_emits_one_mxm_per_batch(self):
        b = GraphBuilder("attn")
        q = b.parameter(Shape((24, 64, 32)))
        k = b.parameter(Shape((24, 32, 64)))
        b.batched_dot(q, k)
        _, lowered = lower(b.build())
        mxms = [i for i in all_instructions(lowered)
                if i.opcode is Opcode.MXM]
        assert len(mxms) == 24
        assert all(i.args == (64, 32, 64) for i in mxms)


class TestMaterialization:
    def _big_chain(self):
        b = GraphBuilder("chain")
        x = b.parameter(Shape((64, 65536)))  # 8 MiB tensor
        y = b.exp(x)
        b.tanh(y)
        return b.build()

    def test_no_fusion_materializes_large_intermediates(self):
        module = self._big_chain()
        _, lowered = lower(module, version=WITH_CMEM)  # fusion off
        stores = [i for i in all_instructions(lowered)
                  if i.opcode is Opcode.DMA_OUT]
        assert len(stores) >= 2  # exp materializes + root store

    def test_fusion_eliminates_materialization(self):
        module = self._big_chain()
        version = release_by_name("v2020.3")  # fusion on, no prefetch
        _, lowered = lower(module, version=version)
        stores = [i for i in all_instructions(lowered)
                  if i.opcode is Opcode.DMA_OUT]
        assert len(stores) == 1  # only the root store remains


class TestScheduler:
    def test_dense_packing_respects_slots(self, tiny_mlp):
        _, lowered = lower(tiny_mlp)
        program = schedule(lowered, "t", 4, LATEST)
        program.validate()

    def test_sparse_packing_one_per_bundle(self, tiny_mlp):
        _, lowered = lower(tiny_mlp, version=EARLY)
        program = schedule(lowered, "t", 4, EARLY)
        assert all(len(b.instructions) == 1 for b in program.bundles)

    def test_halt_is_last(self, tiny_mlp):
        _, lowered = lower(tiny_mlp)
        program = schedule(lowered, "t", 4, LATEST)
        assert list(program.instructions())[-1].opcode is Opcode.HALT

    def test_order_preserved(self, tiny_mlp):
        _, lowered = lower(tiny_mlp)
        flat = [i for op in lowered for i in op.all_instructions()]
        program = schedule(lowered, "t", 4, LATEST)
        scheduled = [i for i in program.instructions()
                     if i.opcode is not Opcode.HALT]
        assert scheduled == flat

    def test_cross_generation_scheduling(self, tiny_mlp):
        for chip in (TPUV3, TPUV4I):
            _, lowered = lower(tiny_mlp, chip=chip)
            program = schedule(lowered, "t", chip.generation, LATEST)
            program.validate()
