"""Tests for the assembler/disassembler."""

import pytest

from repro.isa import Opcode, assemble, disassemble
from repro.isa.assembler import AssemblyError

GOOD = """
.program kernel gen 4
# stage weights, then compute
dma.in 1, 65536, 0 ; mxm.loadw 128, 128
sync.wait 0
mxm 256, 128, 128 ; vrelu 32768
halt
"""


class TestAssemble:
    def test_parses_program(self):
        p = assemble(GOOD)
        assert p.name == "kernel"
        assert p.generation == 4
        assert len(p.bundles) == 4

    def test_multi_instruction_bundle(self):
        p = assemble(GOOD)
        assert len(p.bundles[0].instructions) == 2

    def test_comments_and_blanks_ignored(self):
        p = assemble(".program x gen 2\n\n# nothing\nhalt\n")
        assert len(p.bundles) == 1

    def test_hex_operands(self):
        p = assemble(".program x gen 4\nvadd 0x100\n")
        inst = p.bundles[0].instructions[0]
        assert inst.args == (256,)

    def test_roundtrip(self):
        p = assemble(GOOD)
        assert disassemble(assemble(disassemble(p))) == disassemble(p)


class TestErrors:
    def test_missing_directive(self):
        with pytest.raises(AssemblyError, match="directive"):
            assemble("halt\n")

    def test_duplicate_directive(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble(".program a gen 4\n.program b gen 4\n")

    def test_bad_directive_shape(self):
        with pytest.raises(AssemblyError):
            assemble(".program a\nhalt\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble(".program x gen 4\nfrobnicate 1\n")

    def test_bad_operand(self):
        with pytest.raises(AssemblyError, match="not an integer"):
            assemble(".program x gen 4\nvadd banana\n")

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError):
            assemble(".program x gen 4\nmxm 1, 2\n")

    def test_slot_oversubscription(self):
        with pytest.raises(AssemblyError):
            assemble(".program x gen 1\nmxm 1, 1, 1 ; mxm 2, 2, 2\n")

    def test_empty_input(self):
        with pytest.raises(AssemblyError):
            assemble("")
