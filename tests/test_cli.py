"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_chips(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        assert "TPUv4i" in out and "TPUv1" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "bert0" in out and "SLO" in out

    def test_evaluate(self, capsys):
        assert main(["evaluate", "--app", "cnn0", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "TCO" in out

    def test_evaluate_unknown_app_fails_cleanly(self, capsys):
        assert main(["evaluate", "--app", "gpt5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_evaluate_unknown_chip_fails_cleanly(self, capsys):
        assert main(["evaluate", "--app", "cnn0", "--chip", "TPUv9"]) == 2
        assert "error" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "--app", "cnn0", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "TPUv2" in out and "TPUv4i" in out

    def test_migrate(self, capsys):
        assert main(["migrate", "--app", "cnn0", "--source", "TPUv3",
                     "--target", "TPUv4i"]) == 0
        out = capsys.readouterr().out
        assert "binary portable: False" in out
        assert "recompiled:      True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestDump:
    def test_dump_hlo(self, capsys):
        assert main(["dump", "--app", "cnn0", "--batch", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("hlo_module cnn0")
        assert "conv2d" in out

    def test_dump_asm(self, capsys):
        assert main(["dump", "--app", "cnn0", "--batch", "1",
                     "--format", "asm"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(".program cnn0 gen 4")
        assert "mxm" in out

    def test_dump_hlo_roundtrips(self, capsys):
        from repro.graph import module_from_text

        main(["dump", "--app", "rnn0", "--batch", "1"])
        text = capsys.readouterr().out
        module = module_from_text(text)
        assert module.name == "rnn0"

    def test_dump_asm_reassembles(self, capsys):
        from repro.isa import assemble

        main(["dump", "--app", "cnn0", "--batch", "1", "--format", "asm"])
        text = capsys.readouterr().out
        program = assemble(text)
        assert program.generation == 4
        assert program.total_macs() > 0


class TestProfile:
    def test_profile_command(self, capsys):
        assert main(["profile", "--app", "cnn0", "--batch", "2",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "split:" in out
        assert "simulated latency" in out


class TestTraceCommand:
    def test_trace_writes_deterministic_json(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["trace", "mlp0", "TPUv4i", "--batch", "2",
                     "--out", str(first)]) == 0
        assert main(["trace", "mlp0", "TPUv4i", "--batch", "2",
                     "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        payload = json.loads(first.read_text())
        assert payload["otherData"]["truncated"] is False
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])
        out = capsys.readouterr().out
        assert "mxu busy" in out

    def test_trace_accepts_aliases(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert main(["trace", "resnet50", "tpuv4i", "--batch", "1",
                     "--no-serve", "--out", str(out_path)]) == 0
        assert "cnn0 on TPUv4i" in capsys.readouterr().out

    def test_trace_unknown_app_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", "gpt5", "TPUv4i",
                     "--out", str(tmp_path / "x.json")]) == 2
        err = capsys.readouterr().err
        assert "unknown app" in err and "resnet50" in err


class TestMetricsCommand:
    def test_metrics_reports_tiers_and_counters(self, capsys):
        assert main(["metrics", "--app", "mlp0", "--batch", "2",
                     "--duration", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "wall-time tiers" in out
        assert "serving.requests_served" in out
        assert "tier.compile_s" in out

    def test_metrics_leaves_registry_disabled(self):
        from repro.obs import metrics as global_metrics

        main(["metrics", "--app", "mlp0", "--batch", "2",
              "--duration", "0.02"])
        assert not global_metrics().enabled


class TestFaultsCommand:
    def test_faults_reports_lost_capacity_column(self, capsys):
        assert main(["faults", "--seed", "1", "--duration", "0.2",
                     "--apps", "cnn0"]) == 0
        out = capsys.readouterr().out
        assert "capacity down %" in out
        assert "p99 faulted" in out
        assert "TPUv4i" in out

    def test_faults_rejects_bad_duration(self, capsys):
        assert main(["faults", "--duration", "-1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestClusterCommand:
    def test_cluster_runs_and_reports_columns(self, capsys):
        assert main(["cluster", "--seed", "3", "--duration", "0.1",
                     "--apps", "cnn0"]) == 0
        out = capsys.readouterr().out
        for column in ("scenario", "policy", "avail %", "shed %",
                       "p99 ms", "hedged", "ejected", "failover",
                       "degraded s"):
            assert column in out
        for scenario in ("faultless", "kill-1", "chip-outages",
                         "slowdowns", "overload"):
            assert scenario in out
        assert "resilient" in out and "static" in out

    def test_cluster_output_byte_identical_across_runs(self, capsys):
        args = ["cluster", "--seed", "3", "--duration", "0.1",
                "--apps", "cnn0"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_cluster_rejects_bad_replicas(self, capsys):
        assert main(["cluster", "--replicas", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPodCommand:
    def test_pod_runs_and_reports_columns(self, capsys):
        assert main(["pod", "--seed", "3", "--duration", "0.1",
                     "--apps", "cnn0"]) == 0
        out = capsys.readouterr().out
        for column in ("topology", "scenario", "policy", "avail %",
                       "p99 ms", "ejected", "failover"):
            assert column in out
        for scenario in ("faultless", "kill-1-link", "kill-1-chip",
                         "ocs-reconfig-race", "link-slowdown"):
            assert scenario in out
        assert "torus" in out and "ocs" in out

    def test_pod_output_byte_identical_across_runs(self, capsys):
        args = ["pod", "--seed", "3", "--duration", "0.1",
                "--apps", "cnn0"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_pod_rejects_bad_arguments(self, capsys):
        assert main(["pod", "--slices", "1"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["pod", "--slice-chips", "1"]) == 2
        assert "error:" in capsys.readouterr().err
