"""Tests for expansion, fusion, allocation, tiling, and versions."""

import pytest

from repro.arch import TPUV3, TPUV4I
from repro.compiler import (
    RELEASES,
    LATEST,
    expand_composites,
    plan_fusion,
    plan_memory,
    plan_matmul_tiles,
    release_by_name,
)
from repro.compiler.allocator import weight_load_bytes
from repro.compiler.versions import ALL_FEATURES, CompilerVersion
from repro.graph import GraphBuilder, Shape
from repro.util.units import MIB

from tests.conftest import make_tiny_mlp


def softmax_module():
    b = GraphBuilder("sm")
    x = b.parameter(Shape((8, 128)))
    b.softmax(x)
    return b.build()


class TestExpansion:
    def test_softmax_becomes_primitives(self):
        out = expand_composites(softmax_module())
        ops = {i.opcode for i in out.instructions}
        assert "softmax" not in ops
        assert {"reduce_max", "sub", "exp", "reduce_sum", "div"} <= ops

    def test_layernorm_adds_gamma_beta(self):
        b = GraphBuilder("ln")
        x = b.parameter(Shape((8, 128)))
        b.layernorm(x)
        out = expand_composites(b.build())
        consts = [i for i in out.instructions if i.opcode == "constant"]
        assert len(consts) == 2  # gamma and beta

    def test_shapes_preserved(self):
        out = expand_composites(softmax_module())
        assert out.root.shape.dims == (8, 128)

    def test_noop_on_composite_free_module(self, tiny_mlp):
        out = expand_composites(tiny_mlp)
        assert [i.opcode for i in out.instructions] == [
            i.opcode for i in tiny_mlp.instructions]

    def test_flops_increase_with_expansion(self):
        src = softmax_module()
        out = expand_composites(src)
        assert out.total_flops() > 0
        assert out.validate() is None


class TestFusion:
    def test_relu_fuses_into_dot(self, tiny_mlp):
        plan = plan_fusion(tiny_mlp)
        dots = tiny_mlp.instructions_of_kind("matmul")
        relus = [i for i in tiny_mlp.instructions if i.opcode == "relu"]
        assert plan.group_of[relus[0].uid] == plan.group_of[dots[0].uid]

    def test_disabled_gives_singletons(self, tiny_mlp):
        plan = plan_fusion(tiny_mlp, enabled=False)
        assert plan.fused_op_count() == 0
        assert len(plan.members) == len(tiny_mlp.instructions)

    def test_multi_consumer_producer_not_fused(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((8, 128)))
        w = b.constant(Shape((128, 128)))
        y = b.dot(x, w)
        r1 = b.relu(y)
        r2 = b.tanh(y)  # second consumer of y
        module = b.build()
        plan = plan_fusion(module)
        assert plan.group_of[r1.uid] != plan.group_of[y.uid]
        assert plan.group_of[r2.uid] != plan.group_of[y.uid]

    def test_never_fuses_into_data(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((8, 128)))
        r = b.relu(x)
        plan = plan_fusion(b.build())
        assert plan.group_of[r.uid] != plan.group_of[x.uid]

    def test_chain_fuses_transitively(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((8, 128)))
        w = b.constant(Shape((128, 128)))
        out = b.gelu(b.relu(b.dot(x, w)))
        plan = plan_fusion(b.build())
        gids = {plan.group_of[i] for i in (out.uid, out.operands[0].uid,
                                           out.operands[0].operands[0].uid)}
        assert len(gids) == 1


class TestAllocator:
    def test_small_weights_all_in_cmem(self, tiny_mlp):
        plan = plan_memory(tiny_mlp, TPUV4I)
        assert plan.cmem_hit_fraction == 1.0

    def test_budget_zero_forces_hbm(self, tiny_mlp):
        plan = plan_memory(tiny_mlp, TPUV4I, cmem_budget_bytes=0)
        assert plan.cmem_weight_bytes == 0
        assert plan.hbm_weight_bytes == tiny_mlp.total_weight_bytes()

    def test_no_cmem_chip(self, tiny_mlp):
        plan = plan_memory(tiny_mlp, TPUV3)
        assert plan.cmem_weight_bytes == 0

    def test_partial_fit_packs_greedily(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((8, 4096)))
        big = b.constant(Shape((4096, 8192)), "big")      # 64 MiB
        huge = b.constant(Shape((8192, 8192)), "huge")    # 128 MiB
        b.dot(b.dot(x, big), huge)
        module = b.build()
        plan = plan_memory(module, TPUV4I, cmem_budget_bytes=100 * MIB)
        assert plan.home_of(big.uid) == "cmem"
        assert plan.home_of(huge.uid) == "hbm"

    def test_budget_cannot_exceed_physical(self, tiny_mlp):
        plan = plan_memory(tiny_mlp, TPUV4I, cmem_budget_bytes=4096 * MIB)
        assert plan.cmem_budget_bytes <= TPUV4I.cmem_bytes

    def test_weight_load_bytes_split(self, tiny_mlp):
        plan = plan_memory(tiny_mlp, TPUV4I)
        cmem, hbm = weight_load_bytes(tiny_mlp, plan)
        assert cmem == tiny_mlp.total_weight_bytes()
        assert hbm == 0

    def test_negative_budget_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            plan_memory(tiny_mlp, TPUV4I, cmem_budget_bytes=-1)


class TestTiling:
    def test_tiles_cover_m(self):
        tiles = plan_matmul_tiles(10_000, 1024, 1024, TPUV4I,
                                  vmem_budget=8 * MIB)
        assert sum(t.rows for t in tiles) == 10_000

    def test_good_tiling_fewer_tiles(self):
        good = plan_matmul_tiles(8192, 1024, 1024, TPUV4I, vmem_budget=8 * MIB)
        naive = plan_matmul_tiles(8192, 1024, 1024, TPUV4I,
                                  vmem_budget=8 * MIB, good_tiling=False)
        assert len(good) < len(naive)

    def test_small_m_single_tile(self):
        tiles = plan_matmul_tiles(16, 1024, 1024, TPUV4I, vmem_budget=8 * MIB)
        assert len(tiles) == 1
        assert tiles[0].rows == 16

    def test_chunk_fits_budget(self):
        budget = 8 * MIB
        tiles = plan_matmul_tiles(100_000, 2048, 2048, TPUV4I,
                                  vmem_budget=budget)
        t = tiles[0]
        working = (t.input_bytes(2) + t.output_bytes(2)
                   + 2048 * 128 * 2)  # one weight panel
        assert working <= budget

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            plan_matmul_tiles(0, 1, 1, TPUV4I, vmem_budget=1 * MIB)


class TestVersions:
    def test_latest_has_everything(self):
        assert LATEST.features == ALL_FEATURES

    def test_first_release_has_nothing(self):
        assert not RELEASES[0].features

    def test_features_only_accumulate(self):
        for older, newer in zip(RELEASES, RELEASES[1:]):
            assert older.features <= newer.features
            assert older.months_after_launch < newer.months_after_launch

    def test_lookup(self):
        assert release_by_name("v2021.2") is LATEST
        with pytest.raises(KeyError):
            release_by_name("v1999.1")

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            CompilerVersion("bad", 0, frozenset({"agi"}))
        with pytest.raises(KeyError):
            LATEST.has("agi")
