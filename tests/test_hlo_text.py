"""Tests for the textual HLO format."""

import pytest

from repro.graph import (
    GraphBuilder,
    HloTextError,
    Shape,
    module_from_text,
    module_to_text,
)
from repro.workloads import PRODUCTION_APPS, app_by_name

from tests.conftest import make_tiny_mlp


class TestRoundTrip:
    def test_tiny_mlp(self, tiny_mlp):
        text = module_to_text(tiny_mlp)
        restored = module_from_text(text)
        assert module_to_text(restored) == text
        assert restored.total_flops() == tiny_mlp.total_flops()
        assert restored.root.uid == tiny_mlp.root.uid

    def test_attrs_survive(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((2, 8, 8, 4)), "img")
        f = b.constant(Shape((3, 3, 4, 8)), "filt")
        b.conv2d(x, f, stride=2, padding="valid")
        restored = module_from_text(module_to_text(b.build()))
        conv = restored.instructions[-1]
        assert conv.attr("stride") == 2
        assert conv.attr("padding") == "valid"

    def test_tuple_attrs_survive(self):
        b = GraphBuilder("m")
        x = b.parameter(Shape((2, 3, 4)))
        b.transpose(x, (2, 0, 1))
        restored = module_from_text(module_to_text(b.build()))
        assert restored.instructions[-1].attr("perm") == (2, 0, 1)

    def test_every_production_app_roundtrips(self):
        for spec in PRODUCTION_APPS:
            module = spec.build(1)
            text = module_to_text(module)
            restored = module_from_text(text)
            assert module_to_text(restored) == text

    def test_parsed_module_compiles(self):
        from repro.arch import TPUV4I
        from repro.compiler import compile_model

        module = module_from_text(module_to_text(app_by_name("cnn0").build(1)))
        compiled = compile_model(module, TPUV4I)
        assert len(compiled.program) > 0

    def test_comments_and_blank_lines_ignored(self):
        text = """
# a comment
hlo_module tiny {

  %0 = parameter() : bf16[2,2] "x"  # trailing comment
  %1 = relu(%0) : bf16[2,2]
  root %1
}
"""
        module = module_from_text(text)
        assert module.name == "tiny"
        assert len(module.instructions) == 2


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(HloTextError, match="hlo_module"):
            module_from_text("%0 = parameter() : bf16[1]\n")

    def test_missing_close(self):
        with pytest.raises(HloTextError, match="closing"):
            module_from_text("hlo_module m {\n  %0 = parameter() : bf16[1]\n")

    def test_unknown_opcode(self):
        with pytest.raises(HloTextError, match="line 2"):
            module_from_text(
                "hlo_module m {\n  %0 = quantum() : bf16[1]\n}\n")

    def test_forward_reference(self):
        with pytest.raises(HloTextError, match="before definition"):
            module_from_text(
                "hlo_module m {\n  %0 = relu(%1) : bf16[1]\n}\n")

    def test_uid_gap(self):
        with pytest.raises(HloTextError, match="expected %0"):
            module_from_text(
                "hlo_module m {\n  %5 = parameter() : bf16[1]\n}\n")

    def test_undefined_root(self):
        with pytest.raises(HloTextError, match="root"):
            module_from_text(
                "hlo_module m {\n  %0 = parameter() : bf16[1]\n  root %9\n}\n")

    def test_bad_dtype(self):
        with pytest.raises(HloTextError):
            module_from_text(
                "hlo_module m {\n  %0 = parameter() : fp64[1]\n}\n")

    def test_content_after_close(self):
        with pytest.raises(HloTextError, match="after closing"):
            module_from_text(
                "hlo_module m {\n  %0 = parameter() : bf16[1]\n}\nextra\n")

    def test_garbled_line(self):
        with pytest.raises(HloTextError, match="cannot parse"):
            module_from_text("hlo_module m {\n  banana\n}\n")
