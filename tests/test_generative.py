"""Tests for generative workloads + continuous batching (ISSUE 9).

Covers the phase builders (prefill vs decode graph structure and KV
ledger), the roofline claim (decode memory-bound on all four
generations), phase-aware cache keys (prefill/decode priced separately,
legacy keys unchanged), the seeded request sampler, and the
continuous-batching event loop's edge cases: single request, over-long
request, all-slots-busy stall, mid-decode outage under the retry
budget, and zero-request simulate.
"""

import math

import pytest

from repro.arch import GENERATIONS, TPUV4I
from repro.core.design_point import shared_design_point
from repro.faults.model import FaultModel, FaultSchedule
from repro.serving import (
    BatchPolicy,
    ContinuousBatchingSimulator,
    ContinuousStats,
    GenerativeSlo,
    llm_sweep,
)
from repro.util.units import MIB
from repro.workloads import (
    GENERATIVE_APPS,
    GenRequest,
    GenerativeSpec,
    generative_by_name,
    sample_gen_requests,
)

LLM0 = generative_by_name("llm0")
LLM1 = generative_by_name("llm1")


def make_sim(spec=LLM0, slots=None, max_decode_len=None,
             prefill_s=0.004, decode_s=0.001):
    """A simulator on TPUv4i with synthetic seeded step latencies."""
    sim = ContinuousBatchingSimulator(
        shared_design_point(TPUV4I), spec, slots=slots,
        max_decode_len=max_decode_len)
    table = {}
    for bucket in spec.prompt_buckets:
        table[("prefill", bucket, 1)] = prefill_s
    for bucket in spec.kv_buckets:
        for step in BatchPolicy.batch_steps(sim.slots):
            table[("decode", bucket, step)] = decode_s
    sim.seed_latencies(table)
    return sim


class TestGenerativeSpec:
    def test_registry(self):
        assert [g.name for g in GENERATIVE_APPS] == ["llm0", "llm1"]
        with pytest.raises(KeyError, match="unknown generative model"):
            generative_by_name("gpt9")

    def test_bucket_lookup_saturates(self):
        assert LLM0.prompt_bucket(1) == 64
        assert LLM0.prompt_bucket(65) == 128
        assert LLM0.prompt_bucket(9999) == 128  # saturates at the largest
        assert LLM0.kv_bucket(0) == 128
        assert LLM0.kv_bucket(129) == 256
        assert LLM0.kv_bucket(9999) == 512

    def test_kv_cache_bytes_formula(self):
        # K and V, every layer, bf16: 2 * layers * kv * hidden * 2 bytes.
        assert (LLM0.kv_cache_bytes(128)
                == 2 * LLM0.layers * 128 * LLM0.hidden * 2)
        assert LLM0.kv_cache_bytes(128, batch=4) == 4 * LLM0.kv_cache_bytes(128)

    def test_weight_footprints_straddle_cmem(self):
        """llm0 fits TPUv4i's 128 MiB CMEM; llm1 deliberately exceeds it."""
        assert LLM0.weight_mib() * MIB < TPUV4I.cmem_bytes
        assert LLM1.weight_mib() * MIB > TPUV4I.cmem_bytes

    def test_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            GenerativeSpec("bad", layers=2, hidden=100, heads=3, vocab=1000)
        with pytest.raises(ValueError, match="ascending"):
            GenerativeSpec("bad", layers=2, hidden=64, heads=2, vocab=1000,
                           prompt_buckets=(128, 64))
        with pytest.raises(ValueError, match="cover"):
            GenerativeSpec("bad", layers=2, hidden=64, heads=2, vocab=1000,
                           prompt_buckets=(64,), kv_buckets=(64,),
                           max_decode_len=32)


class TestPhaseBuilders:
    def test_prefill_emits_first_token_logits(self):
        module = LLM0.prefill(64).build(4)
        assert tuple(module.root.shape.dims) == (4, LLM0.vocab)

    def test_decode_emits_next_token_logits(self):
        module = LLM0.decode(128).build(8)
        assert tuple(module.root.shape.dims) == (8, LLM0.vocab)

    def test_decode_kv_parameters_match_ledger(self):
        """The cache tensors are parameters whose bytes are exactly the
        KV footprint — the quantity the HBM ledger prices per step."""
        module = LLM0.decode(256).build(2)
        kv_params = [i for i in module.instructions
                     if i.opcode == "parameter" and "cache" in i.name]
        assert len(kv_params) == 2 * LLM0.layers  # K and V per layer
        kv_bytes = sum(i.shape.byte_size for i in kv_params)
        assert kv_bytes == LLM0.kv_cache_bytes(256, batch=2)

    def test_both_phases_share_weights(self):
        assert (LLM0.prefill(64).build(1).total_weight_bytes()
                == LLM0.decode(128).build(1).total_weight_bytes())

    def test_phase_specs_memoized(self):
        assert LLM0.decode(128) is LLM0.decode(128)
        assert LLM0.prefill(64) is not LLM0.decode(128)

    def test_unknown_bucket_rejected(self):
        from repro.workloads.generative import _phase_spec
        with pytest.raises(ValueError, match="not a KV bucket"):
            _phase_spec(LLM0, "decode", 100)
        with pytest.raises(ValueError, match="phase"):
            _phase_spec(LLM0, "train", 128)


class TestRooflines:
    def test_decode_memory_bound_on_every_generation(self):
        """The acceptance criterion: decode operational intensity sits
        left of the ridge point on all four TPU generations at the
        continuous-batching slot count."""
        for spec in GENERATIVE_APPS:
            policy = BatchPolicy(max_batch=spec.default_slots, max_wait_s=0.0)
            batch = policy.padded_size(spec.default_slots)
            for bucket in spec.kv_buckets:
                oi = spec.decode(bucket).ops_per_byte(batch)
                for chip in GENERATIONS:
                    assert oi < chip.ridge_ops_per_byte(), (
                        f"{spec.name} decode@{bucket} OI {oi:.1f} not "
                        f"memory-bound on {chip.name}")

    def test_prefill_is_the_compute_bound_phase(self):
        """Prefill amortizes weights over the whole prompt, decode over
        one token: at equal batch the intensities are far apart, and
        prefill clears TPUv4i's ridge at the serving batch."""
        prefill_oi = LLM0.prefill(64).ops_per_byte(8)
        decode_oi = LLM0.decode(128).ops_per_byte(8)
        assert prefill_oi > 10 * decode_oi
        assert prefill_oi > TPUV4I.ridge_ops_per_byte()

    def test_decode_intensity_falls_with_kv_depth(self):
        shallow = LLM0.decode(128).ops_per_byte(8)
        deep = LLM0.decode(512).ops_per_byte(8)
        assert deep < shallow


class TestPhasePricing:
    def test_phases_priced_separately(self):
        point = shared_design_point(TPUV4I)
        prefill_s = point.latency_s(LLM0.prefill(64), 1)
        decode_s = point.latency_s(LLM0.decode(128), 1)
        assert prefill_s != decode_s

    def test_decode_latency_grows_with_kv_bucket(self):
        point = shared_design_point(TPUV4I)
        assert (point.latency_s(LLM0.decode(512), 8)
                > point.latency_s(LLM0.decode(128), 8))

    def test_cache_keys_carry_phase(self):
        """Prefill and decode results can never alias in the EvalCache,
        and a PhaseSpec key differs from a plain spec of the same name."""
        from repro.workloads.models import WorkloadSpec
        point = shared_design_point(TPUV4I)
        prefill_key = point.result_key(LLM0.prefill(64), 4)
        decode_key = point.result_key(LLM0.decode(128), 4)
        assert prefill_key != decode_key
        plain = WorkloadSpec(
            name=LLM0.decode(128).name, category="Generative",
            build=LLM0.decode(128).build, slo_ms=1.0, default_batch=1,
            nonlinearity="gelu", description="")
        assert point.result_key(plain, 4) != decode_key

    def test_legacy_keys_unchanged(self):
        """A spec without phase fields produces the pre-generative key
        bytes — on-disk caches stay reachable."""
        from repro.engine.keys import eval_key
        from repro.workloads.models import app_by_name
        point = shared_design_point(TPUV4I)
        spec = app_by_name("cnn0")
        assert point.result_key(spec, 4) == eval_key(
            "sim", point.chip_fp, point.compiler_fp, "cnn0", 4, None, "bf16")


class TestSampleRequests:
    def test_deterministic(self):
        a = sample_gen_requests(LLM0, seed=3, rate_qps=500, duration_s=1.0)
        b = sample_gen_requests(LLM0, seed=3, rate_qps=500, duration_s=1.0)
        assert a == b
        c = sample_gen_requests(LLM0, seed=4, rate_qps=500, duration_s=1.0)
        assert a != c

    def test_prompts_clipped_decode_unclipped(self):
        reqs = sample_gen_requests(LLM0, seed=1, rate_qps=2000,
                                   duration_s=1.0)
        assert reqs
        assert all(1 <= r.prompt_len <= LLM0.max_prompt for r in reqs)
        assert all(r.decode_len >= 1 for r in reqs)
        # The sampler does NOT clip decode lengths: over-long requests
        # exist and the serving loop truncates them at max_decode_len.
        assert any(r.decode_len > LLM0.max_decode_len for r in reqs)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            GenRequest(-1.0, 10, 10)
        with pytest.raises(ValueError):
            GenRequest(0.0, 0, 10)
        with pytest.raises(ValueError):
            GenRequest(0.0, 10, 0)

    def test_request_validation_names_the_value(self):
        """Rejections name the offending field and echo the value, so a
        bad workload file points straight at its own bug."""
        with pytest.raises(ValueError, match="arrival_s.*-1.0"):
            GenRequest(-1.0, 10, 10)
        with pytest.raises(ValueError, match="arrival_s must not be NaN"):
            GenRequest(float("nan"), 10, 10)
        with pytest.raises(ValueError, match="prompt_len.*got 0"):
            GenRequest(0.0, 0, 10)
        with pytest.raises(ValueError, match="decode_len.*got -3"):
            GenRequest(0.0, 10, -3)

    def test_spec_validation_names_the_value(self):
        def spec(**overrides):
            kwargs = dict(name="bad", layers=4, hidden=256, heads=4,
                          vocab=1000, mean_prompt=64.0, mean_decode=16.0,
                          slo_ttft_ms=100.0, slo_per_token_ms=20.0)
            kwargs.update(overrides)
            return GenerativeSpec(**kwargs)

        with pytest.raises(ValueError, match="mean_prompt must not be NaN"):
            spec(mean_prompt=float("nan"))
        with pytest.raises(ValueError, match="mean_decode.*got 0"):
            spec(mean_decode=0.0)
        with pytest.raises(ValueError, match="slo_ttft_ms.*got -5"):
            spec(slo_ttft_ms=-5.0)
        with pytest.raises(ValueError,
                           match="slo_per_token_ms must not be NaN"):
            spec(slo_per_token_ms=float("nan"))
        with pytest.raises(ValueError, match="default_slots.*got 0"):
            spec(default_slots=0)


class TestContinuousBatching:
    def test_zero_requests_is_quiet_window(self):
        stats = make_sim().simulate([])
        assert stats.requests == 0
        assert stats.served_requests == 0
        assert stats.tokens_generated == 0
        assert stats.tokens_per_s == 0.0
        assert stats.availability == 1.0

    def test_single_request(self):
        sim = make_sim(prefill_s=0.004, decode_s=0.001)
        stats = sim.simulate([GenRequest(0.0, 10, 5)])
        assert stats.requests == 1
        assert stats.served_requests == 1
        assert stats.tokens_generated == 5
        # Prefill emits the first token; TTFT is its completion.
        assert stats.ttft_p99_s == pytest.approx(0.004)
        assert stats.prefill_steps == 1
        assert stats.decode_steps == 4  # 4 more tokens after the first
        assert stats.per_token_p99_s == pytest.approx(0.001)

    def test_overlong_request_truncated(self):
        sim = make_sim()
        stats = sim.simulate([GenRequest(0.0, 10, 10 * LLM0.max_decode_len)])
        assert stats.served_requests == 1
        assert stats.tokens_generated == LLM0.max_decode_len

    def test_all_slots_busy_stalls_admission(self):
        """A burst wider than the slot count queues: late requests'
        TTFT includes the wait for a slot, so the tail far exceeds the
        head (which is one prefill latency)."""
        sim = make_sim(slots=4)
        burst = [GenRequest(0.0, 10, 8) for _ in range(16)]
        stats = sim.simulate(burst)
        assert stats.requests == stats.served_requests == 16
        assert stats.ttft_p50_s > stats.ttft_p99_s * 0.0  # sanity
        assert stats.ttft_p99_s > 3 * 0.004  # queued well past one prefill
        # The decode batch never exceeds the slot count.
        assert stats.mean_decode_batch <= 4

    def test_unsorted_stream_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            make_sim().simulate([GenRequest(1.0, 4, 4), GenRequest(0.5, 4, 4)])

    def test_deterministic(self):
        sim = make_sim()
        reqs = sample_gen_requests(LLM0, seed=7, rate_qps=800,
                                   duration_s=0.5)
        assert sim.simulate(reqs) == sim.simulate(reqs)

    def test_seed_latencies_validation(self):
        sim = make_sim()
        with pytest.raises(ValueError, match="phase"):
            sim.seed_latencies({("train", 128, 1): 0.001})
        with pytest.raises(ValueError, match="batch"):
            sim.seed_latencies({("decode", 128, 0): 0.001})
        with pytest.raises(ValueError, match="latency"):
            sim.seed_latencies({("decode", 128, 1): -0.001})

    def test_mid_decode_outage_loses_prefix_and_retries(self):
        """A core dying mid-decode destroys the generated prefixes (KV
        is core-resident); requests re-enqueue under the retry budget
        and re-prefill from scratch."""
        sim = make_sim(prefill_s=0.004, decode_s=0.001)
        # Prefill [0, 4ms); first decode step [4ms, 5ms). Kill inside it.
        schedule = FaultSchedule(1, 1.0, down=[(0, 0.0045, 0.010)])
        stats = sim.simulate([GenRequest(0.0, 10, 5)], schedule=schedule)
        assert stats.lost_steps == 1
        assert stats.retried_requests == 1
        assert stats.served_requests == 1  # retried and completed
        assert stats.requests == 1
        # The retry re-prefills: two prefill steps for one request.
        assert stats.prefill_steps == 2
        assert stats.availability == 1.0

    def test_retry_budget_zero_drops(self):
        sim = make_sim()
        schedule = FaultSchedule(1, 1.0, down=[(0, 0.0045, 0.010)])
        faults = FaultModel(seed=0, retry_budget=0)
        stats = sim.simulate([GenRequest(0.0, 10, 5)], faults=faults,
                             schedule=schedule)
        assert stats.dropped_requests == 1
        assert stats.served_requests == 0
        assert stats.requests == 1  # conservation still holds
        assert stats.availability == 0.0

    def test_permanent_outage_drops_everything(self):
        sim = make_sim()
        schedule = FaultSchedule(1, 1.0, down=[(0, 0.001, math.inf)])
        reqs = [GenRequest(0.0, 10, 5), GenRequest(0.2, 10, 5)]
        stats = sim.simulate(reqs, schedule=schedule)
        assert stats.dropped_requests == 2
        assert stats.served_requests == 0

    def test_slowdown_stretches_steps(self):
        sim = make_sim(prefill_s=0.004, decode_s=0.001)
        slow = FaultSchedule(1, 1.0,
                             slowdowns=[(0, 0.0, 1.0, 4.0)])
        base = sim.simulate([GenRequest(0.0, 10, 5)])
        stretched = sim.simulate([GenRequest(0.0, 10, 5)], schedule=slow)
        assert stretched.ttft_p99_s == pytest.approx(4 * base.ttft_p99_s)

    def test_conservation_invariant_enforced(self):
        with pytest.raises(ValueError, match="conservation violated"):
            ContinuousStats(
                workload="llm0", chip="TPUv4i", requests=10, duration_s=1.0,
                ttft_p50_s=0.0, ttft_p99_s=0.0, per_token_p50_s=0.0,
                per_token_p99_s=0.0, tokens_generated=0, prefill_steps=0,
                decode_steps=0, mean_decode_batch=0.0, tokens_per_s=0.0,
                ttft_violation_fraction=0.0, per_token_violation_fraction=0.0,
                dropped_requests=2, served_requests=9)  # 9 + 2 != 10

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            GenerativeSlo(0.0, 0.01)
        with pytest.raises(ValueError):
            GenerativeSlo(0.05, 0.01, pct=0)
        with pytest.raises(ValueError):
            ContinuousBatchingSimulator(
                shared_design_point(TPUV4I), LLM0, slots=0)


class TestLlmSweep:
    def test_deterministic_and_memory_bound(self):
        rows = llm_sweep(seed=5, chips=(TPUV4I,), models=("llm0",),
                         duration_s=0.3)
        again = llm_sweep(seed=5, chips=(TPUV4I,), models=("llm0",),
                          duration_s=0.3)
        assert rows == again
        assert rows
        for row in rows:
            assert row.decode_memory_bound
            assert (row.stats.served_requests + row.stats.dropped_requests
                    == row.stats.requests)
            assert row.stats.tokens_generated > 0

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            llm_sweep(duration_s=0.0)
        with pytest.raises(ValueError):
            llm_sweep(utilization=1.5)
