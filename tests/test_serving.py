"""Tests for SLOs, batching, the serving simulator (L9), and multi-tenancy (L4)."""

import pytest

from repro.serving import (
    BatchPolicy,
    MultiTenantSim,
    ServingSimulator,
    Slo,
    Tenant,
    partition_cmem,
    percentile,
)
from repro.workloads import RequestGenerator, app_by_name


class TestPercentileAndSlo:
    def test_nearest_rank(self):
        assert percentile([1, 2, 3, 4], 50) == 2
        assert percentile([1, 2, 3, 4], 100) == 4
        assert percentile([5], 99) == 5

    def test_percentile_is_type_stable(self):
        # Regression: int samples used to leak the input element type out.
        for pct in (1, 50, 99, 100):
            assert type(percentile([1, 2, 3, 4], pct)) is float
            assert type(percentile([1.5, 2.5], pct)) is float

    def test_empty_sample_contracts(self):
        # Locked contract: no requests -> vacuously met, zero violations.
        slo = Slo(0.010)
        assert slo.met_by([]) is True
        assert slo.violation_fraction([]) == 0.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 0)

    def test_slo_met(self):
        slo = Slo(limit_s=0.010, pct=99)
        assert slo.met_by([0.001] * 99 + [0.009])
        assert not slo.met_by([0.001] * 90 + [0.020] * 10)

    def test_violation_fraction(self):
        slo = Slo(0.010)
        assert slo.violation_fraction([0.005, 0.015]) == 0.5
        assert slo.violation_fraction([]) == 0.0

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            Slo(0)
        with pytest.raises(ValueError):
            Slo(1.0, pct=101)


class TestBatchPolicy:
    def test_padded_size_rounds_up(self):
        policy = BatchPolicy(max_batch=64, max_wait_s=0.001)
        assert policy.padded_size(3) == 4
        assert policy.padded_size(33) == 64
        assert policy.padded_size(1) == 1

    def test_padded_capped_at_max(self):
        policy = BatchPolicy(max_batch=24, max_wait_s=0.0)
        assert policy.padded_size(100) == 24

    def test_batch_steps_include_max(self):
        assert BatchPolicy.batch_steps(24) == (1, 2, 4, 8, 16, 24)
        assert BatchPolicy.batch_steps(16)[-1] == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(0, 0.0)
        with pytest.raises(ValueError):
            BatchPolicy(1, -0.1)

    def test_padded_size_rejects_empty_batch(self):
        """Locked contract: an empty batch must never be priced.

        ``padded_size(0)`` silently returning a compiled step would
        charge a full batch launch for zero requests; the contract is to
        raise, and callers must guard before pricing.
        """
        policy = BatchPolicy(max_batch=16, max_wait_s=0.001)
        with pytest.raises(ValueError, match="batch must be >= 1"):
            policy.padded_size(0)
        with pytest.raises(ValueError, match="batch must be >= 1"):
            policy.padded_size(-3)

    def test_padded_size_never_zero(self):
        """Every valid actual size pads to a positive compiled step."""
        for max_batch in (1, 3, 16, 500):
            policy = BatchPolicy(max_batch=max_batch, max_wait_s=0.0)
            for actual in range(1, max_batch + 5):
                assert policy.padded_size(actual) >= 1


@pytest.fixture(scope="module")
def cnn_server(v4i_point_module):
    spec = app_by_name("cnn0")
    return ServingSimulator(
        v4i_point_module, spec,
        BatchPolicy(max_batch=16, max_wait_s=0.002),
        Slo(spec.slo_ms / 1e3))


@pytest.fixture(scope="module")
def v4i_point_module():
    from repro.arch import TPUV4I
    from repro.core import DesignPoint

    return DesignPoint(TPUV4I)


class TestServingSimulator:
    def test_latency_exceeds_compute_floor(self, cnn_server):
        reqs = RequestGenerator(1).poisson("cnn0", 200, 2.0)
        stats = cnn_server.simulate(reqs)
        assert stats.p50_s >= cnn_server.batch_latency_s(1) * 0.99
        assert stats.requests == len(reqs)

    def test_higher_load_bigger_batches(self, cnn_server):
        low = cnn_server.simulate(RequestGenerator(2).poisson("c", 50, 2.0))
        high = cnn_server.simulate(RequestGenerator(2).poisson("c", 2000, 2.0))
        assert high.mean_batch > low.mean_batch

    def test_higher_load_worse_latency(self, cnn_server):
        low = cnn_server.simulate(RequestGenerator(3).poisson("c", 50, 2.0))
        high = cnn_server.simulate(RequestGenerator(3).poisson("c", 2500, 2.0))
        assert high.p99_s > low.p99_s

    def test_percentiles_ordered(self, cnn_server):
        stats = cnn_server.simulate(RequestGenerator(4).poisson("c", 300, 2.0))
        assert stats.p50_s <= stats.p95_s <= stats.p99_s

    def test_throughput_tracks_offered_load(self, cnn_server):
        stats = cnn_server.simulate(RequestGenerator(5).poisson("c", 400, 3.0))
        assert stats.throughput_qps == pytest.approx(400, rel=0.15)

    def test_max_slo_batch_is_lesson9(self, cnn_server):
        """The SLO, not the hardware, caps the usable batch."""
        batch = cnn_server.max_slo_batch()
        assert 1 <= batch <= 16

    def test_empty_stream_rejected(self, cnn_server):
        with pytest.raises(ValueError):
            cnn_server.simulate([])

    def test_unsorted_stream_rejected(self, cnn_server):
        from repro.workloads import Request

        with pytest.raises(ValueError):
            cnn_server.simulate([Request(1.0, "c"), Request(0.5, "c")])

    def test_single_request(self, cnn_server):
        """One request: a batch of 1, latency = wait + compute."""
        from repro.workloads import Request

        stats = cnn_server.simulate([Request(0.0, "c")])
        assert stats.requests == 1
        assert stats.mean_batch == 1.0
        expected = (cnn_server.policy.max_wait_s
                    + cnn_server.batch_latency_s(1))
        assert stats.p50_s == pytest.approx(expected)
        assert stats.p50_s == stats.p99_s

    def test_max_batch_one_serializes_everything(self, v4i_point_module):
        """max_batch=1 degenerates to one-request-per-launch serving."""
        from repro.workloads import Request

        spec = app_by_name("cnn0")
        server = ServingSimulator(
            v4i_point_module, spec,
            BatchPolicy(max_batch=1, max_wait_s=0.002),
            Slo(spec.slo_ms / 1e3))
        reqs = [Request(i * 1e-4, "c") for i in range(20)]
        stats = server.simulate(reqs)
        assert stats.requests == 20
        assert stats.mean_batch == 1.0
        # With every core busy, later requests queue behind earlier ones.
        assert stats.p99_s > server.batch_latency_s(1)

    def test_burst_exceeding_max_batch_splits(self, cnn_server):
        """A simultaneous burst larger than max_batch launches in waves."""
        from repro.workloads import Request

        burst = [Request(0.0, "c") for _ in range(40)]  # max_batch=16
        stats = cnn_server.simulate(burst)
        assert stats.requests == 40
        # No batch may exceed the cap, so the burst needs >= 3 launches
        # and the mean stays at or below the cap.
        assert stats.mean_batch <= 16
        # Overflow waves wait for a server, so the tail exceeds the head.
        assert stats.p99_s > stats.p50_s

    def test_zero_duration_throughput_is_zero(self, v4i_point_module):
        """Regression: an instantaneous stream used to report inf qps."""
        import math

        from repro.workloads import Request

        spec = app_by_name("cnn0")
        server = ServingSimulator(
            v4i_point_module, spec,
            BatchPolicy(max_batch=1, max_wait_s=0.0),
            Slo(spec.slo_ms / 1e3))
        server.seed_latencies({1: 0.0})  # zero wait + zero compute
        stats = server.simulate([Request(0.0, "c")])
        assert stats.duration_s == 0.0
        assert stats.throughput_qps == 0.0
        assert math.isfinite(stats.throughput_qps)


class TestServingStatsConservation:
    def _stats(self, **overrides):
        from repro.serving import ServingStats
        fields = dict(workload="cnn0", chip="TPUv4i", requests=10,
                      duration_s=1.0, p50_s=0.001, p95_s=0.002,
                      p99_s=0.003, mean_batch=2.0, throughput_qps=10.0,
                      slo_violation_fraction=0.0)
        fields.update(overrides)
        return ServingStats(**fields)

    def test_mismatched_totals_rejected(self):
        with pytest.raises(ValueError, match="conservation violated"):
            self._stats(dropped_requests=2, shed_requests=1,
                        served_requests=8)  # 8 + 2 + 1 != 10

    def test_served_derived_when_unset(self):
        stats = self._stats(dropped_requests=2, shed_requests=1)
        assert stats.served_requests == 7

    def test_explicit_consistent_totals_accepted(self):
        stats = self._stats(dropped_requests=3, served_requests=7)
        assert stats.shed_requests == 0


class TestMultiTenancy:
    def _sim(self, point):
        tenants = [Tenant(app_by_name("cnn0"), 50),
                   Tenant(app_by_name("rnn0"), 50)]
        return MultiTenantSim(point, tenants), tenants

    def test_partition_splits_proportionally(self, v4i_point_module):
        sim, tenants = self._sim(v4i_point_module)
        budgets = partition_cmem(v4i_point_module, tenants)
        total = sum(budgets.values())
        assert total <= v4i_point_module.chip.cmem_bytes
        assert budgets["rnn0"] > budgets["cnn0"]  # bigger weights

    def test_swap_costs_time(self, v4i_point_module):
        sim, _ = self._sim(v4i_point_module)
        reqs = RequestGenerator(7).multi_tenant(["cnn0", "rnn0"], [30, 30], 2.0)
        swap = sim.simulate(reqs, "swap")
        part = sim.simulate(reqs, "partition")
        assert swap.swap_count > 0
        assert part.swap_count == 0
        assert swap.swap_seconds_total > 0

    def test_partition_beats_swap_on_interleaved_traffic(self, v4i_point_module):
        """Lesson 4's quantitative form."""
        sim, _ = self._sim(v4i_point_module)
        reqs = RequestGenerator(8).multi_tenant(["cnn0", "rnn0"], [40, 40], 2.0)
        swap = sim.simulate(reqs, "swap")
        part = sim.simulate(reqs, "partition")
        assert part.mean_latency_s < swap.mean_latency_s

    def test_host_swap_is_catastrophic(self, v4i_point_module):
        """Without provisioned co-residency, PCIe weight reloads dominate."""
        sim, _ = self._sim(v4i_point_module)
        reqs = RequestGenerator(8).multi_tenant(["cnn0", "rnn0"], [40, 40], 2.0)
        host = sim.simulate(reqs, "swap_host")
        swap = sim.simulate(reqs, "swap")
        assert host.p99_s > 3 * swap.p99_s
        assert host.swap_seconds_total > 10 * swap.swap_seconds_total

    def test_duplicate_tenants_rejected(self, v4i_point_module):
        with pytest.raises(ValueError):
            MultiTenantSim(v4i_point_module,
                           [Tenant(app_by_name("cnn0"), 1),
                            Tenant(app_by_name("cnn0"), 1)])

    def test_unknown_policy_rejected(self, v4i_point_module):
        sim, _ = self._sim(v4i_point_module)
        reqs = RequestGenerator(9).multi_tenant(["cnn0", "rnn0"], [10, 10], 1.0)
        with pytest.raises(ValueError):
            sim.simulate(reqs, "magic")

    def test_unknown_tenant_request_rejected(self, v4i_point_module):
        from repro.workloads import Request

        sim, _ = self._sim(v4i_point_module)
        with pytest.raises(KeyError):
            sim.simulate([Request(0.0, "bert0")], "swap")

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            Tenant(app_by_name("cnn0"), 0)

    def test_zero_duration_throughput_is_finite(self, v4i_point_module,
                                                monkeypatch):
        # Regression: a zero-duration run used to report inf qps.
        import math

        from repro.workloads import Request

        sim, _ = self._sim(v4i_point_module)
        monkeypatch.setattr(
            MultiTenantSim, "_latencies",
            lambda self, policy: {t.spec.name: 0.0 for t in self.tenants})
        stats = sim.simulate([Request(0.0, "cnn0")], "resident")
        assert stats.throughput_qps == 0.0
        assert math.isfinite(stats.throughput_qps)

    def test_idle_tenant_reports_zero_not_crash(self, v4i_point_module):
        """Regression: a registered tenant with zero requests in the
        window used to be unrepresentable; its ratios must be 0.0, not a
        ZeroDivisionError."""
        from repro.workloads import Request

        sim, _ = self._sim(v4i_point_module)
        # All traffic goes to cnn0; rnn0 is registered but idle.
        stats = sim.simulate([Request(0.0, "cnn0"), Request(0.1, "cnn0")],
                             "swap")
        per = {t.tenant: t for t in stats.per_tenant}
        assert set(per) == {"cnn0", "rnn0"}
        assert per["cnn0"].requests == 2
        assert per["rnn0"].requests == 0
        assert per["rnn0"].p99_s == 0.0
        assert per["rnn0"].mean_latency_s == 0.0
        assert per["cnn0"].mean_latency_s > 0.0

    def test_per_tenant_requests_conserve(self, v4i_point_module):
        sim, _ = self._sim(v4i_point_module)
        reqs = RequestGenerator(10).multi_tenant(["cnn0", "rnn0"],
                                                 [30, 30], 1.0)
        stats = sim.simulate(reqs, "partition")
        assert sum(t.requests for t in stats.per_tenant) == stats.requests

    def test_empty_window_stats_guarded(self):
        """TenantWindowStats.from_latencies on no samples is all zeros."""
        from repro.serving import TenantWindowStats

        stats = TenantWindowStats.from_latencies("idle", [])
        assert stats.requests == 0
        assert stats.p99_s == 0.0
        assert stats.mean_latency_s == 0.0
