"""Tests for repro.tech: process nodes and the Lesson 1 scaling series."""

import pytest

from repro.tech import (
    NODES,
    ProcessNode,
    energy_per_op_series,
    logic_density_series,
    node_by_name,
    relative_improvement,
    sram_density_series,
    wire_delay_series,
)
from repro.util.units import MIB


class TestNodes:
    def test_lookup_known(self):
        assert node_by_name("7nm").feature_nm == 7

    def test_lookup_unknown_lists_known(self):
        with pytest.raises(KeyError, match="7nm"):
            node_by_name("3nm")

    def test_nodes_ordered_by_year(self):
        years = [n.year for n in NODES]
        assert years == sorted(years)

    def test_logic_density_monotone_increasing(self):
        densities = [n.logic_density_mtr_mm2 for n in NODES]
        assert densities == sorted(densities)

    def test_mac_energy_monotone_decreasing(self):
        energies = [n.mac_energy_pj for n in NODES]
        assert energies == sorted(energies, reverse=True)

    def test_wafer_cost_rises_at_leading_edge(self):
        assert node_by_name("7nm").wafer_cost_usd > node_by_name("16nm").wafer_cost_usd

    def test_area_helpers(self):
        node = node_by_name("7nm")
        assert node.logic_area_mm2(96.5) == pytest.approx(1.0)
        # 1 Mbit of SRAM at 6.1 Mbit/mm^2.
        assert node.sram_area_mm2(1e6 / 8) == pytest.approx(1 / 6.1, rel=1e-6)

    def test_wire_delay_seconds(self):
        node = node_by_name("7nm")
        assert node.wire_delay_s(1.0) == pytest.approx(120e-12)

    def test_validation_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ProcessNode("bad", 7, 2019, 0, 1, 1, 1, 1, 1, 1, 1)


class TestScalingSeries:
    def test_series_normalized(self):
        for series in relative_improvement():
            assert series.values[0] == pytest.approx(1.0)

    def test_lesson1_ordering(self):
        """The whole point: logic >> SRAM > wires at the newest node."""
        logic = logic_density_series().final_improvement()
        sram = sram_density_series().final_improvement()
        wire = wire_delay_series().final_improvement()
        assert logic > 5 * sram
        assert sram > wire

    def test_wire_speed_regresses(self):
        assert wire_delay_series().final_improvement() < 1.0

    def test_energy_improves(self):
        assert energy_per_op_series().final_improvement() > 10

    def test_subset_of_nodes(self):
        subset = (node_by_name("28nm"), node_by_name("7nm"))
        series = logic_density_series(subset)
        assert series.nodes == ("28nm", "7nm")
        assert series.final_improvement() == pytest.approx(96.5 / 8.0)

    def test_series_alignment_validated(self):
        from repro.tech.scaling import ScalingSeries

        with pytest.raises(ValueError):
            ScalingSeries("x", ("a",), (1.0, 2.0))
        with pytest.raises(ValueError):
            ScalingSeries("x", ("a",), (2.0,))  # not normalized
