"""Tests for repro.util.rng."""

import pytest

from repro.util.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert DeterministicRng(1).uniform() != DeterministicRng(2).uniform()

    def test_fork_is_independent(self):
        root = DeterministicRng(7)
        child = root.fork(1)
        other = root.fork(2)
        assert child.uniform() != other.uniform()

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            DeterministicRng(-1)


class TestDistributions:
    def test_poisson_arrivals_sorted_and_bounded(self):
        rng = DeterministicRng(3)
        arrivals = rng.poisson_arrivals(rate_per_s=100, duration_s=5.0)
        assert all(0 <= t < 5.0 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_poisson_rate_approximate(self):
        rng = DeterministicRng(5)
        arrivals = rng.poisson_arrivals(rate_per_s=200, duration_s=50.0)
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).poisson_arrivals(0, 1.0)

    def test_exponential_mean(self):
        rng = DeterministicRng(11)
        samples = [rng.exponential(2.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_lognormal_mean_is_linear_mean(self):
        rng = DeterministicRng(13)
        samples = [rng.lognormal(5.0) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.05)

    def test_lognormal_positive(self):
        rng = DeterministicRng(17)
        assert all(rng.lognormal(0.001) > 0 for _ in range(100))

    def test_choice_weighted_prefers_heavy(self):
        rng = DeterministicRng(19)
        picks = [rng.choice(["a", "b"], [0.99, 0.01]) for _ in range(500)]
        assert picks.count("a") > 400

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    def test_choice_weight_mismatch(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice(["a"], [0.5, 0.5])

    def test_normal_array_shape_dtype(self):
        arr = DeterministicRng(23).normal_array((3, 4))
        assert arr.shape == (3, 4)
        assert arr.dtype.name == "float32"
