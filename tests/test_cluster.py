"""Cluster resilience: identity, routing, admission, hedging, tiers.

The load-bearing contract is *passthrough identity*: a one-replica
cluster under the default policy (and with no faults) must reproduce a
plain ``ServingSimulator.simulate`` run field for field, bit for bit —
with health probing on too, since successful probes may not perturb
serving. On top of that: ejection/failover semantics, token-bucket and
queue-depth shedding (with a monotonicity property), hedge accounting,
the degradation ladder, unique-request conservation, byte-level
determinism of the chaos sweep, and the policy-aware N+k planner.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import GENERATIONS, TPUV4I
from repro.cluster import (ChaosScenario, ClusterPolicy, ClusterSimulator,
                           ClusterStats, DegradationTier, chaos_sweep,
                           plan_resilient_fleet)
from repro.cluster.cluster import _REPLICA_SALT
from repro.core.design_point import shared_design_point
from repro.faults import FaultModel, FaultSchedule
from repro.serving import BatchPolicy, ServingSimulator, Slo
from repro.util.rng import DeterministicRng
from repro.workloads import RequestGenerator, app_by_name

#: Synthetic padded-batch latency table: tests exercise router logic,
#: not the compiler, so replicas run on seeded 1 ms batches.
FLAT_TABLE = {step: 0.001 for step in BatchPolicy.batch_steps(8)}


def make_replicas(point, count, *, max_batch=8, max_wait_s=0.002,
                  table=FLAT_TABLE):
    spec = app_by_name("cnn0")
    sims = []
    for _ in range(count):
        sim = ServingSimulator(point, spec,
                               BatchPolicy(max_batch, max_wait_s),
                               Slo(spec.slo_ms / 1e3))
        sim.seed_latencies(table)
        sims.append(sim)
    return sims


def kill_schedule(cores: int, horizon_s: float = 10.0,
                  start_s: float = 0.0, end_s: float = math.inf):
    return FaultSchedule(cores, horizon_s,
                         down=[(core, start_s, end_s)
                               for core in range(cores)])


@pytest.fixture(scope="module")
def traffic():
    return RequestGenerator(7).poisson("cnn0", 2000.0, 0.5)


class TestPassthroughIdentity:
    def test_one_replica_matches_plain_simulator(self, v4i_point, traffic):
        sim, = make_replicas(v4i_point, 1)
        plain = sim.simulate(traffic)
        stats = ClusterSimulator([sim]).simulate(traffic)
        # Dataclass equality is field-for-field and therefore bit-level.
        assert stats.replica_stats[0] == plain
        assert stats.requests == plain.requests
        assert stats.served_requests == plain.served_requests
        assert stats.availability == plain.availability
        assert stats.p99_s == plain.p99_s
        assert stats.duration_s == plain.duration_s
        assert stats.shed_requests == 0

    def test_identity_survives_probing(self, v4i_point, traffic):
        sim, = make_replicas(v4i_point, 1)
        plain = sim.simulate(traffic)
        probed = ClusterSimulator(
            [sim], ClusterPolicy(probe_interval_s=0.01)).simulate(traffic)
        assert probed.replica_stats[0] == plain
        assert probed.probes > 0
        assert probed.probe_failures == 0

    def test_faulted_one_replica_matches_forked_schedule(self, v4i_point,
                                                         traffic):
        sim, = make_replicas(v4i_point, 1)
        model = FaultModel(seed=7, core_mtbf_s=0.05, core_repair_s=0.02)
        forked = replace(model, seed=DeterministicRng(model.seed)
                         .fork(_REPLICA_SALT).seed)
        schedule = forked.schedule(
            sim.point.chip.cores,
            traffic[-1].arrival_s + model.horizon_pad_s)
        plain = sim.simulate(traffic, faults=model, schedule=schedule)
        stats = ClusterSimulator([sim]).simulate(traffic, faults=model)
        assert stats.replica_stats[0] == plain

    def test_zero_fault_model_is_passthrough(self, v4i_point, traffic):
        sim, = make_replicas(v4i_point, 1)
        plain = ClusterSimulator([sim]).simulate(traffic)
        zero = ClusterSimulator([sim]).simulate(
            traffic, faults=FaultModel(seed=3))
        assert zero == plain


class TestValidation:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ClusterSimulator([])

    def test_mixed_workloads_rejected(self, v4i_point):
        sim_a, = make_replicas(v4i_point, 1)
        spec_b = app_by_name("bert0")
        sim_b = ServingSimulator(v4i_point, spec_b,
                                 BatchPolicy(8, 0.002),
                                 Slo(spec_b.slo_ms / 1e3))
        with pytest.raises(ValueError, match="one workload"):
            ClusterSimulator([sim_a, sim_b])

    def test_tiers_require_probing(self, v4i_point):
        sims = make_replicas(v4i_point, 2)
        policy = ClusterPolicy(tiers=(DegradationTier("half", max_batch=4),))
        with pytest.raises(ValueError, match="probing"):
            ClusterSimulator(sims, policy)

    def test_schedule_count_must_match_replicas(self, v4i_point, traffic):
        sims = make_replicas(v4i_point, 2)
        cluster = ClusterSimulator(sims)
        with pytest.raises(ValueError, match="schedules for"):
            cluster.simulate(traffic, schedules=[None])

    def test_empty_stream_rejected(self, v4i_point):
        sims = make_replicas(v4i_point, 2)
        with pytest.raises(ValueError, match="empty request stream"):
            ClusterSimulator(sims).simulate([])

    def test_cluster_stats_conservation_enforced(self):
        with pytest.raises(ValueError, match="conservation"):
            ClusterStats(
                workload="cnn0", chip="TPUv4i", replicas=1, requests=10,
                duration_s=1.0, p50_s=0.0, p95_s=0.0, p99_s=0.0,
                mean_batch=1.0, throughput_qps=0.0,
                slo_violation_fraction=0.0, availability=0.9,
                served_requests=9, dropped_requests=0, shed_requests=0)


class TestHealthRouting:
    def test_dead_replica_is_ejected_and_traffic_fails_over(self, v4i_point,
                                                            traffic):
        sims = make_replicas(v4i_point, 2)
        cores = sims[0].point.chip.cores
        policy = ClusterPolicy(probe_interval_s=0.005, unhealthy_after=2,
                               ejection_s=0.05)
        stats = ClusterSimulator(sims, policy).simulate(
            traffic, schedules=[kill_schedule(cores), None])
        assert stats.ejections >= 1
        assert stats.probe_failures >= 2
        assert stats.failed_over_requests > 0
        # Everything the dead replica had queued moves to the healthy
        # peer; only copies lost before anything else existed can drop.
        assert stats.availability >= 0.99
        assert stats.replica_stats[1].served_requests > 0

    def test_transient_outage_readmits(self, v4i_point):
        requests = RequestGenerator(5).poisson("cnn0", 2000.0, 0.6)
        sims = make_replicas(v4i_point, 2)
        cores = sims[0].point.chip.cores
        policy = ClusterPolicy(probe_interval_s=0.005, unhealthy_after=2,
                               ejection_s=0.02)
        stats = ClusterSimulator(sims, policy).simulate(
            requests,
            schedules=[kill_schedule(cores, start_s=0.1, end_s=0.2), None])
        assert stats.ejections >= 1
        assert stats.readmissions >= 1
        # After re-admission the replica serves again.
        assert stats.replica_stats[0].served_requests > 0
        assert stats.availability >= 0.99

    def test_without_probing_dead_replica_drops_its_queue(self, v4i_point,
                                                          traffic):
        sims = make_replicas(v4i_point, 2)
        cores = sims[0].point.chip.cores
        stats = ClusterSimulator(sims).simulate(
            traffic, schedules=[kill_schedule(cores), None])
        # The static router never ejects: whatever was queued on the
        # dead replica at detection is lost, the rest re-routes.
        assert stats.ejections == 0
        assert stats.dropped_requests > 0
        assert stats.replica_stats[1].served_requests > 0
        total = (stats.served_requests + stats.dropped_requests
                 + stats.shed_requests)
        assert total == stats.requests

    def test_whole_cluster_dead_drops_everything(self, v4i_point, traffic):
        sims = make_replicas(v4i_point, 2)
        cores = sims[0].point.chip.cores
        stats = ClusterSimulator(sims).simulate(
            traffic,
            schedules=[kill_schedule(cores), kill_schedule(cores)])
        assert stats.served_requests == 0
        assert stats.dropped_requests == stats.requests
        assert stats.availability == 0.0


class TestAdmissionControl:
    def test_token_bucket_sheds_overload(self, v4i_point, traffic):
        sims = make_replicas(v4i_point, 2)
        policy = ClusterPolicy(admission_rate_qps=500.0, admission_burst=8.0)
        stats = ClusterSimulator(sims, policy).simulate(traffic)
        # Offered ~2000 qps against a 500 qps bucket: most is shed.
        assert stats.shed_requests > 0
        assert 0.5 < stats.shed_fraction < 0.9
        # Shed requests never reach a replica.
        offered_to_replicas = sum(r.requests for r in stats.replica_stats)
        assert offered_to_replicas == stats.requests - stats.shed_requests

    def test_queue_depth_backpressure(self, v4i_point):
        # One slow replica (100 ms batches) and a tight depth cap:
        # arrivals beyond the cap are shed instead of queueing forever.
        slow = {step: 0.1 for step in BatchPolicy.batch_steps(8)}
        sims = make_replicas(v4i_point, 1, table=slow)
        requests = RequestGenerator(3).poisson("cnn0", 1000.0, 0.2)
        policy = ClusterPolicy(max_queue_depth=4)
        stats = ClusterSimulator(sims, policy).simulate(requests)
        assert stats.shed_requests > 0
        assert stats.p99_s < 1.0  # the queue never builds past the cap

    def test_conservation_with_shedding(self, v4i_point, traffic):
        sims = make_replicas(v4i_point, 2)
        policy = ClusterPolicy(admission_rate_qps=800.0,
                               max_queue_depth=16)
        stats = ClusterSimulator(sims, policy).simulate(traffic)
        assert (stats.served_requests + stats.dropped_requests
                + stats.shed_requests) == stats.requests

    @settings(max_examples=8, deadline=None)
    @given(low=st.integers(min_value=1, max_value=15),
           high=st.integers(min_value=16, max_value=60))
    def test_shed_fraction_monotone_in_bucket_rate(self, low, high):
        # Property: a faster token bucket never sheds more (queue-depth
        # check off, so the bucket is the only shedding source).
        point = shared_design_point(TPUV4I)
        requests = RequestGenerator(9).poisson("cnn0", 2000.0, 0.25)

        def shed_at(rate_qps: float) -> float:
            sims = make_replicas(point, 2)
            policy = ClusterPolicy(admission_rate_qps=rate_qps,
                                   admission_burst=4.0)
            return ClusterSimulator(sims, policy).simulate(
                requests).shed_fraction

        assert shed_at(100.0 * low) >= shed_at(100.0 * high)


class TestHedging:
    def test_hedge_rescues_requests_stuck_on_slow_replica(self, v4i_point):
        # Replica 0 crawls (50x slowdown for the whole run); hedges
        # re-issue its stragglers on replica 1, which responds first.
        sims = make_replicas(v4i_point, 2)
        cores = sims[0].point.chip.cores
        slow = FaultSchedule(
            cores, 10.0,
            slowdowns=[(core, 0.0, 10.0, 50.0) for core in range(cores)])
        requests = RequestGenerator(3).poisson("cnn0", 1000.0, 0.3)
        policy = ClusterPolicy(hedge_delay_s=0.005)
        stats = ClusterSimulator(sims, policy).simulate(
            requests, schedules=[slow, None])
        assert stats.hedged_requests > 0
        # First response wins; the loser is accounted either way.
        assert stats.cancelled_hedges + stats.wasted_hedges > 0
        assert stats.availability == 1.0
        # Unique accounting: hedge copies never double-count serves.
        assert stats.served_requests == stats.requests
        # ...but the replicas really did serve extra copies.
        assert (sum(r.served_requests for r in stats.replica_stats)
                == stats.served_requests + stats.wasted_hedges)

    def test_no_hedge_without_second_healthy_replica(self, v4i_point,
                                                     traffic):
        sim, = make_replicas(v4i_point, 1)
        policy = ClusterPolicy(hedge_delay_s=0.0)
        stats = ClusterSimulator([sim], policy).simulate(traffic)
        assert stats.hedged_requests == 0

    def test_hedging_off_by_default(self, v4i_point, traffic):
        sims = make_replicas(v4i_point, 2)
        stats = ClusterSimulator(sims).simulate(traffic)
        assert stats.hedged_requests == 0
        assert stats.cancelled_hedges == 0
        assert stats.wasted_hedges == 0


class TestDegradation:
    def test_ladder_steps_down_when_fleet_shrinks(self, v4i_point):
        sims = make_replicas(v4i_point, 3)
        cores = sims[0].point.chip.cores
        policy = ClusterPolicy(
            probe_interval_s=0.005, unhealthy_after=2, ejection_s=1.0,
            tiers=(DegradationTier("half", max_batch=4),),
            degrade_below_healthy=0.67, degrade_after=2, recover_after=4)
        requests = RequestGenerator(5).poisson("cnn0", 3000.0, 0.4)
        stats = ClusterSimulator(sims, policy).simulate(
            requests, schedules=[kill_schedule(cores),
                                 kill_schedule(cores), None])
        names = [name for name, _ in stats.time_in_tier_s]
        assert names == ["full", "half"]
        assert stats.degraded_s > 0.0
        assert dict(stats.time_in_tier_s)["half"] > 0.0
        # The surviving replica really ran smaller batches while degraded.
        assert max(stats.replica_stats[2].mean_batch, 0.0) <= 8.0

    def test_ladder_recovers_after_outage_clears(self, v4i_point):
        sims = make_replicas(v4i_point, 2)
        cores = sims[0].point.chip.cores
        policy = ClusterPolicy(
            probe_interval_s=0.01, unhealthy_after=1, ejection_s=0.02,
            tiers=(DegradationTier("half", max_batch=4),),
            degrade_below_healthy=0.6, degrade_after=1, recover_after=2)
        requests = RequestGenerator(5).poisson("cnn0", 1500.0, 0.6)
        stats = ClusterSimulator(sims, policy).simulate(
            requests,
            schedules=[kill_schedule(cores, start_s=0.05, end_s=0.2), None])
        timing = dict(stats.time_in_tier_s)
        assert timing["half"] > 0.0
        # Recovery: readmitted replica + good windows step back up, so
        # the run does not end stuck in the degraded tier.
        assert stats.readmissions >= 1
        assert timing["full"] > timing["half"]

    def test_int8_tier_uses_retargeted_latency(self, v4i_point):
        # Real latencies here (not the synthetic table): the int8 tier
        # must pull a retargeted compile, not the bf16 table.
        spec = app_by_name("cnn0")
        sims = [ServingSimulator(v4i_point, spec, BatchPolicy(8, 0.002),
                                 Slo(spec.slo_ms / 1e3)) for _ in range(2)]
        cores = v4i_point.chip.cores
        policy = ClusterPolicy(
            probe_interval_s=0.005, unhealthy_after=1, ejection_s=1.0,
            tiers=(DegradationTier("int8", max_batch=4, dtype="int8"),),
            degrade_below_healthy=0.6, degrade_after=1, recover_after=99)
        requests = RequestGenerator(5).poisson("cnn0", 1000.0, 0.4)
        stats = ClusterSimulator(sims, policy).simulate(
            requests, schedules=[kill_schedule(cores), None])
        assert dict(stats.time_in_tier_s)["int8"] > 0.0
        assert stats.availability > 0.9


class TestDeterminism:
    def test_cluster_stats_identical_across_runs(self, v4i_point, traffic):
        model = FaultModel(seed=11, chip_mtbf_s=0.1, chip_repair_s=0.05)
        policy = ClusterPolicy.resilient(
            slo_limit_s=0.005, offered_qps=2000.0, max_batch=8, replicas=3,
            int8_tier=False)

        def run():
            sims = make_replicas(v4i_point, 3)
            return ClusterSimulator(sims, policy).simulate(
                traffic, faults=model)

        first, second = run(), run()
        assert first == second  # frozen dataclasses: bit-level equality

    def test_replica_fault_streams_are_independent(self, v4i_point,
                                                   traffic):
        # Same model, different replica index -> different failures.
        model = FaultModel(seed=11, core_mtbf_s=0.05)
        sims = make_replicas(v4i_point, 2)
        cluster = ClusterSimulator(sims)
        stats = cluster.simulate(traffic, faults=model)
        a, b = stats.replica_stats
        assert (a.lost_batches, a.retried_requests) != \
            (b.lost_batches, b.retried_requests) or a.p99_s != b.p99_s

    def test_chaos_sweep_deterministic(self):
        kwargs = dict(seed=3, chips=(TPUV4I,), duration_s=0.25)
        assert chaos_sweep(**kwargs) == chaos_sweep(**kwargs)


class TestChaosSweep:
    def test_rows_cover_scenarios_and_policies(self):
        rows = chaos_sweep(seed=3, chips=(TPUV4I,), duration_s=0.25)
        combos = {(r.scenario, r.policy) for r in rows}
        assert len(combos) == 10  # 5 scenarios x 2 policies
        assert all(r.chip == "TPUv4i" and r.app == "cnn0" for r in rows)

    def test_kill_one_of_n_plus_one_holds_availability_per_generation(self):
        # The acceptance bar: killing k <= spares replicas of an N+k
        # cluster keeps availability at the faultless level under the
        # resilient policy, on every generation.
        rows = chaos_sweep(seed=3, duration_s=0.25,
                           scenarios=(ChaosScenario("faultless"),
                                      ChaosScenario("kill-1",
                                                    kill_replicas=1)))
        for chip in GENERATIONS:
            cells = {(r.scenario, r.policy): r.stats for r in rows
                     if r.chip == chip.name}
            faultless = cells[("faultless", "resilient")]
            killed = cells[("kill-1", "resilient")]
            assert killed.availability >= min(faultless.availability, 0.99), \
                f"{chip.name}: kill-1 availability {killed.availability}"

    def test_resilient_beats_static_under_overload(self):
        # Long enough for the static router's queue to actually build.
        rows = chaos_sweep(seed=3, chips=(TPUV4I,), duration_s=0.6,
                           scenarios=(ChaosScenario("overload",
                                                    load_factor=2.5),))
        by_policy = {r.policy: r.stats for r in rows}
        # The static router serves everything late; the resilient one
        # sheds to protect the latency of what it admits.
        assert by_policy["resilient"].shed_fraction > 0.2
        assert (by_policy["resilient"].p99_s
                <= by_policy["static"].p99_s)

    def test_killing_every_replica_rejected(self):
        with pytest.raises(ValueError, match="kills every replica"):
            chaos_sweep(seed=0, replicas=2, chips=(TPUV4I,),
                        scenarios=(ChaosScenario("bad", kill_replicas=2),))


class TestPlanner:
    def test_planner_finds_spares_for_target(self, v4i_point):
        spec = app_by_name("cnn0")
        plan, trail = plan_resilient_fleet(
            v4i_point, spec, 20000.0, availability_target=0.99,
            max_spares=2)
        assert plan.simulated_availability is not None
        assert plan.simulated_availability >= 0.99
        assert plan.spare_chips == trail.points[-1][0]
        # The trail walks k upward and stops at the first success.
        ks = [k for k, _ in trail.points]
        assert ks == list(range(len(ks)))
        assert all(avail < 0.99 for _, avail in trail.points[:-1])
        assert "simulated avail" in plan.describe()

    def test_planner_reports_shortfall(self, v4i_point):
        spec = app_by_name("cnn0")
        plan, trail = plan_resilient_fleet(
            v4i_point, spec, 20000.0, availability_target=1.0,
            max_spares=0,
            faults=FaultModel(seed=0, chip_mtbf_s=0.05, chip_repair_s=0.5))
        assert plan.spare_chips == 0
        assert plan.simulated_availability == trail.points[-1][1]
        assert plan.simulated_availability < 1.0

    def test_planner_deterministic(self, v4i_point):
        spec = app_by_name("cnn0")
        kwargs = dict(availability_target=0.99, max_spares=2)
        first = plan_resilient_fleet(v4i_point, spec, 20000.0, **kwargs)
        second = plan_resilient_fleet(v4i_point, spec, 20000.0, **kwargs)
        assert first == second


class TestObservability:
    def test_metrics_do_not_perturb_stats(self, v4i_point, traffic):
        from repro.obs import collecting_metrics
        model = FaultModel(seed=11, chip_mtbf_s=0.1, chip_repair_s=0.05)
        policy = ClusterPolicy(probe_interval_s=0.01,
                               admission_rate_qps=1500.0)

        def run():
            sims = make_replicas(v4i_point, 2)
            return ClusterSimulator(sims, policy).simulate(
                traffic, faults=model)

        plain = run()
        with collecting_metrics() as registry:
            observed = run()
            snapshot = registry.snapshot()
        assert observed == plain
        assert "cluster.requests_offered" in snapshot
        assert "cluster.probes" in snapshot

    def test_tracer_records_router_events(self, v4i_point, traffic):
        from repro.obs import SpanTracer
        sims = make_replicas(v4i_point, 2)
        cores = sims[0].point.chip.cores
        policy = ClusterPolicy(probe_interval_s=0.005, unhealthy_after=1,
                               ejection_s=0.05)
        tracer = SpanTracer()
        ClusterSimulator(sims, policy).simulate(
            traffic, schedules=[kill_schedule(cores), None], tracer=tracer)
        names = {span.name for span in tracer.spans}
        assert "batch" in names
        assert "eject" in names
