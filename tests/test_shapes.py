"""Tests for graph shapes and dtypes."""

import pytest

from repro.graph import Shape
from repro.graph.shapes import (
    batched_matmul_result,
    conv2d_result,
    dtype,
    matmul_result,
    reduce_result,
)


class TestShape:
    def test_byte_size(self):
        assert Shape((128, 768), "bf16").byte_size == 128 * 768 * 2
        assert Shape((10,), "fp32").byte_size == 40
        assert Shape((10,), "int8").byte_size == 10

    def test_num_elements(self):
        assert Shape((2, 3, 4)).num_elements == 24

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Shape((0, 2))

    def test_rejects_unknown_dtype(self):
        with pytest.raises(KeyError):
            Shape((1,), "fp16")

    def test_with_dtype(self):
        s = Shape((4, 4), "bf16").with_dtype("int8")
        assert s.dtype_name == "int8"
        assert s.byte_size == 16

    def test_str(self):
        assert str(Shape((8, 128), "bf16")) == "bf16[8,128]"

    def test_int32_for_indices(self):
        assert not dtype("int32").is_float
        assert dtype("int32").size_bytes == 4


class TestMatmulInference:
    def test_basic(self):
        out = matmul_result(Shape((8, 256)), Shape((256, 64)))
        assert out.dims == (8, 64)

    def test_batched_lhs(self):
        out = matmul_result(Shape((2, 8, 256)), Shape((256, 64)))
        assert out.dims == (2, 8, 64)

    def test_contraction_mismatch(self):
        with pytest.raises(ValueError):
            matmul_result(Shape((8, 256)), Shape((128, 64)))

    def test_dtype_mismatch(self):
        with pytest.raises(ValueError):
            matmul_result(Shape((8, 256), "bf16"), Shape((256, 64), "int8"))

    def test_batched_dot(self):
        out = batched_matmul_result(Shape((96, 128, 64)), Shape((96, 64, 128)))
        assert out.dims == (96, 128, 128)

    def test_batched_dot_batch_mismatch(self):
        with pytest.raises(ValueError):
            batched_matmul_result(Shape((96, 128, 64)), Shape((12, 64, 128)))


class TestConvInference:
    def test_same_padding(self):
        out = conv2d_result(Shape((8, 224, 224, 3)), Shape((7, 7, 3, 64)),
                            stride=2, padding="same")
        assert out.dims == (8, 112, 112, 64)

    def test_valid_padding(self):
        out = conv2d_result(Shape((1, 10, 10, 4)), Shape((3, 3, 4, 8)),
                            stride=1, padding="valid")
        assert out.dims == (1, 8, 8, 8)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d_result(Shape((1, 8, 8, 4)), Shape((3, 3, 5, 8)), 1, "same")

    def test_bad_padding(self):
        with pytest.raises(ValueError):
            conv2d_result(Shape((1, 8, 8, 4)), Shape((3, 3, 4, 8)), 1, "full")

    def test_filter_too_big_for_valid(self):
        with pytest.raises(ValueError):
            conv2d_result(Shape((1, 2, 2, 4)), Shape((3, 3, 4, 8)), 1, "valid")


class TestReduceInference:
    def test_drops_axis(self):
        assert reduce_result(Shape((4, 5, 6)), 1).dims == (4, 6)

    def test_negative_axis(self):
        assert reduce_result(Shape((4, 5)), -1).dims == (4,)

    def test_rank0_becomes_scalar_vector(self):
        assert reduce_result(Shape((7,)), 0).dims == (1,)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            reduce_result(Shape((4,)), 2)
