"""Tests for two-tier (interactive + offline filler) serving."""

import pytest

from repro.serving.priority import TwoTierServer
from repro.workloads import RequestGenerator, app_by_name


@pytest.fixture(scope="module")
def server(request):
    from repro.arch import TPUV4I
    from repro.core import DesignPoint

    point = DesignPoint(TPUV4I)
    return TwoTierServer(point, interactive=app_by_name("cnn0"),
                         offline=app_by_name("cnn1"), offline_batch=16)


class TestTwoTier:
    def _traffic(self, seed, rate, duration=2.0):
        return RequestGenerator(seed).poisson("cnn0", rate, duration), duration

    def test_filler_recovers_utilization(self, server):
        requests, duration = self._traffic(1, rate=200)
        idle = server.simulate(requests, duration, fill_idle=False)
        filled = server.simulate(requests, duration, fill_idle=True)
        assert idle.busy_fraction < 0.5
        assert filled.busy_fraction > 0.85
        assert filled.offline_samples_per_s > 0

    def test_filler_costs_bounded_tail(self, server):
        requests, duration = self._traffic(2, rate=200)
        idle = server.simulate(requests, duration, fill_idle=False)
        filled = server.simulate(requests, duration, fill_idle=True)
        # Non-preemptive overrun: at most one offline batch of extra wait.
        overhead = filled.interactive_p99_s - idle.interactive_p99_s
        assert 0 <= overhead <= server._offline_s * 1.5

    def test_no_offline_when_saturated(self, server):
        requests, duration = self._traffic(3, rate=20_000, duration=0.5)
        stats = server.simulate(requests, duration)
        # Saturated interactive load leaves little room for the filler.
        assert stats.offline_samples_per_s < 2000

    def test_interactive_latency_floor(self, server):
        requests, duration = self._traffic(4, rate=50)
        stats = server.simulate(requests, duration, fill_idle=False)
        assert stats.interactive_p50_s >= server._interactive_s * 0.99

    def test_validation(self, server):
        from repro.workloads import Request

        with pytest.raises(ValueError):
            server.simulate([], 0.0)
        with pytest.raises(ValueError):
            server.simulate([Request(1.0, "a"), Request(0.1, "a")], 2.0)

    def test_bad_offline_batch(self):
        from repro.arch import TPUV4I
        from repro.core import DesignPoint

        with pytest.raises(ValueError):
            TwoTierServer(DesignPoint(TPUV4I), app_by_name("cnn0"),
                          app_by_name("cnn1"), offline_batch=0)

    def test_describe(self, server):
        requests, duration = self._traffic(5, rate=100)
        assert "interactive p99" in server.simulate(requests,
                                                    duration).describe()
