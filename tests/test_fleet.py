"""Tests for fleet sizing."""

import pytest

from repro.serving import Slo, plan_fleet
from repro.workloads import app_by_name


class TestPlanFleet:
    def test_basic_plan(self, v4i_point):
        plan = plan_fleet(v4i_point, app_by_name("cnn0"), 10_000.0)
        assert plan.chips >= 1
        assert plan.slo_batch >= 1
        assert plan.fleet_tco_usd > 0
        assert plan.cost_per_kqps_usd > 0

    def test_chips_scale_with_target(self, v4i_point):
        spec = app_by_name("cnn0")
        small = plan_fleet(v4i_point, spec, 5_000.0)
        large = plan_fleet(v4i_point, spec, 50_000.0)
        assert large.chips > 5 * small.chips

    def test_headroom_adds_chips(self, v4i_point):
        spec = app_by_name("cnn0")
        lean = plan_fleet(v4i_point, spec, 30_000.0, peak_headroom=1.0)
        padded = plan_fleet(v4i_point, spec, 30_000.0, peak_headroom=2.0)
        assert padded.chips > lean.chips

    def test_v4i_cheaper_per_qps_than_v3(self, v4i_point, v3_point):
        spec = app_by_name("bert0")
        v4i = plan_fleet(v4i_point, spec, 20_000.0)
        v3 = plan_fleet(v3_point, spec, 20_000.0)
        assert v4i.cost_per_kqps_usd < v3.cost_per_kqps_usd

    def test_impossible_slo_rejected(self, v4i_point):
        with pytest.raises(ValueError, match="cannot meet"):
            plan_fleet(v4i_point, app_by_name("cnn0"), 1000.0,
                       slo=Slo(1e-6))

    def test_bad_args(self, v4i_point):
        spec = app_by_name("cnn0")
        with pytest.raises(ValueError):
            plan_fleet(v4i_point, spec, 0.0)
        with pytest.raises(ValueError):
            plan_fleet(v4i_point, spec, 100.0, peak_headroom=0.5)

    def test_describe(self, v4i_point):
        plan = plan_fleet(v4i_point, app_by_name("cnn0"), 10_000.0)
        assert "chips" in plan.describe()
