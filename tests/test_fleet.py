"""Tests for fleet sizing."""

import pytest

from repro.serving import Slo, plan_fleet
from repro.workloads import app_by_name


class TestPlanFleet:
    def test_basic_plan(self, v4i_point):
        plan = plan_fleet(v4i_point, app_by_name("cnn0"), 10_000.0)
        assert plan.chips >= 1
        assert plan.slo_batch >= 1
        assert plan.fleet_tco_usd > 0
        assert plan.cost_per_kqps_usd > 0

    def test_chips_scale_with_target(self, v4i_point):
        spec = app_by_name("cnn0")
        small = plan_fleet(v4i_point, spec, 5_000.0)
        large = plan_fleet(v4i_point, spec, 50_000.0)
        assert large.chips > 5 * small.chips

    def test_headroom_adds_chips(self, v4i_point):
        spec = app_by_name("cnn0")
        lean = plan_fleet(v4i_point, spec, 30_000.0, peak_headroom=1.0)
        padded = plan_fleet(v4i_point, spec, 30_000.0, peak_headroom=2.0)
        assert padded.chips > lean.chips

    def test_v4i_cheaper_per_qps_than_v3(self, v4i_point, v3_point):
        spec = app_by_name("bert0")
        v4i = plan_fleet(v4i_point, spec, 20_000.0)
        v3 = plan_fleet(v3_point, spec, 20_000.0)
        assert v4i.cost_per_kqps_usd < v3.cost_per_kqps_usd

    def test_impossible_slo_rejected(self, v4i_point):
        with pytest.raises(ValueError, match="cannot meet"):
            plan_fleet(v4i_point, app_by_name("cnn0"), 1000.0,
                       slo=Slo(1e-6))

    def test_bad_args(self, v4i_point):
        spec = app_by_name("cnn0")
        with pytest.raises(ValueError):
            plan_fleet(v4i_point, spec, 0.0)
        with pytest.raises(ValueError):
            plan_fleet(v4i_point, spec, 100.0, peak_headroom=0.5)

    def test_describe(self, v4i_point):
        plan = plan_fleet(v4i_point, app_by_name("cnn0"), 10_000.0)
        assert "chips" in plan.describe()


class TestDegenerateRatios:
    """Ratio properties must return finite 0.0, never inf or a crash."""

    def _plan(self, **overrides):
        from repro.serving.fleet import FleetPlan

        fields = dict(workload="cnn0", chip="TPUv4i", target_qps=1000.0,
                      slo_batch=8, per_chip_qps=500.0, chips=2,
                      fleet_tco_usd=1e6, fleet_power_w=500.0, spare_chips=0)
        fields.update(overrides)
        return FleetPlan(**fields)

    def test_zero_target_qps_cost_is_zero(self):
        plan = self._plan(target_qps=0.0)
        assert plan.cost_per_kqps_usd == 0.0

    def test_all_spare_plan_premium_is_zero(self):
        plan = self._plan(chips=2, spare_chips=2)
        assert plan.serving_chips == 0
        assert plan.resilience_premium == 0.0


class TestResilientFleet:
    """N+k provisioning: the SLO holds with k chips failed."""

    def test_spares_add_whole_chips(self, v4i_point):
        spec = app_by_name("cnn0")
        base = plan_fleet(v4i_point, spec, 20_000.0)
        resilient = plan_fleet(v4i_point, spec, 20_000.0, spare_chips=2)
        assert resilient.chips == base.chips + 2
        assert resilient.spare_chips == 2
        assert resilient.serving_chips == base.chips
        # With every spare failed, capacity still covers peak load.
        survivors = resilient.chips - resilient.spare_chips
        assert survivors * resilient.per_chip_qps >= 20_000.0 * 1.4

    def test_premium_prices_the_insurance(self, v4i_point):
        spec = app_by_name("cnn0")
        base = plan_fleet(v4i_point, spec, 20_000.0)
        resilient = plan_fleet(v4i_point, spec, 20_000.0, spare_chips=3)
        assert base.spare_chips == 0
        assert base.resilience_premium == 0.0
        # TCO and power are linear in chips, so k spares cost k/n extra.
        assert resilient.resilience_premium == pytest.approx(3 / base.chips)
        assert resilient.fleet_tco_usd == pytest.approx(
            base.fleet_tco_usd * resilient.chips / base.chips)
        assert resilient.fleet_power_w == pytest.approx(
            base.fleet_power_w * resilient.chips / base.chips)

    def test_negative_spares_rejected(self, v4i_point):
        with pytest.raises(ValueError):
            plan_fleet(v4i_point, app_by_name("cnn0"), 1000.0, spare_chips=-1)

    def test_describe_mentions_spares(self, v4i_point):
        plan = plan_fleet(v4i_point, app_by_name("cnn0"), 10_000.0,
                          spare_chips=2)
        assert "N+2" in plan.describe()
        assert "premium" in plan.describe()
